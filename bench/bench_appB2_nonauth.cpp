// E6 — Appendix B.2: the non-authenticated Universal (Algorithm 3:
// Bracha BRB + n binary-consensus instances).
//
// Series: messages by correct processes vs n for the non-authenticated
// stack against the authenticated one. The paper upper-bounds Algorithm 3
// at O(n^4) (it is not optimal); the measured fault-free slope lands
// around 3 (n BRBs at Theta(n^2) + n binary instances at Theta(n^2) per
// round), versus ~2 for Algorithm 1 — the gap the paper attributes to
// dropping signatures.
#include <cstdio>
#include <vector>

#include "valcon/harness/scenario.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using harness::ScenarioConfig;

namespace {

ScenarioConfig scenario(int n, harness::VcKind kind) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 3;
  cfg.vc = kind;
  for (int p = 0; p < n; ++p) cfg.proposals.push_back(p % 2);
  return cfg;
}

}  // namespace

int main() {
  std::printf("==== E6 / Appendix B.2: non-authenticated vector consensus "
              "(Algorithm 3) ====\n\n");
  const core::StrongValidity validity;
  harness::Table table({"n", "t", "msgs nonauth(Alg3)", "msgs auth(Alg1)",
                        "ratio", "agreement"});
  std::vector<double> ns;
  std::vector<double> nonauth_msgs;
  std::vector<double> auth_msgs;
  for (const int n : {4, 7, 10, 13, 16, 22}) {
    const int t = (n - 1) / 3;
    const auto lambda = core::make_lambda(validity, n, t);
    const auto nonauth = harness::run_universal(
        scenario(n, harness::VcKind::kNonAuthenticated), lambda);
    const auto auth = harness::run_universal(
        scenario(n, harness::VcKind::kAuthenticated), lambda);
    table.add_row(
        {std::to_string(n), std::to_string(t),
         std::to_string(nonauth.message_complexity),
         std::to_string(auth.message_complexity),
         harness::fmt(static_cast<double>(nonauth.message_complexity) /
                      static_cast<double>(auth.message_complexity), 1),
         (nonauth.agreement() && auth.agreement()) ? "yes" : "NO"});
    ns.push_back(n);
    nonauth_msgs.push_back(static_cast<double>(nonauth.message_complexity));
    auth_msgs.push_back(static_cast<double>(auth.message_complexity));
  }
  table.print();
  std::printf("\nlog-log slopes, messages vs n: nonauth = %.2f (paper upper "
              "bound O(n^4), fault-free runs land near n^3), auth = %.2f "
              "(Theta(n^2))\n",
              harness::loglog_slope(ns, nonauth_msgs),
              harness::loglog_slope(ns, auth_msgs));
  return 0;
}
