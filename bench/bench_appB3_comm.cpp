// E7 — Appendix B.3: communication complexity (words) and the latency
// trade of the O(n^2 log n) vector consensus (Algorithm 6).
//
// (a) words sent by correct processes >= GST vs n: Algorithm 1 carries
//     linear-size vectors inside Quad, giving Theta(n^3) words; Algorithm 6
//     runs Quad over constant-size (hash, threshold-signature) pairs and
//     disseminates vectors via slow broadcast + ADD, giving ~n^2 (the
//     log n factor is invisible at these sizes).
// (b) the price: slow broadcast waits delta * n^i between sends, so the
//     latency of Algorithm 6 explodes exponentially with the index of the
//     first correct discoverer (silencing P0..Pf-1 shifts it), while
//     Algorithm 1 stays at a small constant number of delta.
#include <cstdio>
#include <vector>

#include "valcon/harness/scenario.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using harness::ScenarioConfig;

namespace {

ScenarioConfig scenario(int n, harness::VcKind kind, int silent_prefix) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 3;
  cfg.vc = kind;
  cfg.horizon = 1e15;  // slow broadcast can run for a long simulated time
  for (int p = 0; p < n; ++p) cfg.proposals.push_back(p % 2);
  for (int f = 0; f < silent_prefix; ++f) {
    cfg.faults[f] = harness::Fault::silent();
  }
  return cfg;
}

}  // namespace

int main() {
  std::printf("==== E7 / Appendix B.3: words on the wire and the latency "
              "trade ====\n\n");
  const core::StrongValidity validity;

  std::printf("(a) communication complexity (words, correct senders >= GST)\n");
  harness::Table words({"n", "t", "words fast(Alg6)", "words auth(Alg1)",
                        "auth/fast"});
  std::vector<double> ns;
  std::vector<double> fast_words;
  std::vector<double> auth_words;
  for (const int n : {4, 7, 10, 13, 16, 22, 31}) {
    const int t = (n - 1) / 3;
    const auto lambda = core::make_lambda(validity, n, t);
    const auto fast =
        harness::run_universal(scenario(n, harness::VcKind::kFast, 0), lambda);
    const auto auth = harness::run_universal(
        scenario(n, harness::VcKind::kAuthenticated, 0), lambda);
    words.add_row(
        {std::to_string(n), std::to_string(t),
         std::to_string(fast.word_complexity),
         std::to_string(auth.word_complexity),
         harness::fmt(static_cast<double>(auth.word_complexity) /
                      static_cast<double>(fast.word_complexity), 2)});
    ns.push_back(n);
    fast_words.push_back(static_cast<double>(fast.word_complexity));
    auth_words.push_back(static_cast<double>(auth.word_complexity));
  }
  words.print();
  std::printf("log-log slopes, words vs n: fast(Alg6) = %.2f (paper: "
              "O(n^2 log n)), auth(Alg1) = %.2f (paper: O(n^3))\n\n",
              harness::loglog_slope(ns, fast_words),
              harness::loglog_slope(ns, auth_words));

  std::printf("(b) latency vs index of the first correct disseminator "
              "(n = 7, t = 2; P0..Pf-1 silent)\n");
  harness::Table latency({"silent prefix f", "latency fast(Alg6) / delta",
                          "latency auth(Alg1) / delta"});
  for (const int f : {0, 1, 2}) {
    const int n = 7;
    const int t = 2;
    const auto lambda = core::make_lambda(validity, n, t);
    const auto fast = harness::run_universal(
        scenario(n, harness::VcKind::kFast, f), lambda);
    const auto auth = harness::run_universal(
        scenario(n, harness::VcKind::kAuthenticated, f), lambda);
    latency.add_row({std::to_string(f),
                     harness::fmt(fast.last_decision_time, 1),
                     harness::fmt(auth.last_decision_time, 1)});
  }
  latency.print();
  std::printf(
      "\nReading: each silenced low-index process multiplies Algorithm 6's\n"
      "slow-broadcast pacing by ~n (delta * n^i waits): exponential\n"
      "worst-case latency, exactly the impracticality the paper concedes\n"
      "for its communication-optimal construction. Algorithm 1 is\n"
      "unaffected (linear latency after GST).\n");
  return 0;
}
