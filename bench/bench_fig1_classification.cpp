// E1 — Figure 1: the landscape of validity properties.
//
// Regenerates the paper's classification picture over finite domains:
//  (a) the named properties placed on the map for n <= 3t and n > 3t;
//  (b) a random sample of the property space (table-based properties)
//      counted into trivial / solvable / unsolvable — empirically showing
//      trivial ⊂ solvable and, at n <= 3t, solvable = trivial (Thm 1+2);
//  (c) the solvability frontier of Correct-Proposal validity as a function
//      of the proposal-domain size (a pigeonhole consequence of C_S).
#include <cstdio>
#include <memory>
#include <vector>

#include "valcon/core/classification.hpp"
#include "valcon/harness/table.hpp"
#include "valcon/sim/rng.hpp"

using namespace valcon;
using namespace valcon::core;

namespace {

void named_properties_map() {
  std::printf("(a) Named validity properties on the Figure 1 map\n");
  harness::Table table({"property", "n", "t", "trivial", "C_S", "solvable"});
  const std::vector<Value> domain = {0, 1};
  const std::vector<std::pair<int, int>> systems = {{3, 1}, {4, 1}, {6, 2},
                                                    {7, 2}};
  for (const auto& [n, t] : systems) {
    const StrongValidity strong;
    const WeakValidity weak;
    const CorrectProposalValidity correct;
    const ConvexHullValidity hull;
    const MedianValidity median(n, t);
    const ConstantValidity constant(0);
    const ConstantValidity any(0, /*exclusive=*/false);
    for (const ValidityProperty* val :
         {static_cast<const ValidityProperty*>(&strong),
          static_cast<const ValidityProperty*>(&weak),
          static_cast<const ValidityProperty*>(&correct),
          static_cast<const ValidityProperty*>(&hull),
          static_cast<const ValidityProperty*>(&median),
          static_cast<const ValidityProperty*>(&constant),
          static_cast<const ValidityProperty*>(&any)}) {
      const auto result = classify(*val, n, t, domain, domain);
      table.add_row({val->name(), std::to_string(n), std::to_string(t),
                     result.trivial ? "yes" : "no",
                     result.similarity_condition ? "yes" : "no",
                     result.solvable ? "yes" : "no"});
    }
  }
  table.print();
}

void random_property_landscape() {
  std::printf(
      "\n(b) Random table-based properties (n = 3, t = 1 vs n = 4, t = 1; "
      "binary domain, 400 samples each)\n");
  harness::Table table({"system", "samples", "trivial", "C_S holds",
                        "solvable", "solvable&&non-trivial"});
  const std::vector<Value> domain = {0, 1};
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{3, 1}, {4, 1}}) {
    sim::Rng rng(7);
    const auto configs = enumerate_configs(n, t, domain);
    int trivial = 0, cs = 0, solvable = 0, nontrivial_solvable = 0;
    const int samples = 400;
    // Bias towards permissive properties (each value inadmissible with
    // probability 1/2^bits); uniform sampling over 2^|I| constraint sets
    // almost surely yields globally inconsistent — hence unsolvable —
    // properties, which would make the landscape look empty.
    const std::uint64_t deny_one_in = (n == 3) ? 8 : 16;
    for (int i = 0; i < samples; ++i) {
      TableValidity::Table spec;
      for (const auto& c : configs) {
        std::set<Value> admissible;
        for (const Value v : domain) {
          if (rng.next_below(deny_one_in) != 0) admissible.insert(v);
        }
        if (admissible.empty()) admissible.insert(rng.next_below(2));
        spec[c] = admissible;
      }
      const TableValidity val(std::move(spec));
      const auto result = classify(val, n, t, domain, domain);
      trivial += result.trivial ? 1 : 0;
      cs += result.similarity_condition ? 1 : 0;
      solvable += result.solvable ? 1 : 0;
      nontrivial_solvable += (result.solvable && !result.trivial) ? 1 : 0;
    }
    table.add_row({"n=" + std::to_string(n) + ",t=" + std::to_string(t),
                   std::to_string(samples), std::to_string(trivial),
                   std::to_string(cs), std::to_string(solvable),
                   std::to_string(nontrivial_solvable)});
  }
  table.print();
  std::printf(
      "  shape check: at n = 3t no solvable property is non-trivial "
      "(Theorem 1); at n = 3t+1 some are (Universal solves them).\n");
}

void correct_proposal_frontier() {
  std::printf(
      "\n(c) Correct-Proposal validity: solvability frontier vs domain "
      "size (Theorem 3's C_S, pigeonhole)\n");
  harness::Table table({"n", "t", "|V|", "C_S / solvable",
                        "pigeonhole predicts"});
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{4, 1}, {5, 1},
                                                             {7, 2}}) {
    for (int domain_size = 2; domain_size <= 4; ++domain_size) {
      std::vector<Value> domain;
      for (int v = 0; v < domain_size; ++v) domain.push_back(v);
      const CorrectProposalValidity val;
      const auto result = classify(val, n, t, domain, domain);
      const bool predicted = (n - t) > domain_size * t;
      table.add_row({std::to_string(n), std::to_string(t),
                     std::to_string(domain_size),
                     result.solvable ? "yes" : "no",
                     predicted ? "yes" : "no"});
    }
  }
  table.print();
}

}  // namespace

int main() {
  std::printf("==== E1 / Figure 1: classification of validity properties ====\n\n");
  named_properties_map();
  random_property_landscape();
  correct_proposal_frontier();
  return 0;
}
