// E2 — Theorem 1 / Figure 2: the partitioning construction, executed.
//
// Runs the Lemma 2 split-brain attack on Universal (authenticated vector
// consensus + Strong Validity): group B equivocates between sides A and C
// while the network delays A <-> C traffic (legal before GST). At n = 3t
// both sides muster quorums and Agreement breaks between *correct*
// processes; at n = 3t + 1 the C side stalls and adopts A's decision after
// GST. This is the executable content of "no non-trivial validity property
// is solvable with n <= 3t".
#include <cstdio>

#include "valcon/harness/table.hpp"
#include "valcon/lb/partition.hpp"

using namespace valcon;

int main() {
  std::printf("==== E2 / Theorem 1 + Figure 2: partition attack at the "
              "n = 3t frontier ====\n\n");
  harness::Table table({"n", "t", "side-A decision", "side-C decision",
                        "agreement violated", "paper predicts"});
  for (const int t : {1, 2, 3}) {
    for (const int n : {3 * t, 3 * t + 1}) {
      const auto outcome = lb::run_partition_experiment(n, t, /*seed=*/1);
      const auto fmt_value = [](const std::optional<Value>& v) {
        return v.has_value() ? std::to_string(*v) : std::string("-");
      };
      table.add_row({std::to_string(n), std::to_string(t),
                     fmt_value(outcome.side_a_value),
                     fmt_value(outcome.side_c_value),
                     outcome.agreement_violated ? "YES" : "no",
                     n == 3 * t ? "violation" : "safe"});
    }
  }
  table.print();
  std::printf(
      "\nReading: at n = 3t the two sides decide different values — the\n"
      "merged execution of Lemma 2 exists, so only trivial validity\n"
      "properties survive n <= 3t (Theorems 1 and 2). One process more\n"
      "(n = 3t + 1) and the C side cannot assemble a quorum: Universal\n"
      "stays safe and C learns A's decision after GST.\n");
  return 0;
}
