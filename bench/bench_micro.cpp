// E9 — microbenchmarks (google-benchmark) for the substrate costs:
// SHA-256, the simulated PKI, threshold combination, Reed-Solomon
// encode/decode (with Berlekamp-Welch error correction), similarity
// enumeration and the generic Λ of Definition 2.
#include <benchmark/benchmark.h>

#include "valcon/consensus/reed_solomon.hpp"
#include "valcon/core/lambda.hpp"
#include "valcon/crypto/sha256.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/rng.hpp"

using namespace valcon;

namespace {

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SignVerify(benchmark::State& state) {
  const crypto::KeyRegistry keys(64, 43, 1);
  const crypto::Hash digest = crypto::Hasher("bench").add("m").finish();
  const auto signer = keys.signer_for(3);
  for (auto _ : state) {
    const crypto::Signature sig = signer.sign(digest);
    benchmark::DoNotOptimize(keys.verify(sig));
  }
}
BENCHMARK(BM_SignVerify);

void BM_ThresholdCombine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = n - (n - 1) / 3;
  const crypto::KeyRegistry keys(n, k, 1);
  const crypto::Hash digest = crypto::Hasher("bench").add("t").finish();
  std::vector<crypto::Signature> partials;
  for (int i = 0; i < k; ++i) {
    partials.push_back(keys.signer_for(i).sign(digest));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.combine(partials));
  }
}
BENCHMARK(BM_ThresholdCombine)->Arg(16)->Arg(64);

void BM_RsEncode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = (n - 1) / 3 + 1;
  const consensus::ReedSolomon rs(n, k);
  std::vector<std::uint8_t> data(512, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
}
BENCHMARK(BM_RsEncode)->Arg(16)->Arg(64);

void BM_RsDecodeWithErrors(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  const int k = t + 1;
  const consensus::ReedSolomon rs(n, k);
  std::vector<std::uint8_t> data(128, 9);
  const auto shares = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> received(
      static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    received[static_cast<std::size_t>(j)] = shares[static_cast<std::size_t>(j)];
  }
  for (int e = 0; e < t; ++e) {
    for (auto& b : *received[static_cast<std::size_t>(e)]) b ^= 0x5a;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(received, t));
  }
}
BENCHMARK(BM_RsDecodeWithErrors)->Arg(10)->Arg(16);

void BM_SimilarityEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<Value> domain = {0, 1};
  const core::InputConfig c = [&] {
    core::InputConfig cfg(n);
    for (int p = 0; p + 1 < n; ++p) cfg.set(p, p % 2);
    return cfg;
  }();
  for (auto _ : state) {
    int count = 0;
    core::for_each_similar(c, 1, domain, [&](const core::InputConfig&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SimilarityEnumeration)->Arg(4)->Arg(6)->Arg(8);

void BM_GenericLambda(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<Value> domain = {0, 1, 2};
  const core::StrongValidity val;
  core::InputConfig vec(n);
  for (int p = 0; p + 1 < n; ++p) vec.set(p, p % 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::generic_lambda(val, vec, 1, domain, domain));
  }
}
BENCHMARK(BM_GenericLambda)->Arg(4)->Arg(6);

void BM_ClosedFormLambda(benchmark::State& state) {
  const core::StrongValidity val;
  core::InputConfig vec(64);
  sim::Rng rng(5);
  for (int p = 0; p < 43; ++p) vec.set(p, static_cast<Value>(rng.next_below(4)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(val.closed_form_lambda(vec, 64, 21));
  }
}
BENCHMARK(BM_ClosedFormLambda);

}  // namespace

BENCHMARK_MAIN();
