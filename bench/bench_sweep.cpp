// Sweep throughput: scenarios/sec of the ScenarioMatrix engine as a
// function of worker threads, plus a cross-check that every per-scenario
// result is independent of the job count (each run is a deterministic
// function of (config, seed); the pool only changes wall-clock time).
//
// Speedup is bounded by the machine: on a single hardware thread the pool
// can only add overhead, so the table prints hardware_concurrency first.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "valcon/harness/sweep.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using namespace valcon::harness;

namespace {

bool same_results(const std::vector<SweepOutcome>& a,
                  const std::vector<SweepOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const RunResult& x = a[i].result;
    const RunResult& y = b[i].result;
    if (x.decisions != y.decisions || x.decide_times != y.decide_times ||
        x.message_complexity != y.message_complexity ||
        x.word_complexity != y.word_complexity || x.events != y.events ||
        x.last_decision_time != y.last_decision_time ||
        a[i].error != b[i].error) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "sweep throughput (matrix=full, hardware_concurrency=" << hw
            << ")\n\n";

  const std::vector<SweepPoint> points = named_matrix("full").build();

  std::vector<SweepOutcome> baseline;
  Table table({"jobs", "scenarios", "wall(s)", "scen/s", "speedup",
               "results==jobs1"});
  double base_wall = 0.0;
  for (const int jobs : {1, 2, 4, 8}) {
    const SweepRunner runner(jobs);
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SweepOutcome> outcomes = runner.run(points);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    bool identical = true;
    if (jobs == 1) {
      baseline = outcomes;
      base_wall = wall;
    } else {
      identical = same_results(baseline, outcomes);
    }
    table.add_row({std::to_string(jobs), std::to_string(points.size()),
                   fmt(wall, 3),
                   fmt(static_cast<double>(points.size()) / wall, 1),
                   fmt(base_wall / wall), identical ? "yes" : "NO"});
    if (!identical) {
      table.print();
      std::cerr << "FAIL: results changed with jobs=" << jobs << "\n";
      return 1;
    }
  }
  table.print();
  return 0;
}
