// Sweep throughput: scenarios/sec of the ScenarioMatrix engine as a
// function of worker threads, plus a cross-check that every per-scenario
// result is independent of the job count (each run is a deterministic
// function of (config, seed); the pool only changes wall-clock time).
//
// Speedup is bounded by the machine: on a single hardware thread the pool
// can only add overhead, so the table prints hardware_concurrency first.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "valcon/harness/sweep.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using namespace valcon::harness;

namespace {

bool same_results(const std::vector<SweepOutcome>& a,
                  const std::vector<SweepOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const RunResult& x = a[i].result;
    const RunResult& y = b[i].result;
    if (x.decisions != y.decisions || x.decide_times != y.decide_times ||
        x.message_complexity != y.message_complexity ||
        x.word_complexity != y.word_complexity || x.events != y.events ||
        x.last_decision_time != y.last_decision_time ||
        a[i].error != b[i].error) {
      return false;
    }
  }
  return true;
}

// Lazy indexing at scale: decodes a slice of a >= 1e6-cell matrix through
// point_at — no point vector is ever materialized, which is the property
// that makes sharded million-cell sweeps possible at all (memory stays
// O(jobs), not O(matrix)).
void bench_lazy_indexing() {
  std::vector<std::uint64_t> seeds(5000);
  for (std::size_t s = 0; s < seeds.size(); ++s) seeds[s] = s + 1;
  const ScenarioMatrix matrix = named_matrix("full").seeds(seeds);
  const std::size_t total = matrix.size();
  // Stride so the bench touches the whole index space in ~100k decodes.
  const std::size_t stride = total / 100000 + 1;
  std::size_t decoded = 0;
  std::size_t label_bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total; i += stride) {
    label_bytes += matrix.point_at(i).label.size();
    ++decoded;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "lazy indexing: matrix of " << total << " cells, decoded "
            << decoded << " points via point_at in " << fmt(wall, 3)
            << "s (" << fmt(static_cast<double>(decoded) / wall, 0)
            << " decodes/s, " << label_bytes
            << " label bytes, no point vector materialized)\n\n";
}

// The "validity" matrix: every validity property x every proposal pattern
// x every network profile. Beyond throughput, this checks the refactor's
// headline at bench scale: zero errors means Λ is defined everywhere —
// including CorrectProposal, which the old hard-coded 3-value assignment
// made unsolvable in every matrix.
bool bench_validity_matrix() {
  const ScenarioMatrix matrix = named_matrix("validity");
  const auto start = std::chrono::steady_clock::now();
  std::size_t cells = 0, errors = 0, cut = 0;
  SweepRunner(4).run_range(matrix, 0, matrix.size(), [&](SweepOutcome&& o) {
    ++cells;
    if (!o.error.empty()) ++errors;
    if (o.error.empty() && !o.result.queue_drained) ++cut;
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "validity matrix (jobs=4): " << cells << " scenarios in "
            << fmt(wall, 3) << "s ("
            << fmt(static_cast<double>(cells) / wall, 1) << " scen/s), "
            << errors << " lambda errors, " << cut
            << " runs cut by the grace window\n";
  return errors == 0;
}

// run_range streaming vs run() on the materialized vector: same outcomes,
// comparable throughput, O(jobs) buffering.
bool bench_run_range(const std::vector<SweepOutcome>& baseline) {
  const ScenarioMatrix matrix = named_matrix("full");
  std::vector<SweepOutcome> streamed;
  streamed.reserve(matrix.size());
  const auto start = std::chrono::steady_clock::now();
  SweepRunner(4).run_range(matrix, 0, matrix.size(), [&](SweepOutcome&& o) {
    streamed.push_back(std::move(o));
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const bool identical = same_results(baseline, streamed);
  std::cout << "run_range streaming (jobs=4): " << streamed.size()
            << " scenarios in " << fmt(wall, 3) << "s ("
            << fmt(static_cast<double>(streamed.size()) / wall, 1)
            << " scen/s), results==run(): " << (identical ? "yes" : "NO")
            << "\n";
  return identical;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "sweep throughput (matrix=full, hardware_concurrency=" << hw
            << ")\n\n";

  bench_lazy_indexing();

  const std::vector<SweepPoint> points = named_matrix("full").build();

  std::vector<SweepOutcome> baseline;
  Table table({"jobs", "scenarios", "wall(s)", "scen/s", "speedup",
               "results==jobs1"});
  double base_wall = 0.0;
  for (const int jobs : {1, 2, 4, 8}) {
    const SweepRunner runner(jobs);
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SweepOutcome> outcomes = runner.run(points);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    bool identical = true;
    if (jobs == 1) {
      baseline = outcomes;
      base_wall = wall;
    } else {
      identical = same_results(baseline, outcomes);
    }
    table.add_row({std::to_string(jobs), std::to_string(points.size()),
                   fmt(wall, 3),
                   fmt(static_cast<double>(points.size()) / wall, 1),
                   fmt(base_wall / wall), identical ? "yes" : "NO"});
    if (!identical) {
      table.print();
      std::cerr << "FAIL: results changed with jobs=" << jobs << "\n";
      return 1;
    }
  }
  table.print();
  std::cout << "\n";
  if (!bench_run_range(baseline)) {
    std::cerr << "FAIL: run_range results differ from run()\n";
    return 1;
  }
  if (!bench_validity_matrix()) {
    std::cerr << "FAIL: lambda errors in the validity matrix\n";
    return 1;
  }
  return 0;
}
