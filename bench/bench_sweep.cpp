// Sweep throughput: scenarios/sec of the ScenarioMatrix engine as a
// function of worker threads, plus a cross-check that every per-scenario
// result is independent of the job count (each run is a deterministic
// function of (config, seed); the pool only changes wall-clock time).
//
// Speedup is bounded by the machine: on a single hardware thread the pool
// can only add overhead, so the table prints hardware_concurrency first.
//
// `bench_sweep --json [--out FILE]` instead emits the machine-readable
// perf-baseline document (BENCH_*.json): the simulator hot path driven by a
// token-storm workload (events/sec, messages/sec, ns/message, heap
// allocations per message measured by a global operator-new counter),
// full-matrix sweep throughput (cells/sec), and the quorum-certificate
// section — the same fault-free workload under cert_mode per-vote and
// aggregate, normalized per decision (messages_per_decision,
// verifies_per_decision, ns_per_decision), and the large-n scaling
// section — one committee-topology cell per n in {10, 50, 100, 500,
// 1000}, recording messages per decision, wall seconds and peak RSS
// against the quadratic Dolev-Reischuk curve, plus the fitted log-log
// scaling exponent CI gates on (strictly below quadratic). Every section
// carries both the machine's `hardware_concurrency` and the `jobs` the
// section actually used; the two were previously conflated, which made
// documents from jobs-capped runs unreadable. docs/performance.md
// describes the schema and how to read the numbers.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "valcon/core/quorum.hpp"
#include "valcon/harness/sweep.hpp"
#include "valcon/harness/table.hpp"
#include "valcon/sim/component.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;
using namespace valcon::harness;

// ------------------------------------------------------------ alloc probe
//
// Counts every heap allocation made by this binary. The hot-path section
// resets it around Simulator::run() to measure allocations per simulated
// message — the number the zero-allocation acceptance criterion is about.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// GCC cannot see that the replaced operator new below is itself
// malloc-based and flags the free() in operator delete as mismatched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ------------------------------------------------------------- hot path
//
// A deterministic token-and-vote storm exercising the full per-message
// path exactly as a sweep cell does: messages flow through the real
// two-level Mux composition layer (as Universal -> vector consensus ->
// Quad nests), every token hop triggers an all-to-all vote broadcast (the
// paper's protocols broadcast every phase), and payload type names rotate
// over twelve realistic wire names spanning both sides of the SSO
// boundary. Everything below the storm logic — MuxMsg wrapping and
// routing, Metrics accounting, Network delay sampling, the event queue,
// payload allocation — is the library's own hot path.
//
// This source also builds against the pre-interning library (for
// measuring the committed baseline): the shim below maps the new macros
// onto the old virtual-only API.
#ifndef VALCON_PAYLOAD_TYPE
#define VALCON_NO_PAYLOAD_INTERNING
#endif

namespace names {
const char* const kTypes[12] = {
    "storm/propose",     "storm/prepare-vote", "storm/commit-vote",
    "storm/view-change", "storm/precommit",    "storm/decide",
    "storm/epoch-over",  "storm/epoch-cert",   "storm/est",
    "storm/stored",      "storm/confirm",      "storm/echo"};
}  // namespace names

// valcon-lint: allow(payload-type) -- storm token interns 12 names by phase
struct Token final : sim::Payload {
  Token(int phase_in, bool vote_in) : phase(phase_in % 12), vote(vote_in) {}
  [[nodiscard]] const char* type_name() const override {
    return names::kTypes[phase];
  }
#ifndef VALCON_NO_PAYLOAD_INTERNING
  [[nodiscard]] sim::PayloadTypeId type_id() const override {
    static const sim::PayloadTypeId ids[12] = {
        sim::PayloadTypeRegistry::intern(names::kTypes[0]),
        sim::PayloadTypeRegistry::intern(names::kTypes[1]),
        sim::PayloadTypeRegistry::intern(names::kTypes[2]),
        sim::PayloadTypeRegistry::intern(names::kTypes[3]),
        sim::PayloadTypeRegistry::intern(names::kTypes[4]),
        sim::PayloadTypeRegistry::intern(names::kTypes[5]),
        sim::PayloadTypeRegistry::intern(names::kTypes[6]),
        sim::PayloadTypeRegistry::intern(names::kTypes[7]),
        sim::PayloadTypeRegistry::intern(names::kTypes[8]),
        sim::PayloadTypeRegistry::intern(names::kTypes[9]),
        sim::PayloadTypeRegistry::intern(names::kTypes[10]),
        sim::PayloadTypeRegistry::intern(names::kTypes[11])};
    return ids[phase];
  }
#endif
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  int phase;
  bool vote;
};

/// The protocol logic: circulates tokens around the ring; every delivered
/// token triggers an all-to-all vote wave. Runs as the leaf of a
/// two-level Mux stack, so every send below is wrapped and routed by the
/// library's composition layer.
class StormCore final : public sim::Component {
 public:
  explicit StormCore(int tokens) : tokens_(tokens) {}

  void on_start(sim::Context& ctx) override {
    next_ = (ctx.id() + 1) % ctx.n();
    for (int k = 0; k < tokens_; ++k) {
      ctx.send(next_, sim::make_payload<Token>(k, false));
    }
  }

  void on_message(sim::Context& ctx, ProcessId,
                  const sim::PayloadPtr& m) override {
    const auto* token = dynamic_cast<const Token*>(m.get());
    if (token == nullptr || token->vote) return;  // votes: absorb
    ++received_;
    ctx.broadcast(
        sim::make_payload<Token>(static_cast<int>(received_), true));
    ctx.send(next_, sim::make_payload<Token>(static_cast<int>(received_),
                                             false));
  }

 private:
  int tokens_;
  ProcessId next_ = 0;
  std::uint64_t received_ = 0;
};

class StormMid final : public sim::Mux {
 public:
  explicit StormMid(int tokens) { make_child<StormCore>(tokens); }
};

class StormRoot final : public sim::Mux {
 public:
  explicit StormRoot(int tokens) { make_child<StormMid>(tokens); }
};

struct HotPathResult {
  int processes = 0;
  int tokens = 0;
  double horizon = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t heap_allocs = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double messages_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(messages) / wall_seconds : 0;
  }
  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }
  [[nodiscard]] double ns_per_message() const {
    return messages > 0 ? wall_seconds * 1e9 / static_cast<double>(messages)
                        : 0;
  }
  [[nodiscard]] double allocs_per_message() const {
    return messages > 0
               ? static_cast<double>(heap_allocs) / static_cast<double>(messages)
               : 0;
  }
};

HotPathResult run_hot_path(int n, int tokens_per_process, Time horizon) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.t = 0;
  cfg.seed = 7;
  cfg.net.gst = 0.0;  // every send is post-GST, so Metrics takes the
                      // correct-sender per-type branch on each message
  cfg.net.delta = 1.0;
  sim::Simulator simulator(cfg);
  for (ProcessId p = 0; p < n; ++p) {
    simulator.add_process(p, std::make_unique<sim::ComponentHost>(
                                 std::make_unique<StormRoot>(
                                     tokens_per_process)));
  }
  HotPathResult r;
  r.processes = n;
  r.tokens = n * tokens_per_process;
  r.horizon = horizon;
  g_heap_allocs.store(0, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  r.events = simulator.run(horizon);
  r.wall_seconds = seconds_since(start);
  r.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  r.messages = simulator.metrics().messages_total();
  return r;
}

struct SweepThroughput {
  std::string matrix;
  int jobs = 0;
  std::size_t cells = 0;
  std::uint64_t messages = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double cells_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(cells) / wall_seconds : 0;
  }
  [[nodiscard]] double messages_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(messages) / wall_seconds : 0;
  }
  [[nodiscard]] double ns_per_message() const {
    return messages > 0 ? wall_seconds * 1e9 / static_cast<double>(messages)
                        : 0;
  }
};

SweepThroughput run_sweep_throughput(const std::string& matrix_name, int jobs) {
  const ScenarioMatrix matrix = named_matrix(matrix_name);
  SweepThroughput r;
  r.matrix = matrix_name;
  r.jobs = jobs;
  const auto start = std::chrono::steady_clock::now();
  SweepRunner(jobs).run_range(matrix, 0, matrix.size(), [&](SweepOutcome&& o) {
    ++r.cells;
    r.messages += o.result.messages_total;
  });
  r.wall_seconds = seconds_since(start);
  return r;
}

// ---------------------------------------------------------------- QC bench
//
// The headline measurement of the aggregate-certificate backend
// (core/quorum.hpp): the same fault-free workload run under both cert
// modes, normalized per decision. messages_per_decision falls under
// aggregation because a quorum-reaching process broadcasts one certificate
// instead of every process relaying every vote; verifies_per_decision
// falls to about one check per quorum because the aggregate is verified
// once at certification instead of once per incoming vote. The auth stack
// (Quad) is signature-heavy, so it shows the verify win; the nonauth stack
// shows the message win.
struct QcModeResult {
  std::string stack;  // "auth" or "nonauth"
  std::string mode;   // cert_mode_token()
  int jobs = 0;
  std::size_t cells = 0;
  std::uint64_t decisions = 0;
  std::uint64_t messages = 0;
  std::uint64_t verifies = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double messages_per_decision() const {
    return decisions > 0
               ? static_cast<double>(messages) / static_cast<double>(decisions)
               : 0;
  }
  [[nodiscard]] double verifies_per_decision() const {
    return decisions > 0
               ? static_cast<double>(verifies) / static_cast<double>(decisions)
               : 0;
  }
  [[nodiscard]] double ns_per_decision() const {
    return decisions > 0
               ? wall_seconds * 1e9 / static_cast<double>(decisions)
               : 0;
  }
};

QcModeResult run_qc_mode(VcKind vc, const char* stack, core::CertMode mode,
                         int jobs) {
  std::vector<std::uint64_t> seeds(8);
  for (std::size_t s = 0; s < seeds.size(); ++s) seeds[s] = s + 1;
  const ScenarioMatrix matrix = ScenarioMatrix()
                                    .vc_kinds({vc})
                                    .validities({ValidityKind::kStrong})
                                    .faults({FaultSpec{"silent", 0}})
                                    .sizes({{7, 2}})
                                    .cert_modes({mode})
                                    .seeds(seeds);
  QcModeResult r;
  r.stack = stack;
  r.mode = core::cert_mode_token(mode);
  r.jobs = jobs;
  const auto start = std::chrono::steady_clock::now();
  SweepRunner(jobs).run_range(matrix, 0, matrix.size(), [&](SweepOutcome&& o) {
    ++r.cells;
    r.decisions += o.result.decisions.size();
    r.messages += o.result.messages_total;
    r.verifies += o.result.verifies_total;
  });
  r.wall_seconds = seconds_since(start);
  return r;
}

std::vector<QcModeResult> run_qc_section(int jobs) {
  std::vector<QcModeResult> out;
  for (const auto& [vc, stack] :
       {std::pair<VcKind, const char*>{VcKind::kAuthenticated, "auth"},
        std::pair<VcKind, const char*>{VcKind::kNonAuthenticated,
                                       "nonauth"}}) {
    for (const core::CertMode mode :
         {core::CertMode::kPerVote, core::CertMode::kAggregate}) {
      out.push_back(run_qc_mode(vc, stack, mode, jobs));
    }
  }
  return out;
}

// ------------------------------------------------------------ large-n bench
//
// The scaling measurement behind the topology axis: one committee-7 cell
// (auth stack, aggregate certificates, fault-free, unanimous proposals)
// per system size. The committee runs the full stack among 7 processes
// whatever n is; everything past the committee is listener fanout, so
// total traffic grows like O(k^2 + t_c * n) — the fitted log-log exponent
// of messages against n must stay strictly below 2, which is the CI gate.
// The quadratic (ceil(t/2))^2 Dolev-Reischuk curve at the full-mesh
// tolerance t = (n-1)/3 is emitted alongside as the contrast: the floor
// any full-mesh protocol with non-trivial validity must pay, and what the
// committee trades t for.
struct LargeNResult {
  int n = 0;
  int committee_k = 0;
  int t = 0;  // the full-mesh tolerance the Dolev-Reischuk curve assumes
  std::size_t decisions = 0;
  std::uint64_t messages_total = 0;
  std::uint64_t events = 0;
  std::uint64_t dolev_reischuk_bound = 0;  // (ceil(t/2))^2
  double wall_seconds = 0.0;
  /// getrusage peak RSS in KiB after the cell ran — process-wide and
  /// monotone over the sequence, so per-n values are a ceiling, not a
  /// delta; the acceptance gate only needs the n=1000 ceiling.
  long max_rss_kb = 0;

  [[nodiscard]] double messages_per_decision() const {
    return decisions > 0 ? static_cast<double>(messages_total) /
                               static_cast<double>(decisions)
                         : 0;
  }
};

LargeNResult run_large_n_cell(int n) {
  constexpr int kCommittee = 7;
  const int t = (n - 1) / 3;
  const SweepPoint point = ScenarioMatrix()
                               .vc_kinds({VcKind::kAuthenticated})
                               .validities({ValidityKind::kStrong})
                               .patterns({"unanimous"})
                               .faults({FaultSpec{"silent", 0}})
                               .sizes({{n, t}})
                               .topologies({"committee-" +
                                            std::to_string(kCommittee)})
                               .cert_modes({core::CertMode::kAggregate})
                               .seeds({1})
                               .point_at(0);
  LargeNResult r;
  r.n = n;
  r.committee_k = kCommittee;
  r.t = t;
  const std::uint64_t half = (static_cast<std::uint64_t>(t) + 1) / 2;
  r.dolev_reischuk_bound = half * half;
  const auto start = std::chrono::steady_clock::now();
  const SweepOutcome outcome = run_point(point);
  r.wall_seconds = seconds_since(start);
  r.decisions = outcome.result.decisions.size();
  r.messages_total = outcome.result.messages_total;
  r.events = outcome.result.events;
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) r.max_rss_kb = usage.ru_maxrss;
  return r;
}

std::vector<LargeNResult> run_large_n_section() {
  std::vector<LargeNResult> out;
  for (const int n : {10, 50, 100, 500, 1000}) {
    out.push_back(run_large_n_cell(n));
  }
  return out;
}

/// Fitted log-log exponents of the large-n curves (scenario.hpp's
/// loglog_slope): how message totals and per-decision messages actually
/// grow with n. Sub-quadratic total growth is the committee topology's
/// whole point.
struct LargeNSlopes {
  double messages = 0.0;
  double messages_per_decision = 0.0;
};

LargeNSlopes large_n_slopes(const std::vector<LargeNResult>& cells) {
  std::vector<double> xs, total, per_decision;
  for (const LargeNResult& r : cells) {
    xs.push_back(static_cast<double>(r.n));
    total.push_back(static_cast<double>(r.messages_total));
    per_decision.push_back(r.messages_per_decision());
  }
  LargeNSlopes s;
  s.messages = loglog_slope(xs, total);
  s.messages_per_decision = loglog_slope(xs, per_decision);
  return s;
}

// Minimal JSON emitter: every value here is a number or a fixed string, so
// escaping never comes up. Field order is fixed for easy diffing.
std::string json_document(const HotPathResult& hot, const SweepThroughput& sw,
                          const std::vector<QcModeResult>& qc,
                          const std::vector<LargeNResult>& large_n,
                          unsigned hw) {
  std::ostringstream out;
  out.precision(17);
  const char* build_type =
#ifdef NDEBUG
      "release";
#else
      "debug";
#endif
  out << "{\n"
      << "  \"bench\": \"sweep-throughput\",\n"
      << "  \"schema\": \"valcon-bench-v2\",\n"
      << "  \"build_type\": \"" << build_type << "\",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"hot_path\": {\n"
      << "    \"hardware_concurrency\": " << hw << ",\n"
      << "    \"jobs\": 1,\n"
      << "    \"processes\": " << hot.processes << ",\n"
      << "    \"tokens\": " << hot.tokens << ",\n"
      << "    \"horizon\": " << hot.horizon << ",\n"
      << "    \"events\": " << hot.events << ",\n"
      << "    \"messages\": " << hot.messages << ",\n"
      << "    \"wall_seconds\": " << hot.wall_seconds << ",\n"
      << "    \"events_per_second\": " << hot.events_per_second() << ",\n"
      << "    \"messages_per_second\": " << hot.messages_per_second() << ",\n"
      << "    \"ns_per_message\": " << hot.ns_per_message() << ",\n"
      << "    \"heap_allocs\": " << hot.heap_allocs << ",\n"
      << "    \"heap_allocs_per_message\": " << hot.allocs_per_message()
      << "\n"
      << "  },\n"
      << "  \"sweep\": {\n"
      << "    \"matrix\": \"" << sw.matrix << "\",\n"
      << "    \"hardware_concurrency\": " << hw << ",\n"
      << "    \"jobs\": " << sw.jobs << ",\n"
      << "    \"cells\": " << sw.cells << ",\n"
      << "    \"messages\": " << sw.messages << ",\n"
      << "    \"wall_seconds\": " << sw.wall_seconds << ",\n"
      << "    \"cells_per_second\": " << sw.cells_per_second() << ",\n"
      << "    \"messages_per_second\": " << sw.messages_per_second() << ",\n"
      << "    \"ns_per_message\": " << sw.ns_per_message() << "\n"
      << "  },\n"
      << "  \"qc\": [\n";
  for (std::size_t i = 0; i < qc.size(); ++i) {
    const QcModeResult& r = qc[i];
    out << "    {\n"
        << "      \"stack\": \"" << r.stack << "\",\n"
        << "      \"cert_mode\": \"" << r.mode << "\",\n"
        << "      \"hardware_concurrency\": " << hw << ",\n"
        << "      \"jobs\": " << r.jobs << ",\n"
        << "      \"cells\": " << r.cells << ",\n"
        << "      \"decisions\": " << r.decisions << ",\n"
        << "      \"messages\": " << r.messages << ",\n"
        << "      \"verifies\": " << r.verifies << ",\n"
        << "      \"wall_seconds\": " << r.wall_seconds << ",\n"
        << "      \"messages_per_decision\": " << r.messages_per_decision()
        << ",\n"
        << "      \"verifies_per_decision\": " << r.verifies_per_decision()
        << ",\n"
        << "      \"ns_per_decision\": " << r.ns_per_decision() << "\n"
        << "    }" << (i + 1 < qc.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  const LargeNSlopes slopes = large_n_slopes(large_n);
  out << "  \"large_n\": {\n"
      << "    \"topology\": \"committee-" << large_n.front().committee_k
      << "\",\n"
      << "    \"stack\": \"auth\",\n"
      << "    \"cert_mode\": \"aggregate\",\n"
      << "    \"jobs\": 1,\n"
      << "    \"messages_slope\": " << slopes.messages << ",\n"
      << "    \"messages_per_decision_slope\": "
      << slopes.messages_per_decision << ",\n"
      << "    \"cells\": [\n";
  for (std::size_t i = 0; i < large_n.size(); ++i) {
    const LargeNResult& r = large_n[i];
    out << "      {\n"
        << "        \"n\": " << r.n << ",\n"
        << "        \"t\": " << r.t << ",\n"
        << "        \"committee_k\": " << r.committee_k << ",\n"
        << "        \"decisions\": " << r.decisions << ",\n"
        << "        \"messages\": " << r.messages_total << ",\n"
        << "        \"events\": " << r.events << ",\n"
        << "        \"messages_per_decision\": " << r.messages_per_decision()
        << ",\n"
        << "        \"dolev_reischuk_bound\": " << r.dolev_reischuk_bound
        << ",\n"
        << "        \"wall_seconds\": " << r.wall_seconds << ",\n"
        << "        \"max_rss_kb\": " << r.max_rss_kb << "\n"
        << "      }" << (i + 1 < large_n.size() ? "," : "") << "\n";
  }
  out << "    ]\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

int run_json_mode(const std::string& out_path) {
  const unsigned hw = std::thread::hardware_concurrency();
  // Warm-up pass absorbs one-time costs (payload-type interning, freshly
  // mapped pages); of the three measured passes the fastest wins, which
  // filters scheduler noise without gaming the number.
  static_cast<void>(run_hot_path(8, 4, 200.0));
  HotPathResult hot = run_hot_path(8, 4, 8000.0);
  for (int pass = 1; pass < 3; ++pass) {
    const HotPathResult again = run_hot_path(8, 4, 8000.0);
    if (again.wall_seconds < hot.wall_seconds) hot = again;
  }
  const int jobs = hw > 1 ? static_cast<int>(std::min(hw, 8u)) : 1;
  const SweepThroughput sweep = run_sweep_throughput("full", jobs);
  const std::vector<QcModeResult> qc = run_qc_section(jobs);
  // Ascending n so each cell's getrusage peak is attributable to sizes up
  // to and including its own; jobs=1 so RSS is not inflated by pool peers.
  const std::vector<LargeNResult> large_n = run_large_n_section();
  const std::string doc = json_document(hot, sweep, qc, large_n, hw);
  if (out_path.empty()) {
    std::cout << doc;
  } else {
    std::ofstream file(out_path, std::ios::binary | std::ios::trunc);
    if (!file) {
      std::cerr << "bench_sweep: cannot open " << out_path << "\n";
      return 2;
    }
    file << doc;
  }
  return 0;
}

// ----------------------------------------------------- human-readable mode

bool same_results(const std::vector<SweepOutcome>& a,
                  const std::vector<SweepOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const RunResult& x = a[i].result;
    const RunResult& y = b[i].result;
    if (x.decisions != y.decisions || x.decide_times != y.decide_times ||
        x.message_complexity != y.message_complexity ||
        x.word_complexity != y.word_complexity || x.events != y.events ||
        x.last_decision_time != y.last_decision_time ||
        a[i].error != b[i].error) {
      return false;
    }
  }
  return true;
}

// Lazy indexing at scale: decodes a slice of a >= 1e6-cell matrix through
// point_at — no point vector is ever materialized, which is the property
// that makes sharded million-cell sweeps possible at all (memory stays
// O(jobs), not O(matrix)).
void bench_lazy_indexing() {
  std::vector<std::uint64_t> seeds(5000);
  for (std::size_t s = 0; s < seeds.size(); ++s) seeds[s] = s + 1;
  const ScenarioMatrix matrix = named_matrix("full").seeds(seeds);
  const std::size_t total = matrix.size();
  // Stride so the bench touches the whole index space in ~100k decodes.
  const std::size_t stride = total / 100000 + 1;
  std::size_t decoded = 0;
  std::size_t label_bytes = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total; i += stride) {
    label_bytes += matrix.point_at(i).label.size();
    ++decoded;
  }
  const double wall = seconds_since(start);
  std::cout << "lazy indexing: matrix of " << total << " cells, decoded "
            << decoded << " points via point_at in " << fmt(wall, 3)
            << "s (" << fmt(static_cast<double>(decoded) / wall, 0)
            << " decodes/s, " << label_bytes
            << " label bytes, no point vector materialized)\n\n";
}

// The simulator hot path in isolation: the token storm from the --json
// section, printed for humans, with the allocation counter that
// demonstrates the zero-allocation steady state.
void bench_hot_path() {
  static_cast<void>(run_hot_path(8, 4, 200.0));  // warm-up
  const HotPathResult r = run_hot_path(8, 4, 8000.0);
  std::cout << "simulator hot path (token storm, n=" << r.processes
            << ", tokens=" << r.tokens << "): " << r.messages
            << " messages / " << r.events << " events in "
            << fmt(r.wall_seconds, 3) << "s ("
            << fmt(r.messages_per_second() / 1e6, 2) << "M msg/s, "
            << fmt(r.ns_per_message(), 0) << " ns/msg, "
            << fmt(r.allocs_per_message(), 4) << " heap allocs/msg)\n\n";
}

// The "validity" matrix: every validity property x every proposal pattern
// x every network profile. Beyond throughput, this checks the refactor's
// headline at bench scale: zero errors means Λ is defined everywhere —
// including CorrectProposal, which the old hard-coded 3-value assignment
// made unsolvable in every matrix.
bool bench_validity_matrix() {
  const ScenarioMatrix matrix = named_matrix("validity");
  const auto start = std::chrono::steady_clock::now();
  std::size_t cells = 0, errors = 0, cut = 0;
  SweepRunner(4).run_range(matrix, 0, matrix.size(), [&](SweepOutcome&& o) {
    ++cells;
    if (!o.error.empty()) ++errors;
    if (o.error.empty() && !o.result.queue_drained) ++cut;
  });
  const double wall = seconds_since(start);
  std::cout << "validity matrix (jobs=4): " << cells << " scenarios in "
            << fmt(wall, 3) << "s ("
            << fmt(static_cast<double>(cells) / wall, 1) << " scen/s), "
            << errors << " lambda errors, " << cut
            << " runs cut by the grace window\n";
  return errors == 0;
}

// The QC section for humans: the per-decision table plus the direction
// checks the CI smoke run enforces — aggregation must cut messages per
// decision on the nonauth stack (votes stop being relayed all-to-all) and
// verifies per decision on the auth stack (one aggregate check replaces
// the per-vote checks).
bool bench_qc() {
  const std::vector<QcModeResult> qc = run_qc_section(4);
  Table table({"stack", "cert_mode", "cells", "decisions", "msg/decision",
               "verify/decision", "ns/decision"});
  for (const QcModeResult& r : qc) {
    table.add_row({r.stack, r.mode, std::to_string(r.cells),
                   std::to_string(r.decisions),
                   fmt(r.messages_per_decision(), 1),
                   fmt(r.verifies_per_decision(), 1),
                   fmt(r.ns_per_decision(), 0)});
  }
  std::cout << "quorum certificates (jobs=4, n=7, t=2, fault-free):\n";
  table.print();
  bool ok = true;
  // run_qc_section order: auth/per-vote, auth/aggregate, nonauth/per-vote,
  // nonauth/aggregate.
  if (qc[1].verifies_per_decision() >= qc[0].verifies_per_decision()) {
    std::cerr << "FAIL: aggregate did not cut verifies/decision (auth)\n";
    ok = false;
  }
  if (qc[3].messages_per_decision() >= qc[2].messages_per_decision()) {
    std::cerr << "FAIL: aggregate did not cut msg/decision (nonauth)\n";
    ok = false;
  }
  std::cout << "\n";
  return ok;
}

// run_range streaming vs run() on the materialized vector: same outcomes,
// comparable throughput, O(jobs) buffering.
bool bench_run_range(const std::vector<SweepOutcome>& baseline) {
  const ScenarioMatrix matrix = named_matrix("full");
  std::vector<SweepOutcome> streamed;
  streamed.reserve(matrix.size());
  const auto start = std::chrono::steady_clock::now();
  SweepRunner(4).run_range(matrix, 0, matrix.size(), [&](SweepOutcome&& o) {
    streamed.push_back(std::move(o));
  });
  const double wall = seconds_since(start);
  const bool identical = same_results(baseline, streamed);
  std::cout << "run_range streaming (jobs=4): " << streamed.size()
            << " scenarios in " << fmt(wall, 3) << "s ("
            << fmt(static_cast<double>(streamed.size()) / wall, 1)
            << " scen/s), results==run(): " << (identical ? "yes" : "NO")
            << "\n";
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_sweep [--json [--out FILE]]\n";
      return 2;
    }
  }
  if (json) return run_json_mode(out_path);

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "sweep throughput (matrix=full, hardware_concurrency=" << hw
            << ")\n\n";

  bench_hot_path();
  bench_lazy_indexing();

  const std::vector<SweepPoint> points = named_matrix("full").build();

  std::vector<SweepOutcome> baseline;
  Table table({"jobs", "scenarios", "wall(s)", "scen/s", "speedup",
               "results==jobs1"});
  double base_wall = 0.0;
  for (const int jobs : {1, 2, 4, 8}) {
    const SweepRunner runner(jobs);
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SweepOutcome> outcomes = runner.run(points);
    const double wall = seconds_since(start);
    bool identical = true;
    if (jobs == 1) {
      baseline = outcomes;
      base_wall = wall;
    } else {
      identical = same_results(baseline, outcomes);
    }
    table.add_row({std::to_string(jobs), std::to_string(points.size()),
                   fmt(wall, 3),
                   fmt(static_cast<double>(points.size()) / wall, 1),
                   fmt(base_wall / wall), identical ? "yes" : "NO"});
    if (!identical) {
      table.print();
      std::cerr << "FAIL: results changed with jobs=" << jobs << "\n";
      return 1;
    }
  }
  table.print();
  std::cout << "\n";
  if (!bench_run_range(baseline)) {
    std::cerr << "FAIL: run_range results differ from run()\n";
    return 1;
  }
  if (!bench_validity_matrix()) {
    std::cerr << "FAIL: lambda errors in the validity matrix\n";
    return 1;
  }
  std::cout << "\n";
  if (!bench_qc()) return 1;
  return 0;
}
