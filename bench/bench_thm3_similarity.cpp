// E3 — Theorem 3 / Definition 2: the similarity condition and the Λ
// function.
//
// For every named property and small system, checks C_S by enumeration and
// cross-validates the closed-form Λ against the generic ⋂_{c'~c} val(c')
// intersection, reporting agreement rates and enumeration costs (the
// "finite procedure" of Theorem 2 made concrete).
#include <chrono>
#include <cstdio>
#include <vector>

#include "valcon/core/classification.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using namespace valcon::core;

int main() {
  std::printf("==== E3 / Theorem 3: similarity condition C_S and Λ ====\n\n");
  harness::Table table({"property", "n", "t", "|I_{n-t}|", "C_S",
                        "closed-form Λ defined", "Λ sound", "enum ms"});

  const std::vector<Value> domain = {0, 1, 2};
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{4, 1}, {5, 1}}) {
    const StrongValidity strong;
    const WeakValidity weak;
    const CorrectProposalValidity correct;
    const ConvexHullValidity hull;
    const MedianValidity median(n, t);
    for (const ValidityProperty* val :
         {static_cast<const ValidityProperty*>(&strong),
          static_cast<const ValidityProperty*>(&weak),
          static_cast<const ValidityProperty*>(&correct),
          static_cast<const ValidityProperty*>(&hull),
          static_cast<const ValidityProperty*>(&median)}) {
      const auto start = std::chrono::steady_clock::now();
      int configs = 0;
      int lambda_defined = 0;
      int lambda_sound = 0;
      bool cs_holds = true;
      for_each_config(n, domain, n - t, n - t, [&](const InputConfig& c) {
        ++configs;
        const auto generic = generic_lambda(*val, c, t, domain, domain);
        if (!generic.has_value()) cs_holds = false;
        const auto closed = val->closed_form_lambda(c, n, t);
        if (closed.has_value()) {
          ++lambda_defined;
          bool sound = true;
          for_each_similar(c, t, domain, [&](const InputConfig& sim_c) {
            if (!val->admissible(sim_c, *closed)) {
              sound = false;
              return false;
            }
            return true;
          });
          if (sound) ++lambda_sound;
        }
        return true;
      });
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      table.add_row(
          {val->name(), std::to_string(n), std::to_string(t),
           std::to_string(configs), cs_holds ? "holds" : "FAILS",
           std::to_string(lambda_defined) + "/" + std::to_string(configs),
           std::to_string(lambda_sound) + "/" + std::to_string(lambda_defined),
           std::to_string(elapsed)});
    }
  }
  table.print();
  std::printf(
      "\nReading: C_S holds for Strong/Weak/ConvexHull/Median with n > 3t\n"
      "and every closed-form Λ lands in the enumerated intersection\n"
      "(soundness of Universal's decision rule, Lemma 8). Correct-Proposal\n"
      "over |V| = 3 fails C_S at these sizes — unsolvable by Theorem 3 —\n"
      "and accordingly its Λ is undefined on the offending vectors.\n");
  return 0;
}
