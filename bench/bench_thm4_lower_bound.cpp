// E4 — Theorem 4: the extended Dolev-Reischuk bound, measured.
//
// Runs Universal against the E_base adversary (groups A and B; members of
// B behave correctly except they ignore their first ceil(t/2) messages and
// omit sending to B) and reports the number of messages sent by correct
// processes against the paper's (ceil(t/2))^2 threshold. Any algorithm
// solving a non-trivial validity property must exceed the threshold —
// Universal does, with its usual Theta(n^2) margin.
#include <cstdio>
#include <vector>

#include "valcon/harness/table.hpp"
#include "valcon/lb/dolev_reischuk.hpp"

using namespace valcon;

int main() {
  std::printf("==== E4 / Theorem 4: Omega(t^2) message lower bound under "
              "E_base ====\n\n");
  harness::Table table({"n", "t", "ceil(t/2)^2 bound", "measured msgs",
                        "ratio", "> bound", "safe&live"});
  std::vector<double> ts;
  std::vector<double> msgs;
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{
           {4, 1}, {7, 2}, {10, 3}, {13, 4}, {19, 6}, {25, 8}, {31, 10},
           {43, 14}, {64, 21}}) {
    const auto outcome =
        lb::run_ebase_experiment(n, t, harness::VcKind::kAuthenticated, 1);
    table.add_row(
        {std::to_string(n), std::to_string(t), std::to_string(outcome.bound),
         std::to_string(outcome.correct_messages),
         harness::fmt(static_cast<double>(outcome.correct_messages) /
                      static_cast<double>(outcome.bound), 1),
         outcome.bound_respected ? "yes" : "NO",
         (outcome.all_correct_decided && outcome.agreement) ? "yes" : "NO"});
    if (t >= 2) {
      ts.push_back(static_cast<double>(t));
      msgs.push_back(static_cast<double>(outcome.correct_messages));
    }
  }
  table.print();
  std::printf("\nmeasured message scaling vs t: log-log slope = %.2f "
              "(Theorem 4 requires >= 2 asymptotically; Universal is "
              "Theta(n^2) with t = Theta(n))\n",
              harness::loglog_slope(ts, msgs));
  return 0;
}
