// E5 — Theorem 5: Universal with authenticated vector consensus
// (Algorithm 1 + Quad) has O(n^2) message complexity and linear latency.
//
// Series: messages sent by correct processes >= GST vs n, fault-free and
// with t silent faults; log-log slope ~ 2. Latency in delta units stays
// linear (a small constant number of delta here, since view 0 suffices
// fault-free). Ablation: disabling the decide-echo wave removes the n^2
// decide traffic and leaves the O(n)-per-view pattern visible.
#include <cstdio>
#include <vector>

#include "valcon/harness/scenario.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using harness::ScenarioConfig;

namespace {

ScenarioConfig scenario(int n, bool faults, bool echo) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 3;
  cfg.vc = harness::VcKind::kAuthenticated;
  cfg.quad_decide_echo = echo;
  for (int p = 0; p < n; ++p) cfg.proposals.push_back(p % 2);
  if (faults) {
    for (int f = 0; f < cfg.t; ++f) {
      cfg.faults[n - 1 - f] = harness::Fault::silent();
    }
  }
  return cfg;
}

}  // namespace

int main() {
  std::printf("==== E5 / Theorem 5: Universal (authenticated, Algorithm 1) "
              "message complexity ====\n\n");
  const core::StrongValidity validity;
  harness::Table table({"n", "t", "msgs (fault-free)", "msgs (t silent)",
                        "msgs (no decide-echo)", "latency/delta",
                        "agreement"});
  std::vector<double> ns;
  std::vector<double> fault_free;
  std::vector<double> faulty;
  for (const int n : {4, 7, 10, 13, 16, 22, 31, 43, 64}) {
    const int t = (n - 1) / 3;
    const auto lambda = core::make_lambda(validity, n, t);

    const auto run_ff = harness::run_universal(scenario(n, false, true), lambda);
    const auto run_f = harness::run_universal(scenario(n, true, true), lambda);
    const auto run_ne =
        harness::run_universal(scenario(n, false, false), lambda);

    table.add_row({std::to_string(n), std::to_string(t),
                   std::to_string(run_ff.message_complexity),
                   std::to_string(run_f.message_complexity),
                   std::to_string(run_ne.message_complexity),
                   harness::fmt(run_ff.last_decision_time, 1),
                   (run_ff.agreement() && run_f.agreement()) ? "yes" : "NO"});
    ns.push_back(n);
    fault_free.push_back(static_cast<double>(run_ff.message_complexity));
    faulty.push_back(static_cast<double>(run_f.message_complexity));
  }
  table.print();
  std::printf("\nlog-log slope, messages vs n: fault-free = %.2f, "
              "t silent = %.2f (paper: Theta(n^2), slope 2)\n",
              harness::loglog_slope(ns, fault_free),
              harness::loglog_slope(ns, faulty));
  return 0;
}
