// E8 — Section 5.2: one Universal, every solvable validity property.
//
// Runs the same deployment (n = 7, t = 2, mixed proposals, silent faults)
// under each validity property in the zoo, swapping only Λ — the
// demonstration that "any non-trivial consensus variant solvable in partial
// synchrony can be solved using vector consensus" (Section 5.2's design
// message). Reports the decided value, a check that it is admissible for
// the *actual* input configuration, and the run's complexity.
#include <cstdio>
#include <memory>
#include <vector>

#include "valcon/harness/scenario.hpp"
#include "valcon/harness/table.hpp"

using namespace valcon;
using namespace valcon::core;
using harness::ScenarioConfig;

int main() {
  std::printf("==== E8 / Section 5.2: Universal across the validity zoo "
              "====\n\n");
  const int n = 7;
  const int t = 2;
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.vc = harness::VcKind::kAuthenticated;
  cfg.proposals = {4, 1, 3, 1, 0, 2, 1};
  cfg.faults[5] = harness::Fault::silent();
  cfg.faults[6] = harness::Fault::silent();

  InputConfig real(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (cfg.faults.count(p) == 0) {
      real.set(p, cfg.proposals[static_cast<std::size_t>(p)]);
    }
  }
  std::printf("input configuration: %s\n\n", real.to_string().c_str());

  const StrongValidity strong;
  const WeakValidity weak;
  const MedianValidity median(n, t);
  const IntervalValidity interval(3, 2);  // k in [t+1, n-2t] = [3, 3]
  const ConvexHullValidity hull;
  const ConstantValidity constant(9);
  harness::Table table({"validity property", "decision", "admissible",
                        "agreement", "msgs >= GST", "latency/delta"});
  for (const ValidityProperty* val :
       {static_cast<const ValidityProperty*>(&strong),
        static_cast<const ValidityProperty*>(&weak),
        static_cast<const ValidityProperty*>(&median),
        static_cast<const ValidityProperty*>(&interval),
        static_cast<const ValidityProperty*>(&hull),
        static_cast<const ValidityProperty*>(&constant)}) {
    const auto lambda = make_lambda(*val, n, t);
    const auto result = harness::run_universal(cfg, lambda);
    const auto decision = result.common_decision();
    table.add_row(
        {val->name(),
         decision.has_value() ? std::to_string(*decision) : "-",
         decision.has_value() && val->admissible(real, *decision) ? "yes"
                                                                  : "NO",
         result.agreement() ? "yes" : "NO",
         std::to_string(result.message_complexity),
         harness::fmt(result.last_decision_time, 1)});
  }
  table.print();
  std::printf(
      "\nReading: the protocol stack (vector consensus) is identical in\n"
      "every row; only the Λ post-processing differs. Each decision is\n"
      "admissible under its property for the true input configuration —\n"
      "Lemma 8's argument, observed.\n");
  return 0;
}
