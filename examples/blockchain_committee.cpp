// Committee-based blockchain ordering — the Appendix C motivation.
//
// Clients sign transactions; servers (the consensus committee) must agree
// on which batch to commit next. The paper's Appendix C sketches an
// extended formalism for such External Validity settings; the executable
// takeaway it *does* establish (Section 5.2) is that vector consensus is a
// universal substrate: the committee agrees on a vector of n-t proposed
// batches and applies a deterministic, externally-validated selection rule
// to it.
//
// Here each server proposes the digest-id of the client batch it saw
// first; the selection rule picks the smallest id in the decided vector
// that passes the external predicate ("batch is well-signed" — simulated
// as parity of the id). A Byzantine server pushing an invalid batch id
// cannot get it committed: either its entry is filtered by the predicate,
// or it never enters the vector at all.
#include <cstdio>
#include <memory>

#include "valcon/consensus/auth_vector_consensus.hpp"
#include "valcon/sim/adversary.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;

namespace {

/// External predicate: batch ids from honest clients are even (stands in
/// for "carries valid client signatures / no double spend").
bool externally_valid(Value batch_id) { return batch_id % 2 == 0; }

/// Deterministic selection from the agreed vector: smallest valid batch.
std::optional<Value> select_batch(const core::InputConfig& vec) {
  std::optional<Value> best;
  for (const Value v : vec.sorted_proposals()) {
    if (externally_valid(v)) {
      best = v;
      break;
    }
  }
  return best;
}

}  // namespace

int main() {
  const int n = 7;
  const int t = 2;

  sim::SimConfig sim_cfg;
  sim_cfg.n = n;
  sim_cfg.t = t;
  sim_cfg.seed = 2026;
  sim::Simulator simulator(sim_cfg);

  // Batches observed by each server (id = client batch digest). P2 is a
  // Byzantine server proposing an invalid (odd) batch id; P6 is down.
  const std::vector<Value> observed = {104, 100, 4242 * 2 + 1, 102,
                                       100, 104, 0};
  std::map<ProcessId, std::optional<Value>> committed;

  for (ProcessId p = 0; p < n; ++p) {
    if (p == 6) {
      simulator.mark_faulty(p);
      simulator.add_process(p, std::make_unique<sim::SilentProcess>());
      continue;
    }
    if (p == 2) simulator.mark_faulty(p);  // proposes an invalid batch
    auto vc = std::make_unique<consensus::AuthVectorConsensus>();
    vc->set_input(observed[static_cast<std::size_t>(p)]);
    vc->set_on_decide(
        [&committed, p](sim::Context&, const core::InputConfig& vec) {
          committed[p] = select_batch(vec);
        });
    simulator.add_process(
        p, std::make_unique<sim::ComponentHost>(std::move(vc)));
  }

  simulator.run(1e6);

  std::printf("server proposals  : ");
  for (ProcessId p = 0; p < n; ++p) {
    std::printf("P%d=%lld%s ", p, static_cast<long long>(observed[static_cast<std::size_t>(p)]),
                p == 2 ? "(byz)" : (p == 6 ? "(down)" : ""));
  }
  std::printf("\n");

  std::optional<Value> agreed;
  bool agreement = true;
  for (const auto& [pid, batch] : committed) {
    if (pid == 2 || pid == 6) continue;
    if (agreed.has_value() && agreed != batch) agreement = false;
    agreed = batch.value_or(-1);
  }
  if (!agreed.has_value()) {
    std::printf("committee failed to commit a batch\n");
    return 1;
  }
  std::printf("committed batch   : %lld\n", static_cast<long long>(*agreed));
  std::printf("externally valid  : %s\n",
              externally_valid(*agreed) ? "yes" : "NO");
  std::printf("committee agrees  : %s\n", agreement ? "yes" : "NO");
  std::printf(
      "note: the Byzantine server's invalid batch (odd id) cannot be\n"
      "committed — the selection rule runs on an agreed vector, so every\n"
      "honest server filters it identically (vector consensus as the\n"
      "universal substrate, Section 5.2).\n");
  return (agreement && externally_valid(*agreed)) ? 0 : 1;
}
