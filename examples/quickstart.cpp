// Quickstart: solve Byzantine consensus with the validity property of your
// choice, in ~30 lines of user code.
//
// We deploy n = 4 processes (t = 1 may be Byzantine; here one is silent),
// each proposing a value, running Universal (Algorithm 2 of "On the
// Validity of Consensus", PODC'23) over the authenticated vector consensus
// (Algorithm 1). Strong Validity supplies the Λ function.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "valcon/harness/scenario.hpp"

int main() {
  using namespace valcon;

  // 1. Describe the deployment.
  harness::ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.vc = harness::VcKind::kAuthenticated;  // Algorithm 1: O(n^2) messages
  cfg.proposals = {7, 7, 7, 7};              // everyone proposes 7
  cfg.faults[3] = harness::Fault::silent();  // P3 is Byzantine

  // 2. Pick a validity property and derive its Λ function (Definition 2).
  const core::StrongValidity validity;
  const core::LambdaFn lambda = core::make_lambda(validity, cfg.n, cfg.t);

  // 3. Run to quiescence and inspect the outcome.
  const harness::RunResult result = harness::run_universal(cfg, lambda);

  std::printf("validity property : %s\n", validity.name().c_str());
  for (const auto& [pid, value] : result.decisions) {
    std::printf("P%d decided %lld at simulated time %.2f\n", pid,
                static_cast<long long>(value), result.decide_times.at(pid));
  }
  std::printf("agreement         : %s\n", result.agreement() ? "yes" : "NO");
  std::printf("message complexity: %llu messages sent by correct processes "
              "after GST\n",
              static_cast<unsigned long long>(result.message_complexity));

  // With unanimous correct proposals, Strong Validity pins the decision.
  return result.common_decision() == std::optional<Value>(7) ? 0 : 1;
}
