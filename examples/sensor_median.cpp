// Replicated sensor agreement under Median/Interval Validity.
//
// Scenario (the classic motivation for order-statistic validities, cf.
// Stolz-Wattenhofer [89] and Melnyk-Wattenhofer [71] in the paper's §2):
// seven temperature sensors must agree on a single reading to act on.
// Two sensors are compromised. Plain Strong Validity gives nothing here
// (readings differ), and averaging is poisoned by outliers — but Median
// Validity guarantees the decision lies within t order statistics of the
// true median of the *honest* readings, whatever the adversary does.
//
// The run uses Universal with Λ = k-th smallest of the decided vector;
// compromised sensors report absurd readings and remain unable to drag
// the decision outside the honest interval.
#include <cstdio>

#include "valcon/harness/scenario.hpp"

int main() {
  using namespace valcon;

  const int n = 7;
  const int t = 2;

  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.vc = harness::VcKind::kAuthenticated;
  // Honest readings cluster around 21-23 degrees; the two compromised
  // sensors (P5, P6) report garbage. (Byzantine-but-participating behavior
  // is modeled by their absurd proposals; they follow the protocol, which
  // is the worst case for *validity* — protocol deviations are covered by
  // the Byzantine tests and can only reduce their influence.)
  cfg.proposals = {22, 21, 23, 22, 21, 999, -40};
  // Mark them faulty so the validity check below uses honest readings only.
  const core::InputConfig honest = core::InputConfig::of(
      n, {{0, 22}, {1, 21}, {2, 23}, {3, 22}, {4, 21}});

  const core::MedianValidity validity(n, t);
  const core::LambdaFn lambda = core::make_lambda(validity, n, t);
  const harness::RunResult result = harness::run_universal(cfg, lambda);

  std::printf("honest readings   : 22 21 23 22 21  (median 22)\n");
  std::printf("compromised       : P5 -> 999, P6 -> -40\n");
  const auto decision = result.common_decision();
  if (!decision.has_value()) {
    std::printf("no common decision reached!\n");
    return 1;
  }
  std::printf("agreed reading    : %lld\n", static_cast<long long>(*decision));
  std::printf("within honest interval [21, 23]: %s\n",
              (*decision >= 21 && *decision <= 23) ? "yes" : "NO");
  std::printf("admissible under Median Validity (vs honest config): %s\n",
              validity.admissible(honest, *decision) ? "yes" : "NO");
  std::printf("message complexity: %llu\n",
              static_cast<unsigned long long>(result.message_complexity));
  return (*decision >= 21 && *decision <= 23) ? 0 : 1;
}
