// Validity explorer: classify a validity property for a system (n, t).
//
// An interactive tour of the paper's characterization (Theorems 1-5):
// given a property from the zoo and system parameters, reports whether it
// is trivial, whether the similarity condition C_S holds (with a concrete
// counterexample configuration when it fails), and hence whether any
// consensus algorithm at all can solve it — plus a live confirmation run
// of Universal when it is solvable.
//
//   $ ./examples/validity_explorer strong 4 1
//   $ ./examples/validity_explorer correct-proposal 4 1 3   # |V| = 3
//   $ ./examples/validity_explorer hull 6 2
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "valcon/core/classification.hpp"
#include "valcon/harness/scenario.hpp"

using namespace valcon;
using namespace valcon::core;

namespace {

std::unique_ptr<ValidityProperty> make_property(const std::string& name,
                                                int n, int t) {
  if (name == "strong") return std::make_unique<StrongValidity>();
  if (name == "weak") return std::make_unique<WeakValidity>();
  if (name == "correct-proposal") {
    return std::make_unique<CorrectProposalValidity>();
  }
  if (name == "hull") return std::make_unique<ConvexHullValidity>();
  if (name == "median") return std::make_unique<MedianValidity>(n, t);
  if (name == "constant") return std::make_unique<ConstantValidity>(0);
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "strong";
  int n = 4;
  int t = 1;
  int domain_size = 2;
  if (argc >= 2) name = argv[1];
  if (argc >= 4) {
    n = std::atoi(argv[2]);
    t = std::atoi(argv[3]);
  }
  if (argc >= 5) domain_size = std::atoi(argv[4]);
  if (n < 2 || n > 8 || t < 1 || t >= n || domain_size < 2 ||
      domain_size > 4) {
    std::printf("usage: %s [strong|weak|correct-proposal|hull|median|"
                "constant] [n<=8] [t] [|V|<=4]\n",
                argv[0]);
    return 2;
  }
  const auto property = make_property(name, n, t);
  if (!property) {
    std::printf("unknown property '%s'\n", name.c_str());
    return 2;
  }
  std::vector<Value> domain;
  for (int v = 0; v < domain_size; ++v) domain.push_back(v);

  std::printf("property : %s\n", property->name().c_str());
  std::printf("system   : n = %d, t = %d, |V| = %d  (n %s 3t)\n", n, t,
              domain_size, n > 3 * t ? ">" : "<=");

  const Classification result = classify(*property, n, t, domain, domain);
  std::printf("classify : %s\n", result.summary().c_str());
  std::printf("theorem  : %s\n",
              n <= 3 * t
                  ? "n <= 3t, so solvable <=> trivial (Theorems 1 & 2)"
                  : "n > 3t, so solvable <=> C_S (Theorems 3 & 5)");

  if (!result.solvable) {
    std::printf("verdict  : no consensus algorithm whatsoever solves this "
                "property at (n, t).\n");
    return 0;
  }

  // Live confirmation: run Universal with this property's Λ.
  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = t;
  for (int p = 0; p < n; ++p) {
    cfg.proposals.push_back(p % domain_size);
  }
  const auto lambda = make_lambda(*property, n, t, domain, domain);
  const auto run = harness::run_universal(cfg, lambda);
  const auto decision = run.common_decision();
  std::printf("verdict  : solvable — Universal decided %s (agreement %s, "
              "%llu msgs)\n",
              decision.has_value() ? std::to_string(*decision).c_str() : "-",
              run.agreement() ? "yes" : "NO",
              static_cast<unsigned long long>(run.message_complexity));
  return 0;
}
