#include "valcon/bcast/brb.hpp"

#include "valcon/core/thresholds.hpp"

namespace valcon::bcast {

namespace {

crypto::Hash content_digest(const ReliableBroadcast::Content& content) {
  crypto::Hasher h("valcon/brb-content");
  h.add_bytes(content);
  return h.finish();
}

}  // namespace

void ReliableBroadcast::broadcast(sim::Context& ctx, Content content) {
  ctx.broadcast(sim::make_payload<Msg>(Msg::Kind::kSend, std::move(content),
                                       content_words_));
}

void ReliableBroadcast::on_message(sim::Context& ctx, ProcessId from,
                                   const sim::PayloadPtr& m) {
  const auto* msg = dynamic_cast<const Msg*>(m.get());
  if (msg == nullptr) return;
  const crypto::Hash digest = content_digest(msg->content);

  switch (msg->kind) {
    case Msg::Kind::kSend:
      if (from != sender_ || echoed_) return;
      echoed_ = true;
      contents_.emplace(digest, msg->content);
      ctx.broadcast(sim::make_payload<Msg>(Msg::Kind::kEcho, msg->content,
                                           content_words_));
      break;
    case Msg::Kind::kEcho:
      contents_.emplace(digest, msg->content);
      echoes_[digest].insert(from);
      break;
    case Msg::Kind::kReady:
      contents_.emplace(digest, msg->content);
      readies_[digest].insert(from);
      break;
  }
  maybe_progress(ctx);
}

void ReliableBroadcast::maybe_progress(sim::Context& ctx) {
  const int n = ctx.n();
  const int t = ctx.t();
  const int echo_threshold = core::brb_echo_quorum(n, t);

  if (!readied_) {
    for (const auto& [digest, senders] : echoes_) {
      const bool enough_echoes =
          static_cast<int>(senders.size()) >= echo_threshold;
      const auto ready_it = readies_.find(digest);
      const bool enough_readies =
          ready_it != readies_.end() &&
          static_cast<int>(ready_it->second.size()) >= core::plurality(t);
      if (enough_echoes || enough_readies) {
        readied_ = true;
        ctx.broadcast(sim::make_payload<Msg>(
            Msg::Kind::kReady, contents_.at(digest), content_words_));
        break;
      }
    }
    // Amplification from READYs alone (t+1 rule) when no ECHO was seen.
    if (!readied_) {
      for (const auto& [digest, senders] : readies_) {
        if (static_cast<int>(senders.size()) >= core::plurality(t)) {
          readied_ = true;
          ctx.broadcast(sim::make_payload<Msg>(
              Msg::Kind::kReady, contents_.at(digest), content_words_));
          break;
        }
      }
    }
  }

  if (!delivered_) {
    for (const auto& [digest, senders] : readies_) {
      if (static_cast<int>(senders.size()) >= core::byz_quorum(n, t)) {
        delivered_ = true;
        if (on_deliver_) on_deliver_(ctx, contents_.at(digest));
        break;
      }
    }
  }
}

}  // namespace valcon::bcast
