#include "valcon/bcast/brb.hpp"

#include "valcon/core/thresholds.hpp"

namespace valcon::bcast {

namespace {

crypto::Hash content_digest(const ReliableBroadcast::Content& content) {
  crypto::Hasher h("valcon/brb-content");
  h.add_bytes(content);
  return h.finish();
}

// Domain for the aggregate-mode echo votes. Binding the designated sender
// in keeps a certificate from one BRB instance from being replayed into
// another instance that happens to carry the same content.
crypto::Hash echo_vote_digest(ProcessId sender, const crypto::Hash& content) {
  return crypto::Hasher("valcon/brb-echo-sig").add(sender).add(content).finish();
}

}  // namespace

void ReliableBroadcast::broadcast(sim::Context& ctx, Content content) {
  ctx.broadcast(sim::make_payload<Msg>(Msg::Kind::kSend, std::move(content),
                                       content_words_));
}

void ReliableBroadcast::on_message(sim::Context& ctx, ProcessId from,
                                   const sim::PayloadPtr& m) {
  if (const auto* echo_sig = dynamic_cast<const MEchoSig*>(m.get())) {
    // Echo-votes are only meaningful at the designated sender in aggregate
    // mode. Votes racing ahead of the sender's own SEND self-delivery are
    // tallied speculatively (the collector keys by digest, so a vote for
    // the wrong digest can never certify) instead of dropped — a hostile
    // delay profile must not be able to strand an echo quorum.
    if (cert_mode_ != core::CertMode::kAggregate) return;
    if (ctx.id() != sender_ || cert_broadcast_) return;
    const crypto::Signature& sig = echo_sig->sig;
    if (sig.signer != from) return;
    echo_votes_.add(sig);
    if (sent_recorded_) maybe_certify(ctx);
    return;
  }
  if (const auto* qc =
          dynamic_cast<const core::QuorumCertificatePayload*>(m.get())) {
    if (cert_mode_ == core::CertMode::kAggregate) on_echo_cert(ctx, *qc);
    return;
  }
  const auto* msg = dynamic_cast<const Msg*>(m.get());
  if (msg == nullptr) return;
  const crypto::Hash digest = content_digest(msg->content);

  switch (msg->kind) {
    case Msg::Kind::kSend:
      if (from != sender_ || echoed_) return;
      echoed_ = true;
      contents_.emplace(digest, msg->content);
      if (cert_mode_ == core::CertMode::kAggregate) {
        // Batched votes: one signed echo to the sender instead of an
        // all-to-all ECHO broadcast. The sender contributes its own vote
        // to the tally directly.
        const crypto::Signature sig =
            ctx.signer().sign(echo_vote_digest(sender_, digest));
        if (ctx.id() == sender_) {
          sent_recorded_ = true;
          echo_sig_digest_ = sig.digest;
          sent_content_ = msg->content;
          echo_votes_.add(sig);
          maybe_certify(ctx);
        } else {
          ctx.send(sender_, sim::make_payload<MEchoSig>(sig));
        }
        return;
      }
      ctx.broadcast(sim::make_payload<Msg>(Msg::Kind::kEcho, msg->content,
                                           content_words_));
      break;
    case Msg::Kind::kEcho:
      if (cert_mode_ == core::CertMode::kAggregate) return;
      contents_.emplace(digest, msg->content);
      echoes_[digest].insert(from);
      break;
    case Msg::Kind::kReady:
      contents_.emplace(digest, msg->content);
      readies_[digest].insert(from);
      break;
  }
  maybe_progress(ctx);
}

void ReliableBroadcast::maybe_certify(sim::Context& ctx) {
  if (cert_broadcast_) return;
  const int threshold = core::brb_echo_quorum(ctx.n(), ctx.t());
  if (echo_votes_.count(echo_sig_digest_) < threshold) return;
  auto cert = core::certify_verified(echo_votes_, ctx.keys(),
                                     echo_sig_digest_, ctx.n(), threshold);
  if (!cert) return;
  cert_broadcast_ = true;
  const auto [margin, conflicting] = echo_votes_.rivalry(echo_sig_digest_);
  ctx.note_quorum(margin, conflicting);
  ctx.broadcast(sim::make_payload<core::QuorumCertificatePayload>(
      kTagEchoCert, static_cast<std::int64_t>(sender_), std::int64_t{0},
      std::move(cert->voters), cert->agg, sent_content_));
}

void ReliableBroadcast::on_echo_cert(sim::Context& ctx,
                                     const core::QuorumCertificatePayload& qc) {
  if (qc.tag != kTagEchoCert) return;
  // Recompute the vote digest from the carried content: a certificate is
  // only as good as the digest the receiver derives itself.
  const crypto::Hash digest = content_digest(qc.body);
  if (qc.agg.digest != echo_vote_digest(sender_, digest)) return;
  if (qc.voters.count() < core::brb_echo_quorum(ctx.n(), ctx.t())) return;
  if (!ctx.keys().verify_aggregate(qc.voters, qc.agg)) return;
  contents_.emplace(digest, qc.body);
  std::set<ProcessId>& echo_set = echoes_[digest];
  for (ProcessId p = 0; p < ctx.n(); ++p) {
    if (qc.voters.test(p)) echo_set.insert(p);
  }
  maybe_progress(ctx);
}

void ReliableBroadcast::maybe_progress(sim::Context& ctx) {
  const int n = ctx.n();
  const int t = ctx.t();
  const int echo_threshold = core::brb_echo_quorum(n, t);

  if (!readied_) {
    for (const auto& [digest, senders] : echoes_) {
      const bool enough_echoes =
          static_cast<int>(senders.size()) >= echo_threshold;
      const auto ready_it = readies_.find(digest);
      const bool enough_readies =
          ready_it != readies_.end() &&
          static_cast<int>(ready_it->second.size()) >= core::plurality(t);
      if (enough_echoes || enough_readies) {
        readied_ = true;
        ctx.broadcast(sim::make_payload<Msg>(
            Msg::Kind::kReady, contents_.at(digest), content_words_));
        break;
      }
    }
    // Amplification from READYs alone (t+1 rule) when no ECHO was seen.
    if (!readied_) {
      for (const auto& [digest, senders] : readies_) {
        if (static_cast<int>(senders.size()) >= core::plurality(t)) {
          readied_ = true;
          ctx.broadcast(sim::make_payload<Msg>(
              Msg::Kind::kReady, contents_.at(digest), content_words_));
          break;
        }
      }
    }
  }

  if (!delivered_) {
    for (const auto& [digest, senders] : readies_) {
      if (static_cast<int>(senders.size()) >= core::byz_quorum(n, t)) {
        delivered_ = true;
        if (on_deliver_) on_deliver_(ctx, contents_.at(digest));
        break;
      }
    }
  }
}

}  // namespace valcon::bcast
