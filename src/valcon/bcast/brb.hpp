// Byzantine Reliable Broadcast — Bracha's non-authenticated algorithm
// [20, 23], used by the non-authenticated vector consensus (Appendix B.2).
//
// One instance per designated sender. Requires n > 3t. Guarantees Validity,
// Consistency, Integrity and Totality as listed in Appendix B.2:
//
//   SEND(m)   : sender -> all
//   ECHO(m)   : on first SEND from the sender            -> all
//   READY(m)  : on ceil((n+t+1)/2) ECHOs or t+1 READYs   -> all
//   deliver(m): on 2t+1 READYs
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "valcon/crypto/hash.hpp"
#include "valcon/sim/component.hpp"

namespace valcon::bcast {

class ReliableBroadcast final : public sim::Component {
 public:
  using Content = std::vector<std::uint8_t>;
  /// deliver(m): fires at most once per instance.
  using DeliverCb = std::function<void(sim::Context&, const Content&)>;

  ReliableBroadcast(ProcessId sender, DeliverCb on_deliver,
                    std::size_t content_words = 1)
      : sender_(sender),
        on_deliver_(std::move(on_deliver)),
        content_words_(content_words) {}

  /// Invoked by the designated sender to broadcast `content`.
  void broadcast(sim::Context& ctx, Content content);

  void on_message(sim::Context& ctx, ProcessId from,
                  const sim::PayloadPtr& m) override;

  [[nodiscard]] bool delivered() const { return delivered_; }

 private:
  // One class interns three metric names (brb/send, brb/echo, brb/ready)
  // switched on `kind`; VALCON_PAYLOAD_TYPE can only declare a single name.
  // valcon-lint: allow(payload-type) -- multi-name payload, interns per kind
  struct Msg final : sim::Payload {
    enum class Kind { kSend, kEcho, kReady };
    Msg(Kind kind_in, Content content_in, std::size_t words)
        : kind(kind_in), content(std::move(content_in)), words_(words) {}
    [[nodiscard]] const char* type_name() const override {
      switch (kind) {
        case Kind::kSend: return "brb/send";
        case Kind::kEcho: return "brb/echo";
        case Kind::kReady: return "brb/ready";
      }
      return "brb";
    }
    [[nodiscard]] sim::PayloadTypeId type_id() const override {
      static const sim::PayloadTypeId ids[3] = {
          sim::PayloadTypeRegistry::intern("brb/send"),
          sim::PayloadTypeRegistry::intern("brb/echo"),
          sim::PayloadTypeRegistry::intern("brb/ready")};
      return ids[static_cast<std::size_t>(kind)];
    }
    [[nodiscard]] std::size_t size_words() const override { return words_; }
    Kind kind;
    Content content;
    std::size_t words_;
  };

  void maybe_progress(sim::Context& ctx);

  ProcessId sender_;
  DeliverCb on_deliver_;
  std::size_t content_words_;

  bool echoed_ = false;
  bool readied_ = false;
  bool delivered_ = false;
  // Sender sets per content digest (Byzantine senders can equivocate).
  std::map<crypto::Hash, std::set<ProcessId>> echoes_;
  std::map<crypto::Hash, std::set<ProcessId>> readies_;
  std::map<crypto::Hash, Content> contents_;
};

}  // namespace valcon::bcast
