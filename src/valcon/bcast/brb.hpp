// Byzantine Reliable Broadcast — Bracha's non-authenticated algorithm
// [20, 23], used by the non-authenticated vector consensus (Appendix B.2).
//
// One instance per designated sender. Requires n > 3t. Guarantees Validity,
// Consistency, Integrity and Totality as listed in Appendix B.2:
//
//   SEND(m)   : sender -> all
//   ECHO(m)   : on first SEND from the sender            -> all
//   READY(m)  : on ceil((n+t+1)/2) ECHOs or t+1 READYs   -> all
//   deliver(m): on 2t+1 READYs
//
// CertMode::kAggregate replaces the all-to-all ECHO round with batched
// votes (core/quorum.hpp): each receiver sends one signed echo-vote to the
// designated sender, who certifies the echo quorum and broadcasts one
// QuorumCertificatePayload carrying the content — O(n^2) echo traffic
// becomes O(n). The READY round and the t+1 amplification rule are
// unchanged, so delivery still needs 2t+1 readies. The trade is liveness
// under a faulty sender: the one certificate broadcast is a single point
// of failure, so a sender that crashes after SEND — or whose QC is garbled
// in flight — leaves the echo votes uncertified and nobody delivers,
// whereas per-vote Bracha's redundant all-to-all ECHO round can still
// complete. Equivalent to the silent-sender outcome; the committed
// cert_mode=aggregate corpus cell (tests/corpus/) pins this down in the
// unsound regime, where the stall flips the termination verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "valcon/core/quorum.hpp"
#include "valcon/crypto/hash.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/component.hpp"

namespace valcon::bcast {

class ReliableBroadcast final : public sim::Component {
 public:
  using Content = std::vector<std::uint8_t>;
  /// deliver(m): fires at most once per instance.
  using DeliverCb = std::function<void(sim::Context&, const Content&)>;

  ReliableBroadcast(ProcessId sender, DeliverCb on_deliver,
                    std::size_t content_words = 1,
                    core::CertMode cert_mode = core::CertMode::kPerVote)
      : sender_(sender),
        on_deliver_(std::move(on_deliver)),
        content_words_(content_words),
        cert_mode_(cert_mode) {}

  /// Invoked by the designated sender to broadcast `content`.
  void broadcast(sim::Context& ctx, Content content);

  void on_message(sim::Context& ctx, ProcessId from,
                  const sim::PayloadPtr& m) override;

  [[nodiscard]] bool delivered() const { return delivered_; }

 private:
  // One class interns three metric names (brb/send, brb/echo, brb/ready)
  // switched on `kind`; VALCON_PAYLOAD_TYPE can only declare a single name.
  // valcon-lint: allow(payload-type) -- multi-name payload, interns per kind
  struct Msg final : sim::Payload {
    enum class Kind { kSend, kEcho, kReady };
    Msg(Kind kind_in, Content content_in, std::size_t words)
        : kind(kind_in), content(std::move(content_in)), words_(words) {}
    [[nodiscard]] const char* type_name() const override {
      switch (kind) {
        case Kind::kSend: return "brb/send";
        case Kind::kEcho: return "brb/echo";
        case Kind::kReady: return "brb/ready";
      }
      return "brb";
    }
    [[nodiscard]] sim::PayloadTypeId type_id() const override {
      static const sim::PayloadTypeId ids[3] = {
          sim::PayloadTypeRegistry::intern("brb/send"),
          sim::PayloadTypeRegistry::intern("brb/echo"),
          sim::PayloadTypeRegistry::intern("brb/ready")};
      return ids[static_cast<std::size_t>(kind)];
    }
    [[nodiscard]] std::size_t size_words() const override { return words_; }
    Kind kind;
    Content content;
    std::size_t words_;
  };

  /// One signed echo-vote, sent point-to-point to the designated sender in
  /// aggregate mode instead of the all-to-all ECHO broadcast.
  struct MEchoSig final : sim::Payload {
    explicit MEchoSig(crypto::Signature sig_in) : sig(sig_in) {}
    VALCON_PAYLOAD_TYPE("brb/echo-sig")
    [[nodiscard]] std::size_t size_words() const override { return 1; }
    crypto::Signature sig;
  };

  /// Tag for the echo-quorum certificate this instance broadcasts.
  static constexpr std::uint32_t kTagEchoCert = 1;

  void maybe_progress(sim::Context& ctx);
  void maybe_certify(sim::Context& ctx);
  void on_echo_cert(sim::Context& ctx,
                    const core::QuorumCertificatePayload& qc);

  ProcessId sender_;
  DeliverCb on_deliver_;
  std::size_t content_words_;
  core::CertMode cert_mode_;

  // Aggregate-mode state, live only at the designated sender: the digest
  // its echo-votes must sign, the content to embed in the certificate, and
  // the running tally.
  bool sent_recorded_ = false;
  bool cert_broadcast_ = false;
  crypto::Hash echo_sig_digest_;
  Content sent_content_;
  core::QuorumCollector echo_votes_;

  bool echoed_ = false;
  bool readied_ = false;
  bool delivered_ = false;
  // Sender sets per content digest (Byzantine senders can equivocate).
  std::map<crypto::Hash, std::set<ProcessId>> echoes_;
  std::map<crypto::Hash, std::set<ProcessId>> readies_;
  std::map<crypto::Hash, Content> contents_;
};

}  // namespace valcon::bcast
