#include "valcon/bcast/slow_broadcast.hpp"

namespace valcon::bcast {

void SlowBroadcast::broadcast(sim::Context& ctx, Content content) {
  if (broadcasting_) return;
  broadcasting_ = true;
  content_ = std::move(content);
  next_recipient_ = 0;
  send_next(ctx);
}

void SlowBroadcast::send_next(sim::Context& ctx) {
  if (stopped_ || next_recipient_ >= ctx.n()) return;
  ctx.send(next_recipient_, sim::make_payload<Msg>(content_));
  ++next_recipient_;
  if (next_recipient_ < ctx.n()) {
    // wait delta * n^i before the next send (Algorithm 4, line 4).
    const double wait =
        ctx.delta() * std::pow(static_cast<double>(ctx.n()),
                               static_cast<double>(ctx.id()));
    ctx.set_timer(wait, /*tag=*/1);
  }
}

void SlowBroadcast::on_message(sim::Context& ctx, ProcessId from,
                               const sim::PayloadPtr& m) {
  if (stopped_) return;
  const auto* msg = dynamic_cast<const Msg*>(m.get());
  if (msg == nullptr) return;
  if (on_deliver_) on_deliver_(ctx, msg->content, from);
}

void SlowBroadcast::on_timer(sim::Context& ctx, std::uint64_t tag) {
  if (tag != 1) return;
  send_next(ctx);
}

}  // namespace valcon::bcast
