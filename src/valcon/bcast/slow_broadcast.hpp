// Slow broadcast (Algorithm 4, Appendix B.3).
//
// Process P_i disseminates its vector one recipient at a time, waiting
// delta * n^i between sends (0-based i; the paper's P_1 waits delta). The
// staggered pacing is what caps the post-GST word count of vector
// dissemination at O(n^2) — at most one correct process can be in the middle
// of an expensive broadcast at a time — at the price of exponential
// worst-case latency (the paper calls the resulting protocol "highly
// impractical"; bench E7 measures exactly that trade).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "valcon/sim/component.hpp"

namespace valcon::bcast {

class SlowBroadcast final : public sim::Component {
 public:
  using Content = std::vector<std::uint8_t>;
  /// deliver(vec', P_j): fires for every received slow_broadcast message.
  using DeliverCb =
      std::function<void(sim::Context&, const Content&, ProcessId)>;

  explicit SlowBroadcast(DeliverCb on_deliver)
      : on_deliver_(std::move(on_deliver)) {}

  /// Starts the paced dissemination of `content`. Word accounting derives
  /// from the content size (8 bytes per word).
  void broadcast(sim::Context& ctx, Content content);

  /// "stop participating": halts any in-progress dissemination.
  void stop() { stopped_ = true; }

  void on_message(sim::Context& ctx, ProcessId from,
                  const sim::PayloadPtr& m) override;
  void on_timer(sim::Context& ctx, std::uint64_t tag) override;

 private:
  struct Msg final : sim::Payload {
    explicit Msg(Content content_in) : content(std::move(content_in)) {}
    VALCON_PAYLOAD_TYPE("slow/broadcast")
    [[nodiscard]] std::size_t size_words() const override {
      return content.size() / 8 + 1;
    }
    Content content;
  };

  void send_next(sim::Context& ctx);

  DeliverCb on_deliver_;
  Content content_;
  bool broadcasting_ = false;
  bool stopped_ = false;
  ProcessId next_recipient_ = 0;
};

}  // namespace valcon::bcast
