// Basic shared aliases for the valcon library.
//
// valcon reproduces "On the Validity of Consensus" (Civit et al., PODC 2023):
// a system of n processes, at most t of which are Byzantine, communicating
// over an authenticated, reliable, partially synchronous network.
#pragma once

#include <cstdint>

namespace valcon {

/// Process identifier. The paper indexes processes P_1..P_n; we use 0..n-1.
using ProcessId = int;

/// Proposal / decision values (the paper's V_I and V_O). The formalism is
/// domain-agnostic; the library fixes a 64-bit integer carrier and lets
/// enumeration-based tooling restrict to finite sub-domains.
using Value = std::int64_t;

/// Simulated time, in abstract units (benches use delta = 1.0).
using Time = double;

}  // namespace valcon
