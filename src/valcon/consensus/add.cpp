#include "valcon/consensus/add.hpp"

#include "valcon/core/thresholds.hpp"

namespace valcon::consensus {

namespace {

std::size_t words_of(std::size_t bytes) { return bytes / 8 + 1; }

}  // namespace

struct Add::MDisperse final : sim::Payload {
  explicit MDisperse(Bytes share_in) : share(std::move(share_in)) {}
  VALCON_PAYLOAD_TYPE("add/disperse")
  [[nodiscard]] std::size_t size_words() const override {
    return words_of(share.size());
  }
  Bytes share;
};

struct Add::MReconstruct final : sim::Payload {
  explicit MReconstruct(Bytes share_in) : share(std::move(share_in)) {}
  VALCON_PAYLOAD_TYPE("add/reconstruct")
  [[nodiscard]] std::size_t size_words() const override {
    return words_of(share.size());
  }
  Bytes share;
};

void Add::input(sim::Context& ctx, std::optional<Bytes> data) {
  if (input_received_) return;
  input_received_ = true;
  received_shares_.resize(static_cast<std::size_t>(ctx.n()));
  if (!data.has_value()) {
    maybe_fix_share(ctx);  // votes may already satisfy the threshold
    return;
  }
  // A non-⊥ input is known-correct by the problem's precondition: output it
  // immediately, but keep dispersing so that ⊥-input processes terminate.
  const ReedSolomon rs(ctx.n(), core::plurality(ctx.t()));
  const auto shares = rs.encode(*data);
  for (ProcessId j = 0; j < ctx.n(); ++j) {
    ctx.send(j, sim::make_payload<MDisperse>(shares[static_cast<std::size_t>(j)]));
  }
  deliver(ctx, *data);
  maybe_fix_share(ctx);
}

void Add::on_message(sim::Context& ctx, ProcessId from,
                     const sim::PayloadPtr& m) {
  if (received_shares_.empty()) {
    received_shares_.resize(static_cast<std::size_t>(ctx.n()));
  }
  if (const auto* disperse = dynamic_cast<const MDisperse*>(m.get())) {
    if (!share_fixed_) {
      disperse_votes_[disperse->share].insert(from);
      maybe_fix_share(ctx);
    }
    return;
  }
  if (const auto* reconstruct = dynamic_cast<const MReconstruct*>(m.get())) {
    auto& slot = received_shares_[static_cast<std::size_t>(from)];
    if (!slot.has_value()) {
      slot = reconstruct->share;
      try_decode(ctx);
    }
    return;
  }
}

void Add::maybe_fix_share(sim::Context& ctx) {
  if (share_fixed_) return;
  for (const auto& [share, senders] : disperse_votes_) {
    if (static_cast<int>(senders.size()) >= core::plurality(ctx.t())) {
      share_fixed_ = true;
      ctx.broadcast(sim::make_payload<MReconstruct>(share));
      return;
    }
  }
}

void Add::try_decode(sim::Context& ctx) {
  if (output_.has_value()) return;
  const int k = core::plurality(ctx.t());
  int count = 0;
  for (const auto& share : received_shares_) {
    if (share.has_value()) ++count;
  }
  if (count < k) return;
  const ReedSolomon rs(ctx.n(), k);
  // Online error correction: try decoding with e = 0..floor((count-k)/2)
  // errors; the agreement check inside decode() rejects wrong codewords.
  const int max_errors = (count - k) / 2;
  for (int e = 0; e <= max_errors; ++e) {
    if (const auto decoded = rs.decode(received_shares_, e)) {
      deliver(ctx, *decoded);
      return;
    }
  }
}

void Add::deliver(sim::Context& ctx, Bytes data) {
  if (output_.has_value()) return;
  output_ = std::move(data);
  if (on_output_) on_output_(ctx, *output_);
}

}  // namespace valcon::consensus
