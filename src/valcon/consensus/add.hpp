// ADD — Asynchronous Data Dissemination (Das, Xiang, Ren [36]), used by the
// O(n^2 log n) vector consensus (Algorithm 6, Appendix B.3.2).
//
// Problem: a data blob M is the input of at least t+1 correct processes;
// every other correct process inputs ⊥. Every correct process must output M
// (and nothing else).
//
// Protocol (two all-to-all rounds over a Reed-Solomon (n, t+1) code):
//
//   DISPERSE    — every process with input M sends the j-th RS share of M
//                 to P_j. A correct P_j fixes its share once t+1 senders
//                 agree on it (at least one of them is correct, so the
//                 fixed share is the true one).
//   RECONSTRUCT — P_j broadcasts its fixed share. Receivers run online
//                 error correction: with e = 0, 1, ..., t they attempt a
//                 Berlekamp-Welch decode once k + 2e shares are available;
//                 correct shares are never wrong, so at most t Byzantine
//                 shares must be corrected, which n > 3t makes possible.
//
// Communication: O(n * |M| + n^2 log n) words overall — each share is
// |M|/(t+1) bytes and there are O(n^2) share transmissions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "valcon/consensus/reed_solomon.hpp"
#include "valcon/sim/component.hpp"

namespace valcon::consensus {

class Add final : public sim::Component {
 public:
  using Bytes = std::vector<std::uint8_t>;
  using OutputCb = std::function<void(sim::Context&, const Bytes&)>;

  explicit Add(OutputCb on_output) : on_output_(std::move(on_output)) {}

  /// Feeds the input (M or ⊥, as nullopt). Called at most once.
  void input(sim::Context& ctx, std::optional<Bytes> data);

  [[nodiscard]] bool has_output() const { return output_.has_value(); }

  void on_message(sim::Context& ctx, ProcessId from,
                  const sim::PayloadPtr& m) override;

 private:
  struct MDisperse;
  struct MReconstruct;

  void maybe_fix_share(sim::Context& ctx);
  void try_decode(sim::Context& ctx);
  void deliver(sim::Context& ctx, Bytes data);

  OutputCb on_output_;
  bool input_received_ = false;
  std::optional<Bytes> output_;

  // DISPERSE phase: candidate shares for my index, by content.
  std::map<Bytes, std::set<ProcessId>> disperse_votes_;
  bool share_fixed_ = false;

  // RECONSTRUCT phase: share j as sent by P_j.
  std::vector<std::optional<Bytes>> received_shares_;
};

}  // namespace valcon::consensus
