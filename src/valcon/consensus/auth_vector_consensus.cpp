#include "valcon/consensus/auth_vector_consensus.hpp"

#include "valcon/core/thresholds.hpp"

namespace valcon::consensus {

crypto::Hash proposal_digest(ProcessId proposer, Value v) {
  crypto::Hasher h("valcon/vc-proposal");
  h.add(static_cast<std::int64_t>(proposer)).add(v);
  return h.finish();
}

bool VectorQuadProposal::verify(const crypto::KeyRegistry& keys, int n,
                                int t) const {
  if (vector_.n() != n || vector_.count() != core::quorum_n_minus_t(n, t)) {
    return false;
  }
  for (const ProcessId p : vector_.processes()) {
    const Value v = *vector_.at(p);
    const crypto::Hash expected = proposal_digest(p, v);
    bool found = false;
    for (const crypto::Signature& sig : proofs_) {
      if (sig.signer == p && sig.digest == expected && keys.verify(sig)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

struct AuthVectorConsensus::MProposal final : sim::Payload {
  MProposal(Value v, crypto::Signature s) : value(v), sig(s) {}
  VALCON_PAYLOAD_TYPE("avc/proposal")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  Value value;
  crypto::Signature sig;
};

AuthVectorConsensus::AuthVectorConsensus(Quad::Options quad_options) {
  quad_ = &make_child<Quad>(
      // verify(vector, Sigma): every pair accompanied by a valid signed
      // proposal message (Section 5.2.1's predicate for this Quad instance).
      [](sim::Context& qctx, const QuadProposal& value) {
        const auto* vec = dynamic_cast<const VectorQuadProposal*>(&value);
        return vec != nullptr && vec->verify(qctx.keys(), qctx.n(), qctx.t());
      },
      [this](sim::Context& qctx, const QuadProposalPtr& value) {
        const auto* vec = dynamic_cast<const VectorQuadProposal*>(value.get());
        if (vec != nullptr) deliver_vector(qctx, vec->vector());
      },
      quad_options);
}

void AuthVectorConsensus::own_start(sim::Context& ctx) {
  if (input_.has_value()) {
    const Value v = *input_;
    const crypto::Signature sig = ctx.signer().sign(
        proposal_digest(ctx.id(), v));
    ctx.broadcast(sim::make_payload<MProposal>(v, sig));
  }
}

void AuthVectorConsensus::own_message(sim::Context& ctx, ProcessId from,
                                      const sim::PayloadPtr& m) {
  const auto* msg = dynamic_cast<const MProposal*>(m.get());
  if (msg == nullptr) return;
  const int n = ctx.n();
  const int t = ctx.t();
  // Accept only properly signed proposals from their claimed sender, and
  // stop counting at n-t (Algorithm 1, line 10).
  if (proposed_to_quad_) return;
  if (msg->sig.signer != from ||
      msg->sig.digest != proposal_digest(from, msg->value) ||
      !ctx.keys().verify(msg->sig)) {
    return;
  }
  proposals_.emplace(from, std::make_pair(msg->value, msg->sig));
  if (static_cast<int>(proposals_.size()) < core::quorum_n_minus_t(n, t)) {
    return;
  }

  proposed_to_quad_ = true;
  core::InputConfig vector(n);
  std::vector<crypto::Signature> proofs;
  int taken = 0;
  for (const auto& [pid, entry] : proposals_) {
    if (taken == core::quorum_n_minus_t(n, t)) break;
    vector.set(pid, entry.first);
    proofs.push_back(entry.second);
    ++taken;
  }
  quad_->propose(child_context(0),
                 std::make_shared<const VectorQuadProposal>(
                     vector, std::move(proofs)));
}

}  // namespace valcon::consensus
