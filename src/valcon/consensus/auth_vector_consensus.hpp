// Authenticated vector consensus — Algorithm 1.
//
//   on propose(v):      beb-broadcast <PROPOSAL, v> signed;
//   on n-t proposals:   build vector + proof Sigma (the signed proposal
//                       messages) and propose (vector, Sigma) to Quad;
//   on Quad decide:     decide the vector.
//
// Quad's external predicate verify(vector, Sigma) checks that every
// process-proposal pair in the vector is accompanied by a properly signed
// proposal message, which is exactly what gives Vector Validity
// (Theorem 6). Message complexity: O(n^2) (Theorem 7).
#pragma once

#include <map>
#include <vector>

#include "valcon/consensus/quad.hpp"
#include "valcon/consensus/vector_consensus.hpp"

namespace valcon::consensus {

/// The (vector, Sigma) value-proof pair proposed to Quad.
class VectorQuadProposal final : public QuadProposal {
 public:
  VectorQuadProposal(core::InputConfig vec,
                     std::vector<crypto::Signature> proofs)
      : vector_(std::move(vec)), proofs_(std::move(proofs)) {}

  [[nodiscard]] const core::InputConfig& vector() const { return vector_; }
  [[nodiscard]] const std::vector<crypto::Signature>& proofs() const {
    return proofs_;
  }

  [[nodiscard]] crypto::Hash digest() const override {
    return vector_.digest();
  }
  [[nodiscard]] std::size_t size_words() const override {
    // The vector (one word per pair) plus Sigma (one word per signature).
    return static_cast<std::size_t>(vector_.count()) + proofs_.size();
  }

  /// verify(vector, Sigma): every pair carries a valid signed proposal, and
  /// the vector has exactly n-t pairs.
  [[nodiscard]] bool verify(const crypto::KeyRegistry& keys, int n,
                            int t) const;

 private:
  core::InputConfig vector_;
  std::vector<crypto::Signature> proofs_;
};

class AuthVectorConsensus final : public VectorConsensus {
 public:
  explicit AuthVectorConsensus(Quad::Options quad_options = {});

 protected:
  void own_start(sim::Context& ctx) override;
  void own_message(sim::Context& ctx, ProcessId from,
                   const sim::PayloadPtr& m) override;

 private:
  struct MProposal;

  Quad* quad_ = nullptr;
  std::map<ProcessId, std::pair<Value, crypto::Signature>> proposals_;
  bool proposed_to_quad_ = false;
};

}  // namespace valcon::consensus
