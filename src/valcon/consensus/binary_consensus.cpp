#include "valcon/consensus/binary_consensus.hpp"

#include "valcon/core/thresholds.hpp"

namespace valcon::consensus {

// ---------------------------------------------------------------- wire

struct BinaryConsensus::MEst final : sim::Payload {
  explicit MEst(bool v) : value(v) {}
  VALCON_PAYLOAD_TYPE("bin/est")
  bool value;
};

struct BinaryConsensus::MProposal final : sim::Payload {
  MProposal(std::int64_t r, bool v, std::int64_t vr)
      : round(r), value(v), valid_round(vr) {}
  VALCON_PAYLOAD_TYPE("bin/proposal")
  std::int64_t round;
  bool value;
  std::int64_t valid_round;
};

struct BinaryConsensus::MPrevote final : sim::Payload {
  MPrevote(std::int64_t r, std::optional<bool> v) : round(r), value(v) {}
  VALCON_PAYLOAD_TYPE("bin/prevote")
  std::int64_t round;
  std::optional<bool> value;
};

struct BinaryConsensus::MPrecommit final : sim::Payload {
  MPrecommit(std::int64_t r, std::optional<bool> v) : round(r), value(v) {}
  VALCON_PAYLOAD_TYPE("bin/precommit")
  std::int64_t round;
  std::optional<bool> value;
};

struct BinaryConsensus::MDecided final : sim::Payload {
  explicit MDecided(bool v) : value(v) {}
  VALCON_PAYLOAD_TYPE("bin/decided")
  bool value;
};

struct BinaryConsensus::MVoteSig final : sim::Payload {
  MVoteSig(std::int64_t r, std::uint32_t s, std::optional<bool> v,
           crypto::Signature sig_in)
      : round(r), step(s), value(v), sig(sig_in) {}
  VALCON_PAYLOAD_TYPE("bin/vote-sig")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  std::int64_t round;
  std::uint32_t step;
  std::optional<bool> value;
  crypto::Signature sig;
};

// ------------------------------------------------------------ helpers

namespace {

// -1 encodes a nil vote, matching QuorumCertificatePayload's convention.
std::int64_t encode_vote(std::optional<bool> v) {
  if (!v.has_value()) return -1;
  return *v ? 1 : 0;
}

bool decode_vote(std::int64_t encoded, std::optional<bool>& out) {
  if (encoded == -1) {
    out = std::nullopt;
    return true;
  }
  if (encoded == 0 || encoded == 1) {
    out = encoded == 1;
    return true;
  }
  return false;  // malformed certificate
}

crypto::Hash vote_digest(int instance, std::int64_t round, std::uint32_t step,
                         std::optional<bool> v) {
  return crypto::Hasher("valcon/bin-vote-sig")
      .add(instance)
      .add(round)
      .add(static_cast<std::int64_t>(step))
      .add(encode_vote(v))
      .finish();
}

}  // namespace

bool BinaryConsensus::justified(bool v, sim::Context& ctx) const {
  return static_cast<int>(est_senders_[v ? 1 : 0].size()) >=
         core::plurality(ctx.t());
}

int BinaryConsensus::count_prevotes(std::int64_t round,
                                    std::optional<bool> v) const {
  const auto rit = rounds_.find(round);
  if (rit == rounds_.end()) return 0;
  const auto it = rit->second.prevotes.find(v);
  return it == rit->second.prevotes.end()
             ? 0
             : static_cast<int>(it->second.size());
}

int BinaryConsensus::count_precommits(std::int64_t round,
                                      std::optional<bool> v) const {
  const auto rit = rounds_.find(round);
  if (rit == rounds_.end()) return 0;
  const auto it = rit->second.precommits.find(v);
  return it == rit->second.precommits.end()
             ? 0
             : static_cast<int>(it->second.size());
}

// ----------------------------------------------------------- lifecycle

void BinaryConsensus::on_start(sim::Context& ctx) {
  started_ = true;
  if (input_.has_value() && !est_broadcast_) {
    est_broadcast_ = true;
    ctx.broadcast(sim::make_payload<MEst>(*input_));
  }
  start_round(ctx, 0);
}

void BinaryConsensus::propose(sim::Context& ctx, bool value) {
  if (input_.has_value()) return;
  input_ = value;
  if (started_ && !est_broadcast_) {
    est_broadcast_ = true;
    ctx.broadcast(sim::make_payload<MEst>(value));
    maybe_send_proposal(ctx);
    poll(ctx);
  }
}

void BinaryConsensus::start_round(sim::Context& ctx, std::int64_t round) {
  if (halted_ || round <= round_) return;
  round_ = round;
  step_ = Step::kPropose;
  maybe_send_proposal(ctx);
  // Propose-step timeout: prevote nil if no acceptable proposal arrives.
  ctx.set_timer(timeout(round, ctx),
                static_cast<std::uint64_t>(round) * 4 + 1);
  poll(ctx);
}

void BinaryConsensus::maybe_send_proposal(sim::Context& ctx) {
  if (halted_ || round_ < 0) return;
  if (proposer_of(round_, ctx.n()) != ctx.id()) return;
  RoundState& rs = rounds_[round_];
  if (rs.proposal_sent || rs.proposal_seen) return;
  // Value choice: validValue if set; otherwise the own input, preferring a
  // justified bit so the proposal can gather prevotes.
  std::optional<bool> choice;
  std::int64_t vr = -1;
  if (decided_.has_value() && valid_value_ == decided_) {
    choice = decided_;
    vr = valid_round_;
  } else if (valid_value_.has_value()) {
    choice = valid_value_;
    vr = valid_round_;
  } else if (input_.has_value()) {
    choice = input_;
    if (!justified(*choice, ctx) && justified(!*choice, ctx)) {
      choice = !*choice;
    }
  }
  if (!choice.has_value()) return;
  rs.proposal_sent = true;
  ctx.broadcast(sim::make_payload<MProposal>(round_, *choice, vr));
}

void BinaryConsensus::do_prevote(sim::Context& ctx, std::optional<bool> v) {
  step_ = Step::kPrevote;
  if (cert_mode_ == core::CertMode::kAggregate) {
    send_vote(ctx, kStepPrevote, v);
  } else {
    ctx.broadcast(sim::make_payload<MPrevote>(round_, v));
  }
  ctx.set_timer(timeout(round_, ctx),
                static_cast<std::uint64_t>(round_) * 4 + 2);
}

void BinaryConsensus::do_precommit(sim::Context& ctx, std::optional<bool> v) {
  step_ = Step::kPrecommit;
  if (cert_mode_ == core::CertMode::kAggregate) {
    send_vote(ctx, kStepPrecommit, v);
  } else {
    ctx.broadcast(sim::make_payload<MPrecommit>(round_, v));
  }
  ctx.set_timer(timeout(round_, ctx),
                static_cast<std::uint64_t>(round_) * 4 + 3);
}

void BinaryConsensus::send_vote(sim::Context& ctx, std::uint32_t step,
                                std::optional<bool> v) {
  const crypto::Signature sig =
      ctx.signer().sign(vote_digest(instance_, round_, step, v));
  const ProcessId leader = proposer_of(round_, ctx.n());
  if (leader == ctx.id()) {
    vote_tally_.add(sig);
    maybe_certify_votes(ctx, round_, step, v);
  } else {
    ctx.send(leader, sim::make_payload<MVoteSig>(round_, step, v, sig));
  }
}

void BinaryConsensus::maybe_certify_votes(sim::Context& ctx, std::int64_t round,
                                          std::uint32_t step,
                                          std::optional<bool> v) {
  const crypto::Hash digest = vote_digest(instance_, round, step, v);
  if (certified_.contains(digest)) return;
  const int threshold = core::byz_quorum(ctx.n(), ctx.t());
  if (vote_tally_.count(digest) < threshold) return;
  auto cert = core::certify_verified(vote_tally_, ctx.keys(), digest, ctx.n(),
                                     threshold);
  if (!cert) return;
  certified_.insert(digest);
  ctx.broadcast(sim::make_payload<core::QuorumCertificatePayload>(
      step == kStepPrevote ? kTagPrevoteCert : kTagPrecommitCert, round,
      encode_vote(v), std::move(cert->voters), cert->agg));
}

void BinaryConsensus::on_vote_cert(sim::Context& ctx,
                                   const core::QuorumCertificatePayload& qc) {
  if (qc.tag != kTagPrevoteCert && qc.tag != kTagPrecommitCert) return;
  std::optional<bool> decoded;
  if (!decode_vote(qc.value, decoded)) return;
  const std::uint32_t step =
      qc.tag == kTagPrevoteCert ? kStepPrevote : kStepPrecommit;
  // Recompute the digest the certified votes must have signed; the carried
  // one is untrusted.
  if (qc.agg.digest != vote_digest(instance_, qc.round, step, decoded)) {
    return;
  }
  if (qc.voters.count() < core::byz_quorum(ctx.n(), ctx.t())) return;
  if (!ctx.keys().verify_aggregate(qc.voters, qc.agg)) return;
  RoundState& rs = rounds_[qc.round];
  std::set<ProcessId>& votes = step == kStepPrevote ? rs.prevotes[decoded]
                                                    : rs.precommits[decoded];
  for (ProcessId p = 0; p < ctx.n(); ++p) {
    if (qc.voters.test(p)) {
      votes.insert(p);
      rs.participants.insert(p);
    }
  }
  poll(ctx);
}

void BinaryConsensus::on_timer(sim::Context& ctx, std::uint64_t tag) {
  if (halted_) return;
  const auto round = static_cast<std::int64_t>(tag / 4);
  const std::uint64_t kind = tag % 4;
  if (round != round_) return;  // stale
  if (kind == 1 && step_ == Step::kPropose) {
    do_prevote(ctx, std::nullopt);
    poll(ctx);
  } else if (kind == 2 && step_ == Step::kPrevote) {
    do_precommit(ctx, std::nullopt);
    poll(ctx);
  } else if (kind == 3 && step_ == Step::kPrecommit) {
    start_round(ctx, round_ + 1);
  }
}

// ------------------------------------------------------------- messages

void BinaryConsensus::on_message(sim::Context& ctx, ProcessId from,
                                 const sim::PayloadPtr& m) {
  if (halted_) return;
  if (cert_mode_ == core::CertMode::kAggregate) {
    if (const auto* vote = dynamic_cast<const MVoteSig*>(m.get())) {
      // Only the round's proposer tallies votes, and only votes whose
      // signature is shaped right: signed by the network-level sender over
      // exactly the digest the claimed (round, step, value) implies. The
      // MAC itself is checked once, at certify time.
      if (proposer_of(vote->round, ctx.n()) != ctx.id()) return;
      if (vote->sig.signer != from) return;
      if (vote->sig.digest !=
          vote_digest(instance_, vote->round, vote->step, vote->value)) {
        return;
      }
      vote_tally_.add(vote->sig);
      maybe_certify_votes(ctx, vote->round, vote->step, vote->value);
      return;
    }
    if (const auto* qc =
            dynamic_cast<const core::QuorumCertificatePayload*>(m.get())) {
      on_vote_cert(ctx, *qc);
      return;
    }
  }
  if (const auto* done = dynamic_cast<const MDecided*>(m.get())) {
    decided_senders_[done->value ? 1 : 0].insert(from);
    poll(ctx);
    return;
  }
  if (const auto* est = dynamic_cast<const MEst*>(m.get())) {
    est_senders_[est->value ? 1 : 0].insert(from);
    poll(ctx);
    return;
  }
  if (const auto* proposal = dynamic_cast<const MProposal*>(m.get())) {
    if (from != proposer_of(proposal->round, ctx.n())) return;
    RoundState& rs = rounds_[proposal->round];
    rs.participants.insert(from);
    if (!rs.proposal_seen) {
      rs.proposal_seen = true;
      rs.proposal = {proposal->value, proposal->valid_round};
    }
    poll(ctx);
    return;
  }
  if (const auto* prevote = dynamic_cast<const MPrevote*>(m.get())) {
    if (cert_mode_ == core::CertMode::kAggregate) return;
    RoundState& rs = rounds_[prevote->round];
    rs.participants.insert(from);
    rs.prevotes[prevote->value].insert(from);
    poll(ctx);
    return;
  }
  if (const auto* precommit = dynamic_cast<const MPrecommit*>(m.get())) {
    if (cert_mode_ == core::CertMode::kAggregate) return;
    RoundState& rs = rounds_[precommit->round];
    rs.participants.insert(from);
    rs.precommits[precommit->value].insert(from);
    poll(ctx);
    return;
  }
}

// ------------------------------------------------------------- engine

void BinaryConsensus::decide(sim::Context& ctx, bool v) {
  if (decided_.has_value()) return;
  decided_ = v;
  ctx.broadcast(sim::make_payload<MDecided>(v));
  if (on_decide_) on_decide_(ctx, v);
}

void BinaryConsensus::poll(sim::Context& ctx) {
  if (!started_ || round_ < 0 || halted_) return;
  const int n = ctx.n();
  const int t = ctx.t();
  const int quorum = core::byz_quorum(n, t);

  // Decide: 2t+1 precommits for a bit in any round, or t+1 DECIDEDs
  // (at least one correct process decided that bit).
  if (!decided_.has_value()) {
    for (const bool b : {false, true}) {
      if (static_cast<int>(decided_senders_[b ? 1 : 0].size()) >=
          core::plurality(t)) {
        decide(ctx, b);
        break;
      }
    }
  }
  if (!decided_.has_value()) {
    for (const auto& [round, rs] : rounds_) {
      for (const bool b : {false, true}) {
        const auto it = rs.precommits.find(b);
        if (it != rs.precommits.end() &&
            static_cast<int>(it->second.size()) >= quorum) {
          decide(ctx, b);
          break;
        }
      }
      if (decided_.has_value()) break;
    }
  }
  // Halt once n-t processes report the decided bit: every correct process
  // has decided, nobody needs our votes anymore.
  if (decided_.has_value()) {
    const std::size_t idx = *decided_ ? 1 : 0;
    if (static_cast<int>(decided_senders_[idx].size()) >=
        core::quorum_n_minus_t(n, t)) {
      halted_ = true;
      return;
    }
  }

  // Round skip: t+1 distinct participants in a future round.
  for (auto it = rounds_.upper_bound(round_); it != rounds_.end(); ++it) {
    if (static_cast<int>(it->second.participants.size()) >=
        core::plurality(t)) {
      start_round(ctx, it->first);
      return;
    }
  }

  RoundState& rs = rounds_[round_];

  // validValue update: 2t+1 prevotes for a bit, any round.
  for (const auto& [round, state] : rounds_) {
    for (const bool b : {false, true}) {
      const auto it = state.prevotes.find(b);
      if (it != state.prevotes.end() &&
          static_cast<int>(it->second.size()) >= quorum &&
          round > valid_round_) {
        valid_value_ = b;
        valid_round_ = round;
      }
    }
  }

  // Propose step: evaluate the proposal acceptance rules.
  if (step_ == Step::kPropose && rs.proposal.has_value()) {
    const auto [v, vr] = *rs.proposal;
    bool accept = false;
    if (justified(v, ctx)) {
      if (vr < 0) {
        accept = locked_round_ == -1 || locked_value_ == v;
      } else if (vr < round_ && count_prevotes(vr, v) >= quorum) {
        accept = locked_round_ <= vr || locked_value_ == v;
      }
    }
    if (accept) {
      do_prevote(ctx, v);
      poll(ctx);
      return;
    }
  }

  // Prevote step: 2t+1 matching prevotes lock and precommit; 2t+1 nil
  // prevotes precommit nil.
  if (step_ == Step::kPrevote) {
    for (const bool b : {false, true}) {
      if (count_prevotes(round_, b) >= quorum) {
        locked_value_ = b;
        locked_round_ = round_;
        valid_value_ = b;
        valid_round_ = round_;
        do_precommit(ctx, b);
        poll(ctx);
        return;
      }
    }
    if (count_prevotes(round_, std::nullopt) >= quorum) {
      do_precommit(ctx, std::nullopt);
      poll(ctx);
      return;
    }
  }

  // Precommit step: a full set of precommits (any mix) ends the round early.
  if (step_ == Step::kPrecommit) {
    int total = 0;
    for (const auto& [v, senders] : rs.precommits) {
      total += static_cast<int>(senders.size());
    }
    if (total >= core::quorum_n_minus_t(n, t) &&
        count_precommits(round_, std::nullopt) >= core::plurality(t)) {
      start_round(ctx, round_ + 1);
      return;
    }
  }
}

}  // namespace valcon::consensus
