// Signature-free binary Byzantine consensus for partial synchrony, the
// "Binary DBFT [35]" building block of the non-authenticated vector
// consensus (Algorithm 3, Appendix B.2).
//
// We reproduce the class of protocol DBFT belongs to — deterministic,
// leader/coordinator-rotating, signature-free binary consensus with O(n^2)
// messages per round — using the corrected Tendermint-style rules of
// Buchman-Kwon-Milosevic [22] (a protocol the DBFT paper itself positions
// against), hardened with DBFT's BV-justification idea:
//
//   * every process announces its input (EST); a bit b is *justified* once
//     t+1 distinct processes announced b, so any justified bit is the input
//     of at least one correct process;
//   * correct processes only prevote justified bits, which yields the
//     intrusion-tolerant validity Algorithm 3 needs — a decided 1 for
//     instance j implies a correct process proposed 1, i.e. BRB-delivered
//     P_j's proposal;
//   * rounds rotate the proposer; locking (lockedValue/lockedRound) gives
//     Agreement, validValue/validRound re-proposal gives liveness after GST
//     (no hidden-lock stall), t+1 round-skip certificates keep laggards
//     synchronized.
//
// See DESIGN.md §2 for the substitution rationale.
//
// CertMode::kAggregate batches the two vote rounds (core/quorum.hpp):
// instead of broadcasting prevotes/precommits all-to-all, each process
// sends one signed vote to the round's proposer, who certifies 2t+1
// matching votes and broadcasts one QuorumCertificatePayload. Receivers
// verify the aggregate once and bulk-insert the certified voters into the
// same RoundState tallies the per-vote engine polls, so every decision
// rule below is shared between the two backends. EST, proposals and the
// DECIDED gadget stay broadcast in both modes. Sub-quorum rules (t+1
// round skip, the early round end) fire less often from certificate-only
// information; the round timers carry liveness exactly as they do when
// votes are lost to the network.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "valcon/core/quorum.hpp"
#include "valcon/crypto/hash.hpp"
#include "valcon/sim/component.hpp"

namespace valcon::consensus {

class BinaryConsensus final : public sim::Component {
 public:
  using DecideCb = std::function<void(sim::Context&, bool)>;

  /// `instance` names this consensus instance inside its deployment (the
  /// vector-consensus slot index): aggregate-mode vote signatures bind it,
  /// so a certificate from one instance cannot be replayed into another.
  explicit BinaryConsensus(DecideCb on_decide,
                           core::CertMode cert_mode = core::CertMode::kPerVote,
                           int instance = 0)
      : on_decide_(std::move(on_decide)),
        cert_mode_(cert_mode),
        instance_(instance) {}

  /// Proposes a bit. May arrive before or (well) after on_start; processes
  /// participate in rounds regardless, per Algorithm 3's late proposals
  /// ("propose 0 to every instance not yet proposed to").
  void propose(sim::Context& ctx, bool value);

  [[nodiscard]] bool decided() const { return decided_.has_value(); }
  [[nodiscard]] std::optional<bool> decision() const { return decided_; }

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const sim::PayloadPtr& m) override;
  void on_timer(sim::Context& ctx, std::uint64_t tag) override;

 private:
  enum class Step { kPropose, kPrevote, kPrecommit };

  struct MEst;
  struct MProposal;
  struct MPrevote;
  struct MPrecommit;
  struct MDecided;
  struct MVoteSig;

  // QC tags (protocol-local; this Mux child only sees its own traffic).
  static constexpr std::uint32_t kTagPrevoteCert = 1;
  static constexpr std::uint32_t kTagPrecommitCert = 2;
  // Step codes bound into aggregate-mode vote digests.
  static constexpr std::uint32_t kStepPrevote = 0;
  static constexpr std::uint32_t kStepPrecommit = 1;

  struct RoundState {
    std::optional<std::pair<bool, std::int64_t>> proposal;  // (v, validRound)
    bool proposal_seen = false;
    bool proposal_sent = false;
    // prevotes / precommits: value -> senders; nullopt = nil.
    std::map<std::optional<bool>, std::set<ProcessId>> prevotes;
    std::map<std::optional<bool>, std::set<ProcessId>> precommits;
    std::set<ProcessId> participants;  // senders of any message this round
  };

  [[nodiscard]] ProcessId proposer_of(std::int64_t round, int n) const {
    return static_cast<ProcessId>(round % n);
  }
  [[nodiscard]] bool justified(bool v, sim::Context& ctx) const;
  [[nodiscard]] int count_prevotes(std::int64_t round,
                                   std::optional<bool> v) const;
  [[nodiscard]] int count_precommits(std::int64_t round,
                                     std::optional<bool> v) const;

  void start_round(sim::Context& ctx, std::int64_t round);
  void maybe_send_proposal(sim::Context& ctx);
  void poll(sim::Context& ctx);
  void decide(sim::Context& ctx, bool v);
  void do_prevote(sim::Context& ctx, std::optional<bool> v);
  void do_precommit(sim::Context& ctx, std::optional<bool> v);
  // Aggregate-mode helpers: send one signed vote to the round's proposer
  // (or tally the own vote when we are the proposer), certify a quorum and
  // broadcast the certificate, absorb a received certificate's voters into
  // the RoundState tallies.
  void send_vote(sim::Context& ctx, std::uint32_t step, std::optional<bool> v);
  void maybe_certify_votes(sim::Context& ctx, std::int64_t round,
                           std::uint32_t step, std::optional<bool> v);
  void on_vote_cert(sim::Context& ctx,
                    const core::QuorumCertificatePayload& qc);
  [[nodiscard]] double timeout(std::int64_t round, sim::Context& ctx) const {
    return (4.0 + static_cast<double>(round)) * ctx.delta();
  }

  DecideCb on_decide_;
  core::CertMode cert_mode_;
  int instance_;
  // Aggregate-mode proposer state: the vote tally (digests bind instance,
  // round, step and value, so one collector serves every round we lead)
  // and the certificates already broadcast.
  core::QuorumCollector vote_tally_;
  std::set<crypto::Hash> certified_;
  bool started_ = false;
  std::optional<bool> input_;
  bool est_broadcast_ = false;
  std::optional<bool> decided_;

  std::int64_t round_ = -1;
  Step step_ = Step::kPropose;
  std::optional<bool> locked_value_;
  std::int64_t locked_round_ = -1;
  std::optional<bool> valid_value_;
  std::int64_t valid_round_ = -1;

  std::map<std::int64_t, RoundState> rounds_;
  std::set<ProcessId> est_senders_[2];  // who announced 0 / 1

  // Termination gadget: deciders broadcast DECIDED and keep participating
  // (a Byzantine vote can complete a quorum for a single process only, so
  // a decider that went silent could strand the rest one vote short).
  // t+1 matching DECIDEDs are a decision (at least one correct decider);
  // n-t DECIDEDs for the decided value mean every correct process is done,
  // so the instance halts and stops scheduling timers.
  std::set<ProcessId> decided_senders_[2];
  bool halted_ = false;
};

}  // namespace valcon::consensus
