#include "valcon/consensus/fast_vector_consensus.hpp"

#include "valcon/consensus/auth_vector_consensus.hpp"
#include "valcon/core/thresholds.hpp"

namespace valcon::consensus {

struct FastVectorConsensus::MProposal final : sim::Payload {
  MProposal(Value v, crypto::Signature s) : value(v), sig(s) {}
  VALCON_PAYLOAD_TYPE("fvc/proposal")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  Value value;
  crypto::Signature sig;
};

FastVectorConsensus::FastVectorConsensus(Quad::Options quad_options) {
  disseminator_ = &make_child<VectorDissemination>(
      [this](sim::Context& cctx, const crypto::Hash& h,
             const crypto::ThresholdSignature& tsig) {
        on_acquire(cctx, h, tsig);
      });
  quad_ = &make_child<Quad>(
      // verify(H, tsig): the proof is a valid (n-t)-threshold signature
      // over the hash.
      [](sim::Context& qctx, const QuadProposal& value) {
        const auto* hp = dynamic_cast<const HashQuadProposal*>(&value);
        return hp != nullptr && hp->tsig().digest == hp->hash() &&
               qctx.keys().verify(hp->tsig());
      },
      [this](sim::Context& qctx, const QuadProposalPtr& value) {
        on_quad_decide(qctx, value);
      },
      quad_options);
  add_ = &make_child<Add>(
      [this](sim::Context& cctx, const std::vector<std::uint8_t>& m) {
        on_add_output(cctx, m);
      });
}

void FastVectorConsensus::own_start(sim::Context& ctx) {
  if (input_.has_value()) {
    const crypto::Signature sig =
        ctx.signer().sign(proposal_digest(ctx.id(), *input_));
    ctx.broadcast(sim::make_payload<MProposal>(*input_, sig));
  }
}

void FastVectorConsensus::own_message(sim::Context& ctx, ProcessId from,
                                      const sim::PayloadPtr& m) {
  const auto* msg = dynamic_cast<const MProposal*>(m.get());
  if (msg == nullptr || disseminated_) return;
  const int n = ctx.n();
  const int t = ctx.t();
  if (msg->sig.signer != from ||
      msg->sig.digest != proposal_digest(from, msg->value) ||
      !ctx.keys().verify(msg->sig)) {
    return;
  }
  proposals_.emplace(from, std::make_pair(msg->value, msg->sig));
  if (static_cast<int>(proposals_.size()) < core::quorum_n_minus_t(n, t)) {
    return;
  }

  disseminated_ = true;
  core::InputConfig vector(n);
  std::vector<crypto::Signature> proofs;
  int taken = 0;
  for (const auto& [pid, entry] : proposals_) {
    if (taken == core::quorum_n_minus_t(n, t)) break;
    vector.set(pid, entry.first);
    proofs.push_back(entry.second);
    ++taken;
  }
  disseminator_->disseminate(child_context(0), vector, proofs);
}

void FastVectorConsensus::on_acquire(sim::Context& /*ctx*/,
                                     const crypto::Hash& h,
                                     const crypto::ThresholdSignature& tsig) {
  if (proposed_to_quad_) return;
  proposed_to_quad_ = true;
  quad_->propose(child_context(1),
                 std::make_shared<const HashQuadProposal>(h, tsig));
}

void FastVectorConsensus::on_quad_decide(sim::Context& /*ctx*/,
                                         const QuadProposalPtr& value) {
  const auto* hp = dynamic_cast<const HashQuadProposal*>(value.get());
  if (hp == nullptr || fed_add_) return;
  fed_add_ = true;
  std::optional<Add::Bytes> input;
  if (const auto cached = disseminator_->lookup(hp->hash())) {
    input = cached->serialize();
  }
  add_->input(child_context(2), std::move(input));
}

void FastVectorConsensus::on_add_output(sim::Context& ctx,
                                        const std::vector<std::uint8_t>& m) {
  const auto vec = core::InputConfig::deserialize(m);
  if (!vec.has_value()) return;
  deliver_vector(ctx, *vec);
}

}  // namespace valcon::consensus
