// O(n^2 log n)-communication vector consensus — Algorithm 6
// (Appendix B.3.2).
//
//   propose(v):           beb-broadcast a signed <PROPOSAL, v>;
//   on n-t proposals:     build the vector, hand it to vector dissemination;
//   on acquire(H, tsig):  propose (H, tsig) to Quad (values are hashes,
//                         proofs are threshold signatures — constant size);
//   on Quad decide(H'):   feed ADD with the cached vector matching H'
//                         (or ⊥ if not cached);
//   on ADD output:        decide the reconstructed vector.
//
// Redundancy of vector dissemination guarantees at least t+1 correct
// processes cached the vector whose hash Quad decided, which is exactly
// ADD's precondition; Agreement/Termination lift from Quad and ADD
// (Theorem 11). Communication: O(n^2 log n) words after GST (Theorem 12),
// at the cost of the slow-broadcast's exponential worst-case latency.
#pragma once

#include <vector>

#include "valcon/consensus/add.hpp"
#include "valcon/consensus/quad.hpp"
#include "valcon/consensus/vector_consensus.hpp"
#include "valcon/consensus/vector_dissemination.hpp"

namespace valcon::consensus {

/// The (hash, threshold signature) value-proof pair proposed to Quad.
class HashQuadProposal final : public QuadProposal {
 public:
  HashQuadProposal(crypto::Hash h, crypto::ThresholdSignature tsig)
      : hash_(h), tsig_(tsig) {}

  [[nodiscard]] const crypto::Hash& hash() const { return hash_; }
  [[nodiscard]] const crypto::ThresholdSignature& tsig() const {
    return tsig_;
  }

  [[nodiscard]] crypto::Hash digest() const override {
    crypto::Hasher h("valcon/hash-proposal");
    h.add(hash_).add(tsig_.mac);
    return h.finish();
  }
  [[nodiscard]] std::size_t size_words() const override { return 2; }

 private:
  crypto::Hash hash_;
  crypto::ThresholdSignature tsig_;
};

class FastVectorConsensus final : public VectorConsensus {
 public:
  explicit FastVectorConsensus(Quad::Options quad_options = {});

 protected:
  void own_start(sim::Context& ctx) override;
  void own_message(sim::Context& ctx, ProcessId from,
                   const sim::PayloadPtr& m) override;

 private:
  struct MProposal;

  void on_acquire(sim::Context& ctx, const crypto::Hash& h,
                  const crypto::ThresholdSignature& tsig);
  void on_quad_decide(sim::Context& ctx, const QuadProposalPtr& value);
  void on_add_output(sim::Context& ctx, const std::vector<std::uint8_t>& m);

  VectorDissemination* disseminator_ = nullptr;
  Quad* quad_ = nullptr;
  Add* add_ = nullptr;

  std::map<ProcessId, std::pair<Value, crypto::Signature>> proposals_;
  bool disseminated_ = false;
  bool proposed_to_quad_ = false;
  bool fed_add_ = false;
};

}  // namespace valcon::consensus
