// GF(2^8) arithmetic (AES polynomial x^8 + x^4 + x^3 + x + 1, 0x11b),
// backing the Reed-Solomon code used by ADD (Appendix B.3 / [36]).
#pragma once

#include <array>
#include <cstdint>

namespace valcon::consensus::gf256 {

namespace detail {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};

  constexpr Tables() {
    // 0x03 is a primitive element of GF(2^8)/0x11b (0x02 is not: its
    // multiplicative order is only 51).
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
      std::uint16_t doubled = x << 1;
      if (doubled & 0x100) doubled ^= 0x11b;
      x = doubled ^ x;  // x *= 3
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
  }
};

inline constexpr Tables kTables{};

}  // namespace detail

[[nodiscard]] constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}

[[nodiscard]] constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kTables.exp[static_cast<std::size_t>(
      detail::kTables.log[a] + detail::kTables.log[b])];
}

[[nodiscard]] constexpr std::uint8_t inv(std::uint8_t a) {
  // a != 0 required.
  return detail::kTables.exp[static_cast<std::size_t>(
      255 - detail::kTables.log[a])];
}

[[nodiscard]] constexpr std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  // b != 0 required.
  return a == 0 ? 0 : mul(a, inv(b));
}

/// a^e for e >= 0.
[[nodiscard]] constexpr std::uint8_t pow(std::uint8_t a, unsigned e) {
  std::uint8_t out = 1;
  while (e-- > 0) out = mul(out, a);
  return out;
}

}  // namespace valcon::consensus::gf256
