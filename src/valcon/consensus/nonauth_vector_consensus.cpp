#include "valcon/consensus/nonauth_vector_consensus.hpp"

#include "valcon/core/thresholds.hpp"

namespace valcon::consensus {

namespace {

std::vector<std::uint8_t> encode_value(Value v) {
  std::vector<std::uint8_t> out(8);
  const auto raw = static_cast<std::uint64_t>(v);
  for (int b = 0; b < 8; ++b) {
    out[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(raw >> (8 * b));
  }
  return out;
}

Value decode_value(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t raw = 0;
  for (std::size_t b = 0; b < 8 && b < bytes.size(); ++b) {
    raw |= static_cast<std::uint64_t>(bytes[b]) << (8 * b);
  }
  return static_cast<Value>(raw);
}

}  // namespace

NonAuthVectorConsensus::NonAuthVectorConsensus(int n, core::CertMode cert_mode)
    : n_(n),
      proposals_(static_cast<std::size_t>(n)),
      decisions_(static_cast<std::size_t>(n)),
      proposed_(static_cast<std::size_t>(n), false) {
  brb_.reserve(static_cast<std::size_t>(n));
  binary_.reserve(static_cast<std::size_t>(n));
  for (ProcessId j = 0; j < n; ++j) {
    brb_.push_back(&make_child<bcast::ReliableBroadcast>(
        j,
        [this, j](sim::Context& cctx, const std::vector<std::uint8_t>& bytes) {
          on_brb_deliver(cctx, j, bytes);
        },
        /*content_words=*/1, cert_mode));
  }
  for (ProcessId j = 0; j < n; ++j) {
    binary_.push_back(&make_child<BinaryConsensus>(
        [this, j](sim::Context& cctx, bool value) {
          on_binary_decide(cctx, j, value);
        },
        cert_mode, /*instance=*/j));
  }
}

void NonAuthVectorConsensus::own_start(sim::Context& ctx) {
  if (input_.has_value()) {
    brb_[static_cast<std::size_t>(ctx.id())]->broadcast(
        child_context(static_cast<std::size_t>(ctx.id())),
        encode_value(*input_));
  }
}

void NonAuthVectorConsensus::on_brb_deliver(
    sim::Context& /*brb_ctx*/, ProcessId proposer,
    const std::vector<std::uint8_t>& content) {
  const auto idx = static_cast<std::size_t>(proposer);
  if (proposals_[idx].has_value()) return;
  proposals_[idx] = decode_value(content);
  if (proposing_ones_ && !proposed_[idx]) {
    proposed_[idx] = true;
    binary_[idx]->propose(child_context(static_cast<std::size_t>(n_) + idx),
                          true);
  }
  // A late proposal can complete the decision condition (line 21).
  maybe_decide(child_context(idx));
}

void NonAuthVectorConsensus::on_binary_decide(sim::Context& ctx,
                                              ProcessId instance, bool value) {
  const auto idx = static_cast<std::size_t>(instance);
  if (decisions_[idx].has_value()) return;
  decisions_[idx] = value;
  ++decided_count_;
  if (value) ++ones_;

  if (proposing_ones_ && ones_ >= core::quorum_n_minus_t(n_, ctx.t())) {
    // n-t instances decided 1 (line 16): propose 0 everywhere else.
    proposing_ones_ = false;
    for (ProcessId j = 0; j < n_; ++j) {
      const auto jdx = static_cast<std::size_t>(j);
      if (proposed_[jdx]) continue;
      proposed_[jdx] = true;
      binary_[jdx]->propose(child_context(static_cast<std::size_t>(n_) + jdx),
                            false);
    }
  }
  maybe_decide(ctx);
}

void NonAuthVectorConsensus::maybe_decide(sim::Context& ctx) {
  if (has_decided() || decided_count_ < n_) return;
  // The first n-t processes whose instances decided 1, by index (line 21).
  core::InputConfig vector(n_);
  int taken = 0;
  for (ProcessId j = 0; j < n_ && taken < core::quorum_n_minus_t(n_, ctx.t());
       ++j) {
    const auto idx = static_cast<std::size_t>(j);
    if (decisions_[idx] != std::optional<bool>(true)) continue;
    if (!proposals_[idx].has_value()) return;  // wait for the BRB delivery
    vector.set(j, *proposals_[idx]);
    ++taken;
  }
  if (taken < core::quorum_n_minus_t(n_, ctx.t())) return;
  deliver_vector(ctx, vector);
}

}  // namespace valcon::consensus
