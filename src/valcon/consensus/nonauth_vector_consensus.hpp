// Non-authenticated vector consensus — Algorithm 3 (Appendix B.2).
//
//   propose(v):  reliably broadcast <PROPOSAL, v> (Bracha BRB, instance per
//                process);
//   on BRB-deliver of P_j's proposal: record it; if still in the "proposing
//                1s" phase, propose 1 to binary instance j;
//   on n-t binary instances deciding 1 (first time): propose 0 to every
//                instance not yet proposed to;
//   when all n instances decided and the proposals of the first n-t
//                1-deciders are known: decide the corresponding vector.
//
// Vector Validity holds because the binary consensus only decides 1 for
// instance j if some correct process proposed 1, i.e. BRB-delivered P_j's
// proposal — and BRB Consistency makes all correct processes agree on what
// that proposal is (Theorem 8). No signatures anywhere. Message complexity
// O(n^4) worst case (n BRBs at O(n^2) + n binary instances at O(n^2) per
// round, O(n) rounds worst case).
#pragma once

#include <optional>
#include <vector>

#include "valcon/bcast/brb.hpp"
#include "valcon/consensus/binary_consensus.hpp"
#include "valcon/consensus/vector_consensus.hpp"
#include "valcon/core/quorum.hpp"

namespace valcon::consensus {

class NonAuthVectorConsensus final : public VectorConsensus {
 public:
  /// Children must be sized at construction: pass the system size.
  /// `cert_mode` selects the certificate backend for the vote-heavy child
  /// rounds (BRB echoes, binary prevotes/precommits); see core/quorum.hpp.
  explicit NonAuthVectorConsensus(
      int n, core::CertMode cert_mode = core::CertMode::kPerVote);

 protected:
  void own_start(sim::Context& ctx) override;

 private:
  void on_brb_deliver(sim::Context& ctx, ProcessId proposer,
                      const std::vector<std::uint8_t>& content);
  void on_binary_decide(sim::Context& ctx, ProcessId instance, bool value);
  void maybe_decide(sim::Context& ctx);

  int n_;
  std::vector<bcast::ReliableBroadcast*> brb_;      // child idx = j
  std::vector<BinaryConsensus*> binary_;            // child idx = n + j
  std::vector<std::optional<Value>> proposals_;     // BRB-delivered proposals
  std::vector<std::optional<bool>> decisions_;      // binary decisions
  std::vector<bool> proposed_;                      // proposed to binary j?
  bool proposing_ones_ = true;
  int ones_ = 0;
  int decided_count_ = 0;
};

}  // namespace valcon::consensus
