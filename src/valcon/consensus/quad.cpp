#include "valcon/consensus/quad.hpp"

#include "valcon/core/thresholds.hpp"

namespace valcon::consensus {

// ---------------------------------------------------------------- wire

namespace {

// Extra wire words an aggregate-backend QC costs over the single word the
// threshold-signature backend pays (the voter bitset). Zero in per-vote
// mode, keeping that mode's accounting — and the pinned sweeps — intact.
std::size_t extra_qc_words(const QuorumCert& qc) {
  return qc.aggregate ? qc.voters.words().size() : 0;
}

std::size_t extra_qc_words(const std::optional<QuorumCert>& qc) {
  return qc.has_value() ? extra_qc_words(*qc) : 0;
}

}  // namespace

struct Quad::MViewChange final : sim::Payload {
  MViewChange(std::int64_t v, std::optional<QuorumCert> qc_in,
              QuadProposalPtr value_in)
      : view(v), qc(std::move(qc_in)), value(std::move(value_in)) {}
  VALCON_PAYLOAD_TYPE("quad/view-change")
  [[nodiscard]] std::size_t size_words() const override {
    return 2 + (value ? value->size_words() : 0) + extra_qc_words(qc);
  }
  std::int64_t view;
  std::optional<QuorumCert> qc;
  QuadProposalPtr value;  // the value certified by qc, if any
};

struct Quad::MPropose final : sim::Payload {
  MPropose(std::int64_t v, QuadProposalPtr value_in,
           std::optional<QuorumCert> justify_in)
      : view(v), value(std::move(value_in)), justify(std::move(justify_in)) {}
  VALCON_PAYLOAD_TYPE("quad/propose")
  [[nodiscard]] std::size_t size_words() const override {
    return 2 + (value ? value->size_words() : 0) + extra_qc_words(justify);
  }
  std::int64_t view;
  QuadProposalPtr value;
  std::optional<QuorumCert> justify;
};

struct Quad::MPrepareVote final : sim::Payload {
  MPrepareVote(std::int64_t v, crypto::Hash d, crypto::Signature s)
      : view(v), digest(d), partial(s) {}
  VALCON_PAYLOAD_TYPE("quad/prepare-vote")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  std::int64_t view;
  crypto::Hash digest;
  crypto::Signature partial;
};

struct Quad::MPrecommit final : sim::Payload {
  MPrecommit(std::int64_t v, QuadProposalPtr value_in, QuorumCert qc_in)
      : view(v), value(std::move(value_in)), qc(std::move(qc_in)) {}
  VALCON_PAYLOAD_TYPE("quad/precommit")
  [[nodiscard]] std::size_t size_words() const override {
    return 2 + (value ? value->size_words() : 0) + extra_qc_words(qc);
  }
  std::int64_t view;
  QuadProposalPtr value;
  QuorumCert qc;
};

struct Quad::MCommitVote final : sim::Payload {
  MCommitVote(std::int64_t v, crypto::Hash d, crypto::Signature s)
      : view(v), digest(d), partial(s) {}
  VALCON_PAYLOAD_TYPE("quad/commit-vote")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  std::int64_t view;
  crypto::Hash digest;
  crypto::Signature partial;
};

struct Quad::MDecide final : sim::Payload {
  MDecide(QuadProposalPtr value_in, QuorumCert qc_in)
      : value(std::move(value_in)), qc(std::move(qc_in)) {}
  VALCON_PAYLOAD_TYPE("quad/decide")
  [[nodiscard]] std::size_t size_words() const override {
    return 2 + (value ? value->size_words() : 0) + extra_qc_words(qc);
  }
  QuadProposalPtr value;
  QuorumCert qc;
};

struct Quad::MEpochOver final : sim::Payload {
  MEpochOver(std::int64_t e, crypto::Signature s) : epoch(e), partial(s) {}
  VALCON_PAYLOAD_TYPE("quad/epoch-over")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  std::int64_t epoch;
  crypto::Signature partial;
};

struct Quad::MEpochCert final : sim::Payload {
  MEpochCert(std::int64_t e, crypto::ThresholdSignature s)
      : epoch(e), tsig(s) {}
  VALCON_PAYLOAD_TYPE("quad/epoch-cert")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  std::int64_t epoch;
  crypto::ThresholdSignature tsig;
};

// ------------------------------------------------------------- digests

crypto::Hash Quad::phase_digest(const char* phase, std::int64_t view,
                                const crypto::Hash& value) const {
  crypto::Hasher h("valcon/quad-phase");
  h.add(std::string_view(phase)).add(view).add(value);
  return h.finish();
}

crypto::Hash Quad::epoch_digest(std::int64_t epoch) const {
  crypto::Hasher h("valcon/quad-epoch");
  h.add(epoch);
  return h.finish();
}

namespace {

/// Near-miss report for a QC just formed on `winner` (sim/metrics.hpp:
/// NearMiss); an adversary that split the voters shows up as a small
/// margin / nonzero conflict count.
void report_quorum(sim::Context& ctx, const core::QuorumCollector& votes,
                   const crypto::Hash& winner) {
  const auto [margin, conflicting] = votes.rivalry(winner);
  ctx.note_quorum(margin, conflicting);
}

/// Validates either QC representation against the expected phase digest.
/// Both backends cost one signature check; the aggregate form additionally
/// pins the quorum size, which the threshold scheme bakes into the key.
bool valid_qc(sim::Context& ctx, const QuorumCert& qc,
              const crypto::Hash& expected) {
  if (qc.aggregate) {
    return qc.agg.digest == expected &&
           qc.voters.count() >=
               core::quorum_n_minus_t(ctx.n(), ctx.t()) &&
           ctx.keys().verify_aggregate(qc.voters, qc.agg);
  }
  return qc.tsig.digest == expected && ctx.keys().verify(qc.tsig);
}

}  // namespace

bool Quad::valid_prepare_qc(sim::Context& ctx, const QuorumCert& qc) const {
  return valid_qc(ctx, qc, phase_digest("prepare", qc.view, qc.value_digest));
}

bool Quad::valid_commit_qc(sim::Context& ctx, const QuorumCert& qc) const {
  return valid_qc(ctx, qc, phase_digest("commit", qc.view, qc.value_digest));
}

// ------------------------------------------------------------ lifecycle

void Quad::on_start(sim::Context& ctx) {
  started_ = true;
  enter_view(ctx, 0);
}

void Quad::propose(sim::Context& ctx, QuadProposalPtr value) {
  if (my_input_.has_value()) return;
  my_input_ = std::move(value);
  if (started_ && !decided_) maybe_propose(ctx);
}

void Quad::enter_view(sim::Context& ctx, std::int64_t view) {
  if (decided_ || view <= cur_view_) return;
  cur_view_ = view;
  const int n = ctx.n();

  // VIEW-CHANGE: report the highest prepare-QC to the leader.
  ctx.send(leader_of(view, n),
           sim::make_payload<MViewChange>(view, high_prepare_, high_value_));

  if (leader_of(view, n) == ctx.id()) {
    // Collection window before proposing (2*delta: after GST this gathers
    // the view-changes of every correct process — no hidden locks).
    ctx.set_timer(options_.propose_delay_deltas * ctx.delta(),
                  static_cast<std::uint64_t>(view) * 4 + 1);
  }
  // View timer: advance (or close the epoch) when it expires.
  ctx.set_timer(options_.view_duration_deltas * ctx.delta(),
                static_cast<std::uint64_t>(view) * 4 + 2);

  // Re-process any buffered leader-side/replica-side state for this view.
  maybe_propose(ctx);
  ViewState& vs = view_state(view);
  if (vs.pending_propose) process_propose(ctx, *vs.pending_propose);
  maybe_form_prepare_qc(ctx);
  maybe_form_commit_qc(ctx);
}

void Quad::on_timer(sim::Context& ctx, std::uint64_t tag) {
  if (decided_) return;
  const auto view = static_cast<std::int64_t>(tag / 4);
  const std::uint64_t kind = tag % 4;
  if (view != cur_view_) return;  // stale timer
  const int n = ctx.n();

  if (kind == 1) {
    view_state(view).propose_timer_fired = true;
    maybe_propose(ctx);
    return;
  }
  if (kind == 2) {
    // View expired.
    if ((view + 1) % n != 0) {
      enter_view(ctx, view + 1);
      return;
    }
    // Last view of its epoch: signal EPOCH-OVER and wait for the
    // certificate (RareSync-style synchronization).
    const std::int64_t epoch = epoch_of(view, n);
    const crypto::Signature partial =
        ctx.signer().sign(epoch_digest(epoch));
    ctx.broadcast(sim::make_payload<MEpochOver>(epoch, partial));
  }
}

// ---------------------------------------------------------- leader side

void Quad::maybe_propose(sim::Context& ctx) {
  const int n = ctx.n();
  const int t = ctx.t();
  if (decided_ || cur_view_ < 0) return;
  if (leader_of(cur_view_, n) != ctx.id()) return;
  ViewState& vs = view_state(cur_view_);
  if (vs.proposed || !vs.propose_timer_fired) return;
  if (static_cast<int>(vs.view_change_senders.size()) <
      core::quorum_n_minus_t(n, t)) {
    return;
  }

  // Highest valid prepare-QC among the received view-changes, else own input.
  std::optional<QuorumCert> best;
  QuadProposalPtr best_value;
  for (const auto& [qc, value] : vs.view_changes) {
    if (!qc.has_value() || !value) continue;
    if (!valid_prepare_qc(ctx, *qc)) continue;
    if (value->digest() != qc->value_digest) continue;
    if (!best.has_value() || qc->view > best->view) {
      best = qc;
      best_value = value;
    }
  }
  QuadProposalPtr value = best.has_value() ? best_value : my_input_.value_or(nullptr);
  if (!value) return;  // no input yet: retry when propose() arrives
  if (!verifier_(ctx, *value)) return;

  vs.proposed = true;
  ctx.broadcast(sim::make_payload<MPropose>(cur_view_, value, best));
}

void Quad::maybe_form_prepare_qc(sim::Context& ctx) {
  const int n = ctx.n();
  const int t = ctx.t();
  if (cur_view_ < 0 || leader_of(cur_view_, n) != ctx.id()) return;
  ViewState& vs = view_state(cur_view_);
  if (vs.sent_precommit || !vs.proposed) return;
  // The collector keys by the digest the votes sign — the phase digest —
  // while only the leader's own pending proposal can ever certify, so the
  // check is direct: count the votes on that proposal's phase digest.
  if (!vs.pending_propose) return;
  const QuadProposalPtr value = vs.pending_propose->value;
  const crypto::Hash value_digest = value->digest();
  const crypto::Hash digest =
      phase_digest("prepare", cur_view_, value_digest);
  const int quorum = core::quorum_n_minus_t(n, t);
  if (vs.prepare_votes.count(digest) < quorum) return;
  QuorumCert qc;
  qc.view = cur_view_;
  qc.value_digest = value_digest;
  if (options_.cert_mode == core::CertMode::kAggregate) {
    auto cert =
        core::certify_verified(vs.prepare_votes, ctx.keys(), digest, n, quorum);
    if (!cert) return;
    qc.aggregate = true;
    qc.voters = std::move(cert->voters);
    qc.agg = cert->agg;
  } else {
    const auto tsig = ctx.keys().combine(vs.prepare_votes.partials(digest));
    if (!tsig.has_value()) return;
    qc.tsig = *tsig;
  }
  vs.sent_precommit = true;
  report_quorum(ctx, vs.prepare_votes, digest);
  ctx.broadcast(sim::make_payload<MPrecommit>(cur_view_, value, qc));
}

void Quad::maybe_form_commit_qc(sim::Context& ctx) {
  const int n = ctx.n();
  const int t = ctx.t();
  if (cur_view_ < 0 || leader_of(cur_view_, n) != ctx.id()) return;
  ViewState& vs = view_state(cur_view_);
  if (vs.sent_decide) return;
  if (!vs.pending_propose) return;
  const QuadProposalPtr value = vs.pending_propose->value;
  const crypto::Hash value_digest = value->digest();
  const crypto::Hash digest = phase_digest("commit", cur_view_, value_digest);
  const int quorum = core::quorum_n_minus_t(n, t);
  if (vs.commit_votes.count(digest) < quorum) return;
  QuorumCert qc;
  qc.view = cur_view_;
  qc.value_digest = value_digest;
  if (options_.cert_mode == core::CertMode::kAggregate) {
    auto cert =
        core::certify_verified(vs.commit_votes, ctx.keys(), digest, n, quorum);
    if (!cert) return;
    qc.aggregate = true;
    qc.voters = std::move(cert->voters);
    qc.agg = cert->agg;
  } else {
    const auto tsig = ctx.keys().combine(vs.commit_votes.partials(digest));
    if (!tsig.has_value()) return;
    qc.tsig = *tsig;
  }
  vs.sent_decide = true;
  report_quorum(ctx, vs.commit_votes, digest);
  ctx.broadcast(sim::make_payload<MDecide>(value, qc));
}

// --------------------------------------------------------- replica side

void Quad::process_propose(sim::Context& ctx, const MPropose& msg) {
  if (decided_ || msg.view != cur_view_) return;
  ViewState& vs = view_state(msg.view);
  if (vs.prepare_voted || !msg.value) return;
  if (!verifier_(ctx, *msg.value)) return;
  // Safety rule: accept if unlocked, or the justification is at least as
  // recent as our lock, or the value matches our lock.
  const crypto::Hash digest = msg.value->digest();
  bool acceptable = !locked_.has_value();
  if (!acceptable && msg.justify.has_value() &&
      valid_prepare_qc(ctx, *msg.justify) &&
      msg.justify->value_digest == digest &&
      msg.justify->view >= locked_->view) {
    acceptable = true;
  }
  if (!acceptable && locked_.has_value() &&
      locked_->value_digest == digest) {
    acceptable = true;
  }
  if (!acceptable) return;

  vs.prepare_voted = true;
  const crypto::Hash to_sign = phase_digest("prepare", msg.view, digest);
  ctx.send(leader_of(msg.view, ctx.n()),
           sim::make_payload<MPrepareVote>(msg.view, digest,
                                           ctx.signer().sign(to_sign)));
}

void Quad::deliver_decide(sim::Context& ctx, const QuadProposalPtr& value,
                          const QuorumCert& qc) {
  if (decided_ || !value) return;
  if (!valid_commit_qc(ctx, qc) || qc.value_digest != value->digest()) return;
  if (!verifier_(ctx, *value)) return;
  decided_ = true;
  if (options_.decide_echo) {
    ctx.broadcast(sim::make_payload<MDecide>(value, qc));
  }
  if (on_decide_) on_decide_(ctx, value);
}

// ------------------------------------------------------------- messages

void Quad::on_message(sim::Context& ctx, ProcessId from,
                      const sim::PayloadPtr& m) {
  const int n = ctx.n();
  const int t = ctx.t();

  if (const auto* decide = dynamic_cast<const MDecide*>(m.get())) {
    deliver_decide(ctx, decide->value, decide->qc);
    return;
  }
  if (decided_) return;

  if (const auto* vc = dynamic_cast<const MViewChange*>(m.get())) {
    ViewState& vs = view_state(vc->view);
    if (vs.view_change_senders.insert(from).second) {
      vs.view_changes.emplace_back(vc->qc, vc->value);
    }
    maybe_propose(ctx);
    return;
  }

  if (const auto* propose = dynamic_cast<const MPropose*>(m.get())) {
    if (from != leader_of(propose->view, n)) return;
    ViewState& vs = view_state(propose->view);
    if (!vs.pending_propose) {
      vs.pending_propose =
          std::static_pointer_cast<const MPropose>(m);
    }
    if (propose->view == cur_view_) process_propose(ctx, *propose);
    return;
  }

  if (const auto* vote = dynamic_cast<const MPrepareVote*>(m.get())) {
    const crypto::Hash expected =
        phase_digest("prepare", vote->view, vote->digest);
    if (vote->partial.signer != from || vote->partial.digest != expected) {
      return;
    }
    // Aggregate mode defers the MAC check to the one verify_aggregate at
    // certificate formation (speculative aggregation).
    if (options_.cert_mode != core::CertMode::kAggregate &&
        !ctx.keys().verify(vote->partial)) {
      return;
    }
    view_state(vote->view).prepare_votes.add(vote->partial);
    if (vote->view == cur_view_) maybe_form_prepare_qc(ctx);
    return;
  }

  if (const auto* precommit = dynamic_cast<const MPrecommit*>(m.get())) {
    if (from != leader_of(precommit->view, n)) return;
    if (precommit->view != cur_view_ || !precommit->value) return;
    if (!valid_prepare_qc(ctx, precommit->qc) ||
        precommit->qc.value_digest != precommit->value->digest()) {
      return;
    }
    ViewState& vs = view_state(precommit->view);
    if (vs.commit_voted) return;
    vs.commit_voted = true;
    // Adopt as highest prepare-QC and lock.
    if (!high_prepare_.has_value() ||
        precommit->qc.view > high_prepare_->view) {
      high_prepare_ = precommit->qc;
      high_value_ = precommit->value;
    }
    locked_ = precommit->qc;
    locked_value_ = precommit->value;
    const crypto::Hash to_sign =
        phase_digest("commit", precommit->view, precommit->qc.value_digest);
    ctx.send(leader_of(precommit->view, n),
             sim::make_payload<MCommitVote>(precommit->view,
                                            precommit->qc.value_digest,
                                            ctx.signer().sign(to_sign)));
    return;
  }

  if (const auto* vote = dynamic_cast<const MCommitVote*>(m.get())) {
    const crypto::Hash expected =
        phase_digest("commit", vote->view, vote->digest);
    if (vote->partial.signer != from || vote->partial.digest != expected) {
      return;
    }
    if (options_.cert_mode != core::CertMode::kAggregate &&
        !ctx.keys().verify(vote->partial)) {
      return;
    }
    view_state(vote->view).commit_votes.add(vote->partial);
    if (vote->view == cur_view_) maybe_form_commit_qc(ctx);
    return;
  }

  if (const auto* over = dynamic_cast<const MEpochOver*>(m.get())) {
    if (over->partial.signer != from ||
        over->partial.digest != epoch_digest(over->epoch) ||
        !ctx.keys().verify(over->partial)) {
      return;
    }
    auto& [sigs, senders] = epoch_over_[over->epoch];
    if (!senders.insert(from).second) return;
    sigs.push_back(over->partial);
    if (static_cast<int>(senders.size()) >= core::quorum_n_minus_t(n, t) &&
        over->epoch > highest_epoch_cert_) {
      const auto tsig = ctx.keys().combine(sigs);
      if (tsig.has_value()) {
        handle_epoch_cert(ctx, over->epoch, *tsig);
      }
    }
    return;
  }

  if (const auto* cert = dynamic_cast<const MEpochCert*>(m.get())) {
    if (cert->tsig.digest != epoch_digest(cert->epoch) ||
        !ctx.keys().verify(cert->tsig)) {
      return;
    }
    handle_epoch_cert(ctx, cert->epoch, cert->tsig);
    return;
  }
}

void Quad::handle_epoch_cert(sim::Context& ctx, std::int64_t epoch,
                             const crypto::ThresholdSignature& tsig) {
  if (epoch <= highest_epoch_cert_) return;
  highest_epoch_cert_ = epoch;
  // Forward once so that every correct process enters within delta, then
  // enter the first view of the next epoch.
  ctx.broadcast(sim::make_payload<MEpochCert>(epoch, tsig));
  enter_view(ctx, (epoch + 1) * ctx.n());
}

}  // namespace valcon::consensus
