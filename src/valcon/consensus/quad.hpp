// Quad-style Byzantine consensus (Civit et al., DISC 2022 [28]), the
// closed-box substrate of the authenticated vector consensus (Algorithm 1)
// and of the O(n^2 log n) variant (Algorithm 6).
//
// Faithful reproduction of the properties Section 5.2.1 relies on:
//
//   * processes propose value-proof pairs; an external predicate
//     verify(value, proof) gates both proposing and deciding — correct
//     processes only decide pairs with verify = true;
//   * Agreement and Termination under partial synchrony with n > 3t;
//   * O(n^2) messages sent by correct processes after GST;
//   * linear latency after GST (and after all correct processes have
//     proposed, see the "note on Quad" in Appendix B.1).
//
// Structure (two-phase leader-based views + RareSync-style epochs):
//
//   view v, leader = v mod n. Entering a view, every process sends its
//   highest prepare-QC to the leader (VIEW-CHANGE). The leader waits 2*delta
//   (so that after GST it holds every correct lock — no hidden-lock stalls),
//   re-proposes the highest QC or its own input (PROPOSE), collects n-t
//   prepare votes into a threshold-signed prepare-QC (PRECOMMIT), which
//   locks recipients, collects n-t commit votes into a commit-QC and
//   broadcasts DECIDE. Deciders echo DECIDE once (totality under a leader
//   crash; ablation flag `decide_echo`).
//
//   Views within an epoch (n consecutive views) advance on local timers
//   only. Epoch boundaries synchronize: EPOCH-OVER carries a partial
//   signature, n-t of them combine into an epoch certificate which is
//   (re)broadcast once and entered on receipt — O(n^2) per epoch, O(1)
//   epochs after GST, hence O(n^2) messages post-GST overall.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "valcon/core/quorum.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/component.hpp"

namespace valcon::consensus {

/// A value-proof pair (VQuad x PQuad). The proof is embedded in the
/// concrete proposal object; verify() inspects both.
class QuadProposal {
 public:
  virtual ~QuadProposal() = default;
  [[nodiscard]] virtual crypto::Hash digest() const = 0;
  [[nodiscard]] virtual std::size_t size_words() const = 0;
};

using QuadProposalPtr = std::shared_ptr<const QuadProposal>;

/// verify : VQuad x PQuad -> {true, false}. Receives the component context
/// so predicates can consult the PKI and the system parameters.
using QuadVerifier =
    std::function<bool(sim::Context&, const QuadProposal&)>;

/// A quorum certificate over (phase, view, value digest), in one of two
/// backend representations: a combined threshold signature (per-vote mode)
/// or a voter bitset plus one aggregate signature (aggregate mode, set
/// `aggregate`). Validators accept either form — which form honest
/// processes emit is QuadOptions::cert_mode — and both cost one signature
/// check to verify.
struct QuorumCert {
  std::int64_t view = -1;
  crypto::Hash value_digest;
  crypto::ThresholdSignature tsig;
  bool aggregate = false;
  crypto::VoterBitset voters;
  crypto::AggregateSignature agg;
};

/// Tunable knobs for Quad (ablations in bench E5).
struct QuadOptions {
  /// View duration, in multiples of delta.
  double view_duration_deltas = 10.0;
  /// Leader's view-change collection window, in multiples of delta.
  double propose_delay_deltas = 2.0;
  /// Echo DECIDE to all once upon deciding (totality under leader crash).
  bool decide_echo = true;
  /// Certificate backend. In aggregate mode the leader skips per-vote
  /// verification on receipt and pays one verify_aggregate when it forms
  /// the certificate (speculative aggregation) — ~1 check per quorum where
  /// per-vote mode pays n-t. Epoch certificates stay threshold-signed in
  /// both modes: they certify one fixed digest per epoch, so aggregation
  /// has nothing to batch.
  core::CertMode cert_mode = core::CertMode::kPerVote;
};

class Quad final : public sim::Component {
 public:
  using DecideCb = std::function<void(sim::Context&, const QuadProposalPtr&)>;
  using Options = QuadOptions;

  Quad(QuadVerifier verifier, DecideCb on_decide, QuadOptions options = {})
      : verifier_(std::move(verifier)),
        on_decide_(std::move(on_decide)),
        options_(options) {}

  /// Proposes a value-proof pair; the caller guarantees verify(v) = true.
  /// May be invoked before or after on_start.
  void propose(sim::Context& ctx, QuadProposalPtr value);

  [[nodiscard]] bool decided() const { return decided_; }

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const sim::PayloadPtr& m) override;
  void on_timer(sim::Context& ctx, std::uint64_t tag) override;

 private:
  // ---- wire format ----
  struct MViewChange;
  struct MPropose;
  struct MPrepareVote;
  struct MPrecommit;
  struct MCommitVote;
  struct MDecide;
  struct MEpochOver;
  struct MEpochCert;

  struct ViewState {
    // Leader side.
    std::vector<std::pair<std::optional<QuorumCert>, QuadProposalPtr>>
        view_changes;
    std::set<ProcessId> view_change_senders;
    core::QuorumCollector prepare_votes;
    core::QuorumCollector commit_votes;
    bool proposed = false;
    bool propose_timer_fired = false;
    bool sent_precommit = false;
    bool sent_decide = false;
    // Replica side.
    std::shared_ptr<const MPropose> pending_propose;
    bool prepare_voted = false;
    bool commit_voted = false;
  };

  [[nodiscard]] ProcessId leader_of(std::int64_t view, int n) const {
    return static_cast<ProcessId>(view % n);
  }
  [[nodiscard]] std::int64_t epoch_of(std::int64_t view, int n) const {
    return view / n;
  }

  [[nodiscard]] crypto::Hash phase_digest(const char* phase,
                                          std::int64_t view,
                                          const crypto::Hash& value) const;
  [[nodiscard]] crypto::Hash epoch_digest(std::int64_t epoch) const;
  [[nodiscard]] bool valid_prepare_qc(sim::Context& ctx,
                                      const QuorumCert& qc) const;
  [[nodiscard]] bool valid_commit_qc(sim::Context& ctx,
                                     const QuorumCert& qc) const;

  void enter_view(sim::Context& ctx, std::int64_t view);
  void maybe_propose(sim::Context& ctx);
  void process_propose(sim::Context& ctx, const MPropose& msg);
  void maybe_form_prepare_qc(sim::Context& ctx);
  void maybe_form_commit_qc(sim::Context& ctx);
  void handle_epoch_cert(sim::Context& ctx, std::int64_t epoch,
                         const crypto::ThresholdSignature& tsig);
  void deliver_decide(sim::Context& ctx, const QuadProposalPtr& value,
                      const QuorumCert& qc);
  ViewState& view_state(std::int64_t view) { return views_[view]; }

  QuadVerifier verifier_;
  DecideCb on_decide_;
  Options options_;

  bool started_ = false;
  bool decided_ = false;
  std::optional<QuadProposalPtr> my_input_;
  std::int64_t cur_view_ = -1;

  // Highest prepare-QC seen, with its value (the paper's prepareQC-high).
  std::optional<QuorumCert> high_prepare_;
  QuadProposalPtr high_value_;
  // Lock (set when a valid prepare-QC is observed in PRECOMMIT).
  std::optional<QuorumCert> locked_;
  QuadProposalPtr locked_value_;

  std::map<std::int64_t, ViewState> views_;
  std::map<std::int64_t,
           std::pair<std::vector<crypto::Signature>, std::set<ProcessId>>>
      epoch_over_;
  std::int64_t highest_epoch_cert_ = -1;
};

}  // namespace valcon::consensus
