#include "valcon/consensus/reed_solomon.hpp"

#include <stdexcept>
#include <string>

#include "valcon/consensus/gf256.hpp"

namespace valcon::consensus {

namespace {

using Row = std::vector<std::uint8_t>;

/// Solves M x = b over GF(256) by Gaussian elimination; M is m x u,
/// augmented with b. Returns any solution (free variables = 0), or nullopt
/// if inconsistent.
std::optional<Row> solve(std::vector<Row> m, Row b) {
  const std::size_t rows = m.size();
  const std::size_t cols = rows == 0 ? 0 : m[0].size();
  std::vector<int> pivot_of_col(cols, -1);
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows; ++col) {
    std::size_t sel = rank;
    while (sel < rows && m[sel][col] == 0) ++sel;
    if (sel == rows) continue;
    std::swap(m[sel], m[rank]);
    std::swap(b[sel], b[rank]);
    const std::uint8_t inv = gf256::inv(m[rank][col]);
    for (std::size_t j = col; j < cols; ++j) m[rank][j] = gf256::mul(m[rank][j], inv);
    b[rank] = gf256::mul(b[rank], inv);
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == rank || m[r][col] == 0) continue;
      const std::uint8_t factor = m[r][col];
      for (std::size_t j = col; j < cols; ++j) {
        m[r][j] = gf256::add(m[r][j], gf256::mul(factor, m[rank][j]));
      }
      b[r] = gf256::add(b[r], gf256::mul(factor, b[rank]));
    }
    pivot_of_col[col] = static_cast<int>(rank);
    ++rank;
  }
  // Inconsistency: zero row with nonzero rhs.
  for (std::size_t r = rank; r < rows; ++r) {
    if (b[r] != 0) return std::nullopt;
  }
  Row x(cols, 0);
  for (std::size_t col = 0; col < cols; ++col) {
    if (pivot_of_col[col] >= 0) {
      x[col] = b[static_cast<std::size_t>(pivot_of_col[col])];
    }
  }
  return x;
}

/// Evaluates a polynomial (coefficients low-to-high) at x.
std::uint8_t poly_eval(const Row& coeffs, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = gf256::add(gf256::mul(acc, x), coeffs[i]);
  }
  return acc;
}

/// Divides a / b exactly; returns nullopt if the remainder is nonzero.
std::optional<Row> poly_divide_exact(Row a, const Row& b) {
  // Trim leading zeros of b.
  std::size_t bdeg = b.size();
  while (bdeg > 0 && b[bdeg - 1] == 0) --bdeg;
  if (bdeg == 0) return std::nullopt;
  if (a.size() < bdeg) {
    for (const std::uint8_t coeff : a) {
      if (coeff != 0) return std::nullopt;
    }
    return Row{};
  }
  Row quotient(a.size() - bdeg + 1, 0);
  const std::uint8_t lead_inv = gf256::inv(b[bdeg - 1]);
  for (std::size_t i = a.size(); i-- >= bdeg;) {
    const std::uint8_t coeff = gf256::mul(a[i], lead_inv);
    quotient[i - bdeg + 1] = coeff;
    if (coeff != 0) {
      for (std::size_t j = 0; j < bdeg; ++j) {
        a[i - bdeg + 1 + j] =
            gf256::add(a[i - bdeg + 1 + j], gf256::mul(coeff, b[j]));
      }
    }
    if (i == 0) break;
  }
  for (const std::uint8_t rem : a) {
    if (rem != 0) return std::nullopt;
  }
  return quotient;
}

}  // namespace

ReedSolomon::ReedSolomon(int n, int k) : n_(n), k_(k) {
  // A real error path, not an assert: the parameters come from protocol
  // configuration, and NDEBUG builds (the default RelWithDebInfo) would
  // otherwise carry an out-of-range code over GF(256) silently.
  if (k <= 0 || k > n || n > 255) {
    throw std::invalid_argument(
        "ReedSolomon requires 0 < k <= n <= 255, got n=" + std::to_string(n) +
        " k=" + std::to_string(k));
  }
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    const std::vector<std::uint8_t>& data) const {
  // Prefix the payload with its 32-bit length, then pad to a chunk multiple.
  std::vector<std::uint8_t> framed;
  const auto len = static_cast<std::uint32_t>(data.size());
  for (int b = 0; b < 4; ++b) {
    framed.push_back(static_cast<std::uint8_t>(len >> (8 * b)));
  }
  framed.insert(framed.end(), data.begin(), data.end());
  while (framed.size() % static_cast<std::size_t>(k_) != 0) {
    framed.push_back(0);
  }
  const std::size_t chunks = framed.size() / static_cast<std::size_t>(k_);

  std::vector<std::vector<std::uint8_t>> shares(
      static_cast<std::size_t>(n_), std::vector<std::uint8_t>(chunks));
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::uint8_t* coeffs = framed.data() + c * static_cast<std::size_t>(k_);
    const Row chunk(coeffs, coeffs + k_);
    for (int j = 0; j < n_; ++j) {
      shares[static_cast<std::size_t>(j)][c] =
          poly_eval(chunk, static_cast<std::uint8_t>(j + 1));
    }
  }
  return shares;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode_chunk(
    const std::vector<int>& positions, const std::vector<std::uint8_t>& values,
    int errors) const {
  const int m = static_cast<int>(positions.size());
  const int e = errors;
  if (m < k_ + 2 * e) return std::nullopt;
  // Berlekamp-Welch: find E (monic, degree e) and Q (degree < k+e) with
  // Q(x_i) = y_i * E(x_i) for all i. Unknowns: e coefficients of E (the
  // leading one is 1) and k+e coefficients of Q.
  const int unknowns = e + k_ + e;
  std::vector<Row> mat(static_cast<std::size_t>(m),
                       Row(static_cast<std::size_t>(unknowns), 0));
  Row rhs(static_cast<std::size_t>(m), 0);
  for (int i = 0; i < m; ++i) {
    const auto x = static_cast<std::uint8_t>(positions[static_cast<std::size_t>(i)] + 1);
    const std::uint8_t y = values[static_cast<std::size_t>(i)];
    // Q coefficients: + x^a
    for (int a = 0; a < k_ + e; ++a) {
      mat[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)] =
          gf256::pow(x, static_cast<unsigned>(a));
    }
    // E coefficients (excluding monic lead): - y * x^b  (minus == plus)
    for (int b = 0; b < e; ++b) {
      mat[static_cast<std::size_t>(i)][static_cast<std::size_t>(k_ + e + b)] =
          gf256::mul(y, gf256::pow(x, static_cast<unsigned>(b)));
    }
    // rhs: y * x^e (the monic term moved across)
    rhs[static_cast<std::size_t>(i)] =
        gf256::mul(y, gf256::pow(x, static_cast<unsigned>(e)));
  }
  const auto solution = solve(std::move(mat), std::move(rhs));
  if (!solution.has_value()) return std::nullopt;

  Row q(solution->begin(), solution->begin() + (k_ + e));
  Row err(solution->begin() + (k_ + e), solution->end());
  err.push_back(1);  // monic lead
  const auto p = poly_divide_exact(std::move(q), err);
  if (!p.has_value()) return std::nullopt;
  Row data(static_cast<std::size_t>(k_), 0);
  for (std::size_t i = 0; i < p->size() && i < data.size(); ++i) {
    data[i] = (*p)[i];
  }
  // Degree check: P must have degree < k.
  for (std::size_t i = data.size(); i < p->size(); ++i) {
    if ((*p)[i] != 0) return std::nullopt;
  }
  // Agreement check: P must match all but at most e of the given points.
  int mismatches = 0;
  for (int i = 0; i < m; ++i) {
    const auto x = static_cast<std::uint8_t>(positions[static_cast<std::size_t>(i)] + 1);
    if (poly_eval(data, x) != values[static_cast<std::size_t>(i)]) {
      ++mismatches;
    }
  }
  if (mismatches > e) return std::nullopt;
  return data;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode(
    const std::vector<std::optional<std::vector<std::uint8_t>>>& shares,
    int errors) const {
  std::vector<int> positions;
  std::size_t chunks = 0;
  for (int j = 0; j < n_ && j < static_cast<int>(shares.size()); ++j) {
    const auto& share = shares[static_cast<std::size_t>(j)];
    if (!share.has_value()) continue;
    if (chunks == 0) {
      chunks = share->size();
    } else if (share->size() != chunks) {
      continue;  // malformed share: wrong length
    }
    positions.push_back(j);
  }
  if (chunks == 0) return std::nullopt;

  std::vector<std::uint8_t> framed;
  framed.reserve(chunks * static_cast<std::size_t>(k_));
  for (std::size_t c = 0; c < chunks; ++c) {
    std::vector<std::uint8_t> values;
    values.reserve(positions.size());
    for (const int j : positions) {
      values.push_back((*shares[static_cast<std::size_t>(j)])[c]);
    }
    const auto chunk = decode_chunk(positions, values, errors);
    if (!chunk.has_value()) return std::nullopt;
    framed.insert(framed.end(), chunk->begin(), chunk->end());
  }
  if (framed.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int b = 0; b < 4; ++b) {
    len |= static_cast<std::uint32_t>(framed[static_cast<std::size_t>(b)])
           << (8 * b);
  }
  if (framed.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  return std::vector<std::uint8_t>(framed.begin() + 4,
                                   framed.begin() + 4 + len);
}

}  // namespace valcon::consensus
