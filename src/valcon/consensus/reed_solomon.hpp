// Reed-Solomon codes over GF(2^8) with error correction, the coding layer
// of ADD [36] (Appendix B.3).
//
// Data of k bytes per chunk is the coefficient vector of a degree < k
// polynomial p; the share for position j is p(alpha_j) with alpha_j = j+1.
// Decoding runs Berlekamp-Welch: given m >= k + 2e points of which at most
// e are wrong, it recovers p. ADD's online error correction retries with
// growing e as shares arrive, so Byzantine garbage cannot block or corrupt
// reconstruction as long as at most t of the n shares are bad and
// n - t >= k + t (i.e. n > 3t with k = t + 1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace valcon::consensus {

class ReedSolomon {
 public:
  /// n shares total, k data symbols per chunk. Requires 0 < k <= n <= 255.
  ReedSolomon(int n, int k);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }

  /// Splits `data` into chunks of k bytes (zero-padded; the original length
  /// is prepended) and returns n shares, each of equal size.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      const std::vector<std::uint8_t>& data) const;

  /// Reconstructs the original data from shares[i] for positions i where
  /// present[i] is true, tolerating up to `errors` wrong shares among them.
  /// Returns nullopt if decoding fails (too few shares / too many errors).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decode(
      const std::vector<std::optional<std::vector<std::uint8_t>>>& shares,
      int errors) const;

 private:
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decode_chunk(
      const std::vector<int>& positions,
      const std::vector<std::uint8_t>& values, int errors) const;

  int n_;
  int k_;
};

}  // namespace valcon::consensus
