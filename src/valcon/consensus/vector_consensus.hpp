// Vector consensus (Section 5.2.1).
//
// Correct processes agree on an input configuration with exactly n-t
// process-proposal pairs (Vo = I_{n-t}), under Vector Validity: if the
// decided vector assigns proposal v to a *correct* process P, then P really
// proposed v. The paper gives three implementations, all provided here:
//
//   AuthVectorConsensus  (Algorithm 1)  — signed proposals + Quad,
//                                         O(n^2) messages;
//   NonAuthVectorConsensus (Algorithm 3) — Bracha BRB + n binary consensus
//                                         instances, no signatures,
//                                         O(n^4) messages worst case;
//   FastVectorConsensus  (Algorithm 6)  — vector dissemination + Quad over
//                                         hashes + ADD, O(n^2 log n) words
//                                         but exponential worst-case latency.
//
// Universal (Algorithm 2) is parametric in which implementation it stacks on.
#pragma once

#include <functional>
#include <optional>

#include "valcon/core/input_config.hpp"
#include "valcon/sim/component.hpp"

namespace valcon::consensus {

class VectorConsensus : public sim::Mux {
 public:
  using DecideCb = std::function<void(sim::Context&, const core::InputConfig&)>;

  /// Sets the proposal; must be called before the component starts.
  void set_input(Value v) { input_ = v; }

  void set_on_decide(DecideCb cb) { on_decide_ = std::move(cb); }

  [[nodiscard]] bool has_decided() const { return decided_vector_.has_value(); }
  [[nodiscard]] const std::optional<core::InputConfig>& decided_vector() const {
    return decided_vector_;
  }

 protected:
  /// Fires the decision exactly once.
  void deliver_vector(sim::Context& ctx, const core::InputConfig& vec) {
    if (decided_vector_.has_value()) return;
    decided_vector_ = vec;
    if (on_decide_) on_decide_(ctx, vec);
  }

  std::optional<Value> input_;

 private:
  DecideCb on_decide_;
  std::optional<core::InputConfig> decided_vector_;
};

/// Digest a (process, proposal) pair as signed in proposal messages
/// (Algorithms 1 and 6) and verified by Quad's external predicate.
[[nodiscard]] crypto::Hash proposal_digest(ProcessId proposer, Value v);

}  // namespace valcon::consensus
