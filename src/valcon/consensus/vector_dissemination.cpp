#include "valcon/consensus/vector_dissemination.hpp"

#include "valcon/consensus/auth_vector_consensus.hpp"
#include "valcon/core/thresholds.hpp"

namespace valcon::consensus {

// ------------------------------------------------------ blob encoding

std::vector<std::uint8_t> encode_vector_blob(
    const core::InputConfig& vec, const std::vector<crypto::Signature>& sigs) {
  std::vector<std::uint8_t> out = vec.serialize();
  const auto append_u64 = [&out](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  };
  append_u64(sigs.size());
  for (const crypto::Signature& sig : sigs) {
    append_u64(static_cast<std::uint64_t>(sig.signer));
    out.insert(out.end(), sig.digest.bytes.begin(), sig.digest.bytes.end());
    append_u64(sig.mac);
  }
  return out;
}

std::optional<std::pair<core::InputConfig, std::vector<crypto::Signature>>>
decode_vector_blob(const std::vector<std::uint8_t>& blob) {
  if (blob.empty()) return std::nullopt;
  const int n = blob[0];
  const std::size_t vec_len = 1 + static_cast<std::size_t>(n) * 9;
  if (blob.size() < vec_len + 8) return std::nullopt;
  const auto vec = core::InputConfig::deserialize(
      std::vector<std::uint8_t>(blob.begin(), blob.begin() + vec_len));
  if (!vec.has_value()) return std::nullopt;

  std::size_t pos = vec_len;
  const auto read_u64 = [&blob, &pos]() {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(blob[pos++]) << (8 * b);
    }
    return v;
  };
  const std::uint64_t count = read_u64();
  constexpr std::size_t kSigBytes = 8 + 32 + 8;
  if (blob.size() != pos + count * kSigBytes) return std::nullopt;
  std::vector<crypto::Signature> sigs;
  sigs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    crypto::Signature sig;
    sig.signer = static_cast<ProcessId>(read_u64());
    for (std::size_t b = 0; b < 32; ++b) sig.digest.bytes[b] = blob[pos++];
    sig.mac = read_u64();
    sigs.push_back(sig);
  }
  return std::make_pair(*vec, std::move(sigs));
}

// ----------------------------------------------------------- messages

struct VectorDissemination::MStored final : sim::Payload {
  MStored(crypto::Hash h, crypto::Signature p) : hash(h), partial(p) {}
  VALCON_PAYLOAD_TYPE("dissem/stored")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  crypto::Hash hash;
  crypto::Signature partial;
};

struct VectorDissemination::MConfirm final : sim::Payload {
  MConfirm(crypto::Hash h, crypto::ThresholdSignature s) : hash(h), tsig(s) {}
  VALCON_PAYLOAD_TYPE("dissem/confirm")
  [[nodiscard]] std::size_t size_words() const override { return 2; }
  crypto::Hash hash;
  crypto::ThresholdSignature tsig;
};

// ----------------------------------------------------------- protocol

VectorDissemination::VectorDissemination(AcquireCb on_acquire)
    : on_acquire_(std::move(on_acquire)) {
  slow_ = &make_child<bcast::SlowBroadcast>(
      [this](sim::Context& cctx, const std::vector<std::uint8_t>& blob,
             ProcessId from) { on_slow_deliver(cctx, blob, from); });
}

void VectorDissemination::disseminate(
    sim::Context& ctx, const core::InputConfig& vec,
    const std::vector<crypto::Signature>& proposal_sigs) {
  if (my_hash_.has_value() || acquired_) return;
  const CallScope scope(this, ctx);  // external entry point: bind context
  my_hash_ = vec.digest();
  cache_.emplace(*my_hash_, vec);
  slow_->broadcast(child_context(0), encode_vector_blob(vec, proposal_sigs));
}

std::optional<core::InputConfig> VectorDissemination::lookup(
    const crypto::Hash& h) const {
  const auto it = cache_.find(h);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

void VectorDissemination::on_slow_deliver(
    sim::Context& slow_ctx, const std::vector<std::uint8_t>& blob,
    ProcessId from) {
  if (acquired_) return;
  if (!acked_.insert(from).second) return;  // only the first vector per peer
  const auto decoded = decode_vector_blob(blob);
  if (!decoded.has_value()) return;
  const auto& [vec, sigs] = *decoded;
  // Verify the embedded proposal signatures before caching and signing
  // (Vector Validity hinges on this check; cf. Theorem 11's proof).
  if (vec.n() != slow_ctx.n() ||
      vec.count() != core::quorum_n_minus_t(slow_ctx.n(), slow_ctx.t())) {
    return;
  }
  for (const ProcessId p : vec.processes()) {
    const crypto::Hash expected = proposal_digest(p, *vec.at(p));
    bool ok = false;
    for (const crypto::Signature& sig : sigs) {
      if (sig.signer == p && sig.digest == expected &&
          slow_ctx.keys().verify(sig)) {
        ok = true;
        break;
      }
    }
    if (!ok) return;
  }
  const crypto::Hash h = vec.digest();
  cache_.emplace(h, vec);
  // STORED is a dissemination-level message: send through *this* layer's
  // context (the slow-broadcast child context would mis-route it).
  ctx().send(from, sim::make_payload<MStored>(h, ctx().signer().sign(h)));
}

void VectorDissemination::own_message(sim::Context& ctx, ProcessId from,
                                      const sim::PayloadPtr& m) {
  if (acquired_) return;  // stopped participating
  const int n = ctx.n();
  const int t = ctx.t();

  if (const auto* stored = dynamic_cast<const MStored*>(m.get())) {
    if (!my_hash_.has_value() || confirmed_) return;
    if (stored->hash != *my_hash_) return;
    if (stored->partial.signer != from ||
        stored->partial.digest != *my_hash_ ||
        !ctx.keys().verify(stored->partial)) {
      return;
    }
    if (!stored_from_.insert(from).second) return;
    stored_partials_.push_back(stored->partial);
    if (static_cast<int>(stored_from_.size()) >=
        core::quorum_n_minus_t(n, t)) {
      const auto tsig = ctx.keys().combine(stored_partials_);
      if (tsig.has_value()) {
        confirmed_ = true;
        ctx.broadcast(sim::make_payload<MConfirm>(*my_hash_, *tsig));
      }
    }
    return;
  }

  if (const auto* confirm = dynamic_cast<const MConfirm*>(m.get())) {
    if (confirm->tsig.digest != confirm->hash ||
        !ctx.keys().verify(confirm->tsig)) {
      return;
    }
    acquired_ = true;
    slow_->stop();
    ctx.broadcast(sim::make_payload<MConfirm>(confirm->hash, confirm->tsig));
    if (on_acquire_) on_acquire_(ctx, confirm->hash, confirm->tsig);
    return;
  }
}

}  // namespace valcon::consensus
