// Vector dissemination — Algorithm 5 (Appendix B.3.1).
//
// Every correct process disseminates a vector of n-t signed proposals; every
// correct process eventually *acquires* (H, tsig): a hash of some
// disseminated vector together with an (n-t)-threshold signature over it.
// Properties (Appendix B.3.1): Termination, Integrity (acquired pairs
// verify), Redundancy (a threshold signature implies t+1 correct processes
// cached the matching vector — which is exactly what ADD needs downstream).
//
//   disseminate(vec): store hash, slow-broadcast the vector (Algorithm 4);
//   on slow-deliver:  first vector from each process is cached (after
//                     verifying its embedded proposal signatures, the check
//                     the paper notes it omits for brevity) and acknowledged
//                     with a partial signature on its hash (STORED);
//   on n-t STORED:    combine into a threshold signature, broadcast CONFIRM;
//   on valid CONFIRM: rebroadcast once, acquire, stop participating.
//
// The slow-broadcast pacing keeps the post-GST word count at O(n^2): only
// the first correct process to finish dissemination pays O(n) words per
// message, everyone else sends O(1) slow-broadcast messages before the
// CONFIRM wave shuts the protocol down (Theorem 10).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "valcon/bcast/slow_broadcast.hpp"
#include "valcon/consensus/vector_consensus.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/component.hpp"

namespace valcon::consensus {

class VectorDissemination final : public sim::Mux {
 public:
  using AcquireCb = std::function<void(
      sim::Context&, const crypto::Hash&, const crypto::ThresholdSignature&)>;

  explicit VectorDissemination(AcquireCb on_acquire);

  /// Starts disseminating (vector, proposal signatures).
  void disseminate(sim::Context& ctx, const core::InputConfig& vec,
                   const std::vector<crypto::Signature>& proposal_sigs);

  /// The cached vector with this hash, if any (consumed by Algorithm 6 to
  /// feed ADD).
  [[nodiscard]] std::optional<core::InputConfig> lookup(
      const crypto::Hash& h) const;

  [[nodiscard]] bool acquired() const { return acquired_; }

 protected:
  void own_message(sim::Context& ctx, ProcessId from,
                   const sim::PayloadPtr& m) override;

 private:
  struct MStored;
  struct MConfirm;

  void on_slow_deliver(sim::Context& slow_ctx,
                       const std::vector<std::uint8_t>& blob, ProcessId from);

  AcquireCb on_acquire_;
  bcast::SlowBroadcast* slow_ = nullptr;

  std::optional<crypto::Hash> my_hash_;
  std::map<crypto::Hash, core::InputConfig> cache_;
  std::set<ProcessId> stored_from_;
  std::vector<crypto::Signature> stored_partials_;
  std::set<ProcessId> acked_;  // disseminators already acknowledged
  bool confirmed_ = false;
  bool acquired_ = false;
};

/// Wire format of the disseminated blob: vector + its proposal signatures.
[[nodiscard]] std::vector<std::uint8_t> encode_vector_blob(
    const core::InputConfig& vec,
    const std::vector<crypto::Signature>& sigs);
[[nodiscard]] std::optional<
    std::pair<core::InputConfig, std::vector<crypto::Signature>>>
decode_vector_blob(const std::vector<std::uint8_t>& blob);

}  // namespace valcon::consensus
