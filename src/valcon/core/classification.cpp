#include "valcon/core/classification.hpp"

namespace valcon::core {

std::string Classification::summary() const {
  std::string out;
  out += trivial ? "trivial" : "non-trivial";
  out += similarity_condition ? ", C_S holds" : ", C_S fails";
  out += solvable ? ", solvable" : ", unsolvable";
  if (trivial && always_admissible.has_value()) {
    out += " (always-admissible: " + std::to_string(*always_admissible) + ")";
  }
  if (!similarity_condition && cs_counterexample.has_value()) {
    out += " (C_S counterexample: " + cs_counterexample->to_string() + ")";
  }
  return out;
}

std::optional<Value> always_admissible_value(
    const ValidityProperty& val, int n, int t,
    const std::vector<Value>& in_domain,
    const std::vector<Value>& out_domain) {
  for (const Value v : out_domain) {
    bool everywhere = true;
    for_each_config(n, in_domain, n - t, n, [&](const InputConfig& c) {
      if (!val.admissible(c, v)) {
        everywhere = false;
        return false;
      }
      return true;
    });
    if (everywhere) return v;
  }
  return std::nullopt;
}

std::optional<InputConfig> similarity_condition_counterexample(
    const ValidityProperty& val, int n, int t,
    const std::vector<Value>& in_domain,
    const std::vector<Value>& out_domain) {
  std::optional<InputConfig> counterexample;
  for_each_config(n, in_domain, n - t, n - t, [&](const InputConfig& c) {
    const auto lambda = generic_lambda(val, c, t, in_domain, out_domain);
    if (!lambda.has_value()) {
      counterexample = c;
      return false;
    }
    return true;
  });
  return counterexample;
}

Classification classify(const ValidityProperty& val, int n, int t,
                        const std::vector<Value>& in_domain,
                        const std::vector<Value>& out_domain) {
  Classification result;
  result.always_admissible =
      always_admissible_value(val, n, t, in_domain, out_domain);
  result.trivial = result.always_admissible.has_value();
  result.cs_counterexample =
      similarity_condition_counterexample(val, n, t, in_domain, out_domain);
  result.similarity_condition = !result.cs_counterexample.has_value();
  // The paper's characterization: Theorems 1 & 2 for n <= 3t, 3 & 5 for
  // n > 3t.
  result.solvable =
      (n <= 3 * t) ? result.trivial : result.similarity_condition;
  return result;
}

}  // namespace valcon::core
