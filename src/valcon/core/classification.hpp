// Classification of validity properties (Sections 4 and 5), decidable over
// finite domains:
//
//   * trivial            — ∃ v always admissible (Theorem 1's conclusion;
//                          the witness is Theorem 2's always_admissible
//                          procedure output);
//   * similarity condition C_S (Definition 2) — ∀ c ∈ I_{n-t} the
//                          intersection ⋂_{c' ~ c} val(c') is nonempty
//                          (with a computable choice — enumeration is the
//                          finite procedure);
//   * solvable           — the paper's characterization:
//                            n <= 3t : solvable  <=>  trivial (Thms 1, 2)
//                            n  > 3t : solvable  <=>  C_S     (Thms 3, 5)
//
// Every check reports a witness/counterexample so benches and tests can
// display *why* a property lands where it does on the Figure 1 map.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "valcon/core/lambda.hpp"
#include "valcon/core/validity.hpp"

namespace valcon::core {

struct Classification {
  bool trivial = false;
  /// A value admissible under every configuration, when trivial.
  std::optional<Value> always_admissible;

  bool similarity_condition = false;
  /// A configuration in I_{n-t} with empty ⋂_{c'~c} val(c'), when C_S fails.
  std::optional<InputConfig> cs_counterexample;

  bool solvable = false;

  [[nodiscard]] std::string summary() const;
};

/// Classifies `val` for the system (n, t) over finite proposal / decision
/// domains. Exponential in (n, |in_domain|) — intended for small instances.
[[nodiscard]] Classification classify(const ValidityProperty& val, int n,
                                      int t,
                                      const std::vector<Value>& in_domain,
                                      const std::vector<Value>& out_domain);

/// Theorem 2's finite `always_admissible` procedure: a value admissible for
/// every configuration, or nullopt if none exists (property non-trivial).
[[nodiscard]] std::optional<Value> always_admissible_value(
    const ValidityProperty& val, int n, int t,
    const std::vector<Value>& in_domain, const std::vector<Value>& out_domain);

/// Checks C_S: every c ∈ I_{n-t} admits a common admissible value across
/// sim(c). Returns a counterexample configuration if the check fails.
[[nodiscard]] std::optional<InputConfig> similarity_condition_counterexample(
    const ValidityProperty& val, int n, int t,
    const std::vector<Value>& in_domain, const std::vector<Value>& out_domain);

}  // namespace valcon::core
