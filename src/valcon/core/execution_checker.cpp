#include "valcon/core/execution_checker.hpp"

namespace valcon::core {

ExecutionReport check_execution(const ValidityProperty& val, int n, int t,
                                const std::vector<Value>& proposals,
                                const std::set<ProcessId>& faulty,
                                const std::map<ProcessId, Value>& decisions) {
  ExecutionReport report;
  report.input_config = InputConfig(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (faulty.count(p) != 0) continue;
    report.input_config.set(p, proposals[static_cast<std::size_t>(p)]);
  }
  if (!report.input_config.valid_for(n, t)) {
    report.violations.push_back(
        "execution has more than t faulty processes: outside the model");
    return report;
  }

  report.termination = true;
  for (ProcessId p = 0; p < n; ++p) {
    if (faulty.count(p) != 0) continue;
    if (decisions.count(p) == 0) {
      report.termination = false;
      report.violations.push_back("Termination: P" + std::to_string(p) +
                                  " never decided");
    }
  }

  report.agreement = true;
  std::optional<Value> seen;
  for (const auto& [p, v] : decisions) {
    if (faulty.count(p) != 0) continue;  // faulty decisions are unconstrained
    if (seen.has_value() && *seen != v) {
      report.agreement = false;
      report.violations.push_back(
          "Agreement: conflicting decisions " + std::to_string(*seen) +
          " and " + std::to_string(v));
    }
    seen = v;
  }

  report.validity = true;
  for (const auto& [p, v] : decisions) {
    if (faulty.count(p) != 0) continue;
    if (!val.admissible(report.input_config, v)) {
      report.validity = false;
      report.violations.push_back(
          "Validity(" + val.name() + "): P" + std::to_string(p) +
          " decided " + std::to_string(v) + " not in val(" +
          report.input_config.to_string() + ")");
    }
  }
  return report;
}

}  // namespace valcon::core
