// Formal run validation: checks a finished execution against the problem
// definition of Section 3.2/3.3 —
//
//   Termination : every correct process decided;
//   Agreement   : no two correct processes decided differently;
//   Validity    : every decided value is in val(input_conf(E)).
//
// Used by the tests and available to library users as a harness-level
// assertion (e.g. around fault-injection campaigns).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "valcon/core/validity.hpp"

namespace valcon::core {

struct ExecutionReport {
  bool termination = false;
  bool agreement = false;
  bool validity = false;
  /// The execution's input configuration input_conf(E).
  InputConfig input_config;
  /// Human-readable reasons for each failed check.
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const {
    return termination && agreement && validity;
  }
};

/// Validates decisions of an execution. `proposals` holds every process's
/// proposal (entries of faulty processes are ignored), `faulty` the set of
/// Byzantine processes, and `decisions` the values decided by (a subset of)
/// the correct processes.
[[nodiscard]] ExecutionReport check_execution(
    const ValidityProperty& val, int n, int t,
    const std::vector<Value>& proposals, const std::set<ProcessId>& faulty,
    const std::map<ProcessId, Value>& decisions);

}  // namespace valcon::core
