#include "valcon/core/input_config.hpp"

#include <algorithm>
#include <cstring>

namespace valcon::core {

InputConfig InputConfig::of(
    int n, std::initializer_list<std::pair<ProcessId, Value>> pairs) {
  InputConfig c(n);
  for (const auto& [pid, value] : pairs) c.set(pid, value);
  return c;
}

InputConfig InputConfig::of(
    int n, const std::vector<std::pair<ProcessId, Value>>& pairs) {
  InputConfig c(n);
  for (const auto& [pid, value] : pairs) c.set(pid, value);
  return c;
}

int InputConfig::count() const {
  int x = 0;
  for (const auto& slot : slots_) x += slot.has_value() ? 1 : 0;
  return x;
}

std::vector<ProcessId> InputConfig::processes() const {
  std::vector<ProcessId> out;
  for (int i = 0; i < n(); ++i) {
    if (participates(i)) out.push_back(i);
  }
  return out;
}

std::vector<Value> InputConfig::proposals() const {
  std::vector<Value> out;
  for (const auto& slot : slots_) {
    if (slot.has_value()) out.push_back(*slot);
  }
  return out;
}

std::vector<Value> InputConfig::sorted_proposals() const {
  std::vector<Value> out = proposals();
  std::sort(out.begin(), out.end());
  return out;
}

bool InputConfig::valid_for(int n, int t) const {
  if (this->n() != n) return false;
  const int x = count();
  return x >= n - t && x <= n;
}

bool InputConfig::unanimous(Value* out) const {
  std::optional<Value> seen;
  for (const auto& slot : slots_) {
    if (!slot.has_value()) continue;
    if (seen.has_value() && *seen != *slot) return false;
    seen = *slot;
  }
  if (!seen.has_value()) return false;
  if (out != nullptr) *out = *seen;
  return true;
}

crypto::Hash InputConfig::digest() const {
  // Feeds scenario identity: traversal is dense slot order, so the hash is
  // a pure function of (n, slot contents) — no container order involved.
  crypto::Hasher h("valcon/input-config");
  h.add(static_cast<std::int64_t>(n()));
  for (int i = 0; i < n(); ++i) {
    const auto& slot = slots_[static_cast<std::size_t>(i)];
    h.add(static_cast<std::int64_t>(slot.has_value() ? 1 : 0));
    h.add(slot.value_or(0));
  }
  return h.finish();
}

std::vector<std::uint8_t> InputConfig::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(1 + slots_.size() * 9);
  out.push_back(static_cast<std::uint8_t>(n()));
  for (const auto& slot : slots_) {
    out.push_back(slot.has_value() ? 1 : 0);
    std::uint64_t raw =
        static_cast<std::uint64_t>(slot.value_or(0));
    for (int b = 0; b < 8; ++b) {
      out.push_back(static_cast<std::uint8_t>(raw >> (8 * b)));
    }
  }
  return out;
}

std::optional<InputConfig> InputConfig::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return std::nullopt;
  const int n = bytes[0];
  if (bytes.size() != 1 + static_cast<std::size_t>(n) * 9) return std::nullopt;
  InputConfig c(n);
  std::size_t pos = 1;
  for (int i = 0; i < n; ++i) {
    const bool present = bytes[pos++] != 0;
    std::uint64_t raw = 0;
    for (int b = 0; b < 8; ++b) {
      raw |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * b);
    }
    if (present) c.set(i, static_cast<Value>(raw));
  }
  return c;
}

std::string InputConfig::to_string() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < n(); ++i) {
    if (!participates(i)) continue;
    if (!first) out += ", ";
    first = false;
    out += "(P" + std::to_string(i) + "," + std::to_string(*at(i)) + ")";
  }
  out += "}";
  return out;
}

}  // namespace valcon::core
