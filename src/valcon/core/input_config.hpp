// Input configurations (Section 3.3).
//
// An input configuration is a tuple of process-proposal pairs, one per
// *correct* process, with between n-t and n entries: it captures "which
// processes are correct and what they propose". We represent it as n
// optional slots — slot i holds P_i's proposal, or nothing if P_i is not
// part of the configuration (c[i] = ⊥ in the paper).
//
// The same type doubles as the decision domain of vector consensus
// (Section 5.2.1), whose outputs are exactly the input configurations with
// n-t process-proposal pairs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/crypto/hash.hpp"

namespace valcon::core {

class InputConfig {
 public:
  InputConfig() = default;
  explicit InputConfig(int n) : slots_(static_cast<std::size_t>(n)) {}

  /// Builds a configuration over n processes from explicit pairs.
  static InputConfig of(
      int n, std::initializer_list<std::pair<ProcessId, Value>> pairs);
  static InputConfig of(int n,
                        const std::vector<std::pair<ProcessId, Value>>& pairs);

  /// Number of processes in the system (n).
  [[nodiscard]] int n() const { return static_cast<int>(slots_.size()); }

  /// Number of process-proposal pairs (the paper's x, |π(c)|).
  [[nodiscard]] int count() const;

  /// Does P_i belong to π(c)?
  [[nodiscard]] bool participates(ProcessId i) const {
    return slots_[static_cast<std::size_t>(i)].has_value();
  }

  /// c[i]: P_i's proposal, or nullopt if c[i] = ⊥.
  [[nodiscard]] const std::optional<Value>& at(ProcessId i) const {
    return slots_[static_cast<std::size_t>(i)];
  }

  void set(ProcessId i, Value v) { slots_[static_cast<std::size_t>(i)] = v; }
  void clear(ProcessId i) { slots_[static_cast<std::size_t>(i)].reset(); }

  /// π(c): the processes included in c, ascending.
  [[nodiscard]] std::vector<ProcessId> processes() const;

  /// Multiset of proposals, in process order.
  [[nodiscard]] std::vector<Value> proposals() const;

  /// Multiset of proposals, ascending (for order-statistic validities).
  [[nodiscard]] std::vector<Value> sorted_proposals() const;

  /// True iff n-t <= count() <= n (a well-formed member of I).
  [[nodiscard]] bool valid_for(int n, int t) const;

  /// True iff every included process proposes the same value; outputs it.
  [[nodiscard]] bool unanimous(Value* out = nullptr) const;

  /// Content digest (used by vector dissemination, Appendix B.3).
  [[nodiscard]] crypto::Hash digest() const;

  /// Flat byte serialization (used by ADD, Appendix B.3).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<InputConfig> deserialize(
      const std::vector<std::uint8_t>& bytes);

  [[nodiscard]] std::string to_string() const;

  bool operator==(const InputConfig&) const = default;
  /// Lexicographic order, so configurations can key ordered containers.
  bool operator<(const InputConfig& other) const { return slots_ < other.slots_; }

 private:
  std::vector<std::optional<Value>> slots_;
};

}  // namespace valcon::core
