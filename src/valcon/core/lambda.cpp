#include "valcon/core/lambda.hpp"

#include <stdexcept>

namespace valcon::core {

std::optional<Value> generic_lambda(const ValidityProperty& val,
                                    const InputConfig& c, int t,
                                    const std::vector<Value>& in_domain,
                                    const std::vector<Value>& out_domain) {
  for (const Value v : out_domain) {
    bool everywhere = true;
    for_each_similar(c, t, in_domain, [&](const InputConfig& sim_c) {
      if (!val.admissible(sim_c, v)) {
        everywhere = false;
        return false;  // stop enumeration
      }
      return true;
    });
    if (everywhere) return v;
  }
  return std::nullopt;
}

std::vector<Value> similar_admissible_intersection(
    const ValidityProperty& val, const InputConfig& c, int t,
    const std::vector<Value>& in_domain,
    const std::vector<Value>& out_domain) {
  std::vector<bool> alive(out_domain.size(), true);
  for_each_similar(c, t, in_domain, [&](const InputConfig& sim_c) {
    bool any = false;
    for (std::size_t i = 0; i < out_domain.size(); ++i) {
      if (!alive[i]) continue;
      if (!val.admissible(sim_c, out_domain[i])) {
        alive[i] = false;
      }
      any = any || alive[i];
    }
    return any;  // stop early once the intersection is empty
  });
  std::vector<Value> out;
  for (std::size_t i = 0; i < out_domain.size(); ++i) {
    if (alive[i]) out.push_back(out_domain[i]);
  }
  return out;
}

LambdaFn make_lambda(const ValidityProperty& val, int n, int t,
                     std::vector<Value> in_domain,
                     std::vector<Value> out_domain) {
  return [&val, n, t, in = std::move(in_domain),
          out = std::move(out_domain)](const InputConfig& vec) -> Value {
    if (const auto closed = val.closed_form_lambda(vec, n, t)) {
      return *closed;
    }
    if (!in.empty() && !out.empty()) {
      if (const auto generic = generic_lambda(val, vec, t, in, out)) {
        return *generic;
      }
    }
    throw std::invalid_argument("Λ undefined for " + vec.to_string() +
                                " under " + val.name() +
                                " (similarity condition violated?)");
  };
}

}  // namespace valcon::core
