// The Λ function of the similarity condition (Definition 2):
//
//   Λ : I_{n-t} -> Vo  with  Λ(c) ∈ ⋂_{c' ∈ sim(c)} val(c').
//
// Theorem 3 proves a computable Λ is *necessary* for solvability; Theorem 5
// (via Universal) proves it is sufficient when n > 3t. This header provides:
//
//   * generic_lambda        — computes Λ(c) by enumerating sim(c) over a
//                             finite domain (the "finite procedure" whose
//                             existence Theorem 2/3 argue about);
//   * make_lambda           — a ready-to-plug LambdaFn for Universal, using
//                             the property's closed form when available and
//                             the enumeration fallback otherwise.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "valcon/core/similarity.hpp"
#include "valcon/core/validity.hpp"

namespace valcon::core {

/// Λ as consumed by Universal (Algorithm 2): maps a decided vector to the
/// decision value. Must be deterministic and identical at every process.
using LambdaFn = std::function<Value(const InputConfig&)>;

/// Smallest v in out_domain admissible for every c' ∈ sim(c) (proposals
/// drawn from in_domain); nullopt when the intersection is empty over this
/// finite domain — i.e. the similarity condition fails at c.
[[nodiscard]] std::optional<Value> generic_lambda(
    const ValidityProperty& val, const InputConfig& c, int t,
    const std::vector<Value>& in_domain, const std::vector<Value>& out_domain);

/// The full intersection ⋂_{c' ∈ sim(c)} val(c') over out_domain.
[[nodiscard]] std::vector<Value> similar_admissible_intersection(
    const ValidityProperty& val, const InputConfig& c, int t,
    const std::vector<Value>& in_domain, const std::vector<Value>& out_domain);

/// Builds the LambdaFn Universal runs with. Prefers the property's closed
/// form; falls back to enumeration over the given finite domains. Throws
/// std::invalid_argument at call time if neither yields a value (the
/// property is unsolvable at that configuration).
[[nodiscard]] LambdaFn make_lambda(const ValidityProperty& val, int n, int t,
                                   std::vector<Value> in_domain = {},
                                   std::vector<Value> out_domain = {});

}  // namespace valcon::core
