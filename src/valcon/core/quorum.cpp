#include "valcon/core/quorum.hpp"

namespace valcon::core {

std::string cert_mode_token(CertMode mode) {
  switch (mode) {
    case CertMode::kPerVote:
      return "per-vote";
    case CertMode::kAggregate:
      return "aggregate";
  }
  return "per-vote";
}

std::optional<CertMode> cert_mode_from_token(const std::string& token) {
  if (token == "per-vote") return CertMode::kPerVote;
  if (token == "aggregate") return CertMode::kAggregate;
  return std::nullopt;
}

bool QuorumCollector::add(const crypto::Signature& sig) {
  Tally& tally = tallies_[sig.digest];
  if (!tally.signers.insert(sig.signer).second) return false;
  tally.sigs.push_back(sig);
  return true;
}

int QuorumCollector::count(const crypto::Hash& digest) const {
  const auto it = tallies_.find(digest);
  if (it == tallies_.end()) return 0;
  return static_cast<int>(it->second.signers.size());
}

std::optional<QuorumCollector::Certificate> QuorumCollector::certify(
    const crypto::Hash& digest, int n, int threshold) const {
  const auto it = tallies_.find(digest);
  if (it == tallies_.end()) return std::nullopt;
  const Tally& tally = it->second;
  if (static_cast<int>(tally.sigs.size()) < threshold) return std::nullopt;
  std::vector<crypto::Signature> batch(
      tally.sigs.begin(), tally.sigs.begin() + threshold);
  const auto agg = crypto::aggregate(batch);
  if (!agg) return std::nullopt;
  crypto::VoterBitset voters(n);
  for (const crypto::Signature& sig : batch) voters.set(sig.signer);
  return Certificate{std::move(voters), *agg};
}

std::vector<crypto::Hash> QuorumCollector::digests() const {
  std::vector<crypto::Hash> out;
  out.reserve(tallies_.size());
  for (const auto& [digest, tally] : tallies_) out.push_back(digest);
  return out;
}

const std::vector<crypto::Signature>& QuorumCollector::partials(
    const crypto::Hash& digest) const {
  static const std::vector<crypto::Signature> kEmpty;
  const auto it = tallies_.find(digest);
  return it == tallies_.end() ? kEmpty : it->second.sigs;
}

int QuorumCollector::prune_invalid(const crypto::KeyRegistry& keys) {
  int removed = 0;
  for (auto& [digest, tally] : tallies_) {
    std::vector<crypto::Signature> kept;
    kept.reserve(tally.sigs.size());
    for (const crypto::Signature& sig : tally.sigs) {
      if (keys.verify(sig)) {
        kept.push_back(sig);
      } else {
        tally.signers.erase(sig.signer);
        ++removed;
      }
    }
    tally.sigs = std::move(kept);
  }
  return removed;
}

std::pair<int, std::uint64_t> QuorumCollector::rivalry(
    const crypto::Hash& winner) const {
  int winner_count = 0;
  int strongest_rival = 0;
  std::uint64_t conflicting = 0;
  for (const auto& [digest, tally] : tallies_) {
    const int votes = static_cast<int>(tally.signers.size());
    if (digest == winner) {
      winner_count = votes;
      continue;
    }
    conflicting += static_cast<std::uint64_t>(votes);
    if (votes > strongest_rival) strongest_rival = votes;
  }
  return {winner_count - strongest_rival, conflicting};
}

std::optional<QuorumCollector::Certificate> certify_verified(
    QuorumCollector& collector, const crypto::KeyRegistry& keys,
    const crypto::Hash& digest, int n, int threshold) {
  auto cert = collector.certify(digest, n, threshold);
  if (!cert) return std::nullopt;
  if (keys.verify_aggregate(cert->voters, cert->agg)) return cert;
  if (collector.prune_invalid(keys) == 0) return std::nullopt;
  cert = collector.certify(digest, n, threshold);
  if (!cert) return std::nullopt;
  if (!keys.verify_aggregate(cert->voters, cert->agg)) return std::nullopt;
  return cert;
}

}  // namespace valcon::core
