// Quorum certificates: batched votes behind one aggregate check.
//
// Every vote-heavy path used to relay individual signed votes and pay one
// crypto::signatures verify per delivery. This header is the shared QC
// layer that batches them, hotstuff-style (a voter bitset plus one
// aggregated signature, as in leap's quorum_certificate):
//
//  * CertMode          — the ScenarioConfig / sweep-matrix axis selecting
//                        the certificate backend. kPerVote is the default
//                        and leaves every pinned sweep output byte-
//                        identical; kAggregate switches the vote-heavy
//                        paths (BRB echo, binary-consensus prevote and
//                        precommit, Quad certificates) to QCs.
//  * QuorumCollector   — tallies partial signatures per digest, deduped by
//                        signer, and certifies a (bitset, aggregate) pair
//                        once a threshold is met. Thresholds are always
//                        the named helpers of core/thresholds.hpp — the
//                        protomap raw-quorum audit covers this file and
//                        every collector call site in consensus/ and
//                        bcast/ (docs/static-analysis.md, layer 4).
//  * QuorumCertificatePayload — the wire format: one broadcast certificate
//                        in place of O(n) relayed votes. Receivers
//                        recompute the expected digest from the protocol
//                        fields (tag, round, value, body) and pay exactly
//                        one verify_aggregate for the whole quorum.
//
// A receiver must never trust the carried digest alone: the digest binds
// the certificate to a protocol step only if the receiver recomputes it
// from (tag, round, value, body) itself. The forge-qc adversary strategy
// (docs/adversaries.md) exists to keep that check honest.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/payload.hpp"

namespace valcon::core {

/// Certificate backend for the vote-heavy protocol paths.
enum class CertMode {
  kPerVote,    // one signed vote per message, one verify per delivery
  kAggregate,  // votes to a collector, one QC broadcast, one verify
};

/// Wire/CLI token for a CertMode ("per-vote" / "aggregate").
[[nodiscard]] std::string cert_mode_token(CertMode mode);

/// Inverse of cert_mode_token; nullopt for unknown tokens.
[[nodiscard]] std::optional<CertMode> cert_mode_from_token(
    const std::string& token);

/// Tallies partial signatures per digest and certifies a quorum as one
/// (VoterBitset, AggregateSignature) pair. The collector does not verify
/// partials: the per-vote backend verifies each vote on receipt, the
/// aggregate backend verifies the whole batch with one verify_aggregate at
/// certify time (speculative aggregation — an invalid partial surfaces as
/// a failed certificate, never as a forged one).
class QuorumCollector {
 public:
  /// One certified quorum, ready to travel in a QuorumCertificatePayload.
  struct Certificate {
    crypto::VoterBitset voters;
    crypto::AggregateSignature agg;
  };

  /// Adds one partial to its digest's tally; a repeated (digest, signer)
  /// pair is ignored. Returns true iff the vote was newly recorded.
  bool add(const crypto::Signature& sig);

  /// Votes recorded for `digest`.
  [[nodiscard]] int count(const crypto::Hash& digest) const;

  /// Every digest with at least one recorded vote, in digest order.
  [[nodiscard]] std::vector<crypto::Hash> digests() const;

  /// The recorded partials for `digest`, in arrival order — the per-vote
  /// backend feeds these to KeyRegistry::combine for a ThresholdSignature.
  [[nodiscard]] const std::vector<crypto::Signature>& partials(
      const crypto::Hash& digest) const;

  /// Certifies `digest` once at least `threshold` distinct voters signed
  /// it: the first `threshold` votes in arrival order form the batch.
  /// `n` is the voter universe (bitset capacity). Returns nullopt below
  /// the threshold or when aggregation rejects the batch.
  [[nodiscard]] std::optional<Certificate> certify(const crypto::Hash& digest,
                                                   int n, int threshold) const;

  /// Near-miss accounting for Context::note_quorum: the winner's margin
  /// over the strongest rival digest, and the total votes all rival
  /// digests collected.
  [[nodiscard]] std::pair<int, std::uint64_t> rivalry(
      const crypto::Hash& winner) const;

  /// Drops every recorded partial the registry rejects and returns how many
  /// were removed. This is the speculative-aggregation fallback: it only
  /// runs after a certificate failed its one verify_aggregate, so honest
  /// vote sets never pay per-partial verification.
  int prune_invalid(const crypto::KeyRegistry& keys);

 private:
  struct Tally {
    std::vector<crypto::Signature> sigs;  // in arrival order
    std::set<ProcessId> signers;
  };
  std::map<crypto::Hash, Tally> tallies_;
};

/// Speculative-aggregation driver shared by the protocol call sites:
/// certify `digest`, pay one verify_aggregate, and on failure prune the
/// registry-rejected partials and retry once. An honest vote set costs
/// exactly one aggregate check; a batch poisoned by a Byzantine voter
/// costs the failed check plus the per-partial prune — an attack surcharge
/// the attacker pays for, never the fault-free path.
[[nodiscard]] std::optional<QuorumCollector::Certificate> certify_verified(
    QuorumCollector& collector, const crypto::KeyRegistry& keys,
    const crypto::Hash& digest, int n, int threshold);

/// One broadcast quorum certificate. `tag` is a protocol-local kind
/// discriminator (each Mux child sees only its own traffic, so tags only
/// disambiguate steps within one protocol); `round` and `value` are
/// protocol-defined (value -1 encodes a nil vote); `body` optionally
/// carries the content the quorum certified (BRB), so a receiver that
/// missed the original send can still deliver. Word accounting: one
/// header word, one aggregate-signature word, the bitset words, and the
/// body words.
struct QuorumCertificatePayload final : sim::Payload {
  QuorumCertificatePayload(std::uint32_t tag_in, std::int64_t round_in,
                           std::int64_t value_in, crypto::VoterBitset voters_in,
                           crypto::AggregateSignature agg_in,
                           std::vector<std::uint8_t> body_in = {})
      : tag(tag_in),
        round(round_in),
        value(value_in),
        voters(std::move(voters_in)),
        agg(agg_in),
        body(std::move(body_in)) {}

  VALCON_PAYLOAD_TYPE("core/quorum-cert")

  [[nodiscard]] std::size_t size_words() const override {
    return 2 + voters.words().size() + (body.size() + 7) / 8;
  }

  std::uint32_t tag;
  std::int64_t round;
  std::int64_t value;
  crypto::VoterBitset voters;
  crypto::AggregateSignature agg;
  std::vector<std::uint8_t> body;
};

}  // namespace valcon::core
