#include "valcon/core/similarity.hpp"

#include <bit>
#include <cassert>

namespace valcon::core {

bool similar(const InputConfig& c1, const InputConfig& c2) {
  assert(c1.n() == c2.n());
  bool overlap = false;
  for (int i = 0; i < c1.n(); ++i) {
    if (c1.participates(i) && c2.participates(i)) {
      overlap = true;
      if (*c1.at(i) != *c2.at(i)) return false;
    }
  }
  return overlap;
}

bool compatible(const InputConfig& c1, const InputConfig& c2, int t) {
  assert(c1.n() == c2.n());
  int overlap = 0;
  bool only_in_1 = false;
  bool only_in_2 = false;
  for (int i = 0; i < c1.n(); ++i) {
    const bool in1 = c1.participates(i);
    const bool in2 = c2.participates(i);
    if (in1 && in2) ++overlap;
    if (in1 && !in2) only_in_1 = true;
    if (!in1 && in2) only_in_2 = true;
  }
  return overlap <= t && only_in_1 && only_in_2;
}

namespace {

/// Enumerates all assignments of `domain` values to the set positions of
/// `mask`, on top of fixed slots in `base`; calls fn; returns false to stop.
bool assign_values(const std::vector<int>& free_positions, std::size_t idx,
                   InputConfig& scratch, const std::vector<Value>& domain,
                   const std::function<bool(const InputConfig&)>& fn) {
  if (idx == free_positions.size()) return fn(scratch);
  const int pos = free_positions[idx];
  for (const Value v : domain) {
    scratch.set(pos, v);
    if (!assign_values(free_positions, idx + 1, scratch, domain, fn)) {
      return false;
    }
  }
  scratch.clear(pos);
  return true;
}

}  // namespace

void for_each_config(int n, const std::vector<Value>& domain, int min_count,
                     int max_count,
                     const std::function<bool(const InputConfig&)>& fn) {
  assert(n <= 24 && "enumeration is exponential; use small n");
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    const int cnt = std::popcount(mask);
    if (cnt < min_count || cnt > max_count) continue;
    std::vector<int> positions;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) positions.push_back(i);
    }
    InputConfig scratch(n);
    if (!assign_values(positions, 0, scratch, domain, fn)) return;
  }
}

std::vector<InputConfig> enumerate_configs(int n, int t,
                                           const std::vector<Value>& domain) {
  std::vector<InputConfig> out;
  for_each_config(n, domain, n - t, n, [&](const InputConfig& c) {
    out.push_back(c);
    return true;
  });
  return out;
}

std::vector<InputConfig> enumerate_configs_exact(
    int n, int x, const std::vector<Value>& domain) {
  std::vector<InputConfig> out;
  for_each_config(n, domain, x, x, [&](const InputConfig& c) {
    out.push_back(c);
    return true;
  });
  return out;
}

void for_each_similar(const InputConfig& c, int t,
                      const std::vector<Value>& domain,
                      const std::function<bool(const InputConfig&)>& fn) {
  const int n = c.n();
  assert(n <= 24 && "enumeration is exponential; use small n");
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    const int cnt = std::popcount(mask);
    if (cnt < n - t || cnt > n) continue;
    // Fix overlap slots to c's proposals; only non-overlap slots are free.
    InputConfig scratch(n);
    std::vector<int> free_positions;
    bool overlap = false;
    for (int i = 0; i < n; ++i) {
      if (((mask >> i) & 1u) == 0) continue;
      if (c.participates(i)) {
        overlap = true;
        scratch.set(i, *c.at(i));
      } else {
        free_positions.push_back(i);
      }
    }
    if (!overlap) continue;
    if (!assign_values(free_positions, 0, scratch, domain, fn)) return;
  }
}

std::vector<InputConfig> enumerate_similar(const InputConfig& c, int t,
                                           const std::vector<Value>& domain) {
  std::vector<InputConfig> out;
  for_each_similar(c, t, domain, [&](const InputConfig& s) {
    out.push_back(s);
    return true;
  });
  return out;
}

}  // namespace valcon::core
