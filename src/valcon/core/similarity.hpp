// The similarity (~) and compatibility (⋄) relations between input
// configurations (Sections 3.4 and 4.1), plus finite-domain enumeration of
// the input-configuration space I and of sim(c).
//
//   c1 ~ c2  <=>  π(c1) ∩ π(c2) != ∅  and  c1[i] = c2[i] on the overlap
//   c1 ⋄ c2  <=>  |π(c1) ∩ π(c2)| <= t, π(c1)\π(c2) != ∅, π(c2)\π(c1) != ∅
//
// Enumeration is exponential in n and |domain| by nature (the formalism
// quantifies over all of I); it is intended for the small instances used by
// the classification tooling, the generic Λ function and the tests.
#pragma once

#include <functional>
#include <vector>

#include "valcon/core/input_config.hpp"

namespace valcon::core {

[[nodiscard]] bool similar(const InputConfig& c1, const InputConfig& c2);

[[nodiscard]] bool compatible(const InputConfig& c1, const InputConfig& c2,
                              int t);

/// Invokes `fn` for every input configuration over n processes with
/// count in [min_count, max_count] and proposals drawn from `domain`.
/// Enumeration stops early if `fn` returns false.
void for_each_config(int n, const std::vector<Value>& domain, int min_count,
                     int max_count,
                     const std::function<bool(const InputConfig&)>& fn);

/// All of I for the system (n, t): counts in [n-t, n].
[[nodiscard]] std::vector<InputConfig> enumerate_configs(
    int n, int t, const std::vector<Value>& domain);

/// I_x: configurations with exactly x pairs.
[[nodiscard]] std::vector<InputConfig> enumerate_configs_exact(
    int n, int x, const std::vector<Value>& domain);

/// Invokes `fn` for every c' in sim(c) over the finite domain; early-exits
/// when `fn` returns false. c itself is included (the relation is
/// reflexive).
void for_each_similar(const InputConfig& c, int t,
                      const std::vector<Value>& domain,
                      const std::function<bool(const InputConfig&)>& fn);

[[nodiscard]] std::vector<InputConfig> enumerate_similar(
    const InputConfig& c, int t, const std::vector<Value>& domain);

}  // namespace valcon::core
