#pragma once
// Named quorum thresholds for the protocol layer.
//
// Every vote-counting comparison in consensus/ and bcast/ goes through
// these helpers instead of raw `n - t` / `2*t + 1` arithmetic: a silent
// off-by-one in a threshold changes which validity properties the stack
// satisfies (the paper's whole classification hinges on these margins),
// so the spellings are centralized here, value-pinned by static_asserts
// and tests/test_thresholds.cpp, and the protomap analyzer plus the
// `quorum-arith` lint rule ban raw t-arithmetic in protocol code (see
// docs/static-analysis.md, layer 4).
//
// The helpers validate that (n, t) is a meaningful system description
// and throw std::invalid_argument otherwise, but they deliberately do
// NOT enforce the paper's n > 3t resilience precondition: the sweep
// harness and the adversary-search corpus intentionally run unsound
// regimes (n = 3t and below) to exhibit the violations the paper
// predicts there. Use byz_resilient() when a caller needs the regime
// predicate itself.

#include <stdexcept>

namespace valcon::core {

namespace detail {

constexpr void check_system(int n, int t) {
  if (n < 1 || t < 0 || t > n) {
    throw std::invalid_argument(
        "thresholds: need n >= 1 and 0 <= t <= n");
  }
}

}  // namespace detail

/// True iff (n, t) is in the paper's Byzantine-resilient regime n > 3t.
[[nodiscard]] constexpr bool byz_resilient(int n, int t) {
  detail::check_system(n, t);
  return n > 3 * t;
}

/// n - t: the size of the largest vote set a correct process can be
/// sure to assemble (every correct process eventually hears from all
/// other correct processes). Quad certificates, vector dissemination
/// and the vector-consensus "wait for n - t proposals" steps use this.
[[nodiscard]] constexpr int quorum_n_minus_t(int n, int t) {
  detail::check_system(n, t);
  return n - t;
}

/// t + 1: one more than the adversary can produce alone, so any t+1
/// matching votes include at least one correct process. Amplification
/// steps (BRB ready, binary-consensus decide relay, ADD reconstruction)
/// use this.
[[nodiscard]] constexpr int plurality(int t) {
  if (t < 0) throw std::invalid_argument("thresholds: need t >= 0");
  return t + 1;
}

/// 2t + 1: two such quorums intersect in at least one correct process
/// when n <= 3t + 1 holds with equality budget — the classic Byzantine
/// quorum for n > 3t. BRB ready-delivery and the binary-consensus
/// round quorum use this.
[[nodiscard]] constexpr int byz_quorum(int n, int t) {
  detail::check_system(n, t);
  return 2 * t + 1;
}

/// ceil((n + t + 1) / 2): Bracha's echo threshold. Two echo quorums
/// overlap in more than t processes, so at most one payload per
/// (sender, tag) can gather it.
[[nodiscard]] constexpr int brb_echo_quorum(int n, int t) {
  detail::check_system(n, t);
  return (n + t + 2) / 2;
}

// Value pins at the paper's boundary regimes. n = 3t + 1 is the
// smallest resilient system; n = 3t sits just outside; t = 0 is the
// crash-free degenerate case.
static_assert(byz_resilient(4, 1) && byz_resilient(7, 2));
static_assert(!byz_resilient(3, 1) && !byz_resilient(6, 2));
static_assert(byz_resilient(1, 0));
static_assert(quorum_n_minus_t(4, 1) == 3 && quorum_n_minus_t(7, 2) == 5);
static_assert(quorum_n_minus_t(3, 1) == 2 && quorum_n_minus_t(1, 0) == 1);
static_assert(plurality(0) == 1 && plurality(1) == 2 && plurality(2) == 3);
static_assert(byz_quorum(4, 1) == 3 && byz_quorum(7, 2) == 5);
static_assert(byz_quorum(1, 0) == 1);
static_assert(brb_echo_quorum(4, 1) == 3 && brb_echo_quorum(7, 2) == 5);
static_assert(brb_echo_quorum(3, 1) == 3 && brb_echo_quorum(1, 0) == 1);
// In the resilient regime the echo quorum is itself a Byzantine quorum
// and every quorum clears the plurality bar.
static_assert(brb_echo_quorum(4, 1) >= byz_quorum(4, 1));
static_assert(quorum_n_minus_t(4, 1) >= plurality(1));

}  // namespace valcon::core
