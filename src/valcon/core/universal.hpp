// Universal — Algorithm 2, the paper's general consensus algorithm.
//
//   on propose(v):                 forward v to vector consensus;
//   on vector-consensus decide(vec): decide Λ(vec).
//
// Correctness (Lemma 8): Vector Validity makes the decided vec similar to
// the execution's real input configuration c*, so Λ(vec) ∈ val(c*) by the
// definition of Λ. Termination/Agreement lift from vector consensus, and the
// message complexity equals that of the vector consensus building block —
// O(n^2) with the authenticated implementation, making the Theorem 4 lower
// bound tight for t ∈ Ω(n).
//
// Universal is deliberately independent of which vector consensus
// implementation it runs on (Algorithm 1, 3 or 6) — pass any.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "valcon/consensus/vector_consensus.hpp"
#include "valcon/core/lambda.hpp"

namespace valcon::core {

class Universal final : public sim::Mux {
 public:
  /// decide(v'): at most once.
  using DecideCb = std::function<void(sim::Context&, Value)>;

  Universal(std::unique_ptr<consensus::VectorConsensus> vector_consensus,
            LambdaFn lambda, DecideCb on_decide)
      : lambda_(std::move(lambda)), on_decide_(std::move(on_decide)) {
    vc_ = vector_consensus.get();
    add_child(std::move(vector_consensus));
    vc_->set_on_decide(
        [this](sim::Context& ctx, const InputConfig& vec) {
          if (decided_) return;
          decided_ = true;
          decided_vector_ = vec;
          decision_ = lambda_(vec);
          if (on_decide_) on_decide_(ctx, *decision_);
        });
  }

  /// propose(v): must be called before the component starts.
  void propose(Value v) { vc_->set_input(v); }

  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] const std::optional<Value>& decision() const {
    return decision_;
  }
  [[nodiscard]] const std::optional<InputConfig>& decided_vector() const {
    return decided_vector_;
  }

 private:
  consensus::VectorConsensus* vc_;
  LambdaFn lambda_;
  DecideCb on_decide_;
  bool decided_ = false;
  std::optional<Value> decision_;
  std::optional<InputConfig> decided_vector_;
};

}  // namespace valcon::core
