#include "valcon/core/validity.hpp"

#include <algorithm>
#include <map>

namespace valcon::core {

std::vector<Value> ValidityProperty::admissible_set(
    const InputConfig& c, const std::vector<Value>& out_domain) const {
  std::vector<Value> out;
  for (const Value v : out_domain) {
    if (admissible(c, v)) out.push_back(v);
  }
  return out;
}

namespace {

/// Smallest value with the highest multiplicity.
Value most_frequent(const std::vector<Value>& values) {
  std::map<Value, int> counts;
  for (const Value v : values) ++counts[v];
  Value best = values.front();
  int best_count = 0;
  for (const auto& [v, count] : counts) {
    if (count > best_count) {
      best = v;
      best_count = count;
    }
  }
  return best;
}

/// Smallest value appearing at least `threshold` times, if any.
std::optional<Value> value_with_multiplicity(const std::vector<Value>& values,
                                             int threshold) {
  std::map<Value, int> counts;
  for (const Value v : values) ++counts[v];
  for (const auto& [v, count] : counts) {
    if (count >= threshold) return v;
  }
  return std::nullopt;
}

/// 1-based order statistic with index clamped to [1, size].
Value order_stat_clamped(const std::vector<Value>& sorted, int index) {
  const int m = static_cast<int>(sorted.size());
  const int clamped = std::max(1, std::min(index, m));
  return sorted[static_cast<std::size_t>(clamped - 1)];
}

}  // namespace

// ---------------------------------------------------------------- Strong

bool StrongValidity::admissible(const InputConfig& c, Value v) const {
  Value u;
  if (c.unanimous(&u)) return v == u;
  return true;
}

std::optional<Value> StrongValidity::closed_form_lambda(const InputConfig& vec,
                                                        int n, int t) const {
  // A unanimous configuration c' similar to vec exists for value u iff u has
  // multiplicity >= n-2t in vec (c' can exclude at most t of vec's processes
  // and add at most t fresh ones). With n > 3t at most one such u exists and
  // Λ must return it; otherwise any value works — pick the most frequent.
  const std::vector<Value> proposals = vec.proposals();
  if (proposals.empty()) return std::nullopt;
  if (const auto forced = value_with_multiplicity(proposals, n - 2 * t)) {
    return *forced;
  }
  return most_frequent(proposals);
}

// ------------------------------------------------------------------ Weak

bool WeakValidity::admissible(const InputConfig& c, Value v) const {
  Value u;
  if (c.count() == c.n() && c.unanimous(&u)) return v == u;
  return true;
}

std::optional<Value> WeakValidity::closed_form_lambda(const InputConfig& vec,
                                                      int /*n*/,
                                                      int /*t*/) const {
  // The only constraining configurations similar to vec are full unanimous
  // ones, which exist iff vec itself is unanimous.
  const std::vector<Value> proposals = vec.proposals();
  if (proposals.empty()) return std::nullopt;
  Value u;
  if (vec.unanimous(&u)) return u;
  return most_frequent(proposals);
}

// ------------------------------------------------------- CorrectProposal

bool CorrectProposalValidity::admissible(const InputConfig& c,
                                         Value v) const {
  for (const Value p : c.proposals()) {
    if (p == v) return true;
  }
  return false;
}

std::optional<Value> CorrectProposalValidity::closed_form_lambda(
    const InputConfig& vec, int /*n*/, int t) const {
  // Λ(vec) must be a proposal of *every* configuration similar to vec.
  // A similar configuration can retain as few as count - t of vec's entries
  // and pad with junk, so only values with multiplicity >= t+1 survive every
  // similar configuration. When no such value exists the property is
  // unsolvable for this instance (no Λ): return nullopt.
  return value_with_multiplicity(vec.proposals(), t + 1);
}

// -------------------------------------------------------------- Interval

bool IntervalValidity::admissible(const InputConfig& c, Value v) const {
  const std::vector<Value> sorted = c.sorted_proposals();
  if (sorted.empty()) return true;
  const Value lo = order_stat_clamped(sorted, k_ - slack_);
  const Value hi = order_stat_clamped(sorted, k_ + slack_);
  return lo <= v && v <= hi;
}

std::optional<Value> IntervalValidity::closed_form_lambda(
    const InputConfig& vec, int n, int t) const {
  // Sound when slack >= t and t+1 <= k <= n-2t (see tests, which cross-check
  // against the sim(vec) enumeration).
  if (slack_ < t || k_ < t + 1 || k_ > n - 2 * t) return std::nullopt;
  const std::vector<Value> sorted = vec.sorted_proposals();
  if (sorted.empty()) return std::nullopt;
  return order_stat_clamped(sorted, k_);
}

// ------------------------------------------------------------ ConvexHull

bool ConvexHullValidity::admissible(const InputConfig& c, Value v) const {
  const std::vector<Value> sorted = c.sorted_proposals();
  if (sorted.empty()) return true;
  return sorted.front() <= v && v <= sorted.back();
}

std::optional<Value> ConvexHullValidity::closed_form_lambda(
    const InputConfig& vec, int n, int t) const {
  // ⋂_{c' ~ vec} [min(c'), max(c')] = [vec_(t+1), vec_(n-2t)], nonempty
  // exactly when n > 3t.
  if (n <= 3 * t) return std::nullopt;
  const std::vector<Value> sorted = vec.sorted_proposals();
  if (sorted.empty()) return std::nullopt;
  return order_stat_clamped(sorted, t + 1);
}

// -------------------------------------------------------------- Constant

bool ConstantValidity::admissible(const InputConfig& /*c*/, Value v) const {
  return exclusive_ ? v == value_ : true;
}

std::optional<Value> ConstantValidity::closed_form_lambda(
    const InputConfig& /*vec*/, int /*n*/, int /*t*/) const {
  return value_;
}

// ----------------------------------------------------------------- Table

bool TableValidity::admissible(const InputConfig& c, Value v) const {
  const auto it = table_.find(c);
  if (it == table_.end()) return true;
  return it->second.count(v) != 0;
}

}  // namespace valcon::core
