// Validity properties (Section 3.3): val : I -> 2^Vo \ {∅}.
//
// A ValidityProperty answers membership queries "is v admissible for c?".
// The library ships the properties the paper discusses:
//
//   StrongValidity        — unanimity of correct processes pins the decision
//   WeakValidity          — unanimity with *all* processes correct pins it
//   CorrectProposalValidity — decisions must be proposals of correct procs
//   IntervalValidity(k,s) — decision within order statistics k±s of the
//                           correct proposals (Melnyk-Wattenhofer style;
//                           MedianValidity is k = ⌈(n-t)/2⌉)
//   ConvexHullValidity    — decision inside [min, max] of correct proposals
//                           (the convex-hull validity used by approximate
//                           agreement, applied to exact consensus, §2)
//   ConstantValidity      — the trivial property: a fixed value is always
//                           admissible (everything else admissible too when
//                           `exclusive` is false)
//   TableValidity         — an arbitrary explicit mapping over a finite
//                           domain, for classification sweeps (Figure 1)
//
// Each property may provide a closed-form Λ (Definition 2): a computable
// function mapping a vector-consensus decision vec ∈ I_{n-t} to a value
// admissible for every configuration similar to vec. The generic fallback
// (lambda.hpp) computes Λ by enumerating sim(vec); the tests cross-check
// the closed forms against the enumeration, instance by instance.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "valcon/core/input_config.hpp"

namespace valcon::core {

class ValidityProperty {
 public:
  virtual ~ValidityProperty() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Is decision v admissible under input configuration c (v ∈ val(c))?
  [[nodiscard]] virtual bool admissible(const InputConfig& c,
                                        Value v) const = 0;

  /// Closed-form Λ(vec) for vec ∈ I_{n-t}, if this property has one.
  /// Guarantees Λ(vec) ∈ ⋂_{c' ~ vec} val(c') whenever the property is
  /// solvable for (n, t).
  [[nodiscard]] virtual std::optional<Value> closed_form_lambda(
      const InputConfig& /*vec*/, int /*n*/, int /*t*/) const {
    return std::nullopt;
  }

  /// val(c) restricted to a finite candidate output domain.
  [[nodiscard]] std::vector<Value> admissible_set(
      const InputConfig& c, const std::vector<Value>& out_domain) const;
};

/// If all correct processes propose the same value, only that value can be
/// decided.
class StrongValidity final : public ValidityProperty {
 public:
  [[nodiscard]] std::string name() const override { return "Strong"; }
  [[nodiscard]] bool admissible(const InputConfig& c, Value v) const override;
  [[nodiscard]] std::optional<Value> closed_form_lambda(
      const InputConfig& vec, int n, int t) const override;
};

/// If all processes are correct and propose the same value, that value must
/// be decided.
class WeakValidity final : public ValidityProperty {
 public:
  [[nodiscard]] std::string name() const override { return "Weak"; }
  [[nodiscard]] bool admissible(const InputConfig& c, Value v) const override;
  [[nodiscard]] std::optional<Value> closed_form_lambda(
      const InputConfig& vec, int n, int t) const override;
};

/// A decided value must have been proposed by a correct process.
/// Solvable only when the proposal domain is small relative to n and t
/// (pigeonhole; see tests and the Figure 1 bench) — the classification
/// tooling discovers the frontier.
class CorrectProposalValidity final : public ValidityProperty {
 public:
  [[nodiscard]] std::string name() const override { return "CorrectProposal"; }
  [[nodiscard]] bool admissible(const InputConfig& c, Value v) const override;
  [[nodiscard]] std::optional<Value> closed_form_lambda(
      const InputConfig& vec, int n, int t) const override;
};

/// Decision must lie between the (k-slack)-th and (k+slack)-th smallest
/// correct proposals (1-based order statistics, clamped to [1, m]).
/// With slack = t and t+1 <= k <= n-2t this is solvable, and
/// Λ(vec) = k-th smallest entry of vec.
class IntervalValidity : public ValidityProperty {
 public:
  IntervalValidity(int k, int slack) : k_(k), slack_(slack) {}

  [[nodiscard]] std::string name() const override {
    return "Interval(k=" + std::to_string(k_) +
           ",slack=" + std::to_string(slack_) + ")";
  }
  [[nodiscard]] bool admissible(const InputConfig& c, Value v) const override;
  [[nodiscard]] std::optional<Value> closed_form_lambda(
      const InputConfig& vec, int n, int t) const override;

  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int slack() const { return slack_; }

 private:
  int k_;
  int slack_;
};

/// Median validity (Stolz-Wattenhofer, adapted): interval validity around
/// the median index of a (n-t)-sized vector, with slack t.
class MedianValidity final : public IntervalValidity {
 public:
  MedianValidity(int n, int t) : IntervalValidity((n - t + 1) / 2, t) {}
  [[nodiscard]] std::string name() const override { return "Median"; }
};

/// Decision must lie in the convex hull [min, max] of correct proposals.
/// Λ(vec) = (t+1)-th smallest entry of vec (any value in
/// [vec_(t+1), vec_(n-2t)] works; nonempty exactly when n > 3t).
class ConvexHullValidity final : public ValidityProperty {
 public:
  [[nodiscard]] std::string name() const override { return "ConvexHull"; }
  [[nodiscard]] bool admissible(const InputConfig& c, Value v) const override;
  [[nodiscard]] std::optional<Value> closed_form_lambda(
      const InputConfig& vec, int n, int t) const override;
};

/// The canonical trivial property. With exclusive = true, val(c) = {value}
/// for every c; otherwise val(c) = Vo (everything admissible).
class ConstantValidity final : public ValidityProperty {
 public:
  explicit ConstantValidity(Value value, bool exclusive = true)
      : value_(value), exclusive_(exclusive) {}

  [[nodiscard]] std::string name() const override {
    return exclusive_ ? "Constant(" + std::to_string(value_) + ")"
                      : "AnyValue";
  }
  [[nodiscard]] bool admissible(const InputConfig& c, Value v) const override;
  [[nodiscard]] std::optional<Value> closed_form_lambda(
      const InputConfig& vec, int n, int t) const override;

 private:
  Value value_;
  bool exclusive_;
};

/// An arbitrary explicit validity property over a finite configuration
/// space; missing entries default to "everything admissible". Used by the
/// classification sweeps to sample the property space of Figure 1.
class TableValidity final : public ValidityProperty {
 public:
  using Table = std::map<InputConfig, std::set<Value>>;

  explicit TableValidity(Table table, std::string label = "Table")
      : table_(std::move(table)), label_(std::move(label)) {}

  [[nodiscard]] std::string name() const override { return label_; }
  [[nodiscard]] bool admissible(const InputConfig& c, Value v) const override;

  [[nodiscard]] const Table& table() const { return table_; }

 private:
  Table table_;
  std::string label_;
};

}  // namespace valcon::core
