#include "valcon/crypto/hash.hpp"

namespace valcon::crypto {

std::string Hash::hex_prefix(std::size_t nibbles) const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(nibbles);
  for (std::size_t i = 0; i < nibbles && i / 2 < bytes.size(); ++i) {
    const std::uint8_t byte = bytes[i / 2];
    out.push_back(kHex[(i % 2 == 0) ? (byte >> 4) : (byte & 0x0f)]);
  }
  return out;
}

Hasher::Hasher(std::string_view domain) {
  const std::uint64_t len = domain.size();
  raw(&len, sizeof(len));
  raw(domain.data(), domain.size());
}

Hasher& Hasher::add(std::string_view s) {
  const std::uint64_t len = s.size();
  raw(&len, sizeof(len));
  raw(s.data(), s.size());
  return *this;
}

Hasher& Hasher::add(std::int64_t v) {
  raw(&v, sizeof(v));
  return *this;
}

Hasher& Hasher::add(std::uint64_t v) {
  raw(&v, sizeof(v));
  return *this;
}

Hasher& Hasher::add(const Hash& h) {
  raw(h.bytes.data(), h.bytes.size());
  return *this;
}

Hasher& Hasher::add_bytes(const std::vector<std::uint8_t>& bytes) {
  const std::uint64_t len = bytes.size();
  raw(&len, sizeof(len));
  raw(bytes.data(), bytes.size());
  return *this;
}

Hash Hasher::finish() { return Hash{ctx_.digest()}; }

void Hasher::raw(const void* data, std::size_t len) { ctx_.update(data, len); }

}  // namespace valcon::crypto
