// Typed 256-bit hash values and a structured hasher.
//
// Protocol messages are hashed field-by-field through Hasher, which
// length-prefixes every component so that distinct structures never collide
// by concatenation.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "valcon/crypto/sha256.hpp"

namespace valcon::crypto {

/// A 256-bit digest with value semantics, usable as a map key.
struct Hash {
  Sha256::Digest bytes{};

  auto operator<=>(const Hash&) const = default;

  /// Short hex prefix, for logs and tables.
  [[nodiscard]] std::string hex_prefix(std::size_t nibbles = 12) const;
};

struct HashHasher {
  std::size_t operator()(const Hash& h) const noexcept {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      out = (out << 8) | h.bytes[i];
    }
    return out;
  }
};

/// Structured, domain-separated hashing. Every field is tagged with its
/// length; begin with a domain string to separate message types.
class Hasher {
 public:
  explicit Hasher(std::string_view domain);

  Hasher& add(std::string_view s);
  Hasher& add(std::int64_t v);
  Hasher& add(std::uint64_t v);
  Hasher& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Hasher& add(const Hash& h);
  Hasher& add_bytes(const std::vector<std::uint8_t>& bytes);

  [[nodiscard]] Hash finish();

 private:
  void raw(const void* data, std::size_t len);
  Sha256 ctx_;
};

}  // namespace valcon::crypto
