// SHA-256 (FIPS 180-4). Used as the collision-resistant hash function the
// paper assumes for Appendix B.3 (vector dissemination and ADD) and as the
// digest underlying the simulated signature scheme.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace valcon::crypto {

/// Incremental SHA-256 context. Feed bytes with update(), finish with
/// digest(). A context must not be updated after digest() is called.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(const void* data, std::size_t len);
  [[nodiscard]] Digest digest();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(const void* data, std::size_t len);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace valcon::crypto
