#include "valcon/crypto/signatures.hpp"

#include <unordered_set>

namespace valcon::crypto {

namespace {

std::uint64_t truncate(const Hash& h) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < 8; ++i) out = (out << 8) | h.bytes[i];
  return out;
}

}  // namespace

KeyRegistry::KeyRegistry(int n, int k, std::uint64_t seed)
    : n_(n), k_(k), seed_(seed) {
  root_secret_ =
      truncate(Hasher("valcon/root-secret").add(seed).finish());
  secrets_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    secrets_.push_back(truncate(
        Hasher("valcon/process-secret").add(seed).add(i).finish()));
  }
}

std::uint64_t KeyRegistry::mac_for(ProcessId id, const Hash& digest) const {
  return truncate(Hasher("valcon/sig")
                      .add(secrets_[static_cast<std::size_t>(id)])
                      .add(digest)
                      .finish());
}

std::uint64_t KeyRegistry::threshold_mac(const Hash& digest) const {
  return truncate(Hasher("valcon/tsig")
                      .add(root_secret_)
                      .add(static_cast<std::int64_t>(k_))
                      .add(digest)
                      .finish());
}

bool KeyRegistry::verify(const Signature& sig) const {
  if (sig.signer < 0 || sig.signer >= n_) return false;
  return sig.mac == mac_for(sig.signer, sig.digest);
}

std::optional<ThresholdSignature> KeyRegistry::combine(
    const std::vector<Signature>& partials) const {
  if (static_cast<int>(partials.size()) < k_) return std::nullopt;
  std::unordered_set<ProcessId> seen;
  const Hash& digest = partials.front().digest;
  for (const Signature& partial : partials) {
    if (partial.digest != digest) return std::nullopt;
    if (!verify(partial)) return std::nullopt;
    if (!seen.insert(partial.signer).second) return std::nullopt;
  }
  if (static_cast<int>(seen.size()) < k_) return std::nullopt;
  return ThresholdSignature{digest, threshold_mac(digest)};
}

bool KeyRegistry::verify(const ThresholdSignature& tsig) const {
  return tsig.mac == threshold_mac(tsig.digest);
}

Signer KeyRegistry::signer_for(ProcessId id) const {
  return Signer(this, id);
}

Signature Signer::sign(const Hash& digest) const {
  return Signature{id_, digest, registry_->mac_for(id_, digest)};
}

}  // namespace valcon::crypto
