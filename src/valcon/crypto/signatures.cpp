#include "valcon/crypto/signatures.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace valcon::crypto {

namespace {

std::uint64_t truncate(const Hash& h) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < 8; ++i) out = (out << 8) | h.bytes[i];
  return out;
}

}  // namespace

VoterBitset::VoterBitset(int n) : n_(n) {
  if (n < 1) throw std::invalid_argument("VoterBitset: need n >= 1");
  words_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
}

void VoterBitset::set(ProcessId id) {
  if (id < 0 || id >= n_) {
    throw std::out_of_range("VoterBitset::set: id outside [0, n)");
  }
  words_[static_cast<std::size_t>(id) / 64] |=
      std::uint64_t{1} << (static_cast<std::size_t>(id) % 64);
}

bool VoterBitset::test(ProcessId id) const {
  if (id < 0 || id >= n_) return false;
  return (words_[static_cast<std::size_t>(id) / 64] >>
          (static_cast<std::size_t>(id) % 64)) &
         1;
}

int VoterBitset::count() const {
  int total = 0;
  for (const std::uint64_t word : words_) {
    total += std::popcount(word);
  }
  return total;
}

std::optional<AggregateSignature> aggregate(
    const std::vector<Signature>& partials) {
  if (partials.empty()) return std::nullopt;
  const Hash& digest = partials.front().digest;
  std::unordered_set<ProcessId> seen;
  std::uint64_t sum = 0;
  for (const Signature& partial : partials) {
    if (partial.digest != digest) return std::nullopt;
    if (!seen.insert(partial.signer).second) return std::nullopt;
    sum += partial.mac;  // mod 2^64 by unsigned wraparound
  }
  return AggregateSignature{digest, sum};
}

VerifyCounters& verify_counters() {
  thread_local VerifyCounters counters;
  return counters;
}

KeyRegistry::KeyRegistry(int n, int k, std::uint64_t seed)
    : n_(n), k_(k), seed_(seed) {
  root_secret_ =
      truncate(Hasher("valcon/root-secret").add(seed).finish());
  // Per-process secrets are derived on first use (secret_for); the slot
  // array is value-initialized (atomics zeroed, ready=false) and that is
  // the only O(n) cost a registry pays up front.
  secrets_ = std::make_unique<LazySecret[]>(static_cast<std::size_t>(n));
}

std::uint64_t KeyRegistry::secret_for(ProcessId id) const {
  LazySecret& slot = secrets_[static_cast<std::size_t>(id)];
  if (slot.ready.load(std::memory_order_acquire)) {
    return slot.value.load(std::memory_order_relaxed);
  }
  const std::uint64_t secret = truncate(
      Hasher("valcon/process-secret").add(seed_).add(id).finish());
  slot.value.store(secret, std::memory_order_relaxed);
  slot.ready.store(true, std::memory_order_release);
  derivations_.fetch_add(1, std::memory_order_relaxed);
  return secret;
}

std::uint64_t KeyRegistry::mac_for(ProcessId id, const Hash& digest) const {
  return truncate(
      Hasher("valcon/sig").add(secret_for(id)).add(digest).finish());
}

std::uint64_t KeyRegistry::threshold_mac(const Hash& digest) const {
  return truncate(Hasher("valcon/tsig")
                      .add(root_secret_)
                      .add(static_cast<std::int64_t>(k_))
                      .add(digest)
                      .finish());
}

bool KeyRegistry::verify(const Signature& sig) const {
  ++verify_counters().signature;
  if (sig.signer < 0 || sig.signer >= n_) return false;
  return sig.mac == mac_for(sig.signer, sig.digest);
}

std::optional<ThresholdSignature> KeyRegistry::combine(
    const std::vector<Signature>& partials) const {
  if (static_cast<int>(partials.size()) < k_) return std::nullopt;
  std::unordered_set<ProcessId> seen;
  const Hash& digest = partials.front().digest;
  for (const Signature& partial : partials) {
    if (partial.digest != digest) return std::nullopt;
    if (!verify(partial)) return std::nullopt;
    if (!seen.insert(partial.signer).second) return std::nullopt;
  }
  if (static_cast<int>(seen.size()) < k_) return std::nullopt;
  return ThresholdSignature{digest, threshold_mac(digest)};
}

bool KeyRegistry::verify(const ThresholdSignature& tsig) const {
  ++verify_counters().threshold;
  return tsig.mac == threshold_mac(tsig.digest);
}

bool KeyRegistry::verify_aggregate(const VoterBitset& voters,
                                   const AggregateSignature& agg) const {
  ++verify_counters().aggregate;
  if (voters.capacity() != n_) return false;
  std::uint64_t expected = 0;
  int set_bits = 0;
  for (ProcessId id = 0; id < n_; ++id) {
    if (!voters.test(id)) continue;
    expected += mac_for(id, agg.digest);  // mod 2^64, mirroring aggregate()
    ++set_bits;
  }
  if (set_bits == 0) return false;
  return agg.mac == expected;
}

Signer KeyRegistry::signer_for(ProcessId id) const {
  return Signer(this, id);
}

Signature Signer::sign(const Hash& digest) const {
  return Signature{id_, digest, registry_->mac_for(id_, digest)};
}

}  // namespace valcon::crypto
