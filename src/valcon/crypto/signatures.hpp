// Simulated public-key infrastructure (PKI) and (k,n)-threshold signatures.
//
// The paper assumes a PKI in which faulty processes cannot forge signatures
// of correct processes (Section 3.1), and Quad / vector dissemination use a
// (n-t, n)-threshold signature scheme (Appendix B.3). Real asymmetric
// cryptography is irrelevant to any claim in the paper, so we substitute a
// registry-backed MAC construction:
//
//   sig(i, d)   = SHA256(secret_i || d)            -- per-process secret
//   tsig(d)     = SHA256(root_secret || k || d)    -- emitted only by combine()
//   agg(S, d)   = sum over i in S of sig(i, d)  (mod 2^64)
//
// Secrets never leave the registry; processes interact through a Signer
// handle bound to their own identity, so a Byzantine process implemented in
// this codebase is structurally unable to sign for anyone else. combine()
// refuses to emit a threshold signature unless presented with k valid partial
// signatures from k distinct signers, mirroring the real scheme's guarantee.
//
// The aggregatable scheme (VoterBitset + AggregateSignature) is the second
// backend: aggregate() folds any set of same-digest partials into one
// 64-bit aggregate MAC by modular addition — a pure function of the
// partials, mirroring BLS aggregation — and verify_aggregate() recomputes
// the expected sum over exactly the processes named by the bitset, so an
// inflated bitset or a tampered aggregate fails with one check instead of
// one check per vote. Quorum-certificate payloads (core/quorum.hpp) carry
// a (bitset, aggregate) pair where the per-vote scheme would carry a
// vector of Signatures.
//
// Both Signature and ThresholdSignature count as one "word" in communication
// accounting, matching the paper's convention (footnote 4); an
// AggregateSignature is one word plus the bitset's ceil(n/64) words.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/crypto/hash.hpp"

namespace valcon::crypto {

/// A digital signature by `signer` over `digest`.
struct Signature {
  ProcessId signer = -1;
  Hash digest;
  std::uint64_t mac = 0;

  bool operator==(const Signature&) const = default;
};

/// A combined (k, n)-threshold signature over `digest`.
struct ThresholdSignature {
  Hash digest;
  std::uint64_t mac = 0;

  bool operator==(const ThresholdSignature&) const = default;
};

/// Dense voter set for aggregate verification: bit i is process i, packed
/// into ceil(n/64) uint64 words. The capacity n travels with the bitset so
/// a verifier can reject a certificate whose voter universe does not match
/// its registry (a truncated or widened bitset is a forgery, not a format
/// variant).
class VoterBitset {
 public:
  VoterBitset() = default;
  /// Bitset over voter ids [0, n). Throws std::invalid_argument for n < 1.
  explicit VoterBitset(int n);

  /// The voter universe size the bitset was built for (0 when default-made).
  [[nodiscard]] int capacity() const { return n_; }

  /// Sets bit `id`. Throws std::out_of_range outside [0, capacity()).
  void set(ProcessId id);

  /// Tests bit `id`; ids outside [0, capacity()) read as false.
  [[nodiscard]] bool test(ProcessId id) const;

  /// Number of set bits.
  [[nodiscard]] int count() const;

  /// The packed words, for wire-size accounting (one word each).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  bool operator==(const VoterBitset&) const = default;

 private:
  int n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// One aggregated signature over `digest` by the processes named in a
/// companion VoterBitset. Valid only as a (bitset, aggregate) pair.
struct AggregateSignature {
  Hash digest;
  std::uint64_t mac = 0;

  bool operator==(const AggregateSignature&) const = default;
};

/// Folds partial signatures over one digest into an aggregate. Returns
/// nullopt for an empty input, mixed digests, or a duplicate signer —
/// aggregation never repairs a malformed vote set. The partials are NOT
/// verified here (aggregation is key-free, like BLS point addition);
/// soundness comes from verify_aggregate recomputing the sum under the
/// registry's keys.
[[nodiscard]] std::optional<AggregateSignature> aggregate(
    const std::vector<Signature>& partials);

/// Per-thread tally of signature checks, the unit the sweep bench reports
/// as verifies_per_decision. Every KeyRegistry verify path bumps exactly
/// one counter; run_universal snapshots the thread's counters around a run
/// (each sweep cell runs on one thread), so the delta is a deterministic
/// function of (configuration, seed) at any job count.
struct VerifyCounters {
  std::uint64_t signature = 0;
  std::uint64_t threshold = 0;
  std::uint64_t aggregate = 0;

  [[nodiscard]] std::uint64_t total() const {
    return signature + threshold + aggregate;
  }
};

/// The calling thread's verify tally (monotone; consumers take deltas).
[[nodiscard]] VerifyCounters& verify_counters();

class Signer;

/// Holds every process's signing secret plus the threshold-scheme root.
/// One registry per simulated deployment. Per-process secrets are derived
/// lazily on first use — each is an independent pure function of
/// (seed, id), so a registry for n=1000 costs O(touched processes), not
/// O(n), which is what lets large-n committee scenarios share one registry
/// per (n, k, seed) without materializing a thousand keypairs up front.
/// Derivation is thread-safe (registries are shared across sweep worker
/// threads): a release/acquire ready flag guards each slot, and a racing
/// double-derivation writes the identical value.
class KeyRegistry {
 public:
  /// `k` is the combining threshold (the paper uses k = n - t).
  KeyRegistry(int n, int k, std::uint64_t seed);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int threshold_k() const { return k_; }
  /// The seed the registry was generated from. A registry is an immutable
  /// pure function of (n, threshold_k, seed), which is what makes sharing
  /// one instance across simulators sound; the seed is kept so a consumer
  /// can verify it was handed the registry it asked for.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Verifies an individual signature.
  [[nodiscard]] bool verify(const Signature& sig) const;

  /// Combines k valid partial signatures from distinct signers over the same
  /// digest into a threshold signature. Returns nullopt if the preconditions
  /// are not met (wrong count, duplicate signer, invalid partial, mixed
  /// digests).
  [[nodiscard]] std::optional<ThresholdSignature> combine(
      const std::vector<Signature>& partials) const;

  /// Verifies a combined threshold signature.
  [[nodiscard]] bool verify(const ThresholdSignature& tsig) const;

  /// Verifies an aggregate signature against exactly the voter set named by
  /// `voters`: recomputes the expected MAC sum over the set bits and
  /// compares once. False when the bitset's capacity is not this registry's
  /// n (mismatched voter universe), when the bitset is empty, or when the
  /// sum differs (inflated bitset, dropped voter, tampered aggregate).
  /// Thresholds are the caller's contract — see core::QuorumCollector.
  [[nodiscard]] bool verify_aggregate(const VoterBitset& voters,
                                      const AggregateSignature& agg) const;

  /// Returns the signer handle for process `id`. The handle only signs with
  /// `id`'s key: this is the structural unforgeability boundary.
  [[nodiscard]] Signer signer_for(ProcessId id) const;

  /// How many per-process secrets have been derived so far. Purely an
  /// observability hook for the laziness regression tests (a clean run that
  /// signs with c processes must derive exactly the secrets those paths
  /// touch); the count is monotone and approximate under concurrent first
  /// touches of the same slot.
  [[nodiscard]] std::uint64_t key_derivations() const {
    return derivations_.load(std::memory_order_relaxed);
  }

 private:
  friend class Signer;

  [[nodiscard]] std::uint64_t secret_for(ProcessId id) const;
  [[nodiscard]] std::uint64_t mac_for(ProcessId id, const Hash& digest) const;
  [[nodiscard]] std::uint64_t threshold_mac(const Hash& digest) const;

  /// One lazily derived secret: `ready` (release/acquire) publishes
  /// `value`. Racing derivations write the same bytes, so the worst case
  /// is redundant hashing, never a torn or divergent key.
  struct LazySecret {
    std::atomic<std::uint64_t> value{0};
    std::atomic<bool> ready{false};
  };

  int n_;
  int k_;
  std::uint64_t seed_;
  std::uint64_t root_secret_;
  mutable std::unique_ptr<LazySecret[]> secrets_;
  mutable std::atomic<std::uint64_t> derivations_{0};
};

/// Per-process signing capability.
class Signer {
 public:
  Signer(const KeyRegistry* registry, ProcessId id)
      : registry_(registry), id_(id) {}

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] Signature sign(const Hash& digest) const;

 private:
  const KeyRegistry* registry_;
  ProcessId id_;
};

}  // namespace valcon::crypto
