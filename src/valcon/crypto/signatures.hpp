// Simulated public-key infrastructure (PKI) and (k,n)-threshold signatures.
//
// The paper assumes a PKI in which faulty processes cannot forge signatures
// of correct processes (Section 3.1), and Quad / vector dissemination use a
// (n-t, n)-threshold signature scheme (Appendix B.3). Real asymmetric
// cryptography is irrelevant to any claim in the paper, so we substitute a
// registry-backed MAC construction:
//
//   sig(i, d)   = SHA256(secret_i || d)            -- per-process secret
//   tsig(d)     = SHA256(root_secret || k || d)    -- emitted only by combine()
//
// Secrets never leave the registry; processes interact through a Signer
// handle bound to their own identity, so a Byzantine process implemented in
// this codebase is structurally unable to sign for anyone else. combine()
// refuses to emit a threshold signature unless presented with k valid partial
// signatures from k distinct signers, mirroring the real scheme's guarantee.
//
// Both Signature and ThresholdSignature count as one "word" in communication
// accounting, matching the paper's convention (footnote 4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/crypto/hash.hpp"

namespace valcon::crypto {

/// A digital signature by `signer` over `digest`.
struct Signature {
  ProcessId signer = -1;
  Hash digest;
  std::uint64_t mac = 0;

  bool operator==(const Signature&) const = default;
};

/// A combined (k, n)-threshold signature over `digest`.
struct ThresholdSignature {
  Hash digest;
  std::uint64_t mac = 0;

  bool operator==(const ThresholdSignature&) const = default;
};

class Signer;

/// Holds every process's signing secret plus the threshold-scheme root.
/// One registry per simulated deployment.
class KeyRegistry {
 public:
  /// `k` is the combining threshold (the paper uses k = n - t).
  KeyRegistry(int n, int k, std::uint64_t seed);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int threshold_k() const { return k_; }
  /// The seed the registry was generated from. A registry is an immutable
  /// pure function of (n, threshold_k, seed), which is what makes sharing
  /// one instance across simulators sound; the seed is kept so a consumer
  /// can verify it was handed the registry it asked for.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Verifies an individual signature.
  [[nodiscard]] bool verify(const Signature& sig) const;

  /// Combines k valid partial signatures from distinct signers over the same
  /// digest into a threshold signature. Returns nullopt if the preconditions
  /// are not met (wrong count, duplicate signer, invalid partial, mixed
  /// digests).
  [[nodiscard]] std::optional<ThresholdSignature> combine(
      const std::vector<Signature>& partials) const;

  /// Verifies a combined threshold signature.
  [[nodiscard]] bool verify(const ThresholdSignature& tsig) const;

  /// Returns the signer handle for process `id`. The handle only signs with
  /// `id`'s key: this is the structural unforgeability boundary.
  [[nodiscard]] Signer signer_for(ProcessId id) const;

 private:
  friend class Signer;

  [[nodiscard]] std::uint64_t mac_for(ProcessId id, const Hash& digest) const;
  [[nodiscard]] std::uint64_t threshold_mac(const Hash& digest) const;

  int n_;
  int k_;
  std::uint64_t seed_;
  std::uint64_t root_secret_;
  std::vector<std::uint64_t> secrets_;
};

/// Per-process signing capability.
class Signer {
 public:
  Signer(const KeyRegistry* registry, ProcessId id)
      : registry_(registry), id_(id) {}

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] Signature sign(const Hash& digest) const;

 private:
  const KeyRegistry* registry_;
  ProcessId id_;
};

}  // namespace valcon::crypto
