#include "valcon/harness/net_profile.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace valcon::harness {

namespace {

/// Any finite time past every horizon: the network clamps it down to the
/// model bound max(send, GST) + delta, which is the point — "as late as
/// the model allows" without the profile re-deriving the bound.
constexpr Time kModelBound = std::numeric_limits<Time>::max();

/// splitmix64 finalizer: the overlay membership hash. Statistically flat,
/// pure, and cheap enough to evaluate per delivery (the policy is called
/// on the hot path, so no table is materialized — O(1) memory at any n).
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

sim::Network::DelayPolicy NetworkProfile::make_delay_policy(Time gst) const {
  switch (policy) {
    case Policy::kNone: return {};
    case Policy::kStarvePreGst:
      return [gst](ProcessId /*from*/, ProcessId /*to*/,
                   Time send_time) -> std::optional<Time> {
        if (send_time < gst) return kModelBound;
        return std::nullopt;
      };
    case Policy::kSlowTarget: {
      const ProcessId slow = target;
      return [slow](ProcessId from, ProcessId to,
                    Time /*send_time*/) -> std::optional<Time> {
        if (from == slow || to == slow) return kModelBound;
        return std::nullopt;
      };
    }
    case Policy::kSampledOverlay: {
      const std::uint64_t seed = overlay_seed;
      const auto keep = static_cast<std::uint64_t>(overlay_keep_permille);
      return [seed, keep](ProcessId from, ProcessId to,
                          Time /*send_time*/) -> std::optional<Time> {
        if (from == to) return std::nullopt;  // self-links stay fast
        // Undirected membership: hash the sorted endpoint pair, so both
        // directions of a link agree on overlay membership.
        const auto lo = static_cast<std::uint64_t>(std::min(from, to));
        const auto hi = static_cast<std::uint64_t>(std::max(from, to));
        const std::uint64_t h =
            mix64(seed ^ (lo * 0x9e3779b97f4a7c15ULL) ^ mix64(hi));
        if (h % 1000 < keep) return std::nullopt;
        return kModelBound;
      };
    }
  }
  return {};
}

void NetworkProfile::validate(int n) const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("NetworkProfile '" + name + "': " + what);
  };
  if (name.empty()) {
    throw std::invalid_argument("NetworkProfile: empty profile name");
  }
  // 0 is never a meaningful override (a zero pre-GST cap or min delay
  // breaks event ordering); "keep the default" is spelled < 0.
  if (pre_gst_cap == 0) fail("pre_gst_cap must be > 0 (< 0 for the default)");
  if (min_delay == 0) fail("min_delay must be > 0 (< 0 for the default)");
  if (policy == Policy::kSlowTarget && (target < 0 || target >= n)) {
    fail("target " + std::to_string(target) + " outside [0, " +
         std::to_string(n) + ")");
  }
  if (policy == Policy::kSampledOverlay &&
      (overlay_keep_permille < 1 || overlay_keep_permille > 1000)) {
    fail("overlay_keep_permille " + std::to_string(overlay_keep_permille) +
         " outside [1, 1000]");
  }
}

NetworkProfile named_network_profile(const std::string& name) {
  if (name == "uniform") return NetworkProfile{};
  if (name == "pre-gst-starve") {
    NetworkProfile profile;
    profile.name = name;
    profile.policy = NetworkProfile::Policy::kStarvePreGst;
    return profile;
  }
  if (name == "targeted-slow-links") {
    NetworkProfile profile;
    profile.name = name;
    profile.policy = NetworkProfile::Policy::kSlowTarget;
    profile.target = 0;
    return profile;
  }
  if (name == "sampled-overlay") {
    NetworkProfile profile;
    profile.name = name;
    profile.policy = NetworkProfile::Policy::kSampledOverlay;
    return profile;
  }
  std::string known;
  for (const std::string& n : network_profile_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown network profile '" + name +
                              "' (known: " + known + ")");
}

std::vector<std::string> network_profile_names() {
  return {"pre-gst-starve", "sampled-overlay", "targeted-slow-links",
          "uniform"};
}

}  // namespace valcon::harness
