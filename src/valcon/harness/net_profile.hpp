// Network adversary profiles.
//
// The partially synchronous model gives the adversary real scheduling
// power — anything up to max(send, GST) + delta — and Dolev-Reischuk-style
// lower-bound arguments are driven by exactly that power. Yet every
// scenario used to run one fixed network: stock NetworkConfig knobs and no
// delay policy. A NetworkProfile packages the adversary-controlled knobs
// (pre-GST delay cap, minimum latency) plus an optional deterministic
// per-link DelayPolicy; run_universal applies it to the simulator's
// Network via set_delay_policy, and the sweep matrix enumerates profiles
// as a first-class dimension.
//
// Profiles are deterministic: a policy computes arrival times from
// (from, to, send_time) alone, and the network clamps whatever it returns
// to the model bounds — a profile can never break partial synchrony, only
// exhaust it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/sim/network.hpp"

namespace valcon::harness {

/// One network adversary profile. Named built-ins
/// (named_network_profile()):
///
///   "uniform"             — the legacy default: stock knobs, no policy;
///                           delays are drawn uniformly from the model's
///                           allowed window
///   "pre-gst-starve"      — every message sent before GST arrives exactly
///                           at the model bound max(send, GST) + delta:
///                           the pre-GST scheduler is maximally hostile
///                           (the default uniform network caps pre-GST
///                           delays at a friendly default_pre_gst_cap)
///   "targeted-slow-links" — every link touching process `target` (id 0)
///                           is delivered at the model bound; the rest of
///                           the network is untouched — a targeted
///                           slowdown of one participant
///   "sampled-overlay"     — a seeded sparse overlay: each undirected link
///                           is kept fast with probability
///                           overlay_keep_permille/1000 (a pure hash of
///                           (overlay_seed, endpoints) — deterministic and
///                           symmetric, both directions agree); every
///                           non-overlay link is delivered at the model
///                           bound. The large-n regime where only a
///                           sampled subgraph is fast while the mesh
///                           itself stays within partial synchrony
struct NetworkProfile {
  enum class Policy {
    kNone,            // no per-link policy
    kStarvePreGst,    // pre-GST sends arrive at the model bound
    kSlowTarget,      // links touching `target` arrive at the model bound
    kSampledOverlay,  // links outside a seeded sampled overlay crawl
  };

  std::string name = "uniform";
  /// Cap on adversarial pre-GST delays; < 0 keeps NetworkConfig's default.
  Time pre_gst_cap = -1.0;
  /// Minimum network latency; < 0 keeps NetworkConfig's default.
  Time min_delay = -1.0;
  Policy policy = Policy::kNone;
  /// kSlowTarget only: the process whose links crawl.
  ProcessId target = 0;
  /// kSampledOverlay only: the overlay sampling seed and the per-mille
  /// probability a given undirected link is kept fast (self-links always
  /// are).
  std::uint64_t overlay_seed = 1;
  int overlay_keep_permille = 500;

  /// The per-link policy for this profile, or an empty function for
  /// kNone. Arrival times it returns are clamped by the network to
  /// [send + min_delay, max(send, GST) + delta].
  [[nodiscard]] sim::Network::DelayPolicy make_delay_policy(Time gst) const;

  /// Throws std::invalid_argument for malformed fields: empty name,
  /// zero/negative overrides (use < 0 for "keep the default"), a
  /// kSlowTarget target outside [0, n), or a kSampledOverlay keep
  /// probability outside (0, 1000].
  void validate(int n) const;
};

/// The named built-in profiles documented above. Throws
/// std::invalid_argument for unknown names, listing what exists.
[[nodiscard]] NetworkProfile named_network_profile(const std::string& name);

/// Names of the built-in profiles, sorted.
[[nodiscard]] std::vector<std::string> network_profile_names();

}  // namespace valcon::harness
