#include "valcon/harness/pattern.hpp"

#include <stdexcept>
#include <utility>

namespace valcon::harness {

namespace {

Value mod_domain(std::uint64_t x, Value domain) {
  return static_cast<Value>(x % static_cast<std::uint64_t>(domain));
}

/// "rotating" — (p + seed) % domain, the historical hard-coded assignment.
/// The arithmetic must stay byte-for-byte what ScenarioMatrix used to
/// inline: the pinned "full" matrix is generated through this pattern.
class RotatingPattern final : public ProposalPattern {
 public:
  std::vector<Value> assign(const PatternEnv& env) const override {
    std::vector<Value> out;
    out.reserve(static_cast<std::size_t>(env.n));
    for (int p = 0; p < env.n; ++p) {
      out.push_back((static_cast<Value>(p) + static_cast<Value>(env.seed)) %
                    env.domain);
    }
    return out;
  }
};

/// "unanimous" — everyone proposes seed % domain. The configuration that
/// makes Strong validity bite (unanimity pins the decision).
class UnanimousPattern final : public ProposalPattern {
 public:
  std::vector<Value> assign(const PatternEnv& env) const override {
    return std::vector<Value>(static_cast<std::size_t>(env.n),
                              mod_domain(env.seed, env.domain));
  }
};

/// "split" — the lower half (p < n/2, the same halving the equivocation
/// strategies use) proposes seed % domain, the upper half the next value.
class SplitPattern final : public ProposalPattern {
 public:
  std::vector<Value> assign(const PatternEnv& env) const override {
    const Value lower = mod_domain(env.seed, env.domain);
    const Value upper = mod_domain(env.seed + 1, env.domain);
    const int half = env.n / 2;
    std::vector<Value> out;
    out.reserve(static_cast<std::size_t>(env.n));
    for (int p = 0; p < env.n; ++p) out.push_back(p < half ? lower : upper);
    return out;
  }
};

/// "adversarial" — the assignment most hostile to the cell's validity
/// property:
///
///  * CorrectProposal: maximal diversity, p % domain. Over a small domain
///    this is the pigeonhole configuration — at domain 2 every 3-entry
///    decision vector still repeats a value, which is exactly what makes
///    the property solvable at n=4, t=1 (and what the old 3-value rotating
///    assignment could never reach).
///  * Strong/Weak: unanimity broken by a single dissenter at process n-1
///    (the id the matrix faults first) — correct processes stay unanimous
///    under the highest-ids-fail convention, so the property binds while
///    the dissent rides in the faulty entry of the decision vector.
///  * Median/ConvexHull: alternating extremes {0, domain-1}, maximizing
///    the spread the interval properties must bracket.
class AdversarialPattern final : public ProposalPattern {
 public:
  std::vector<Value> assign(const PatternEnv& env) const override {
    std::vector<Value> out;
    out.reserve(static_cast<std::size_t>(env.n));
    switch (env.validity) {
      case ValidityKind::kCorrectProposal:
        for (int p = 0; p < env.n; ++p) {
          out.push_back(static_cast<Value>(p) % env.domain);
        }
        return out;
      case ValidityKind::kStrong:
      case ValidityKind::kWeak: {
        const Value common = mod_domain(env.seed, env.domain);
        out.assign(static_cast<std::size_t>(env.n), common);
        out.back() = mod_domain(env.seed + 1, env.domain);
        return out;
      }
      case ValidityKind::kMedian:
      case ValidityKind::kConvexHull:
        for (int p = 0; p < env.n; ++p) {
          out.push_back(p % 2 == 0 ? 0 : env.domain - 1);
        }
        return out;
    }
    throw std::invalid_argument("adversarial pattern: unknown ValidityKind");
  }
};

template <typename T>
void add_builtin(PatternRegistry& registry, const std::string& name) {
  registry.add(name, [] { return std::make_unique<T>(); });
}

}  // namespace

PatternRegistry& PatternRegistry::global() {
  static PatternRegistry* registry = [] {
    auto* r = new PatternRegistry();
    add_builtin<RotatingPattern>(*r, "rotating");
    add_builtin<UnanimousPattern>(*r, "unanimous");
    add_builtin<SplitPattern>(*r, "split");
    add_builtin<AdversarialPattern>(*r, "adversarial");
    return r;
  }();
  return *registry;
}

void PatternRegistry::add(const std::string& name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("PatternRegistry: empty pattern name");
  }
  if (!factory) {
    throw std::invalid_argument("PatternRegistry: null factory for '" + name +
                                "'");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("PatternRegistry: '" + name +
                                "' is already registered");
  }
}

bool PatternRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::unique_ptr<ProposalPattern> PatternRegistry::make(
    const std::string& name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown proposal pattern '" + name +
                                "' (registered: " + known + ")");
  }
  return factory();
}

std::vector<std::string> PatternRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

}  // namespace valcon::harness
