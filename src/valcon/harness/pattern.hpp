// Pluggable proposal patterns.
//
// The similarity condition at the heart of the paper (Definition 2,
// Theorem 3) is a statement about *adversarially chosen* proposal
// assignments: whether a validity property is solvable hinges on which
// input configurations the adversary can reach. The sweep matrix used to
// hard-code a single assignment — (p + seed) % domain — which made whole
// regions of the input space unreachable (e.g. CorrectProposal validity
// was unsolvable in every matrix at n=4, t=1 purely because the assignment
// never repeated a value over a 3-value domain). A ProposalPattern makes
// the assignment a first-class, enumerable dimension, mirroring the
// adversary-strategy registry (strategy.hpp).
//
// Determinism contract (same as for strategies): a pattern must be a pure
// function of its PatternEnv — no ambient state, no wall clock, no global
// RNG — so every matrix cell stays a deterministic function of
// (configuration, seed) whatever the sweep job count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/harness/validity_kind.hpp"

namespace valcon::harness {

/// Everything a pattern may condition on when assigning proposals.
struct PatternEnv {
  int n = 4;
  int t = 1;
  std::uint64_t seed = 1;
  /// Proposals must land in [0, domain).
  Value domain = 3;
  /// The validity property the cell is judged by — the lever that lets the
  /// "adversarial" pattern pick the assignment most hostile to it.
  ValidityKind validity = ValidityKind::kStrong;
};

/// One proposal assignment rule. Implementations must be stateless (a
/// fresh instance is made per lookup); see the determinism contract above.
class ProposalPattern {
 public:
  virtual ~ProposalPattern() = default;

  /// One proposal per process (index = process id), each in
  /// [0, env.domain). The matrix validates both properties at build time
  /// and rejects violations loudly.
  [[nodiscard]] virtual std::vector<Value> assign(
      const PatternEnv& env) const = 0;
};

/// String-keyed factory registry, mirroring StrategyRegistry. The global()
/// instance starts with the built-in patterns registered:
///
///   "rotating"    — (p + seed) % domain: the historical default, each
///                   process one step ahead of its predecessor
///   "unanimous"   — every process proposes seed % domain
///   "split"       — the lower half (p < n/2) proposes seed % domain, the
///                   upper half (seed + 1) % domain
///   "adversarial" — the assignment most hostile to the cell's validity
///                   property: all-distinct (p % domain) for
///                   CorrectProposal, unanimity broken by a single
///                   dissenter (process n-1) for Strong/Weak, alternating
///                   extremes {0, domain-1} for Median/ConvexHull
///
/// Libraries and tests add their own with add(). Lookups are thread-safe
/// (sweep workers resolve patterns concurrently).
class PatternRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ProposalPattern>()>;

  PatternRegistry() = default;  // empty registry (for tests)

  /// The process-wide registry, with the built-ins pre-registered.
  [[nodiscard]] static PatternRegistry& global();

  /// Registers a factory. Throws std::invalid_argument for an empty name,
  /// a null factory, or a name that is already taken.
  void add(const std::string& name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiates the pattern registered under `name`. Throws
  /// std::invalid_argument for unknown names, listing what is registered.
  [[nodiscard]] std::unique_ptr<ProposalPattern> make(
      const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace valcon::harness
