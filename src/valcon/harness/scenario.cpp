#include "valcon/harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "valcon/consensus/auth_vector_consensus.hpp"
#include "valcon/consensus/fast_vector_consensus.hpp"
#include "valcon/consensus/nonauth_vector_consensus.hpp"
#include "valcon/sim/adversary.hpp"

namespace valcon::harness {

std::string to_string(VcKind kind) {
  switch (kind) {
    case VcKind::kAuthenticated: return "auth(Alg1)";
    case VcKind::kNonAuthenticated: return "nonauth(Alg3)";
    case VcKind::kFast: return "fast(Alg6)";
  }
  return "?";
}

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSilent: return "silent";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kEquivocate: return "equivocate";
    case FaultKind::kDelay: return "delay";
  }
  return "?";
}

bool RunResult::all_correct_decided(const ScenarioConfig& cfg) const {
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (cfg.faults.count(p) != 0) continue;
    if (decisions.count(p) == 0) return false;
  }
  return true;
}

bool RunResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& [pid, v] : decisions) {
    if (seen.has_value() && *seen != v) return false;
    seen = v;
  }
  return true;
}

std::optional<Value> RunResult::common_decision() const {
  if (decisions.empty() || !agreement()) return std::nullopt;
  return decisions.begin()->second;
}

namespace {

std::unique_ptr<consensus::VectorConsensus> make_vc(const ScenarioConfig& cfg) {
  consensus::QuadOptions quad_options;
  quad_options.decide_echo = cfg.quad_decide_echo;
  switch (cfg.vc) {
    case VcKind::kAuthenticated:
      return std::make_unique<consensus::AuthVectorConsensus>(quad_options);
    case VcKind::kNonAuthenticated:
      return std::make_unique<consensus::NonAuthVectorConsensus>(cfg.n);
    case VcKind::kFast:
      return std::make_unique<consensus::FastVectorConsensus>(quad_options);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<core::Universal> make_universal(
    const ScenarioConfig& cfg, Value proposal, core::LambdaFn lambda,
    core::Universal::DecideCb on_decide) {
  auto universal = std::make_unique<core::Universal>(
      make_vc(cfg), std::move(lambda), std::move(on_decide));
  universal->propose(proposal);
  return universal;
}

void validate(const ScenarioConfig& cfg) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("ScenarioConfig: " + what);
  };
  if (cfg.n <= 0) fail("n must be positive, got n=" + std::to_string(cfg.n));
  if (cfg.t < 0 || cfg.t >= cfg.n) {
    fail("t must satisfy 0 <= t < n, got n=" + std::to_string(cfg.n) +
         " t=" + std::to_string(cfg.t));
  }
  if (static_cast<int>(cfg.proposals.size()) != cfg.n) {
    fail("expected one proposal per process (n=" + std::to_string(cfg.n) +
         "), got " + std::to_string(cfg.proposals.size()));
  }
  if (static_cast<int>(cfg.faults.size()) > cfg.t) {
    fail("more faults (" + std::to_string(cfg.faults.size()) +
         ") than the tolerance t=" + std::to_string(cfg.t));
  }
  for (const auto& [pid, fault] : cfg.faults) {
    if (pid < 0 || pid >= cfg.n) {
      fail("fault id " + std::to_string(pid) + " outside [0, " +
           std::to_string(cfg.n) + ")");
    }
    if (fault.kind == FaultKind::kCrash && fault.crash_time < 0) {
      fail("crash_time for process " + std::to_string(pid) +
           " must be >= 0");
    }
  }
  if (cfg.delta <= 0) fail("delta must be positive");
  if (cfg.gst < 0) fail("gst must be >= 0");
  if (cfg.horizon <= 0) fail("horizon must be positive");
}

RunResult run_universal(const ScenarioConfig& cfg,
                        const core::LambdaFn& lambda) {
  validate(cfg);

  sim::SimConfig sim_cfg;
  sim_cfg.n = cfg.n;
  sim_cfg.t = cfg.t;
  sim_cfg.seed = cfg.seed;
  sim_cfg.net.gst = cfg.gst;
  sim_cfg.net.delta = cfg.delta;
  sim::Simulator simulator(sim_cfg);

  auto result = std::make_shared<RunResult>();
  auto correct_decided = std::make_shared<int>(0);

  for (ProcessId p = 0; p < cfg.n; ++p) {
    const auto fault = cfg.faults.find(p);
    if (fault != cfg.faults.end() && fault->second.kind == FaultKind::kSilent) {
      simulator.mark_faulty(p);
      simulator.add_process(p, std::make_unique<sim::SilentProcess>());
      continue;
    }
    if (fault != cfg.faults.end() &&
        fault->second.kind == FaultKind::kEquivocate) {
      // Split-brain equivocation (the Lemma 2 adversary): two independent
      // correct stacks with conflicting proposals, each confined to its
      // half of the process set.
      simulator.mark_faulty(p);
      auto face0 = std::make_unique<sim::ComponentHost>(make_universal(
          cfg, cfg.proposals[static_cast<std::size_t>(p)], lambda,
          [](sim::Context&, Value) {}));
      auto face1 = std::make_unique<sim::ComponentHost>(
          make_universal(cfg, fault->second.equivocal_value, lambda,
                         [](sim::Context&, Value) {}));
      const int half = cfg.n / 2;
      simulator.add_process(
          p, std::make_unique<sim::TwoFacedProcess>(
                 std::move(face0), std::move(face1),
                 [half](ProcessId q) { return q < half ? 0 : 1; }));
      continue;
    }
    const bool is_correct = fault == cfg.faults.end();
    auto universal = make_universal(
        cfg, cfg.proposals[static_cast<std::size_t>(p)], lambda,
        [result, correct_decided, p, is_correct](sim::Context& ctx, Value v) {
          result->decisions[p] = v;
          result->decide_times[p] = ctx.now();
          result->last_decision_time =
              std::max(result->last_decision_time, ctx.now());
          if (is_correct) ++*correct_decided;
        });
    std::unique_ptr<sim::Process> process =
        std::make_unique<sim::ComponentHost>(std::move(universal));
    if (fault != cfg.faults.end() && fault->second.kind == FaultKind::kCrash) {
      simulator.mark_faulty(p);
      process = std::make_unique<sim::CrashShim>(std::move(process),
                                                 fault->second.crash_time);
    }
    if (fault != cfg.faults.end() && fault->second.kind == FaultKind::kDelay) {
      // The process itself behaves correctly; the adversary holds all its
      // outbound links (the self-link models local computation and stays
      // prompt) until release_time, clipped by the network to the model
      // bound max(send, GST) + delta.
      simulator.mark_faulty(p);
      const Time release = fault->second.release_time >= 0
                               ? fault->second.release_time
                               : cfg.gst + cfg.delta;
      for (ProcessId q = 0; q < cfg.n; ++q) {
        if (q != p) simulator.network().hold(p, q, release);
      }
    }
    simulator.add_process(p, std::move(process));
  }

  // Run to quiescence, but once every correct process has decided only let
  // the residual protocol chatter (decide-echo waves etc.) play out for a
  // bounded grace window: a faulty process — e.g. an equivocator's inner
  // stacks — may otherwise re-arm timers forever and drag the run to the
  // horizon. The cutoff is in simulated time, so results stay deterministic.
  const int n_correct = cfg.n - static_cast<int>(cfg.faults.size());
  Time cutoff = cfg.horizon;
  std::uint64_t events = 0;
  while (simulator.step(cutoff)) {
    ++events;
    if (cutoff == cfg.horizon && *correct_decided == n_correct) {
      cutoff = std::min(cfg.horizon, simulator.now() + 10 * cfg.delta);
    }
  }
  result->events = events;
  result->message_complexity = simulator.metrics().message_complexity();
  result->word_complexity = simulator.metrics().communication_complexity();
  result->messages_total = simulator.metrics().messages_total();
  // Crashed processes may have "decided" before crashing; they are faulty,
  // so drop them from the correctness-facing views.
  for (const auto& [pid, fault] : cfg.faults) {
    result->decisions.erase(pid);
    result->decide_times.erase(pid);
  }
  return *result;
}

double loglog_slope(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  const std::size_t m = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(m) * sxx - sx * sx;
  return (static_cast<double>(m) * sxy - sx * sy) / denom;
}

}  // namespace valcon::harness
