#include "valcon/harness/scenario.hpp"

#include <cassert>
#include <cmath>

#include "valcon/consensus/auth_vector_consensus.hpp"
#include "valcon/consensus/fast_vector_consensus.hpp"
#include "valcon/consensus/nonauth_vector_consensus.hpp"
#include "valcon/sim/adversary.hpp"

namespace valcon::harness {

std::string to_string(VcKind kind) {
  switch (kind) {
    case VcKind::kAuthenticated: return "auth(Alg1)";
    case VcKind::kNonAuthenticated: return "nonauth(Alg3)";
    case VcKind::kFast: return "fast(Alg6)";
  }
  return "?";
}

bool RunResult::all_correct_decided(const ScenarioConfig& cfg) const {
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (cfg.faults.count(p) != 0) continue;
    if (decisions.count(p) == 0) return false;
  }
  return true;
}

bool RunResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& [pid, v] : decisions) {
    if (seen.has_value() && *seen != v) return false;
    seen = v;
  }
  return true;
}

std::optional<Value> RunResult::common_decision() const {
  if (decisions.empty() || !agreement()) return std::nullopt;
  return decisions.begin()->second;
}

namespace {

std::unique_ptr<consensus::VectorConsensus> make_vc(const ScenarioConfig& cfg) {
  consensus::QuadOptions quad_options;
  quad_options.decide_echo = cfg.quad_decide_echo;
  switch (cfg.vc) {
    case VcKind::kAuthenticated:
      return std::make_unique<consensus::AuthVectorConsensus>(quad_options);
    case VcKind::kNonAuthenticated:
      return std::make_unique<consensus::NonAuthVectorConsensus>(cfg.n);
    case VcKind::kFast:
      return std::make_unique<consensus::FastVectorConsensus>(quad_options);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<core::Universal> make_universal(
    const ScenarioConfig& cfg, Value proposal, core::LambdaFn lambda,
    core::Universal::DecideCb on_decide) {
  auto universal = std::make_unique<core::Universal>(
      make_vc(cfg), std::move(lambda), std::move(on_decide));
  universal->propose(proposal);
  return universal;
}

RunResult run_universal(const ScenarioConfig& cfg,
                        const core::LambdaFn& lambda) {
  assert(static_cast<int>(cfg.proposals.size()) == cfg.n);

  sim::SimConfig sim_cfg;
  sim_cfg.n = cfg.n;
  sim_cfg.t = cfg.t;
  sim_cfg.seed = cfg.seed;
  sim_cfg.net.gst = cfg.gst;
  sim_cfg.net.delta = cfg.delta;
  sim::Simulator simulator(sim_cfg);

  auto result = std::make_shared<RunResult>();

  for (ProcessId p = 0; p < cfg.n; ++p) {
    const auto fault = cfg.faults.find(p);
    if (fault != cfg.faults.end() && fault->second.kind == FaultKind::kSilent) {
      simulator.mark_faulty(p);
      simulator.add_process(p, std::make_unique<sim::SilentProcess>());
      continue;
    }
    auto universal = make_universal(
        cfg, cfg.proposals[static_cast<std::size_t>(p)], lambda,
        [result, p](sim::Context& ctx, Value v) {
          result->decisions[p] = v;
          result->decide_times[p] = ctx.now();
          result->last_decision_time =
              std::max(result->last_decision_time, ctx.now());
        });
    core::Universal* universal_raw = universal.get();
    std::unique_ptr<sim::Process> process =
        std::make_unique<sim::ComponentHost>(std::move(universal));
    if (fault != cfg.faults.end() && fault->second.kind == FaultKind::kCrash) {
      simulator.mark_faulty(p);
      process = std::make_unique<sim::CrashShim>(std::move(process),
                                                 fault->second.crash_time);
    }
    static_cast<void>(universal_raw);
    simulator.add_process(p, std::move(process));
  }

  result->events = simulator.run(cfg.horizon);
  result->message_complexity = simulator.metrics().message_complexity();
  result->word_complexity = simulator.metrics().communication_complexity();
  result->messages_total = simulator.metrics().messages_total();
  // Crashed processes may have "decided" before crashing; they are faulty,
  // so drop them from the correctness-facing views.
  for (const auto& [pid, fault] : cfg.faults) {
    result->decisions.erase(pid);
    result->decide_times.erase(pid);
  }
  return *result;
}

double loglog_slope(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  const std::size_t m = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(m) * sxx - sx * sx;
  return (static_cast<double>(m) * sxy - sx * sy) / denom;
}

}  // namespace valcon::harness
