#include "valcon/harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "valcon/consensus/auth_vector_consensus.hpp"
#include "valcon/consensus/fast_vector_consensus.hpp"
#include "valcon/consensus/nonauth_vector_consensus.hpp"
#include "valcon/harness/strategy.hpp"

namespace valcon::harness {

std::string to_string(VcKind kind) {
  switch (kind) {
    case VcKind::kAuthenticated: return "auth(Alg1)";
    case VcKind::kNonAuthenticated: return "nonauth(Alg3)";
    case VcKind::kFast: return "fast(Alg6)";
  }
  return "?";
}

bool RunResult::all_correct_decided(const ScenarioConfig& cfg) const {
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (cfg.faults.count(p) != 0) continue;
    if (decisions.count(p) == 0) return false;
  }
  return true;
}

bool RunResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& [pid, v] : decisions) {
    if (seen.has_value() && *seen != v) return false;
    seen = v;
  }
  return true;
}

std::optional<Value> RunResult::common_decision() const {
  if (decisions.empty() || !agreement()) return std::nullopt;
  return decisions.begin()->second;
}

double RunResult::messages_per_decision() const {
  if (decisions.empty()) return 0.0;
  return static_cast<double>(messages_total) /
         static_cast<double>(decisions.size());
}

double RunResult::verifies_per_decision() const {
  if (decisions.empty()) return 0.0;
  return static_cast<double>(verifies_total) /
         static_cast<double>(decisions.size());
}

namespace {

std::unique_ptr<consensus::VectorConsensus> make_vc(const ScenarioConfig& cfg) {
  consensus::QuadOptions quad_options;
  quad_options.decide_echo = cfg.quad_decide_echo;
  quad_options.cert_mode = cfg.cert_mode;
  switch (cfg.vc) {
    case VcKind::kAuthenticated:
      return std::make_unique<consensus::AuthVectorConsensus>(quad_options);
    case VcKind::kNonAuthenticated:
      return std::make_unique<consensus::NonAuthVectorConsensus>(cfg.n,
                                                                cfg.cert_mode);
    case VcKind::kFast:
      return std::make_unique<consensus::FastVectorConsensus>(quad_options);
  }
  return nullptr;
}

}  // namespace

std::shared_ptr<const crypto::KeyRegistry> shared_key_registry(
    int n, int threshold_k, std::uint64_t seed) {
  using CacheKey = std::tuple<int, int, std::uint64_t>;
  static std::mutex mu;
  static std::map<CacheKey, std::shared_ptr<const crypto::KeyRegistry>> cache;
  const std::lock_guard<std::mutex> lock(mu);
  // A sweep over thousands of seeds creates thousands of (tiny) registries;
  // dropping the whole cache at a generous bound keeps the worst case flat
  // without an eviction order that would be dead weight for every realistic
  // sweep.
  if (cache.size() >= 8192) cache.clear();
  auto& entry = cache[CacheKey{n, threshold_k, seed}];
  if (entry == nullptr) {
    entry = std::make_shared<const crypto::KeyRegistry>(n, threshold_k, seed);
  }
  return entry;
}

std::unique_ptr<core::Universal> make_universal(
    const ScenarioConfig& cfg, Value proposal, core::LambdaFn lambda,
    core::Universal::DecideCb on_decide) {
  auto universal = std::make_unique<core::Universal>(
      make_vc(cfg), std::move(lambda), std::move(on_decide));
  universal->propose(proposal);
  return universal;
}

void validate(const ScenarioConfig& cfg) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("ScenarioConfig: " + what);
  };
  if (cfg.n <= 0) fail("n must be positive, got n=" + std::to_string(cfg.n));
  if (cfg.t < 0 || cfg.t >= cfg.n) {
    fail("t must satisfy 0 <= t < n, got n=" + std::to_string(cfg.n) +
         " t=" + std::to_string(cfg.t));
  }
  if (static_cast<int>(cfg.proposals.size()) != cfg.n) {
    fail("expected one proposal per process (n=" + std::to_string(cfg.n) +
         "), got " + std::to_string(cfg.proposals.size()));
  }
  if (static_cast<int>(cfg.faults.size()) > cfg.t) {
    fail("more faults (" + std::to_string(cfg.faults.size()) +
         ") than the tolerance t=" + std::to_string(cfg.t));
  }
  for (const auto& [pid, fault] : cfg.faults) {
    if (pid < 0 || pid >= cfg.n) {
      fail("fault id " + std::to_string(pid) + " outside [0, " +
           std::to_string(cfg.n) + ")");
    }
    // Strategy resolution throws for unknown names; the strategy's own hook
    // checks its parameters.
    StrategyRegistry::global().make(fault.strategy)->validate(fault, cfg);
  }
  if (cfg.delta <= 0) fail("delta must be positive");
  if (cfg.gst < 0) fail("gst must be >= 0");
  if (cfg.horizon <= 0) fail("horizon must be positive");
  if (cfg.grace_multiplier <= 0) fail("grace_multiplier must be positive");
  cfg.net_profile.validate(cfg.n);
  // The profile cannot see delta on its own, so the relative constraint
  // lives here: a minimum latency above delta inverts the post-GST
  // sampling window and the model bound would silently override the
  // requested minimum.
  if (cfg.net_profile.min_delay > cfg.delta) {
    fail("net_profile '" + cfg.net_profile.name + "' min_delay " +
         std::to_string(cfg.net_profile.min_delay) + " exceeds delta " +
         std::to_string(cfg.delta));
  }
  cfg.topology.validate(cfg.n);
}

RunResult run_universal(const ScenarioConfig& cfg,
                        const core::LambdaFn& lambda) {
  validate(cfg);

  sim::SimConfig sim_cfg;
  sim_cfg.n = cfg.n;
  sim_cfg.t = cfg.t;
  sim_cfg.seed = cfg.seed;
  sim_cfg.net.gst = cfg.gst;
  sim_cfg.net.delta = cfg.delta;
  sim_cfg.keys = shared_key_registry(cfg.n, cfg.n - cfg.t, cfg.seed);
  if (cfg.net_profile.pre_gst_cap >= 0) {
    sim_cfg.net.default_pre_gst_cap = cfg.net_profile.pre_gst_cap;
  }
  if (cfg.net_profile.min_delay >= 0) {
    sim_cfg.net.min_delay = cfg.net_profile.min_delay;
  }
  sim::Simulator simulator(sim_cfg);
  // The profile's per-link policy goes in before any process is installed,
  // so even start-time sends see the adversarial schedule.
  if (auto policy = cfg.net_profile.make_delay_policy(cfg.gst)) {
    simulator.network().set_delay_policy(std::move(policy));
  }

  auto result = std::make_shared<RunResult>();
  auto correct_decided = std::make_shared<int>(0);

  // Committee topology: the inner stack runs over a k-sized system (and a
  // k-sized key registry) on the k lowest-id processes; everyone else is a
  // listener. Full mesh takes exactly the legacy path — same stacks, same
  // registry, byte-identical runs.
  const bool committee = !cfg.topology.full_mesh();
  const int committee_k = committee ? cfg.topology.committee_k : cfg.n;
  const int committee_t =
      committee ? Topology::committee_fault_tolerance(committee_k) : cfg.t;
  std::shared_ptr<const crypto::KeyRegistry> committee_keys;
  std::shared_ptr<const ScenarioConfig> inner_cfg;
  if (committee) {
    committee_keys = shared_key_registry(
        committee_k, committee_k - committee_t, cfg.seed);
    auto inner = std::make_shared<ScenarioConfig>(cfg);
    inner->n = committee_k;
    inner->t = committee_t;
    inner_cfg = std::move(inner);
  }

  // Builds the same full Universal stack a correct process runs, proposing
  // `v`. `record` wires its decisions into the RunResult (they are pruned
  // from the correctness-facing views at the end if the process is faulty);
  // a non-recorded stack discards them (equivocation faces etc.).
  const auto make_stack =
      [&](Value v, bool record, bool is_correct) -> std::unique_ptr<sim::Process> {
    auto on_decide =
        record ? core::Universal::DecideCb(
                     [result, correct_decided, is_correct](sim::Context& ctx,
                                                           Value decided) {
                       result->decisions[ctx.id()] = decided;
                       result->decide_times[ctx.id()] = ctx.now();
                       if (is_correct) ++*correct_decided;
                     })
               : core::Universal::DecideCb([](sim::Context&, Value) {});
    if (!committee) {
      return std::make_unique<sim::ComponentHost>(
          make_universal(cfg, v, lambda, std::move(on_decide)));
    }
    CommitteeHost::StackFactory factory =
        [inner_cfg, v, lambda](core::Universal::DecideCb inner_decide) {
          return make_universal(*inner_cfg, v, lambda,
                                std::move(inner_decide));
        };
    return std::make_unique<CommitteeHost>(
        committee_k, committee_t, cfg.cert_mode, committee_keys,
        std::move(factory), std::move(on_decide));
  };

  // One blackboard per run: colluding strategies coordinate through it
  // (shared partition plans, withholding ledgers). Builds are sequential in
  // pid order, so "first builder initializes" is deterministic.
  StrategyShared shared;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    const auto fault = cfg.faults.find(p);
    if (fault == cfg.faults.end()) {
      simulator.add_process(
          p, make_stack(cfg.proposals[static_cast<std::size_t>(p)],
                        /*record=*/true, /*is_correct=*/true));
      continue;
    }
    simulator.mark_faulty(p);
    StrategyEnv env{
        cfg,
        fault->second,
        p,
        simulator,
        /*recorded_stack=*/
        [&make_stack](Value v) {
          return make_stack(v, /*record=*/true, /*is_correct=*/false);
        },
        /*shadow_stack=*/
        [&make_stack](Value v) {
          return make_stack(v, /*record=*/false, /*is_correct=*/false);
        },
        /*shared=*/&shared,
    };
    simulator.add_process(
        p, StrategyRegistry::global().make(fault->second.strategy)->build(env));
  }

  // Run to quiescence, but once every correct process has decided only let
  // the residual protocol chatter (decide-echo waves etc.) play out for a
  // bounded grace window: a faulty process — e.g. an equivocator's inner
  // stacks — may otherwise re-arm timers forever and drag the run to the
  // horizon. The cutoff is in simulated time, so results stay deterministic.
  const int n_correct = cfg.n - static_cast<int>(cfg.faults.size());
  Time cutoff = cfg.horizon;
  bool grace_armed = false;
  std::uint64_t events = 0;
  // The whole event loop runs on this thread, so the thread-local verify
  // tally's delta is exactly this run's signature checks.
  const std::uint64_t verifies_before = crypto::verify_counters().total();
  while (simulator.step(cutoff)) {
    ++events;
    if (!grace_armed && *correct_decided == n_correct) {
      grace_armed = true;
      cutoff = std::min(cfg.horizon,
                        simulator.now() + cfg.grace_multiplier * cfg.delta);
    }
  }
  result->events = events;
  result->verifies_total = crypto::verify_counters().total() - verifies_before;
  result->queue_drained = simulator.idle();
  result->end_time = simulator.now();
  result->grace_cutoff = grace_armed ? cutoff : -1.0;
  result->message_complexity = simulator.metrics().message_complexity();
  result->word_complexity = simulator.metrics().communication_complexity();
  result->messages_total = simulator.metrics().messages_total();
  result->by_type = simulator.metrics().by_type();
  result->min_vote_margin = simulator.metrics().near_miss().min_vote_margin;
  result->conflicting_votes = simulator.metrics().near_miss().conflicting_votes;
  // Crashed processes may have "decided" before crashing; they are faulty,
  // so drop them from the correctness-facing views.
  for (const auto& [pid, fault] : cfg.faults) {
    result->decisions.erase(pid);
    result->decide_times.erase(pid);
  }
  // last_decision_time must be derived from the decisions that survive the
  // pruning: a faulty recorded stack (an equivocator face, a process that
  // decides and later crashes) can decide after every correct process, and
  // folding its time into the max would inflate latency metrics computed
  // over correct processes only.
  result->last_decision_time = 0.0;
  for (const auto& [pid, when] : result->decide_times) {
    result->last_decision_time = std::max(result->last_decision_time, when);
  }
  return *result;
}

double loglog_slope(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  const std::size_t m = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(m) * sxx - sx * sx;
  return (static_cast<double>(m) * sxy - sx * sy) / denom;
}

}  // namespace valcon::harness
