// Deployment harness: spins up a simulated system running Universal on a
// chosen vector-consensus implementation, injects faults, runs to
// quiescence, and collects decisions plus the paper's complexity metrics.
// Used by the tests, the benches (EXPERIMENTS.md E2, E4-E8) and the
// examples.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "valcon/core/universal.hpp"
#include "valcon/sim/simulator.hpp"

namespace valcon::harness {

enum class VcKind {
  kAuthenticated,     // Algorithm 1 (signed proposals + Quad)
  kNonAuthenticated,  // Algorithm 3 (BRB + n binary consensus instances)
  kFast,              // Algorithm 6 (dissemination + Quad-on-hashes + ADD)
};

[[nodiscard]] std::string to_string(VcKind kind);

enum class FaultKind {
  kSilent,      // canonical behavior: no computational steps at all
  kCrash,       // correct until crash_time, then silent
  kEquivocate,  // split-brain: two full correct stacks, one per half of the
                // process set, proposing the configured value to the lower
                // half and equivocal_value to the upper half
  kDelay,       // correct behavior, but every outbound link (except the
                // self-link) is held until release_time — messages sent
                // before GST surface only afterwards
};

[[nodiscard]] std::string to_string(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kSilent;
  Time crash_time = 0.0;      // kCrash: stop taking steps at this time
  Value equivocal_value = 0;  // kEquivocate: proposal shown to the upper half
  Time release_time = -1.0;   // kDelay: hold-until; < 0 means gst + delta
};

struct ScenarioConfig {
  int n = 4;
  int t = 1;
  Time delta = 1.0;
  Time gst = 0.0;
  std::uint64_t seed = 1;
  VcKind vc = VcKind::kAuthenticated;
  /// Proposal per process (index = process id). Faulty entries are used by
  /// Byzantine-but-behaving processes where applicable.
  std::vector<Value> proposals;
  /// Faults by process id; all other processes are correct.
  std::map<ProcessId, Fault> faults;
  /// Simulated-time horizon (safety net against livelock).
  Time horizon = 1e9;
  /// Ablation (bench E5): disable Quad's decide-echo wave.
  bool quad_decide_echo = true;
};

struct RunResult {
  std::map<ProcessId, Value> decisions;          // correct processes only
  std::map<ProcessId, Time> decide_times;
  std::map<ProcessId, core::InputConfig> vectors;  // decided vectors
  std::uint64_t message_complexity = 0;   // msgs by correct senders >= GST
  std::uint64_t word_complexity = 0;      // words by correct senders >= GST
  std::uint64_t messages_total = 0;
  std::uint64_t events = 0;
  Time last_decision_time = 0.0;

  [[nodiscard]] bool all_correct_decided(const ScenarioConfig& cfg) const;
  [[nodiscard]] bool agreement() const;
  [[nodiscard]] std::optional<Value> common_decision() const;
};

/// Builds a Universal stack for one process (shared by tests and benches).
[[nodiscard]] std::unique_ptr<core::Universal> make_universal(
    const ScenarioConfig& cfg, Value proposal, core::LambdaFn lambda,
    core::Universal::DecideCb on_decide);

/// Throws std::invalid_argument unless cfg is well-formed: n > 0,
/// 0 <= t < n, one proposal per process, at most t faults, every fault id
/// in [0, n), delta > 0, gst >= 0 and horizon > 0.
void validate(const ScenarioConfig& cfg);

/// Runs Universal end to end with the given Λ. Validates cfg first (see
/// validate()) and throws std::invalid_argument on misconfiguration.
[[nodiscard]] RunResult run_universal(const ScenarioConfig& cfg,
                                      const core::LambdaFn& lambda);

/// Least-squares slope of log(y) against log(x): the empirical scaling
/// exponent of a complexity curve.
[[nodiscard]] double loglog_slope(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

}  // namespace valcon::harness
