// Deployment harness: spins up a simulated system running Universal on a
// chosen vector-consensus implementation, injects faults, runs to
// quiescence, and collects decisions plus the paper's complexity metrics.
// Used by the tests, the benches (EXPERIMENTS.md E2, E4-E8) and the
// examples.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "valcon/core/quorum.hpp"
#include "valcon/core/universal.hpp"
#include "valcon/harness/net_profile.hpp"
#include "valcon/harness/topology.hpp"
#include "valcon/sim/simulator.hpp"

namespace valcon::harness {

enum class VcKind {
  kAuthenticated,     // Algorithm 1 (signed proposals + Quad)
  kNonAuthenticated,  // Algorithm 3 (BRB + n binary consensus instances)
  kFast,              // Algorithm 6 (dissemination + Quad-on-hashes + ADD)
};

[[nodiscard]] std::string to_string(VcKind kind);

/// One fault assignment: the name of a registered adversary strategy
/// (harness/strategy.hpp) plus its parameters. Built-in strategies:
///
///   "silent"               — no computational steps at all
///   "crash"                — correct until crash_time, then silent
///   "equivocate"           — split-brain: two full correct stacks, one per
///                            half of the process set, proposing the
///                            configured value to the lower half and
///                            equivocal_value to the upper half
///   "delay"                — correct behavior, but every outbound link
///                            (except the self-link) is held until
///                            release_time — messages sent before GST
///                            surface only afterwards
///   "mutate"               — correct stack whose outbound messages are
///                            randomly dropped / garbled / duplicated with
///                            probability mutate_rate
///   "equivocate-scheduled" — everyone sees face 0 until switch_time, then
///                            the upper half is switched to a second stack
///                            proposing equivocal_value
///   "adaptive"             — correct stack that watches inbound traffic
///                            and, after `observe` deliveries, permanently
///                            omits sends to the `victims` busiest senders
///   "collude-equivocate"   — coordinated split-brain: ALL processes with
///                            this strategy share one partition plan;
///                            colluder-to-colluder traffic is face-tagged
///                            so both world views stay consistent across
///                            the group, and the first builder holds the
///                            cross-side outsider links until release_time
///                            (< 0: the horizon; the network clips held
///                            deliveries to max(send, GST) + delta)
///   "collude-withhold"     — quorum-edge withholding: the group behaves
///                            correctly until a SHARED tally of inbound
///                            deliveries reaches `observe`, then every
///                            member simultaneously stops sending to the
///                            `victims` lowest-id correct processes
///   "forge-qc"             — correct stack that, whenever it observes a
///                            genuine quorum certificate, also broadcasts
///                            forged variants (inflated voter bitset,
///                            tampered aggregate); honest processes must
///                            reject every forgery, so the run should be
///                            indistinguishable from the fault-free one.
///                            Only bites under cert_mode=aggregate — in
///                            per-vote mode no QCs flow and the stack is
///                            simply correct
///
/// Unused parameters are ignored by a strategy; custom strategies may reuse
/// any of them.
struct Fault {
  std::string strategy = "silent";
  Time crash_time = 0.0;      // crash: stop taking steps at this time
  Value equivocal_value = 0;  // equivocate*: proposal shown to the upper half
  Time release_time = -1.0;   // delay: hold-until; < 0 means gst + delta
  double mutate_rate = 0.25;  // mutate: per-message tamper probability
  Time switch_time = -1.0;    // equivocate-scheduled: < 0 means gst
  int victims = 1;            // adaptive: number of victims to silence
  int observe = 8;            // adaptive: deliveries watched before choosing

  // Shorthands for the built-in strategies.
  [[nodiscard]] static Fault silent() { return {}; }
  [[nodiscard]] static Fault crash(Time when) {
    Fault f;
    f.strategy = "crash";
    f.crash_time = when;
    return f;
  }
  [[nodiscard]] static Fault equivocate(Value other) {
    Fault f;
    f.strategy = "equivocate";
    f.equivocal_value = other;
    return f;
  }
  [[nodiscard]] static Fault delay(Time release = -1.0) {
    Fault f;
    f.strategy = "delay";
    f.release_time = release;
    return f;
  }
  [[nodiscard]] static Fault mutate(double rate = 0.25) {
    Fault f;
    f.strategy = "mutate";
    f.mutate_rate = rate;
    return f;
  }
  [[nodiscard]] static Fault scheduled_equivocate(Value other,
                                                  Time switch_at = -1.0) {
    Fault f;
    f.strategy = "equivocate-scheduled";
    f.equivocal_value = other;
    f.switch_time = switch_at;
    return f;
  }
  [[nodiscard]] static Fault adaptive(int victims = 1, int observe = 8) {
    Fault f;
    f.strategy = "adaptive";
    f.victims = victims;
    f.observe = observe;
    return f;
  }
  [[nodiscard]] static Fault collude_equivocate(Value other,
                                                Time release = -1.0) {
    Fault f;
    f.strategy = "collude-equivocate";
    f.equivocal_value = other;
    f.release_time = release;
    return f;
  }
  [[nodiscard]] static Fault collude_withhold(int victims = 1,
                                              int observe = 8) {
    Fault f;
    f.strategy = "collude-withhold";
    f.victims = victims;
    f.observe = observe;
    return f;
  }
  [[nodiscard]] static Fault forge_qc() {
    Fault f;
    f.strategy = "forge-qc";
    return f;
  }
};

struct ScenarioConfig {
  int n = 4;
  int t = 1;
  Time delta = 1.0;
  Time gst = 0.0;
  std::uint64_t seed = 1;
  VcKind vc = VcKind::kAuthenticated;
  /// Proposal per process (index = process id). Faulty entries are used by
  /// Byzantine-but-behaving processes where applicable.
  std::vector<Value> proposals;
  /// Faults by process id; all other processes are correct.
  std::map<ProcessId, Fault> faults;
  /// Simulated-time horizon (safety net against livelock).
  Time horizon = 1e9;
  /// The network adversary: NetworkConfig knobs (pre-GST cap, min delay)
  /// plus an optional per-link delay policy, applied by run_universal via
  /// Network::set_delay_policy. See harness/net_profile.hpp.
  NetworkProfile net_profile;
  /// Early-stop grace window: once every correct process has decided, the
  /// run is cut grace_multiplier * delta after the last correct decision
  /// (residual protocol chatter — decide-echo waves, a faulty stack
  /// re-arming timers — must not drag the run to the horizon). Must be
  /// > 0; RunResult::queue_drained records whether the cutoff actually
  /// fired.
  double grace_multiplier = 10.0;
  /// Ablation (bench E5): disable Quad's decide-echo wave.
  bool quad_decide_echo = true;
  /// Certificate backend for the vote-heavy protocol paths (core/quorum.hpp).
  /// The default keeps every pinned sweep output byte-identical; aggregate
  /// mode batches votes into quorum certificates.
  core::CertMode cert_mode = core::CertMode::kPerVote;
  /// Communication topology (harness/topology.hpp). The default full mesh
  /// runs the stack on every process exactly as before (byte-identical
  /// pinned sweeps); committee-k runs it on the k lowest-id processes and
  /// the rest decide from announced decisions/certificates.
  Topology topology;
};

struct RunResult {
  std::map<ProcessId, Value> decisions;          // correct processes only
  std::map<ProcessId, Time> decide_times;
  std::map<ProcessId, core::InputConfig> vectors;  // decided vectors
  std::uint64_t message_complexity = 0;   // msgs by correct senders >= GST
  std::uint64_t word_complexity = 0;      // words by correct senders >= GST
  std::uint64_t messages_total = 0;
  /// Post-GST correct-sender messages per payload type (the materialized
  /// view of the simulator's interned-id counters); the values sum to
  /// message_complexity. Diagnostic only — not part of the sweep wire
  /// format.
  std::map<std::string, std::uint64_t> by_type;
  std::uint64_t events = 0;
  Time last_decision_time = 0.0;
  /// True when the event queue drained on its own; false when the run was
  /// cut — by the decide-then-grace window (ScenarioConfig's
  /// grace_multiplier) or the horizon — with events still pending.
  /// Complexity metrics over a cut run are a lower bound, not a total.
  bool queue_drained = false;

  // Near-miss instrumentation (consumed by the adversary search,
  // harness/search.hpp — how close did this run get to a violation?).
  /// Smallest vote margin over the strongest competing digest across every
  /// quorum certificate a correct process formed; -1 when no correct
  /// process formed a QC (e.g. the non-authenticated stack, or no
  /// progress). A margin near 0 means one flipped vote separated the run
  /// from certifying a conflicting value.
  int min_vote_margin = -1;
  /// Total votes correct processes saw land on digests that LOST a quorum
  /// race — nonzero means conflicting proposals reached the voting stage.
  std::uint64_t conflicting_votes = 0;
  /// Simulated time when the run stopped (queue drained or cut).
  Time end_time = 0.0;
  /// The decide-then-grace cutoff that was armed (last correct decision +
  /// grace_multiplier * delta, capped by the horizon), or -1 if every
  /// correct process never decided so no cutoff was armed. end_time close
  /// to grace_cutoff (with queue_drained false) means residual traffic was
  /// still in flight when the run was cut.
  Time grace_cutoff = -1.0;

  /// Signature checks the run performed (individual + threshold +
  /// aggregate), taken as the delta of crypto::verify_counters() around the
  /// event loop. Each run executes on one thread, so the tally is a
  /// deterministic function of (configuration, seed) at any job count.
  std::uint64_t verifies_total = 0;

  [[nodiscard]] bool all_correct_decided(const ScenarioConfig& cfg) const;
  [[nodiscard]] bool agreement() const;
  [[nodiscard]] std::optional<Value> common_decision() const;

  // Per-decision normalizations for the sweep bench (BENCH_9.json):
  // totals divided by recorded decisions; 0 when nothing decided.
  [[nodiscard]] double messages_per_decision() const;
  [[nodiscard]] double verifies_per_decision() const;
};

/// Returns the process-wide shared crypto::KeyRegistry for (n, threshold_k,
/// seed), building it on first request. A registry is an immutable pure
/// function of that triple, so every sweep cell (and every test) with the
/// same triple reuses one instance instead of regenerating n+1 secrets per
/// run — run_universal plugs the result into SimConfig::keys. Thread-safe;
/// the cache is cleared wholesale if it ever grows past a few thousand
/// entries (distinct triples, not cells, bound it).
[[nodiscard]] std::shared_ptr<const crypto::KeyRegistry> shared_key_registry(
    int n, int threshold_k, std::uint64_t seed);

/// Builds a Universal stack for one process (shared by tests and benches).
[[nodiscard]] std::unique_ptr<core::Universal> make_universal(
    const ScenarioConfig& cfg, Value proposal, core::LambdaFn lambda,
    core::Universal::DecideCb on_decide);

/// Throws std::invalid_argument unless cfg is well-formed: n > 0,
/// 0 <= t < n, one proposal per process, at most t faults, every fault id
/// in [0, n), every fault strategy registered (with valid parameters, per
/// the strategy's own validate hook), delta > 0, gst >= 0, horizon > 0,
/// grace_multiplier > 0, a well-formed net_profile (its own validate) and
/// a well-formed topology (its own validate, against n).
void validate(const ScenarioConfig& cfg);

/// Runs Universal end to end with the given Λ. Validates cfg first (see
/// validate()) and throws std::invalid_argument on misconfiguration.
[[nodiscard]] RunResult run_universal(const ScenarioConfig& cfg,
                                      const core::LambdaFn& lambda);

/// Least-squares slope of log(y) against log(x): the empirical scaling
/// exponent of a complexity curve.
[[nodiscard]] double loglog_slope(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

}  // namespace valcon::harness
