#include "valcon/harness/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "valcon/harness/sweep_io.hpp"
#include "valcon/sim/rng.hpp"

namespace valcon::harness {

Verdict classify(const SweepOutcome& outcome) {
  if (!outcome.error.empty()) return Verdict::kError;
  if (!outcome.agreement) return Verdict::kAgreement;
  if (!outcome.validity_ok) return Verdict::kValidity;
  if (!outcome.decided) return Verdict::kTermination;
  return Verdict::kClean;
}

std::string verdict_token(Verdict v) {
  switch (v) {
    case Verdict::kClean: return "clean";
    case Verdict::kTermination: return "termination";
    case Verdict::kAgreement: return "agreement";
    case Verdict::kValidity: return "validity";
    case Verdict::kError: return "error";
  }
  return "?";
}

std::optional<Verdict> verdict_from_token(const std::string& token) {
  if (token == "clean") return Verdict::kClean;
  if (token == "termination") return Verdict::kTermination;
  if (token == "agreement") return Verdict::kAgreement;
  if (token == "validity") return Verdict::kValidity;
  if (token == "error") return Verdict::kError;
  return std::nullopt;
}

std::string vc_token(VcKind vc) {
  switch (vc) {
    case VcKind::kAuthenticated: return "auth";
    case VcKind::kNonAuthenticated: return "nonauth";
    case VcKind::kFast: return "fast";
  }
  return "?";
}

std::optional<VcKind> vc_from_token(const std::string& token) {
  if (token == "auth") return VcKind::kAuthenticated;
  if (token == "nonauth") return VcKind::kNonAuthenticated;
  if (token == "fast") return VcKind::kFast;
  return std::nullopt;
}

std::string validity_token(ValidityKind kind) {
  switch (kind) {
    case ValidityKind::kStrong: return "strong";
    case ValidityKind::kWeak: return "weak";
    case ValidityKind::kCorrectProposal: return "correct-proposal";
    case ValidityKind::kMedian: return "median";
    case ValidityKind::kConvexHull: return "convex-hull";
  }
  return "?";
}

std::optional<ValidityKind> validity_from_token(const std::string& token) {
  if (token == "strong") return ValidityKind::kStrong;
  if (token == "weak") return ValidityKind::kWeak;
  if (token == "correct-proposal") return ValidityKind::kCorrectProposal;
  if (token == "median") return ValidityKind::kMedian;
  if (token == "convex-hull") return ValidityKind::kConvexHull;
  return std::nullopt;
}

bool Candidate::operator==(const Candidate& other) const {
  return strategy == other.strategy && fault_count == other.fault_count &&
         vc == other.vc && validity == other.validity &&
         pattern == other.pattern && net_profile == other.net_profile &&
         n == other.n && t == other.t && gst == other.gst &&
         delta == other.delta && domain == other.domain &&
         victims == other.victims && observe == other.observe &&
         cert == other.cert && topology == other.topology &&
         seed == other.seed;
}

std::string Candidate::key() const {
  std::ostringstream os;
  os << strategy << '/' << fault_count << '/' << vc_token(vc) << '/'
     << validity_token(validity) << '/' << pattern << '/' << net_profile
     << '/' << n << '/' << t << '/' << io::json_number(gst) << '/'
     << io::json_number(delta) << '/' << domain << '/' << victims << '/'
     << observe << '/';
  // Wire-gated like the cell JSON: per-vote / full-mesh (the historical
  // only values) stay absent, so legacy keys are unchanged.
  if (cert != core::CertMode::kPerVote) {
    os << core::cert_mode_token(cert) << '/';
  }
  if (topology != "full-mesh") {
    os << topology << '/';
  }
  os << seed;
  return os.str();
}

SweepPoint candidate_point(const Candidate& c) {
  FaultSpec spec;
  if (c.strategy == "none") {
    spec.strategy = "silent";
    spec.count = 0;
  } else {
    spec.strategy = c.strategy;
    spec.count = c.fault_count;
  }
  spec.victims = c.victims;
  spec.observe = c.observe;
  return ScenarioMatrix()
      .vc_kinds({c.vc})
      .validities({c.validity})
      .patterns({c.pattern})
      .faults({spec})
      .sizes({{c.n, c.t}})
      .network_profiles({c.net_profile})
      .gsts({c.gst})
      .deltas({c.delta})
      .seeds({c.seed})
      .cert_modes({c.cert})
      .topologies({c.topology})
      .proposal_domain(c.domain)
      .record_near_miss(true)
      // Bounded liveness cutoff: a non-terminating candidate (the search's
      // whole point) re-arms view timers forever, so the 1e9 default would
      // grind for hours of wall-clock. 200 * delta past GST is >10x the
      // worst decision latency ever observed in the pinned full matrix
      // (~16 * delta) and a pure function of the candidate, so replay sees
      // the exact same cutoff.
      .horizon(c.gst + 200.0 * c.delta)
      .point_at(0);
}

SweepOutcome evaluate(const Candidate& c) {
  return run_point(candidate_point(c));
}

double near_miss_score(const SweepOutcome& outcome) {
  if (!outcome.error.empty()) return 0.0;
  const RunResult& r = outcome.result;
  double score = 0.0;
  // A QC won by a sliver: one flipped vote from certifying a rival digest.
  if (r.min_vote_margin >= 0) {
    score += 10.0 / (1.0 + static_cast<double>(r.min_vote_margin));
  }
  // Conflicting proposals reached the voting stage at all.
  if (r.conflicting_votes > 0) {
    score += 5.0 + std::log2(static_cast<double>(r.conflicting_votes) + 1.0);
  }
  // The run was cut with traffic still in flight, not quiescent.
  if (!r.queue_drained) score += 2.0;
  // Little slack between the end of the run and the grace cutoff: the last
  // decision barely beat the window.
  if (r.grace_cutoff >= 0.0) {
    const double slack = std::max(0.0, r.grace_cutoff - r.end_time);
    score += 3.0 / (1.0 + slack);
  }
  return score;
}

namespace {

template <typename T>
const T& pick(sim::Rng& rng, const std::vector<T>& pool) {
  return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
}

std::uint64_t sample_seed(sim::Rng& rng) {
  // Small seeds keep shrunk cells readable and give seed re-derivation a
  // realistic chance; the space is still far larger than any budget.
  return 1 + rng.next_below(1u << 16);
}

Candidate sample(sim::Rng& rng, const SearchSpace& space) {
  Candidate c;
  c.strategy = pick(rng, space.strategies);
  c.vc = pick(rng, space.vcs);
  c.validity = pick(rng, space.validities);
  c.pattern = pick(rng, space.patterns);
  c.net_profile = pick(rng, space.net_profiles);
  const auto [n, t] = pick(rng, space.sizes);
  c.n = n;
  c.t = t;
  c.gst = pick(rng, space.gsts);
  c.delta = pick(rng, space.deltas);
  c.domain = pick(rng, space.domains);
  c.fault_count = -1;  // all t faulty; shrinking minimizes later
  c.cert = pick(rng, space.cert_modes);
  c.topology = pick(rng, space.topologies);
  c.seed = sample_seed(rng);
  return c;
}

Candidate mutate(sim::Rng& rng, const SearchSpace& space, Candidate c) {
  // Small knob pools for the fault parameters the colluding/adaptive
  // strategies consume (-1 = the Fault default).
  static const std::vector<int> kVictims{-1, 1, 2, 3};
  static const std::vector<int> kObserve{-1, 1, 4, 8, 16, 32};
  const int tweaks = 1 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < tweaks; ++i) {
    switch (rng.next_below(14)) {
      case 0: c.strategy = pick(rng, space.strategies); break;
      case 1: c.vc = pick(rng, space.vcs); break;
      case 2: c.validity = pick(rng, space.validities); break;
      case 3: c.pattern = pick(rng, space.patterns); break;
      case 4: c.net_profile = pick(rng, space.net_profiles); break;
      case 5: {
        const auto [n, t] = pick(rng, space.sizes);
        c.n = n;
        c.t = t;
        if (c.fault_count > t) c.fault_count = -1;
        break;
      }
      case 6: c.gst = pick(rng, space.gsts); break;
      case 7: c.delta = pick(rng, space.deltas); break;
      case 8: c.domain = pick(rng, space.domains); break;
      case 9:
        c.fault_count =
            c.t > 0 ? static_cast<int>(1 + rng.next_below(
                          static_cast<std::uint64_t>(c.t)))
                    : 0;
        break;
      case 10:
        c.victims = pick(rng, kVictims);
        c.observe = pick(rng, kObserve);
        break;
      case 11: c.cert = pick(rng, space.cert_modes); break;
      case 12: c.topology = pick(rng, space.topologies); break;
      default: c.seed = sample_seed(rng); break;
    }
  }
  return c;
}

void require_nonempty(bool ok, const char* axis) {
  if (!ok) {
    throw std::invalid_argument(std::string("search space: empty ") + axis +
                                " pool");
  }
}

void check_options(const SearchOptions& options) {
  const SearchSpace& s = options.space;
  require_nonempty(!s.strategies.empty(), "strategy");
  require_nonempty(!s.vcs.empty(), "vc");
  require_nonempty(!s.validities.empty(), "validity");
  require_nonempty(!s.patterns.empty(), "pattern");
  require_nonempty(!s.net_profiles.empty(), "network-profile");
  require_nonempty(!s.sizes.empty(), "size");
  require_nonempty(!s.gsts.empty(), "gst");
  require_nonempty(!s.deltas.empty(), "delta");
  require_nonempty(!s.domains.empty(), "domain");
  require_nonempty(!s.cert_modes.empty(), "cert-mode");
  require_nonempty(!s.topologies.empty(), "topology");
  if (options.budget <= 0) {
    throw std::invalid_argument("search budget must be positive");
  }
  if (options.population <= 0) {
    throw std::invalid_argument("search population must be positive");
  }
}

// ---------------------------------------------------------------- shrinking

/// Sizes of the pool strictly simpler than (n, t): fewer processes first,
/// then lower tolerance.
std::vector<std::pair<int, int>> simpler_sizes(const SearchSpace& space,
                                               int n, int t) {
  std::vector<std::pair<int, int>> out;
  for (const auto& size : space.sizes) {
    if (size.first < n || (size.first == n && size.second < t)) {
      out.push_back(size);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Times of the pool strictly smaller than `current`, ascending.
std::vector<Time> smaller_times(const std::vector<Time>& pool, Time current) {
  std::vector<Time> out;
  for (const Time v : pool) {
    if (v < current) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Counterexample shrink(const Candidate& c, Verdict verdict,
                      const SearchOptions& options) {
  int probes = 0;
  const auto reproduces = [&probes, &options, verdict](const Candidate& cand) {
    if (probes >= options.max_shrink_probes) return false;
    ++probes;
    return classify(evaluate(cand)) == verdict;
  };

  Candidate cur = c;
  // Canonical fault_count: candidate_point clamps counts to t, so any
  // count >= t names the same cell as -1 ("all t faulty"). Normalizing to
  // -1 costs no probe and makes equal cells share a key (dedup) and a
  // corpus file name.
  if (cur.strategy != "none" && cur.fault_count >= cur.t) {
    cur.fault_count = -1;
  }
  const SearchSpace& space = options.space;
  // Axis passes to a fixpoint. Each pass tries strictly simpler values for
  // one axis (simplest first) and accepts the first that preserves the
  // verdict; the identity axes (strategy, stack, property) are never
  // touched — they name WHAT broke, not how hard the cell is to read.
  bool changed = true;
  while (changed && probes < options.max_shrink_probes) {
    changed = false;
    for (const auto& [n, t] : simpler_sizes(space, cur.n, cur.t)) {
      Candidate next = cur;
      next.n = n;
      next.t = t;
      // >= keeps the count canonical (see entry): a count equal to the new
      // t is the same cell as -1.
      if (next.fault_count >= t) next.fault_count = -1;
      if (reproduces(next)) {
        cur = next;
        changed = true;
        break;
      }
    }
    const int resolved =
        cur.fault_count < 0 ? cur.t : std::min(cur.fault_count, cur.t);
    for (int k = 1; k < resolved; ++k) {
      Candidate next = cur;
      next.fault_count = k;
      if (reproduces(next)) {
        cur = next;
        changed = true;
        break;
      }
    }
    if (cur.pattern != "rotating") {
      Candidate next = cur;
      next.pattern = "rotating";
      if (reproduces(next)) {
        cur = next;
        changed = true;
      }
    }
    if (cur.net_profile != "uniform") {
      Candidate next = cur;
      next.net_profile = "uniform";
      if (reproduces(next)) {
        cur = next;
        changed = true;
      }
    }
    for (const Time gst : smaller_times(space.gsts, cur.gst)) {
      Candidate next = cur;
      next.gst = gst;
      if (reproduces(next)) {
        cur = next;
        changed = true;
        break;
      }
    }
    for (const Time delta : smaller_times(space.deltas, cur.delta)) {
      Candidate next = cur;
      next.delta = delta;
      if (reproduces(next)) {
        cur = next;
        changed = true;
        break;
      }
    }
    {
      std::vector<Value> domains;
      for (const Value d : space.domains) {
        if (d < cur.domain) domains.push_back(d);
      }
      std::sort(domains.begin(), domains.end());
      for (const Value d : domains) {
        Candidate next = cur;
        next.domain = d;
        if (reproduces(next)) {
          cur = next;
          changed = true;
          break;
        }
      }
    }
    if (cur.victims != -1 || cur.observe != -1) {
      Candidate next = cur;
      next.victims = -1;
      next.observe = -1;
      if (reproduces(next)) {
        cur = next;
        changed = true;
      }
    }
    // The per-vote backend is the simpler cell: a violation that survives
    // without aggregation is not about the QC layer at all.
    if (cur.cert != core::CertMode::kPerVote) {
      Candidate next = cur;
      next.cert = core::CertMode::kPerVote;
      if (reproduces(next)) {
        cur = next;
        changed = true;
      }
    }
    // Likewise full-mesh: a violation that survives without the committee
    // overlay is not about the announce/relay layer at all.
    if (cur.topology != "full-mesh") {
      Candidate next = cur;
      next.topology = "full-mesh";
      if (reproduces(next)) {
        cur = next;
        changed = true;
      }
    }
  }
  // Seed re-derivation: the smallest seed in [1, seed_tries] below the
  // found one that still reproduces. Ascending order + first-accept keeps
  // this idempotent: once replaced, no smaller reproducing seed exists.
  for (std::uint64_t s = 1;
       s <= static_cast<std::uint64_t>(std::max(options.seed_tries, 0)) &&
       s < cur.seed && probes < options.max_shrink_probes;
       ++s) {
    Candidate next = cur;
    next.seed = s;
    if (reproduces(next)) {
      cur = next;
      break;
    }
  }

  Counterexample cx;
  cx.candidate = cur;
  cx.verdict = verdict;
  cx.outcome = evaluate(cur);
  cx.shrink_probes = probes;
  return cx;
}

SearchReport run_search(const SearchOptions& options) {
  check_options(options);
  sim::Rng rng(options.search_seed);

  SearchReport report;
  report.search_seed = options.search_seed;
  report.budget = options.budget;

  const SweepRunner runner(options.jobs);
  // The archive of the best clean candidates seen so far, the breeding
  // stock for the next generation. Scoring, ordering and mutation all run
  // on this thread, so the whole loop is independent of the job count
  // (SweepRunner::run returns input-ordered outcomes).
  std::vector<std::pair<double, Candidate>> archive;
  std::vector<std::pair<Candidate, Verdict>> violations;
  std::set<std::string> seen;

  std::vector<Candidate> generation;
  generation.reserve(static_cast<std::size_t>(options.population));
  for (int i = 0; i < options.population; ++i) {
    generation.push_back(sample(rng, options.space));
  }

  while (report.evaluated < static_cast<std::uint64_t>(options.budget)) {
    const auto room =
        static_cast<std::uint64_t>(options.budget) - report.evaluated;
    if (generation.size() > room) {
      generation.resize(static_cast<std::size_t>(room));
    }
    std::vector<SweepPoint> points;
    points.reserve(generation.size());
    for (const Candidate& c : generation) points.push_back(candidate_point(c));
    const std::vector<SweepOutcome> outcomes = runner.run(points);
    report.evaluated += outcomes.size();

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const Verdict v = classify(outcomes[i]);
      if (v == Verdict::kError) {
        ++report.errors;
        continue;
      }
      if (v != Verdict::kClean) {
        if (seen.insert(generation[i].key()).second) {
          violations.emplace_back(generation[i], v);
        }
        continue;
      }
      const double score = near_miss_score(outcomes[i]);
      archive.emplace_back(score, generation[i]);
      if (!report.best_candidate.has_value() || score > report.best_score) {
        report.best_score = score;
        report.best_candidate = generation[i];
      }
    }
    // Highest scores first; stable, so earlier discoveries win ties.
    std::stable_sort(archive.begin(), archive.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    if (archive.size() > static_cast<std::size_t>(options.population)) {
      archive.resize(static_cast<std::size_t>(options.population));
    }

    generation.clear();
    for (int i = 0; i < options.population; ++i) {
      if (archive.empty() || rng.next_below(4) == 0) {
        // Fresh blood: a quarter of each generation explores from scratch.
        generation.push_back(sample(rng, options.space));
      } else {
        const std::size_t parent =
            static_cast<std::size_t>(i) % archive.size();
        generation.push_back(mutate(rng, options.space,
                                    archive[parent].second));
      }
    }
  }

  std::set<std::string> emitted;
  for (const auto& [candidate, verdict] : violations) {
    Counterexample cx;
    if (options.shrink) {
      cx = shrink(candidate, verdict, options);
    } else {
      cx.candidate = candidate;
      cx.verdict = verdict;
      cx.outcome = evaluate(candidate);
    }
    if (emitted.insert(cx.candidate.key()).second) {
      report.counterexamples.push_back(std::move(cx));
    }
  }
  return report;
}

// -------------------------------------------------------------- wire format

namespace {

/// The candidate's axis fields as JSON members (no braces), shared by the
/// cell format and the report's best-near-miss block.
void candidate_fields(std::ostream& os, const Candidate& c) {
  os << "\"vc\": \"" << vc_token(c.vc) << "\", "
     << "\"validity\": \"" << validity_token(c.validity) << "\", "
     << "\"strategy\": \"" << io::json_escape(c.strategy) << "\", "
     << "\"fault_count\": " << c.fault_count << ", "
     << "\"pattern\": \"" << io::json_escape(c.pattern) << "\", "
     << "\"net_profile\": \"" << io::json_escape(c.net_profile) << "\", "
     << "\"n\": " << c.n << ", \"t\": " << c.t << ", "
     << "\"gst\": " << io::json_number(c.gst) << ", "
     << "\"delta\": " << io::json_number(c.delta) << ", "
     << "\"domain\": " << c.domain << ", "
     << "\"victims\": " << c.victims << ", "
     << "\"observe\": " << c.observe << ", ";
  // Wire-gated (same convention as the sweep axes): the per-vote /
  // full-mesh defaults are absent, so every legacy corpus cell keeps its
  // exact bytes.
  if (c.cert != core::CertMode::kPerVote) {
    os << "\"cert_mode\": \"" << core::cert_mode_token(c.cert) << "\", ";
  }
  if (c.topology != "full-mesh") {
    os << "\"topology\": \"" << io::json_escape(c.topology) << "\", ";
  }
  os << "\"seed\": " << c.seed;
}

void cell_object(std::ostream& os, const Counterexample& cx) {
  os << "{\"schema\": \"valcon-counterexample-v1\", "
     << "\"verdict\": \"" << verdict_token(cx.verdict) << "\", ";
  candidate_fields(os, cx.candidate);
  os << ", \"expect\": {\"decided\": "
     << (cx.outcome.decided ? "true" : "false")
     << ", \"agreement\": " << (cx.outcome.agreement ? "true" : "false")
     << ", \"validity_ok\": " << (cx.outcome.validity_ok ? "true" : "false")
     << "}}";
}

// Strict field extraction over the (machine-written) cell format. The
// emitted strings never contain escapes, so raw find() lookups mirror
// parse_outcome_line's approach.

[[noreturn]] void bad_cell(const std::string& what) {
  throw std::runtime_error("malformed counterexample cell: " + what);
}

std::string string_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto at = json.find(needle);
  if (at == std::string::npos) bad_cell("missing string field '" + key + "'");
  const auto start = at + needle.size();
  const auto end = json.find('"', start);
  if (end == std::string::npos) bad_cell("unterminated field '" + key + "'");
  return json.substr(start, end - start);
}

double number_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto at = json.find(needle);
  if (at == std::string::npos) bad_cell("missing number field '" + key + "'");
  const char* begin = json.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) bad_cell("non-numeric field '" + key + "'");
  return v;
}

int int_field(const std::string& json, const std::string& key) {
  const double v = number_field(json, key);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) bad_cell("non-integer field '" + key + "'");
  return i;
}

bool bool_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto at = json.find(needle);
  if (at == std::string::npos) bad_cell("missing bool field '" + key + "'");
  const auto start = at + needle.size();
  if (json.compare(start, 4, "true") == 0) return true;
  if (json.compare(start, 5, "false") == 0) return false;
  bad_cell("non-boolean field '" + key + "'");
}

}  // namespace

std::string cell_json(const Counterexample& cx) {
  std::ostringstream os;
  cell_object(os, cx);
  os << "\n";
  return os.str();
}

CorpusCell parse_cell(const std::string& json) {
  if (string_field(json, "schema") != "valcon-counterexample-v1") {
    bad_cell("unknown schema");
  }
  CorpusCell cell;
  const auto verdict = verdict_from_token(string_field(json, "verdict"));
  if (!verdict.has_value()) bad_cell("unknown verdict token");
  cell.verdict = *verdict;
  Candidate& c = cell.candidate;
  const auto vc = vc_from_token(string_field(json, "vc"));
  if (!vc.has_value()) bad_cell("unknown vc token");
  c.vc = *vc;
  const auto validity = validity_from_token(string_field(json, "validity"));
  if (!validity.has_value()) bad_cell("unknown validity token");
  c.validity = *validity;
  c.strategy = string_field(json, "strategy");
  c.fault_count = int_field(json, "fault_count");
  c.pattern = string_field(json, "pattern");
  c.net_profile = string_field(json, "net_profile");
  c.n = int_field(json, "n");
  c.t = int_field(json, "t");
  c.gst = number_field(json, "gst");
  c.delta = number_field(json, "delta");
  c.domain = int_field(json, "domain");
  c.victims = int_field(json, "victims");
  c.observe = int_field(json, "observe");
  // Absent on legacy cells (strictness exception: absence IS the per-vote
  // / full-mesh default under the wire gate, not a malformed cell).
  if (json.find("\"cert_mode\": \"") != std::string::npos) {
    const auto cert = core::cert_mode_from_token(string_field(json,
                                                              "cert_mode"));
    if (!cert.has_value()) bad_cell("unknown cert_mode token");
    c.cert = *cert;
  }
  if (json.find("\"topology\": \"") != std::string::npos) {
    c.topology = string_field(json, "topology");
    // Throws for malformed names; a corpus cell must always replay.
    static_cast<void>(named_topology(c.topology));
  }
  const double seed = number_field(json, "seed");
  if (seed < 0 || static_cast<double>(static_cast<std::uint64_t>(seed)) !=
                      seed) {
    bad_cell("non-integer seed");
  }
  c.seed = static_cast<std::uint64_t>(seed);
  cell.expect_decided = bool_field(json, "decided");
  cell.expect_agreement = bool_field(json, "agreement");
  cell.expect_validity_ok = bool_field(json, "validity_ok");
  return cell;
}

std::string cell_filename(const Counterexample& cx) {
  const Candidate& c = cx.candidate;
  std::ostringstream os;
  os << verdict_token(cx.verdict) << "-" << vc_token(c.vc) << "-"
     << c.strategy;
  if (c.cert != core::CertMode::kPerVote) {
    os << "-" << core::cert_mode_token(c.cert);
  }
  if (c.topology != "full-mesh") {
    os << "-" << c.topology;
  }
  os << "-n" << c.n << "t" << c.t << "-s" << c.seed << ".json";
  return os.str();
}

std::string report_json(const SearchReport& report) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"valcon-search-report-v1\",\n"
     << "  \"search_seed\": " << report.search_seed << ",\n"
     << "  \"budget\": " << report.budget << ",\n"
     << "  \"evaluated\": " << report.evaluated << ",\n"
     << "  \"errors\": " << report.errors << ",\n"
     << "  \"counterexamples\": [\n";
  for (std::size_t i = 0; i < report.counterexamples.size(); ++i) {
    os << "    ";
    cell_object(os, report.counterexamples[i]);
    os << (i + 1 < report.counterexamples.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"best_near_miss\": ";
  if (report.best_candidate.has_value()) {
    os << "{\"score\": " << io::json_number(report.best_score) << ", ";
    candidate_fields(os, *report.best_candidate);
    os << "}";
  } else {
    os << "null";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace valcon::harness
