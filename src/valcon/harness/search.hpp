// Seeded adversary search with counterexample shrinking.
//
// Hand-written adversaries (harness/strategy.hpp) each encode one known
// attack; the search below *mines* for violations instead: it mutates over
// the same axes the sweep matrix exposes — adversary strategy (including
// the colluding multi-process strategies), proposal pattern, network
// profile, protocol stack, system size, timing and seed — scores
// non-violating candidates by how close they came to a violation (the
// near-miss fields on RunResult), and shrinks every violation it finds to
// a minimal replayable (config, seed) cell.
//
// Determinism contract: a search is a pure function of (SearchOptions,
// search_seed). Candidate evaluation fans out through SweepRunner, whose
// results are input-ordered and job-count-independent; all random choices
// come from one sim::Rng consumed on the coordinating thread. So the full
// SearchReport — byte for byte, via report_json() — is identical whatever
// --jobs is.
//
// Shrinking is axis-wise minimization run to a fixpoint (so it is
// idempotent: shrinking a shrunk cell changes nothing), followed by seed
// re-derivation (the smallest seed in [1, seed_tries] that still
// reproduces the verdict replaces the found seed). Shrunk cells serialize
// as "valcon-counterexample-v1" JSON; the committed corpus under
// tests/corpus/ is replayed by the test_corpus_replay target through the
// exact same candidate_point() -> run_point() path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "valcon/harness/sweep.hpp"

namespace valcon::harness {

/// What a run did, as a single severity-ordered verdict. kClean means all
/// three properties held; the three violation verdicts name the *most
/// severe* violated property (agreement > validity > termination — a
/// disagreeing run usually also fails validity, and naming it a validity
/// breach would bury the lede); kError means the run threw.
enum class Verdict {
  kClean,
  kTermination,
  kAgreement,
  kValidity,
  kError,
};

[[nodiscard]] Verdict classify(const SweepOutcome& outcome);

/// Round-trippable wire tokens ("clean", "termination", "agreement",
/// "validity", "error").
[[nodiscard]] std::string verdict_token(Verdict v);
[[nodiscard]] std::optional<Verdict> verdict_from_token(
    const std::string& token);

/// Short round-trippable tokens for the corpus cell format. to_string(VcKind)
/// emits display names ("auth(Alg1)"); cells use "auth" / "nonauth" /
/// "fast" and "strong" / "weak" / "correct-proposal" / "median" /
/// "convex-hull".
[[nodiscard]] std::string vc_token(VcKind vc);
[[nodiscard]] std::optional<VcKind> vc_from_token(const std::string& token);
[[nodiscard]] std::string validity_token(ValidityKind kind);
[[nodiscard]] std::optional<ValidityKind> validity_from_token(
    const std::string& token);

/// One concrete cell of the search space: every axis pinned. The candidate
/// is the search's unit of mutation AND the corpus cell's replay identity —
/// candidate_point() resolves it through a single-cell ScenarioMatrix, so
/// replay reuses the exact FaultSpec / pattern / profile resolution the
/// sweep uses (faulty ids are the highest ids, negative fields resolve
/// per-scenario, near-miss recording is on).
struct Candidate {
  std::string strategy = "silent";  // "none" = fault-free
  int fault_count = -1;             // -1 resolves to t
  VcKind vc = VcKind::kAuthenticated;
  ValidityKind validity = ValidityKind::kStrong;
  std::string pattern = "rotating";
  std::string net_profile = "uniform";
  int n = 4;
  int t = 1;
  Time gst = 0.0;
  Time delta = 1.0;
  Value domain = 3;
  int victims = -1;  // adaptive / collude-withhold; -1 = Fault default
  int observe = -1;  // adaptive / collude-withhold; -1 = Fault default
  /// Certificate backend (core/quorum.hpp). Follows the wire-gating
  /// convention of the sweep axes: the per-vote default is absent from
  /// key(), the cell JSON and the cell file name, so every legacy corpus
  /// cell keeps its exact bytes and identity.
  core::CertMode cert = core::CertMode::kPerVote;
  /// Communication topology (harness/topology.hpp). Wire-gated like cert:
  /// the full-mesh default is absent from key(), the cell JSON and the
  /// cell file name. A committee larger than n evaluates to an error
  /// verdict (run_universal rejects it), never a crash.
  std::string topology = "full-mesh";
  std::uint64_t seed = 1;

  [[nodiscard]] bool operator==(const Candidate& other) const;
  /// Stable human-readable identity (also the dedup key).
  [[nodiscard]] std::string key() const;
};

/// Resolves the candidate into a runnable cell via a single-cell
/// ScenarioMatrix. Throws std::invalid_argument for axis values the
/// registries reject.
[[nodiscard]] SweepPoint candidate_point(const Candidate& c);

/// candidate_point() + run_point().
[[nodiscard]] SweepOutcome evaluate(const Candidate& c);

/// How close a clean run came to a violation; higher = closer. Folds the
/// RunResult near-miss fields: small positive vote margins, conflicting
/// votes reaching the voting stage, a run cut by the grace window rather
/// than draining, and little slack between the end of the run and the
/// grace cutoff. Deterministic; 0.0 for errored runs.
[[nodiscard]] double near_miss_score(const SweepOutcome& outcome);

/// The value pools each axis draws from. Defaults are the SOUND regime
/// (n > 3t): a search over them finding any violation is a bug, which is
/// exactly what the CI smoke run asserts. Counterexamples for the corpus
/// come from explicitly unsound sizes (e.g. --sizes 4/2).
struct SearchSpace {
  std::vector<std::string> strategies{
      "silent",       "crash",           "equivocate",
      "delay",        "mutate",          "equivocate-scheduled",
      "adaptive",     "collude-equivocate", "collude-withhold",
      "forge-qc"};
  std::vector<VcKind> vcs{VcKind::kAuthenticated, VcKind::kNonAuthenticated,
                          VcKind::kFast};
  std::vector<ValidityKind> validities{ValidityKind::kStrong};
  std::vector<std::string> patterns{"rotating", "unanimous", "split",
                                    "adversarial"};
  std::vector<std::string> net_profiles{"uniform", "pre-gst-starve",
                                        "targeted-slow-links"};
  std::vector<std::pair<int, int>> sizes{{4, 1}, {7, 2}};
  std::vector<Time> gsts{0.0, 5.0, 30.0};
  std::vector<Time> deltas{1.0};
  std::vector<Value> domains{3};
  /// Certificate backends. The per-vote default keeps the historical
  /// search byte-identical; `valcon_search --cert-modes
  /// per-vote,aggregate` widens the pool so forge-qc (inert per-vote) has
  /// QCs to forge.
  std::vector<core::CertMode> cert_modes{core::CertMode::kPerVote};
  /// Topologies ("full-mesh" / "committee-<k>"). Widening the pool (e.g.
  /// `valcon_search --topologies full-mesh,committee-4`) lets the search
  /// attack the committee announce/relay layer; pair it with sizes large
  /// enough for the committees, since a committee larger than n is an
  /// error cell.
  std::vector<std::string> topologies{"full-mesh"};
};

struct SearchOptions {
  SearchSpace space;
  std::uint64_t search_seed = 1;
  /// Total candidate evaluations the generational loop may spend (shrink
  /// probes are budgeted separately, see max_shrink_probes).
  int budget = 256;
  /// Candidates evaluated per generation.
  int population = 16;
  int jobs = 1;
  bool shrink = true;
  /// Upper bound on shrink probes per counterexample.
  int max_shrink_probes = 256;
  /// Seed re-derivation tries the smallest reproducing seed in
  /// [1, seed_tries].
  int seed_tries = 16;
};

/// One found-and-shrunk violation.
struct Counterexample {
  Candidate candidate;  // the shrunk cell
  Verdict verdict = Verdict::kClean;
  /// Outcome of the shrunk cell (re-evaluated after shrinking).
  SweepOutcome outcome;
  int shrink_probes = 0;  // probes spent minimizing this cell
};

struct SearchReport {
  std::uint64_t search_seed = 0;
  int budget = 0;
  std::uint64_t evaluated = 0;  // generational evaluations actually spent
  std::uint64_t errors = 0;     // candidates whose run threw (not shrunk)
  /// Shrunk violations, deduplicated by Candidate::key(), in discovery
  /// order.
  std::vector<Counterexample> counterexamples;
  /// Best near-miss among clean candidates (score then discovery order).
  double best_score = 0.0;
  std::optional<Candidate> best_candidate;
};

/// Runs the generational search loop: seed a population from the space,
/// evaluate a generation through SweepRunner, collect violations, select
/// near-miss elites, mutate them into the next generation, repeat until
/// the budget is spent; then shrink every distinct violation. Throws
/// std::invalid_argument for an empty axis pool or non-positive
/// budget/population.
[[nodiscard]] SearchReport run_search(const SearchOptions& options);

/// Axis-wise minimization of a violating candidate to a fixpoint, then
/// seed re-derivation. Returns the counterexample with the shrunk cell
/// re-evaluated. `probes` (optional) receives the number of evaluations
/// spent. Precondition: classify(evaluate(c)) == verdict.
[[nodiscard]] Counterexample shrink(const Candidate& c, Verdict verdict,
                                    const SearchOptions& options);

// ------------------------------------------------------------ wire format

/// Serializes one counterexample as a "valcon-counterexample-v1" JSON
/// object (multi-line, trailing newline): the candidate axes plus an
/// "expect" block with the verdict and the decided/agreement/validity_ok
/// flags the replay must reproduce. Deterministic bytes.
[[nodiscard]] std::string cell_json(const Counterexample& cx);

/// Parses a cell written by cell_json() (strict: unknown schema or any
/// missing/malformed field throws std::runtime_error). Returns the
/// candidate plus the expected verdict and flags.
struct CorpusCell {
  Candidate candidate;
  Verdict verdict = Verdict::kClean;
  bool expect_decided = false;
  bool expect_agreement = true;
  bool expect_validity_ok = true;
};
[[nodiscard]] CorpusCell parse_cell(const std::string& json);

/// Canonical file name for a cell within a corpus directory.
[[nodiscard]] std::string cell_filename(const Counterexample& cx);

/// The whole report as deterministic JSON (no wall-clock, no host state):
/// header (search_seed, budget, evaluated), the shrunk counterexample
/// cells, and the best near-miss block.
[[nodiscard]] std::string report_json(const SearchReport& report);

}  // namespace valcon::harness
