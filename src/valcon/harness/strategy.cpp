#include "valcon/harness/strategy.hpp"

#include <set>
#include <stdexcept>
#include <utility>

#include "valcon/core/quorum.hpp"
#include "valcon/sim/adversary.hpp"
#include "valcon/sim/component.hpp"

namespace valcon::harness {

namespace {

[[noreturn]] void bad_param(const std::string& strategy,
                            const std::string& what) {
  throw std::invalid_argument("strategy '" + strategy + "': " + what);
}

/// "silent" — no computational steps at all (canonical executions, §3.1).
class SilentStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv&) const override {
    return std::make_unique<sim::SilentProcess>();
  }
};

/// "crash" — correct until fault.crash_time, then silent.
class CrashStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    return std::make_unique<sim::CrashShim>(
        env.recorded_stack(env.own_proposal()), env.fault.crash_time);
  }
  void validate(const Fault& fault, const ScenarioConfig&) const override {
    if (fault.crash_time < 0) bad_param("crash", "crash_time must be >= 0");
  }
};

/// "equivocate" — the Lemma 2 partitioning adversary: two independent
/// correct stacks with conflicting proposals, each confined to its half of
/// the process set (lower half sees the own proposal, upper half sees
/// fault.equivocal_value).
class EquivocateStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    const int half = env.cfg.n / 2;
    return std::make_unique<sim::TwoFacedProcess>(
        env.shadow_stack(env.own_proposal()),
        env.shadow_stack(env.fault.equivocal_value),
        [half](ProcessId q) { return q < half ? 0 : 1; });
  }
};

/// "delay" — the process itself behaves correctly; the adversary holds all
/// its outbound links (the self-link models local computation and stays
/// prompt) until release_time, clipped by the network to the model bound
/// max(send, GST) + delta.
class DelayStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    const Time release = env.fault.release_time >= 0
                             ? env.fault.release_time
                             : env.cfg.gst + env.cfg.delta;
    for (ProcessId q = 0; q < env.cfg.n; ++q) {
      if (q != env.self) env.sim.network().hold(env.self, q, release);
    }
    return env.recorded_stack(env.own_proposal());
  }
};

/// "mutate" — correct stack whose outbound messages are tampered with
/// probability fault.mutate_rate (drop / garble / duplicate).
class MutateStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    return std::make_unique<sim::MutatingShim>(
        env.recorded_stack(env.own_proposal()), env.fault.mutate_rate);
  }
  void validate(const Fault& fault, const ScenarioConfig&) const override {
    if (fault.mutate_rate < 0.0 || fault.mutate_rate > 1.0) {
      bad_param("mutate", "mutate_rate must be in [0, 1]");
    }
  }
};

/// "equivocate-scheduled" — everyone sees face 0 (own proposal) until
/// fault.switch_time (< 0 resolves to GST); from then on the upper half is
/// handled by a second stack proposing fault.equivocal_value, which joins
/// the run late with conflicting state.
class ScheduledEquivocateStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    const Time switch_at =
        env.fault.switch_time >= 0 ? env.fault.switch_time : env.cfg.gst;
    const int half = env.cfg.n / 2;
    return std::make_unique<sim::TwoFacedProcess>(
        env.shadow_stack(env.own_proposal()),
        env.shadow_stack(env.fault.equivocal_value),
        sim::TwoFacedProcess::TimedSide(
            [half, switch_at](ProcessId q, Time now) {
              return (now >= switch_at && q >= half) ? 1 : 0;
            }));
  }
};

/// "adaptive" — correct stack that counts inbound deliveries and, after
/// fault.observe of them, permanently omits sends to the fault.victims
/// busiest senders.
class AdaptiveStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    return std::make_unique<sim::AdaptiveOmitShim>(
        env.recorded_stack(env.own_proposal()), env.fault.victims,
        env.fault.observe);
  }
  void validate(const Fault& fault, const ScenarioConfig&) const override {
    if (fault.victims < 0) bad_param("adaptive", "victims must be >= 0");
    if (fault.observe < 0) bad_param("adaptive", "observe must be >= 0");
  }
};

/// Shared partition plan of a collude-equivocate group: the sorted colluder
/// ids, the side assignment for every outsider, and whether the cross-side
/// network holds were already installed (the first builder does it once for
/// the whole group).
struct CollusionPlan {
  std::vector<ProcessId> colluders;
  std::vector<int> side;  // indexed by pid; colluders' own entries unused
  bool holds_installed = false;
};

/// Builds (once per run) the partition plan shared by every process whose
/// fault uses `strategy_name`: colluders are all such processes, outsiders
/// are split lower-half / upper-half into sides 0 and 1.
std::shared_ptr<CollusionPlan> collusion_plan(const StrategyEnv& env,
                                              const char* strategy_name) {
  auto plan = env.shared_state().get_or_make<CollusionPlan>(
      std::string(strategy_name) + "/plan");
  if (plan->side.empty()) {
    plan->side.assign(static_cast<std::size_t>(env.cfg.n), 0);
    for (const auto& [pid, fault] : env.cfg.faults) {
      if (fault.strategy == strategy_name) plan->colluders.push_back(pid);
    }
    std::vector<ProcessId> outsiders;
    for (ProcessId q = 0; q < env.cfg.n; ++q) {
      const auto it = env.cfg.faults.find(q);
      if (it == env.cfg.faults.end() || it->second.strategy != strategy_name) {
        outsiders.push_back(q);
      }
    }
    const std::size_t half = (outsiders.size() + 1) / 2;
    for (std::size_t i = 0; i < outsiders.size(); ++i) {
      plan->side[static_cast<std::size_t>(outsiders[i])] = i < half ? 0 : 1;
    }
  }
  return plan;
}

/// "collude-equivocate" — the Lemma 2 partition adversary executed by the
/// whole colluding group at once. Every colluder runs two faces (own
/// proposal vs. fault.equivocal_value) with ONE shared side assignment, and
/// colluder-to-colluder traffic is face-tagged so both world views stay
/// mutually consistent across the group. The first builder additionally
/// holds the outsider-to-outsider cross-side links until release_time
/// (default: the horizon) — the network clips every held delivery to
/// max(send, GST) + delta (sim/network.hpp), so the partition heals itself
/// at GST and the schedule stays within the model. In the sound regime
/// (n > 3t) this cannot create disagreement; at n <= 3t each side can reach
/// quorum alone pre-GST, which is exactly the counterexample the adversary
/// search mines for.
class ColludeEquivocateStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    auto plan = collusion_plan(env, "collude-equivocate");
    if (!plan->holds_installed) {
      plan->holds_installed = true;
      const Time release = env.fault.release_time >= 0
                               ? env.fault.release_time
                               : env.cfg.horizon;
      std::vector<ProcessId> side0;
      std::vector<ProcessId> side1;
      for (ProcessId q = 0; q < env.cfg.n; ++q) {
        const auto it = env.cfg.faults.find(q);
        if (it != env.cfg.faults.end() &&
            it->second.strategy == "collude-equivocate") {
          continue;
        }
        (plan->side[static_cast<std::size_t>(q)] == 0 ? side0 : side1)
            .push_back(q);
      }
      env.sim.network().hold_between(side0, side1, release);
    }
    return std::make_unique<sim::ColludingFacedProcess>(
        env.shadow_stack(env.own_proposal()),
        env.shadow_stack(env.fault.equivocal_value),
        [plan](ProcessId q) {
          return plan->side[static_cast<std::size_t>(q)];
        },
        plan->colluders);
  }
};

/// "collude-withhold" — quorum-edge vote withholding: the group behaves
/// correctly while a SHARED tally of inbound deliveries (summed over all
/// members) is below fault.observe; the delivery that trips it makes every
/// member simultaneously stop sending to the fault.victims lowest-id
/// correct processes. The shared trip wire is what a lone AdaptiveOmitShim
/// cannot do: all colluding votes vanish from the victims' quorums at one
/// logical instant, mid-protocol.
class ColludeWithholdStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    auto ledger = env.shared_state().get_or_make<sim::WithholdLedger>(
        "collude-withhold/ledger");
    if (!ledger->configured) {
      ledger->configured = true;
      ledger->threshold = static_cast<std::uint64_t>(
          env.fault.observe > 0 ? env.fault.observe : 0);
      int want = env.fault.victims;
      for (ProcessId q = 0; q < env.cfg.n && want > 0; ++q) {
        if (env.cfg.faults.count(q) == 0) {
          ledger->victims.push_back(q);
          --want;
        }
      }
    }
    return std::make_unique<sim::ColludingOmitShim>(
        env.recorded_stack(env.own_proposal()), std::move(ledger));
  }
  void validate(const Fault& fault, const ScenarioConfig&) const override {
    if (fault.victims < 0) {
      bad_param("collude-withhold", "victims must be >= 0");
    }
    if (fault.observe < 0) {
      bad_param("collude-withhold", "observe must be >= 0");
    }
  }
};

/// Shim for "forge-qc": a full correct inner stack, plus a forgery reflex —
/// every genuine QuorumCertificatePayload it observes inbound (unwrapped
/// through the MuxMsg nesting chain, then re-wrapped in the same chain so
/// the forgeries route to the same protocol layer at every receiver) is
/// answered with two forged broadcast variants: one with an inflated voter
/// bitset (a voter the aggregate does not cover) and one with a tampered
/// aggregate MAC over the genuine voter set. One forgery pair per distinct
/// certificate digest keeps the extra traffic bounded; the self-delivered
/// forgeries re-enter maybe_forge with an already-seen digest, so the
/// reflex can never feed itself. Honest receivers recompute the expected
/// digest and pay one verify_aggregate, so every forgery must be rejected
/// — a run with this fault must be indistinguishable (decisions,
/// agreement, validity) from the corresponding fault-free run.
class ForgeQcShim final : public sim::Process {
 public:
  explicit ForgeQcShim(std::unique_ptr<sim::Process> inner)
      : inner_(std::move(inner)) {}

  void on_start(sim::Context& ctx) override { inner_->on_start(ctx); }
  void on_message(sim::Context& ctx, ProcessId from,
                  const sim::PayloadPtr& m) override {
    maybe_forge(ctx, m);
    inner_->on_message(ctx, from, m);
  }
  void on_timer(sim::Context& ctx, std::uint64_t tag) override {
    inner_->on_timer(ctx, tag);
  }

 private:
  /// Re-wraps a forged leaf in the observed MuxMsg chain, outermost first.
  [[nodiscard]] static sim::PayloadPtr rewrap(
      const std::vector<std::uint32_t>& chain, sim::PayloadPtr forged) {
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      forged = sim::make_payload<sim::MuxMsg>(*it, std::move(forged));
    }
    return forged;
  }

  void maybe_forge(sim::Context& ctx, const sim::PayloadPtr& m) {
    std::vector<std::uint32_t> chain;
    const sim::Payload* leaf = m.get();
    while (leaf->mux_child() != sim::Payload::kNotWrapped) {
      // Only MuxMsg answers the routing hook (see Payload::mux_child).
      const auto* mux = static_cast<const sim::MuxMsg*>(leaf);
      chain.push_back(mux->child);
      leaf = mux->inner.get();
    }
    const auto* qc =
        dynamic_cast<const core::QuorumCertificatePayload*>(leaf);
    if (qc == nullptr) return;
    if (!forged_.insert(qc->agg.digest).second) return;
    // Variant 1: inflated bitset — claim the lowest non-voter as a voter.
    // (A full bitset has no non-voter to add; the variant would be the
    // genuine certificate, so it is skipped.)
    crypto::VoterBitset inflated = qc->voters;
    for (ProcessId p = 0; p < inflated.capacity(); ++p) {
      if (!inflated.test(p)) {
        inflated.set(p);
        ctx.broadcast(rewrap(
            chain, sim::make_payload<core::QuorumCertificatePayload>(
                       qc->tag, qc->round, qc->value, std::move(inflated),
                       qc->agg, qc->body)));
        break;
      }
    }
    // Variant 2: tampered aggregate MAC over the genuine voter set.
    crypto::AggregateSignature tampered = qc->agg;
    tampered.mac += 1;
    ctx.broadcast(rewrap(chain,
                         sim::make_payload<core::QuorumCertificatePayload>(
                             qc->tag, qc->round, qc->value, qc->voters,
                             tampered, qc->body)));
  }

  std::unique_ptr<sim::Process> inner_;
  std::set<crypto::Hash> forged_;
};

/// "forge-qc" — correct stack plus the QC forgery reflex above. Only bites
/// under cert_mode=aggregate: in per-vote mode no quorum certificates flow
/// and the stack is simply correct, so the strategy is safe to keep in the
/// default (sound-regime) search pool.
class ForgeQcStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    return std::make_unique<ForgeQcShim>(
        env.recorded_stack(env.own_proposal()));
  }
};

template <typename T>
void add_builtin(StrategyRegistry& registry, const std::string& name) {
  registry.add(name, [] { return std::make_unique<T>(); });
}

}  // namespace

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    add_builtin<SilentStrategy>(*r, "silent");
    add_builtin<CrashStrategy>(*r, "crash");
    add_builtin<EquivocateStrategy>(*r, "equivocate");
    add_builtin<DelayStrategy>(*r, "delay");
    add_builtin<MutateStrategy>(*r, "mutate");
    add_builtin<ScheduledEquivocateStrategy>(*r, "equivocate-scheduled");
    add_builtin<AdaptiveStrategy>(*r, "adaptive");
    add_builtin<ColludeEquivocateStrategy>(*r, "collude-equivocate");
    add_builtin<ColludeWithholdStrategy>(*r, "collude-withhold");
    add_builtin<ForgeQcStrategy>(*r, "forge-qc");
    return r;
  }();
  return *registry;
}

void StrategyRegistry::add(const std::string& name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("StrategyRegistry: empty strategy name");
  }
  if (!factory) {
    throw std::invalid_argument("StrategyRegistry: null factory for '" +
                                name + "'");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("StrategyRegistry: '" + name +
                                "' is already registered");
  }
}

bool StrategyRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::unique_ptr<Strategy> StrategyRegistry::make(
    const std::string& name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown adversary strategy '" + name +
                                "' (registered: " + known + ")");
  }
  return factory();
}

std::vector<std::string> StrategyRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

}  // namespace valcon::harness
