#include "valcon/harness/strategy.hpp"

#include <stdexcept>
#include <utility>

#include "valcon/sim/adversary.hpp"

namespace valcon::harness {

namespace {

[[noreturn]] void bad_param(const std::string& strategy,
                            const std::string& what) {
  throw std::invalid_argument("strategy '" + strategy + "': " + what);
}

/// "silent" — no computational steps at all (canonical executions, §3.1).
class SilentStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv&) const override {
    return std::make_unique<sim::SilentProcess>();
  }
};

/// "crash" — correct until fault.crash_time, then silent.
class CrashStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    return std::make_unique<sim::CrashShim>(
        env.recorded_stack(env.own_proposal()), env.fault.crash_time);
  }
  void validate(const Fault& fault, const ScenarioConfig&) const override {
    if (fault.crash_time < 0) bad_param("crash", "crash_time must be >= 0");
  }
};

/// "equivocate" — the Lemma 2 partitioning adversary: two independent
/// correct stacks with conflicting proposals, each confined to its half of
/// the process set (lower half sees the own proposal, upper half sees
/// fault.equivocal_value).
class EquivocateStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    const int half = env.cfg.n / 2;
    return std::make_unique<sim::TwoFacedProcess>(
        env.shadow_stack(env.own_proposal()),
        env.shadow_stack(env.fault.equivocal_value),
        [half](ProcessId q) { return q < half ? 0 : 1; });
  }
};

/// "delay" — the process itself behaves correctly; the adversary holds all
/// its outbound links (the self-link models local computation and stays
/// prompt) until release_time, clipped by the network to the model bound
/// max(send, GST) + delta.
class DelayStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    const Time release = env.fault.release_time >= 0
                             ? env.fault.release_time
                             : env.cfg.gst + env.cfg.delta;
    for (ProcessId q = 0; q < env.cfg.n; ++q) {
      if (q != env.self) env.sim.network().hold(env.self, q, release);
    }
    return env.recorded_stack(env.own_proposal());
  }
};

/// "mutate" — correct stack whose outbound messages are tampered with
/// probability fault.mutate_rate (drop / garble / duplicate).
class MutateStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    return std::make_unique<sim::MutatingShim>(
        env.recorded_stack(env.own_proposal()), env.fault.mutate_rate);
  }
  void validate(const Fault& fault, const ScenarioConfig&) const override {
    if (fault.mutate_rate < 0.0 || fault.mutate_rate > 1.0) {
      bad_param("mutate", "mutate_rate must be in [0, 1]");
    }
  }
};

/// "equivocate-scheduled" — everyone sees face 0 (own proposal) until
/// fault.switch_time (< 0 resolves to GST); from then on the upper half is
/// handled by a second stack proposing fault.equivocal_value, which joins
/// the run late with conflicting state.
class ScheduledEquivocateStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    const Time switch_at =
        env.fault.switch_time >= 0 ? env.fault.switch_time : env.cfg.gst;
    const int half = env.cfg.n / 2;
    return std::make_unique<sim::TwoFacedProcess>(
        env.shadow_stack(env.own_proposal()),
        env.shadow_stack(env.fault.equivocal_value),
        sim::TwoFacedProcess::TimedSide(
            [half, switch_at](ProcessId q, Time now) {
              return (now >= switch_at && q >= half) ? 1 : 0;
            }));
  }
};

/// "adaptive" — correct stack that counts inbound deliveries and, after
/// fault.observe of them, permanently omits sends to the fault.victims
/// busiest senders.
class AdaptiveStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    return std::make_unique<sim::AdaptiveOmitShim>(
        env.recorded_stack(env.own_proposal()), env.fault.victims,
        env.fault.observe);
  }
  void validate(const Fault& fault, const ScenarioConfig&) const override {
    if (fault.victims < 0) bad_param("adaptive", "victims must be >= 0");
    if (fault.observe < 0) bad_param("adaptive", "observe must be >= 0");
  }
};

template <typename T>
void add_builtin(StrategyRegistry& registry, const std::string& name) {
  registry.add(name, [] { return std::make_unique<T>(); });
}

}  // namespace

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry* registry = [] {
    auto* r = new StrategyRegistry();
    add_builtin<SilentStrategy>(*r, "silent");
    add_builtin<CrashStrategy>(*r, "crash");
    add_builtin<EquivocateStrategy>(*r, "equivocate");
    add_builtin<DelayStrategy>(*r, "delay");
    add_builtin<MutateStrategy>(*r, "mutate");
    add_builtin<ScheduledEquivocateStrategy>(*r, "equivocate-scheduled");
    add_builtin<AdaptiveStrategy>(*r, "adaptive");
    return r;
  }();
  return *registry;
}

void StrategyRegistry::add(const std::string& name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("StrategyRegistry: empty strategy name");
  }
  if (!factory) {
    throw std::invalid_argument("StrategyRegistry: null factory for '" +
                                name + "'");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("StrategyRegistry: '" + name +
                                "' is already registered");
  }
}

bool StrategyRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::unique_ptr<Strategy> StrategyRegistry::make(
    const std::string& name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown adversary strategy '" + name +
                                "' (registered: " + known + ")");
  }
  return factory();
}

std::vector<std::string> StrategyRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

}  // namespace valcon::harness
