// Pluggable Byzantine adversary strategies.
//
// The paper's separation results each hinge on a different adversary
// construction (Lemma 2's partitioner, Theorem 1's equivocator, Theorem 4's
// message-dropper), and new adversarial scenarios should not require edits
// to the harness core. A Strategy builds the sim::Process installed for a
// faulty process — wrapping a correct stack in shims, running several
// stacks side by side, or installing network-level side effects — and the
// string-keyed StrategyRegistry makes every strategy addressable from
// ScenarioConfig, the sweep matrix and the valcon_sweep CLI.
//
// Determinism contract for strategy authors (see docs/adversaries.md): a
// strategy may only draw randomness from the per-process Rng of the
// Context it is given (sim/rng.hpp) and may not consult wall-clock time or
// any other ambient state, so that every run stays a deterministic function
// of (configuration, seed) whatever the sweep job count.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "valcon/harness/scenario.hpp"
#include "valcon/sim/simulator.hpp"

namespace valcon::harness {

/// Per-run blackboard for *colluding* strategies: faulty processes built by
/// the same (or cooperating) strategies in one run share state through it —
/// a common partition plan, a joint vote-withholding ledger. run_universal
/// creates one instance per run and hands every StrategyEnv a pointer, so
/// shared state never leaks across runs (or across the concurrent runs of a
/// sweep). Builds within one run are sequential; no locking.
class StrategyShared {
 public:
  /// Returns the slot registered under `key`, default-constructing a T on
  /// first use. All callers for one key must agree on T (checked: a
  /// mismatched type throws std::logic_error).
  template <typename T>
  std::shared_ptr<T> get_or_make(const std::string& key) {
    auto [it, inserted] = slots_.try_emplace(key);
    if (inserted) {
      auto made = std::make_shared<T>();
      it->second = Slot{made, &typeid(T)};
      return made;
    }
    if (*it->second.type != typeid(T)) {
      throw std::logic_error("StrategyShared: key '" + key +
                             "' already holds a different type");
    }
    return std::static_pointer_cast<T>(it->second.value);
  }

 private:
  struct Slot {
    std::shared_ptr<void> value;
    const std::type_info* type = nullptr;
  };
  std::map<std::string, Slot> slots_;
};

/// Everything a Strategy may use while installing the process for one
/// faulty id. The stack factories build a full Universal stack (the same
/// one a correct process runs) proposing a value of the strategy's choice.
struct StrategyEnv {
  const ScenarioConfig& cfg;
  const Fault& fault;   // the parameters for this faulty process
  ProcessId self;       // the faulty process being built
  sim::Simulator& sim;  // for network()-level side effects (holds, blocks)

  /// Stack whose decisions are recorded in the RunResult (and pruned from
  /// the correctness-facing views afterwards, as the process is faulty) —
  /// use for mostly-correct behaviors such as crash or delay.
  std::function<std::unique_ptr<sim::Process>(Value proposal)> recorded_stack;

  /// Stack whose decisions are discarded — use for parallel copies such as
  /// equivocation faces, where per-face decisions are meaningless.
  std::function<std::unique_ptr<sim::Process>(Value proposal)> shadow_stack;

  /// Per-run blackboard for colluding strategies (see StrategyShared).
  /// Null only in hand-rolled test environments that predate collusion.
  StrategyShared* shared = nullptr;

  /// The proposal ScenarioConfig assigns to `self`.
  [[nodiscard]] Value own_proposal() const {
    return cfg.proposals[static_cast<std::size_t>(self)];
  }

  /// The blackboard, for strategies that require one. Throws
  /// std::logic_error if the harness did not provide it.
  [[nodiscard]] StrategyShared& shared_state() const {
    if (shared == nullptr) {
      throw std::logic_error(
          "StrategyEnv.shared is null: colluding strategies need the "
          "run-scoped StrategyShared that run_universal provides");
    }
    return *shared;
  }
};

/// One adversary behavior. Implementations must be stateless across runs
/// (a fresh instance is made per lookup); all per-run state lives in the
/// returned Process.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Builds the process installed for env.self (never null). May also
  /// install network-level side effects through env.sim. The caller has
  /// already marked env.self faulty.
  [[nodiscard]] virtual std::unique_ptr<sim::Process> build(
      const StrategyEnv& env) const = 0;

  /// Parameter validation hook, called from harness::validate(). Throw
  /// std::invalid_argument for out-of-range parameters.
  virtual void validate(const Fault& /*fault*/,
                        const ScenarioConfig& /*cfg*/) const {}
};

/// String-keyed factory registry. The global() instance starts with the
/// built-in strategies ("silent", "crash", "equivocate", "delay", "mutate",
/// "equivocate-scheduled", "adaptive", "collude-equivocate",
/// "collude-withhold", "forge-qc") registered; libraries and tests add
/// their own with add(). Lookups are thread-safe (sweep workers resolve strategies
/// concurrently).
class StrategyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Strategy>()>;

  StrategyRegistry() = default;  // empty registry (for tests)

  /// The process-wide registry, with the built-ins pre-registered.
  [[nodiscard]] static StrategyRegistry& global();

  /// Registers a factory. Throws std::invalid_argument for an empty name, a
  /// null factory, or a name that is already taken.
  void add(const std::string& name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Instantiates the strategy registered under `name`. Throws
  /// std::invalid_argument for unknown names, listing what is registered.
  [[nodiscard]] std::unique_ptr<Strategy> make(const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace valcon::harness
