#include "valcon/harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "valcon/core/lambda.hpp"
#include "valcon/harness/net_profile.hpp"
#include "valcon/harness/pattern.hpp"
#include "valcon/harness/strategy.hpp"
#include "valcon/harness/table.hpp"

namespace valcon::harness {

std::string FaultSpec::label(int t) const {
  // Mirrors the clamp build() applies, so the label always names the number
  // of faults actually injected.
  const int resolved = count < 0 ? t : std::min(count, t);
  if (resolved == 0) return "none";
  return strategy + "x" + std::to_string(resolved);
}

namespace {

/// Shared by keep_patterns / keep_network_profiles: filters `axis` down to
/// the values named in `keep`, failing loudly for a requested name that
/// selects nothing (nothing requested may be dropped silently).
std::vector<std::string> filter_axis(const std::vector<std::string>& axis,
                                     const std::vector<std::string>& keep,
                                     const std::string& what) {
  if (keep.empty()) {
    // An empty keep-list would empty the axis and shrink the matrix to
    // zero cells — a sweep that runs nothing and exits green. A filter
    // that selects nothing is a caller mistake, not a request.
    throw std::invalid_argument("empty " + what + " filter");
  }
  std::vector<std::string> kept;
  for (const std::string& value : axis) {
    if (std::find(keep.begin(), keep.end(), value) != keep.end()) {
      kept.push_back(value);
    }
  }
  for (const std::string& name : keep) {
    if (std::find(kept.begin(), kept.end(), name) == kept.end()) {
      throw std::invalid_argument(what + " '" + name +
                                  "' matches no " + what +
                                  " dimension value of this matrix");
    }
  }
  return kept;
}

}  // namespace

ScenarioMatrix& ScenarioMatrix::vc_kinds(std::vector<VcKind> v) {
  vcs_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::validities(std::vector<ValidityKind> v) {
  validities_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::patterns(std::vector<std::string> names) {
  patterns_ = std::move(names);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::keep_patterns(
    const std::vector<std::string>& keep) {
  for (const std::string& name : keep) {
    if (!PatternRegistry::global().contains(name)) {
      // make() throws with the list of registered names.
      static_cast<void>(PatternRegistry::global().make(name));
    }
  }
  patterns_ = filter_axis(patterns_, keep, "pattern");
  return *this;
}
ScenarioMatrix& ScenarioMatrix::faults(std::vector<FaultSpec> v) {
  faults_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::keep_strategies(
    const std::vector<std::string>& keep) {
  if (keep.empty()) {
    throw std::invalid_argument("empty strategy filter");
  }
  for (const std::string& name : keep) {
    if (name != "none" && !StrategyRegistry::global().contains(name)) {
      // make() throws with the list of registered names.
      static_cast<void>(StrategyRegistry::global().make(name));
    }
  }
  std::vector<FaultSpec> kept;
  for (const FaultSpec& spec : faults_) {
    if (std::find(keep.begin(), keep.end(), spec.effective_strategy()) !=
        keep.end()) {
      kept.push_back(spec);
    }
  }
  // Every requested name must select at least one spec: a registered
  // strategy absent from this matrix would otherwise be dropped silently
  // and the caller would believe it was swept.
  for (const std::string& name : keep) {
    const bool matched =
        std::any_of(kept.begin(), kept.end(), [&name](const FaultSpec& spec) {
          return spec.effective_strategy() == name;
        });
    if (!matched) {
      throw std::invalid_argument("strategy '" + name +
                                  "' matches no fault spec in this matrix");
    }
  }
  faults_ = std::move(kept);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::sizes(std::vector<std::pair<int, int>> nt) {
  sizes_ = std::move(nt);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::network_profiles(
    std::vector<std::string> names) {
  net_profiles_ = std::move(names);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::keep_network_profiles(
    const std::vector<std::string>& keep) {
  for (const std::string& name : keep) {
    // Throws for unknown names, listing what exists.
    static_cast<void>(named_network_profile(name));
  }
  net_profiles_ = filter_axis(net_profiles_, keep, "network profile");
  return *this;
}
ScenarioMatrix& ScenarioMatrix::cert_modes(std::vector<core::CertMode> modes) {
  cert_modes_ = std::move(modes);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::keep_cert_modes(
    const std::vector<std::string>& keep) {
  if (keep.empty()) {
    throw std::invalid_argument("empty cert-mode filter");
  }
  std::vector<core::CertMode> wanted;
  for (const std::string& name : keep) {
    const auto mode = core::cert_mode_from_token(name);
    if (!mode.has_value()) {
      throw std::invalid_argument("unknown cert mode '" + name +
                                  "' (expected: per-vote, aggregate)");
    }
    wanted.push_back(*mode);
  }
  std::vector<core::CertMode> kept;
  for (const core::CertMode mode : cert_modes_) {
    if (std::find(wanted.begin(), wanted.end(), mode) != wanted.end()) {
      kept.push_back(mode);
    }
  }
  for (const core::CertMode mode : wanted) {
    if (std::find(kept.begin(), kept.end(), mode) == kept.end()) {
      throw std::invalid_argument(
          "cert mode '" + core::cert_mode_token(mode) +
          "' matches no cert-mode dimension value of this matrix");
    }
  }
  cert_modes_ = std::move(kept);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::topologies(std::vector<std::string> names) {
  topologies_ = std::move(names);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::keep_topologies(
    const std::vector<std::string>& keep) {
  for (const std::string& name : keep) {
    // Throws for unknown names, listing the known forms.
    static_cast<void>(named_topology(name));
  }
  topologies_ = filter_axis(topologies_, keep, "topology");
  return *this;
}
ScenarioMatrix& ScenarioMatrix::gsts(std::vector<Time> v) {
  gsts_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::deltas(std::vector<Time> v) {
  deltas_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::seeds(std::vector<std::uint64_t> v) {
  seeds_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::proposal_domain(Value domain_size) {
  if (domain_size < 2) {
    throw std::invalid_argument("proposal domain must have >= 2 values, got " +
                                std::to_string(domain_size));
  }
  domain_ = domain_size;
  return *this;
}
ScenarioMatrix& ScenarioMatrix::record_near_miss(bool enabled) {
  near_miss_ = enabled;
  return *this;
}
ScenarioMatrix& ScenarioMatrix::horizon(Time cap) {
  if (cap <= 0.0) {
    throw std::invalid_argument("horizon must be positive");
  }
  horizon_ = cap;
  return *this;
}

std::size_t ScenarioMatrix::size() const {
  return vcs_.size() * validities_.size() * patterns_.size() *
         faults_.size() * sizes_.size() * net_profiles_.size() *
         gsts_.size() * deltas_.size() * seeds_.size() * cert_modes_.size() *
         topologies_.size();
}

void ScenarioMatrix::check_dimensions() const {
  if (domain_ < 2) {
    throw std::invalid_argument("proposal domain must have >= 2 values");
  }
  for (const auto& [n, t] : sizes_) {
    if (n <= 0 || t < 0 || t >= n) {
      throw std::invalid_argument("size (n=" + std::to_string(n) +
                                  ", t=" + std::to_string(t) +
                                  ") violates 0 <= t < n");
    }
  }
  // Pattern / profile *names* are deliberately not resolved here:
  // check_dimensions runs per point_at decode, and taking the registry
  // mutex per name per cell would serialize the pool on 1e6+-cell sweeps.
  // The decode body resolves each name exactly once per cell and throws
  // the same std::invalid_argument (listing what is registered) on the
  // first cell of a misnamed axis.
  // A fault spec naming a proposal outside the domain used to wrap or
  // leak through silently; reject it while the matrix is being built, not
  // deep inside a sweep.
  for (const FaultSpec& spec : faults_) {
    if (spec.equivocal_value >= domain_) {
      throw std::invalid_argument(
          "fault spec '" + spec.strategy + "': equivocal_value " +
          std::to_string(spec.equivocal_value) +
          " outside the proposal domain [0, " + std::to_string(domain_) +
          ") — pick a value the domain can express or raise "
          "proposal_domain()");
    }
  }
}

SweepPoint ScenarioMatrix::point_at(std::size_t index) const {
  check_dimensions();
  if (index >= size()) {
    throw std::out_of_range("matrix index " + std::to_string(index) +
                            " >= size " + std::to_string(size()));
  }
  // Mixed-radix decode, least-significant (fastest-varying) digit first:
  // the dimension nesting is vc > validity > pattern > fault > size >
  // net-profile > gst > delta > seed > cert-mode > topology, so the
  // topology digit is peeled first. This is the one source of truth for
  // the index ↔ cell mapping; build() just replays it. (The four new axes
  // decode as radix-1 digits on legacy matrices, so their indices — and
  // bytes — are untouched.)
  std::size_t rem = index;
  const auto digit = [&rem](std::size_t radix) {
    const std::size_t d = rem % radix;
    rem /= radix;
    return d;
  };
  const std::string& topology_name = topologies_[digit(topologies_.size())];
  const core::CertMode cert_mode = cert_modes_[digit(cert_modes_.size())];
  const std::uint64_t seed = seeds_[digit(seeds_.size())];
  const Time delta = deltas_[digit(deltas_.size())];
  const Time gst = gsts_[digit(gsts_.size())];
  const std::string& profile_name = net_profiles_[digit(net_profiles_.size())];
  const auto [n, t] = sizes_[digit(sizes_.size())];
  const FaultSpec& spec = faults_[digit(faults_.size())];
  const std::string& pattern_name = patterns_[digit(patterns_.size())];
  const ValidityKind validity = validities_[digit(validities_.size())];
  const VcKind vc = vcs_[rem];

  ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.delta = delta;
  cfg.gst = gst;
  cfg.seed = seed;
  cfg.vc = vc;
  cfg.horizon = horizon_;
  cfg.cert_mode = cert_mode;
  cfg.topology = named_topology(topology_name);
  cfg.net_profile = named_network_profile(profile_name);
  const PatternEnv penv{n, t, seed, domain_, validity};
  cfg.proposals = PatternRegistry::global().make(pattern_name)->assign(penv);
  if (static_cast<int>(cfg.proposals.size()) != n) {
    throw std::invalid_argument(
        "pattern '" + pattern_name + "' assigned " +
        std::to_string(cfg.proposals.size()) + " proposals for n=" +
        std::to_string(n));
  }
  for (const Value v : cfg.proposals) {
    if (v < 0 || v >= domain_) {
      throw std::invalid_argument(
          "pattern '" + pattern_name + "' assigned proposal " +
          std::to_string(v) + " outside the domain [0, " +
          std::to_string(domain_) + ")");
    }
  }
  const int count = std::min(spec.count < 0 ? t : spec.count, t);
  for (int f = 0; f < count; ++f) {
    const ProcessId pid = n - 1 - f;
    Fault fault;  // negative spec fields keep the defaults
    fault.strategy = spec.strategy;
    fault.crash_time = spec.crash_time < 0 ? gst : spec.crash_time;
    fault.release_time = spec.release_time;
    fault.equivocal_value =
        spec.equivocal_value < 0
            ? (cfg.proposals[static_cast<std::size_t>(pid)] + 1) % domain_
            : spec.equivocal_value;
    if (spec.mutate_rate >= 0) {
      fault.mutate_rate = spec.mutate_rate;
    }
    fault.switch_time = spec.switch_time;
    if (spec.victims >= 0) fault.victims = spec.victims;
    if (spec.observe >= 0) fault.observe = spec.observe;
    cfg.faults[pid] = fault;
  }
  SweepPoint point;
  point.index = index;
  point.config = std::move(cfg);
  point.validity = validity;
  point.pattern = pattern_name;
  point.label = "vc=" + to_string(vc) + " val=" + to_string(validity) +
                " fault=" + spec.label(t) + " n=" + std::to_string(n) +
                " t=" + std::to_string(t) + " gst=" + fmt(gst) +
                " delta=" + fmt(delta) + " seed=" + std::to_string(seed);
  // The new axes surface in labels and the wire format only when the
  // matrix declares them non-trivially; a legacy matrix (both axes pinned
  // to their single default) keeps the legacy bytes — the pinned "full"
  // document depends on this.
  if (!(patterns_.size() == 1 && patterns_[0] == "rotating")) {
    point.pattern_tag = pattern_name;
    point.label += " pat=" + pattern_name;
  }
  if (!(net_profiles_.size() == 1 && net_profiles_[0] == "uniform")) {
    point.net_profile_tag = profile_name;
    point.label += " net=" + profile_name;
  }
  if (!(cert_modes_.size() == 1 &&
        cert_modes_[0] == core::CertMode::kPerVote)) {
    point.cert_tag = core::cert_mode_token(cert_mode);
    point.label += " cert=" + point.cert_tag;
  }
  if (!(topologies_.size() == 1 && topologies_[0] == "full-mesh")) {
    point.topology_tag = topology_name;
    point.label += " topo=" + topology_name;
  }
  point.near_miss = near_miss_;
  return point;
}

std::vector<SweepPoint> ScenarioMatrix::build() const {
  check_dimensions();
  std::vector<SweepPoint> points;
  const std::size_t total = size();
  points.reserve(total);
  for (std::size_t i = 0; i < total; ++i) points.push_back(point_at(i));
  return points;
}

SweepOutcome run_point(const SweepPoint& point) {
  const auto start = std::chrono::steady_clock::now();
  SweepOutcome outcome;
  outcome.point = point;
  const auto stamp = [&outcome, start] {
    outcome.wall_micros = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  };
  const ScenarioConfig& cfg = point.config;
  const auto validity = make_validity(point.validity, cfg.n, cfg.t);
  try {
    const auto lambda = core::make_lambda(*validity, cfg.n, cfg.t);
    outcome.result = run_universal(cfg, lambda);
  } catch (const std::exception& e) {
    outcome.error = e.what();
    outcome.decided = false;
    stamp();
    return outcome;
  }
  // One formal judgment for the three properties: check_execution builds
  // input_conf(E) from the correct proposals and returns the per-property
  // verdicts plus human-readable violation messages. The boolean flags are
  // derived from the report, so the wire format is unchanged while callers
  // (the adversary search above all) can tell a liveness miss from a
  // validity breach.
  std::set<ProcessId> faulty;
  for (const auto& [pid, fault] : cfg.faults) faulty.insert(pid);
  outcome.report = core::check_execution(*validity, cfg.n, cfg.t,
                                         cfg.proposals, faulty,
                                         outcome.result.decisions);
  outcome.decided = outcome.report.termination;
  outcome.agreement = outcome.report.agreement;
  outcome.validity_ok = outcome.report.validity;
  stamp();
  return outcome;
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

std::vector<SweepOutcome> SweepRunner::run(
    const std::vector<SweepPoint>& points) const {
  std::vector<SweepOutcome> outcomes(points.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&points, &outcomes, &next] {
    for (std::size_t i = next.fetch_add(1); i < points.size();
         i = next.fetch_add(1)) {
      outcomes[i] = run_point(points[i]);
    }
  };
  if (jobs_ == 1 || points.size() <= 1) {
    worker();
    return outcomes;
  }
  std::vector<std::thread> pool;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), points.size());
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  return outcomes;
}

void SweepRunner::run_range(
    const ScenarioMatrix& matrix, std::size_t begin, std::size_t end,
    const std::function<void(SweepOutcome&&)>& on_outcome) const {
  if (begin > end || end > matrix.size()) {
    throw std::invalid_argument(
        "run_range [" + std::to_string(begin) + ", " + std::to_string(end) +
        ") is not a slice of the " + std::to_string(matrix.size()) +
        "-cell matrix");
  }
  if (begin == end) return;
  const std::size_t count = end - begin;
  if (jobs_ == 1 || count == 1) {
    for (std::size_t i = begin; i < end; ++i) {
      on_outcome(run_point(matrix.point_at(i)));
    }
    return;
  }

  // Workers claim indices from an atomic cursor and park finished outcomes
  // in `pending` until the emit cursor reaches them; a worker more than
  // `window` cells ahead of the emit cursor blocks, which is what bounds
  // memory to O(jobs) however uneven the per-cell runtimes are. The worker
  // holding the emit-cursor index never blocks (its index always satisfies
  // the window predicate), so the emit frontier always advances.
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::size_t, SweepOutcome> pending;
  std::size_t next_emit = begin;
  std::atomic<std::size_t> next_claim{begin};
  std::exception_ptr failure;
  bool aborted = false;
  const std::size_t window = 16u * static_cast<std::size_t>(jobs_);

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next_claim.fetch_add(1);
      if (i >= end) return;
      SweepOutcome outcome;
      try {
        // point_at can throw (a custom pattern violating the domain
        // contract, say); an exception escaping a pool thread would
        // std::terminate the process, so it is captured and rethrown on
        // the caller's thread — the same loud failure jobs=1 produces.
        outcome = run_point(matrix.point_at(i));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!failure) failure = std::current_exception();
        aborted = true;
        cv.notify_all();
        return;
      }
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return aborted || i < next_emit + window; });
      if (aborted) return;
      pending.emplace(i, std::move(outcome));
      try {
        while (!pending.empty() && pending.begin()->first == next_emit) {
          SweepOutcome ready = std::move(pending.begin()->second);
          pending.erase(pending.begin());
          ++next_emit;
          on_outcome(std::move(ready));
        }
      } catch (...) {
        failure = std::current_exception();
        aborted = true;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), count);
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  if (failure) std::rethrow_exception(failure);
}

SweepSummary SweepRunner::summarize(const std::vector<SweepOutcome>& outcomes,
                                    double wall_seconds) {
  SweepSummary summary;
  summary.total = outcomes.size();
  summary.wall_seconds = wall_seconds;
  double latency = 0, msgs = 0, words = 0;
  for (const SweepOutcome& o : outcomes) {
    if (!o.error.empty()) {
      ++summary.errors;
      continue;
    }
    if (o.decided) {
      ++summary.decided;
      latency += o.result.last_decision_time;
      msgs += static_cast<double>(o.result.message_complexity);
      words += static_cast<double>(o.result.word_complexity);
    }
    if (!o.agreement) ++summary.agreement_violations;
    if (!o.validity_ok) ++summary.validity_violations;
  }
  if (summary.decided > 0) {
    const auto d = static_cast<double>(summary.decided);
    summary.mean_latency = latency / d;
    summary.mean_message_complexity = msgs / d;
    summary.mean_word_complexity = words / d;
  }
  if (wall_seconds > 0) {
    summary.scenarios_per_second =
        static_cast<double>(summary.total) / wall_seconds;
  }
  return summary;
}

ScenarioMatrix named_matrix(const std::string& name) {
  const std::vector<VcKind> all_vcs{VcKind::kAuthenticated,
                                    VcKind::kNonAuthenticated, VcKind::kFast};
  // The four legacy FaultKind patterns (plus fault-free), in the historical
  // order: "full" built from these is the pinned determinism reference, so
  // neither the order nor the contents may change.
  const std::vector<FaultSpec> legacy_faults{
      FaultSpec{"silent", 0},  // fault-free
      FaultSpec{"silent"},
      FaultSpec{"crash"},
      FaultSpec{"equivocate"},
      FaultSpec{"delay"},
  };
  if (name == "smoke") {
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong})
        .faults(legacy_faults)
        .sizes({{4, 1}})
        .seeds({1, 2});
  }
  if (name == "full") {
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong, ValidityKind::kWeak,
                     ValidityKind::kMedian, ValidityKind::kConvexHull})
        .faults(legacy_faults)
        .sizes({{4, 1}, {7, 2}})
        .gsts({0.0, 5.0})
        .seeds({1, 2, 3});
  }
  if (name == "byzantine") {
    std::vector<FaultSpec> specs = legacy_faults;
    specs.push_back(FaultSpec{"mutate"});
    specs.push_back(FaultSpec{"equivocate-scheduled"});
    specs.push_back(FaultSpec{"adaptive"});
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong})
        .faults(std::move(specs))
        .sizes({{4, 1}})
        .gsts({0.0, 5.0})
        .seeds({1, 2});
  }
  if (name == "validity") {
    // The input-space coverage matrix: every validity property crossed
    // with every proposal pattern and every network profile over a
    // 2-value domain. CorrectProposal validity is the reason the domain is
    // 2: at n=4, t=1 an all-distinct 3-entry decision vector over a
    // 3-value domain has no (t+1)-multiplicity value (Λ undefined,
    // unsolvable), while over domain 2 the pigeonhole guarantees one — so
    // this matrix is where CorrectProposal demonstrably gets solved,
    // including under the maximally diverse "adversarial" pattern.
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong, ValidityKind::kWeak,
                     ValidityKind::kCorrectProposal, ValidityKind::kMedian,
                     ValidityKind::kConvexHull})
        .patterns({"rotating", "unanimous", "split", "adversarial"})
        .faults({FaultSpec{"silent", 0}, FaultSpec{"crash"}})
        .sizes({{4, 1}})
        .network_profiles(
            {"uniform", "pre-gst-starve", "targeted-slow-links"})
        .gsts({0.0, 5.0})
        .proposal_domain(2)
        .seeds({1});
  }
  if (name == "certs") {
    // The cert_mode coverage matrix: both certificate backends over the
    // vote-heavy fault patterns. The cert axis is declared non-trivially,
    // so every cell carries the cert_mode wire field; test_qc pins this
    // matrix's job-count determinism.
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong})
        .faults({FaultSpec{"silent", 0}, FaultSpec{"crash"},
                 FaultSpec{"equivocate"}})
        .sizes({{4, 1}, {7, 2}})
        .cert_modes({core::CertMode::kPerVote, core::CertMode::kAggregate})
        .seeds({1, 2});
  }
  if (name == "committee") {
    // The large-n topology matrix: committees of {4, 7, 10} inside systems
    // of {50, 100, 200} processes, both certificate backends, fault-free
    // and crash. Faults land on the highest ids (point_at's assignment
    // rule), i.e. on listeners — the committee itself stays correct, so
    // every cell must terminate cleanly. Unanimous proposals keep every
    // validity verdict trivially green whatever the committee decides.
    // The topology and cert axes are non-trivial, so every cell carries
    // the topology and cert_mode wire fields; test_topology pins this
    // matrix's job-count determinism.
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong})
        .patterns({"unanimous"})
        .faults({FaultSpec{"silent", 0}, FaultSpec{"crash"}})
        .sizes({{50, 4}, {100, 8}, {200, 16}})
        .topologies({"committee-4", "committee-7", "committee-10"})
        .cert_modes({core::CertMode::kPerVote, core::CertMode::kAggregate})
        .seeds({1, 2});
  }
  throw std::invalid_argument("unknown matrix '" + name +
                              "' (expected: smoke, full, byzantine,"
                              " validity, certs, committee)");
}

}  // namespace valcon::harness
