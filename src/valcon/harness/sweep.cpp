#include "valcon/harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "valcon/core/lambda.hpp"
#include "valcon/harness/strategy.hpp"
#include "valcon/harness/table.hpp"

namespace valcon::harness {

std::string to_string(ValidityKind kind) {
  switch (kind) {
    case ValidityKind::kStrong: return "Strong";
    case ValidityKind::kWeak: return "Weak";
    case ValidityKind::kCorrectProposal: return "CorrectProposal";
    case ValidityKind::kMedian: return "Median";
    case ValidityKind::kConvexHull: return "ConvexHull";
  }
  return "?";
}

std::unique_ptr<core::ValidityProperty> make_validity(ValidityKind kind, int n,
                                                      int t) {
  switch (kind) {
    case ValidityKind::kStrong:
      return std::make_unique<core::StrongValidity>();
    case ValidityKind::kWeak:
      return std::make_unique<core::WeakValidity>();
    case ValidityKind::kCorrectProposal:
      return std::make_unique<core::CorrectProposalValidity>();
    case ValidityKind::kMedian:
      return std::make_unique<core::MedianValidity>(n, t);
    case ValidityKind::kConvexHull:
      return std::make_unique<core::ConvexHullValidity>();
  }
  throw std::invalid_argument("unknown ValidityKind");
}

std::string FaultSpec::label(int t) const {
  // Mirrors the clamp build() applies, so the label always names the number
  // of faults actually injected.
  const int resolved = count < 0 ? t : std::min(count, t);
  if (resolved == 0) return "none";
  return strategy + "x" + std::to_string(resolved);
}

ScenarioMatrix& ScenarioMatrix::vc_kinds(std::vector<VcKind> v) {
  vcs_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::validities(std::vector<ValidityKind> v) {
  validities_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::faults(std::vector<FaultSpec> v) {
  faults_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::keep_strategies(
    const std::vector<std::string>& keep) {
  for (const std::string& name : keep) {
    if (name != "none" && !StrategyRegistry::global().contains(name)) {
      // make() throws with the list of registered names.
      static_cast<void>(StrategyRegistry::global().make(name));
    }
  }
  std::vector<FaultSpec> kept;
  for (const FaultSpec& spec : faults_) {
    if (std::find(keep.begin(), keep.end(), spec.effective_strategy()) !=
        keep.end()) {
      kept.push_back(spec);
    }
  }
  // Every requested name must select at least one spec: a registered
  // strategy absent from this matrix would otherwise be dropped silently
  // and the caller would believe it was swept.
  for (const std::string& name : keep) {
    const bool matched =
        std::any_of(kept.begin(), kept.end(), [&name](const FaultSpec& spec) {
          return spec.effective_strategy() == name;
        });
    if (!matched) {
      throw std::invalid_argument("strategy '" + name +
                                  "' matches no fault spec in this matrix");
    }
  }
  faults_ = std::move(kept);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::sizes(std::vector<std::pair<int, int>> nt) {
  sizes_ = std::move(nt);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::gsts(std::vector<Time> v) {
  gsts_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::deltas(std::vector<Time> v) {
  deltas_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::seeds(std::vector<std::uint64_t> v) {
  seeds_ = std::move(v);
  return *this;
}
ScenarioMatrix& ScenarioMatrix::proposal_domain(Value domain_size) {
  domain_ = domain_size;
  return *this;
}

std::size_t ScenarioMatrix::size() const {
  return vcs_.size() * validities_.size() * faults_.size() * sizes_.size() *
         gsts_.size() * deltas_.size() * seeds_.size();
}

std::vector<SweepPoint> ScenarioMatrix::build() const {
  if (domain_ < 2) {
    throw std::invalid_argument("proposal domain must have >= 2 values");
  }
  for (const auto& [n, t] : sizes_) {
    if (n <= 0 || t < 0 || t >= n) {
      throw std::invalid_argument("size (n=" + std::to_string(n) +
                                  ", t=" + std::to_string(t) +
                                  ") violates 0 <= t < n");
    }
  }

  std::vector<SweepPoint> points;
  points.reserve(size());
  for (const VcKind vc : vcs_) {
    for (const ValidityKind validity : validities_) {
      for (const FaultSpec& spec : faults_) {
        for (const auto& [n, t] : sizes_) {
          for (const Time gst : gsts_) {
            for (const Time delta : deltas_) {
              for (const std::uint64_t seed : seeds_) {
                ScenarioConfig cfg;
                cfg.n = n;
                cfg.t = t;
                cfg.delta = delta;
                cfg.gst = gst;
                cfg.seed = seed;
                cfg.vc = vc;
                for (int p = 0; p < n; ++p) {
                  cfg.proposals.push_back(
                      (static_cast<Value>(p) + static_cast<Value>(seed)) %
                      domain_);
                }
                const int count =
                    std::min(spec.count < 0 ? t : spec.count, t);
                for (int f = 0; f < count; ++f) {
                  const ProcessId pid = n - 1 - f;
                  Fault fault;  // negative spec fields keep the defaults
                  fault.strategy = spec.strategy;
                  fault.crash_time =
                      spec.crash_time < 0 ? gst : spec.crash_time;
                  fault.release_time = spec.release_time;
                  fault.equivocal_value =
                      spec.equivocal_value < 0
                          ? (cfg.proposals[static_cast<std::size_t>(pid)] +
                             1) % domain_
                          : spec.equivocal_value;
                  if (spec.mutate_rate >= 0) {
                    fault.mutate_rate = spec.mutate_rate;
                  }
                  fault.switch_time = spec.switch_time;
                  if (spec.victims >= 0) fault.victims = spec.victims;
                  if (spec.observe >= 0) fault.observe = spec.observe;
                  cfg.faults[pid] = fault;
                }
                SweepPoint point;
                point.index = points.size();
                point.config = cfg;
                point.validity = validity;
                point.label = "vc=" + to_string(vc) +
                              " val=" + to_string(validity) +
                              " fault=" + spec.label(t) +
                              " n=" + std::to_string(n) +
                              " t=" + std::to_string(t) + " gst=" + fmt(gst) +
                              " delta=" + fmt(delta) +
                              " seed=" + std::to_string(seed);
                points.push_back(std::move(point));
              }
            }
          }
        }
      }
    }
  }
  return points;
}

SweepOutcome run_point(const SweepPoint& point) {
  SweepOutcome outcome;
  outcome.point = point;
  const ScenarioConfig& cfg = point.config;
  const auto validity = make_validity(point.validity, cfg.n, cfg.t);
  try {
    const auto lambda = core::make_lambda(*validity, cfg.n, cfg.t);
    outcome.result = run_universal(cfg, lambda);
  } catch (const std::exception& e) {
    outcome.error = e.what();
    outcome.decided = false;
    return outcome;
  }
  outcome.decided = outcome.result.all_correct_decided(cfg);
  outcome.agreement = outcome.result.agreement();

  // The execution's real input configuration: the correct processes and
  // their proposals (every process in cfg.faults counts as faulty).
  core::InputConfig real(cfg.n);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (cfg.faults.count(p) == 0) {
      real.set(p, cfg.proposals[static_cast<std::size_t>(p)]);
    }
  }
  outcome.validity_ok = true;
  for (const auto& [pid, v] : outcome.result.decisions) {
    if (!validity->admissible(real, v)) {
      outcome.validity_ok = false;
      break;
    }
  }
  return outcome;
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

std::vector<SweepOutcome> SweepRunner::run(
    const std::vector<SweepPoint>& points) const {
  std::vector<SweepOutcome> outcomes(points.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&points, &outcomes, &next] {
    for (std::size_t i = next.fetch_add(1); i < points.size();
         i = next.fetch_add(1)) {
      outcomes[i] = run_point(points[i]);
    }
  };
  if (jobs_ == 1 || points.size() <= 1) {
    worker();
    return outcomes;
  }
  std::vector<std::thread> pool;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), points.size());
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  return outcomes;
}

SweepSummary SweepRunner::summarize(const std::vector<SweepOutcome>& outcomes,
                                    double wall_seconds) {
  SweepSummary summary;
  summary.total = outcomes.size();
  summary.wall_seconds = wall_seconds;
  double latency = 0, msgs = 0, words = 0;
  for (const SweepOutcome& o : outcomes) {
    if (!o.error.empty()) {
      ++summary.errors;
      continue;
    }
    if (o.decided) {
      ++summary.decided;
      latency += o.result.last_decision_time;
      msgs += static_cast<double>(o.result.message_complexity);
      words += static_cast<double>(o.result.word_complexity);
    }
    if (!o.agreement) ++summary.agreement_violations;
    if (!o.validity_ok) ++summary.validity_violations;
  }
  if (summary.decided > 0) {
    const auto d = static_cast<double>(summary.decided);
    summary.mean_latency = latency / d;
    summary.mean_message_complexity = msgs / d;
    summary.mean_word_complexity = words / d;
  }
  if (wall_seconds > 0) {
    summary.scenarios_per_second =
        static_cast<double>(summary.total) / wall_seconds;
  }
  return summary;
}

ScenarioMatrix named_matrix(const std::string& name) {
  const std::vector<VcKind> all_vcs{VcKind::kAuthenticated,
                                    VcKind::kNonAuthenticated, VcKind::kFast};
  // The four legacy FaultKind patterns (plus fault-free), in the historical
  // order: "full" built from these is the pinned determinism reference, so
  // neither the order nor the contents may change.
  const std::vector<FaultSpec> legacy_faults{
      FaultSpec{"silent", 0},  // fault-free
      FaultSpec{"silent"},
      FaultSpec{"crash"},
      FaultSpec{"equivocate"},
      FaultSpec{"delay"},
  };
  if (name == "smoke") {
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong})
        .faults(legacy_faults)
        .sizes({{4, 1}})
        .seeds({1, 2});
  }
  if (name == "full") {
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong, ValidityKind::kWeak,
                     ValidityKind::kMedian, ValidityKind::kConvexHull})
        .faults(legacy_faults)
        .sizes({{4, 1}, {7, 2}})
        .gsts({0.0, 5.0})
        .seeds({1, 2, 3});
  }
  if (name == "byzantine") {
    std::vector<FaultSpec> specs = legacy_faults;
    specs.push_back(FaultSpec{"mutate"});
    specs.push_back(FaultSpec{"equivocate-scheduled"});
    specs.push_back(FaultSpec{"adaptive"});
    return ScenarioMatrix()
        .vc_kinds(all_vcs)
        .validities({ValidityKind::kStrong})
        .faults(std::move(specs))
        .sizes({{4, 1}})
        .gsts({0.0, 5.0})
        .seeds({1, 2});
  }
  throw std::invalid_argument("unknown matrix '" + name +
                              "' (expected: smoke, full, byzantine)");
}

}  // namespace valcon::harness
