// Scenario-matrix engine: enumerates the cross product of protocol stack ×
// validity property × proposal pattern × fault pattern × system size ×
// network profile × network timing × seed, and fans the resulting
// (embarrassingly parallel) Simulator runs out over a thread pool. Every
// run is a deterministic function of (config, seed), so results are
// identical whatever the job count — the pool only changes wall-clock
// time. Used by the valcon_sweep CLI, bench_sweep and the tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "valcon/core/execution_checker.hpp"
#include "valcon/core/quorum.hpp"
#include "valcon/core/validity.hpp"
#include "valcon/harness/scenario.hpp"
#include "valcon/harness/validity_kind.hpp"

namespace valcon::harness {

/// One fault pattern of the matrix: `count` processes (the highest ids)
/// fail with the same registered adversary strategy. `count` is clamped to
/// each scenario's t, so one spec can cross several (n, t) sizes. Negative
/// fields resolve per-scenario: count < 0 -> t, crash_time < 0 -> gst,
/// release_time < 0 -> gst + delta, equivocal_value < 0 -> own proposal + 1
/// (mod proposal domain), mutate_rate / switch_time / victims / observe
/// < 0 -> the Fault defaults (see harness/scenario.hpp).
struct FaultSpec {
  std::string strategy = "silent";
  int count = -1;
  Time crash_time = -1.0;
  Time release_time = -1.0;
  Value equivocal_value = -1;
  double mutate_rate = -1.0;
  Time switch_time = -1.0;
  int victims = -1;
  int observe = -1;

  /// "none" for a zero-fault spec, else e.g. "crashx2".
  [[nodiscard]] std::string label(int t) const;

  /// The name label() uses: "none" when the spec injects no faults (so a
  /// fault-free spec can be selected by name), else the strategy.
  [[nodiscard]] std::string effective_strategy() const {
    return count == 0 ? "none" : strategy;
  }
};

/// One cell of the matrix: a fully resolved scenario plus the property to
/// judge it by.
struct SweepPoint {
  std::size_t index = 0;
  ScenarioConfig config;
  ValidityKind validity = ValidityKind::kStrong;
  /// Name of the proposal pattern that filled config.proposals (the
  /// network-profile name lives in config.net_profile.name).
  std::string pattern = "rotating";
  std::string label;
  /// Wire-format tags: equal to the pattern / network-profile name when
  /// the matrix declares the corresponding axis non-trivially (anything
  /// but the single default value), empty otherwise. Labels and outcome
  /// lines carry the new fields only when the tag is set — which is what
  /// keeps the pinned legacy matrices ("full") byte-identical.
  std::string pattern_tag;
  std::string net_profile_tag;
  /// Certificate-backend tag, same wire gate: the cert_mode token when the
  /// matrix declares the cert axis non-trivially (anything but the single
  /// per-vote default), empty otherwise.
  std::string cert_tag;
  /// Topology tag, same wire gate: the topology name when the matrix
  /// declares the topology axis non-trivially (anything but the single
  /// full-mesh default), empty otherwise.
  std::string topology_tag;
  /// Wire-format gate for the near-miss axis (same convention as the tags
  /// above): true only when the matrix opted in via record_near_miss(), so
  /// legacy outcome lines never grow the new fields.
  bool near_miss = false;
};

/// Builder for the cross product. Each setter replaces one dimension; the
/// defaults give a single authenticated Strong-validity fault-free cell.
class ScenarioMatrix {
 public:
  ScenarioMatrix& vc_kinds(std::vector<VcKind> v);
  ScenarioMatrix& validities(std::vector<ValidityKind> v);
  /// Proposal-pattern names (PatternRegistry); default {"rotating"}, the
  /// historical (p + seed) % domain assignment.
  ScenarioMatrix& patterns(std::vector<std::string> names);
  /// Keeps only the named proposal patterns. Throws std::invalid_argument
  /// for an empty keep-list, for an unregistered name and for a name that
  /// selects no pattern of this matrix (nothing requested may be dropped
  /// silently) — this is what `valcon_sweep --patterns` calls.
  ScenarioMatrix& keep_patterns(const std::vector<std::string>& keep);
  ScenarioMatrix& faults(std::vector<FaultSpec> v);
  /// Keeps only the fault specs whose effective strategy name is in `keep`
  /// ("none" selects the fault-free spec). Throws std::invalid_argument for
  /// an empty keep-list, for a name that is neither "none" nor registered,
  /// and for a name that selects no spec of this matrix (nothing requested
  /// may be dropped silently) — this is what `valcon_sweep --strategies`
  /// calls.
  ScenarioMatrix& keep_strategies(const std::vector<std::string>& keep);
  /// (n, t) pairs; every pair must satisfy 0 <= t < n.
  ScenarioMatrix& sizes(std::vector<std::pair<int, int>> nt);
  /// Network-profile names (named_network_profile()); default
  /// {"uniform"}, the legacy stock network.
  ScenarioMatrix& network_profiles(std::vector<std::string> names);
  /// Keeps only the named network profiles, with the same loud-failure
  /// contract as keep_patterns — this is what `valcon_sweep
  /// --net-profiles` calls.
  ScenarioMatrix& keep_network_profiles(const std::vector<std::string>& keep);
  /// Certificate backends (ScenarioConfig::cert_mode); default
  /// {kPerVote}, the legacy one-verify-per-vote wire format.
  ScenarioMatrix& cert_modes(std::vector<core::CertMode> modes);
  /// Keeps only the named certificate backends ("per-vote" / "aggregate"),
  /// with the same loud-failure contract as keep_patterns — this is what
  /// `valcon_sweep --cert-modes` calls.
  ScenarioMatrix& keep_cert_modes(const std::vector<std::string>& keep);
  /// Topology names (named_topology(): "full-mesh" / "committee-<k>");
  /// default {"full-mesh"}, the legacy everyone-runs-the-stack shape.
  ScenarioMatrix& topologies(std::vector<std::string> names);
  /// Keeps only the named topologies, with the same loud-failure contract
  /// as keep_patterns — this is what `valcon_sweep --topologies` calls.
  ScenarioMatrix& keep_topologies(const std::vector<std::string>& keep);
  ScenarioMatrix& gsts(std::vector<Time> v);
  ScenarioMatrix& deltas(std::vector<Time> v);
  ScenarioMatrix& seeds(std::vector<std::uint64_t> v);
  /// The finite proposal domain [0, domain_size) the patterns draw from.
  /// Throws std::invalid_argument for domain_size < 2.
  ScenarioMatrix& proposal_domain(Value domain_size);
  /// Opt into the near-miss wire fields (SweepPoint::near_miss on every
  /// cell): outcome lines gain margin / conflicting-vote / slack fields.
  /// Off by default so every pinned legacy matrix stays byte-identical.
  ScenarioMatrix& record_near_miss(bool enabled = true);
  /// Simulated-time horizon for every cell (ScenarioConfig::horizon).
  /// The default matches ScenarioConfig's (1e9) — effectively unbounded,
  /// which is fine for curated matrices where every run decides. The
  /// adversary search lowers it: a stalled stack re-arms view timers
  /// forever, so a non-terminating candidate would otherwise grind through
  /// events to 1e9 simulated time. Throws std::invalid_argument unless
  /// positive.
  ScenarioMatrix& horizon(Time cap);

  /// Number of cells the cross product will produce.
  [[nodiscard]] std::size_t size() const;

  /// O(1) random access into the cross product: decodes `index` as a
  /// mixed-radix number over the dimension sizes (nesting vc > validity >
  /// pattern > fault > size > net-profile > gst > delta > seed >
  /// cert-mode > topology, topology fastest-varying — exactly the order
  /// build() enumerates) and
  /// constructs that one cell. This is what makes 1e6+-cell matrices
  /// tractable: a shard enumerates its slice cell by cell without ever
  /// materializing the full point vector, and the index ↔ cell mapping is
  /// stable across processes and machines as long as the dimensions
  /// match. Throws std::invalid_argument on bad dimensions and
  /// std::out_of_range for index >= size().
  [[nodiscard]] SweepPoint point_at(std::size_t index) const;

  /// Materializes the cross product: point_at() over [0, size()). Every
  /// returned config passes harness::validate(). Throws
  /// std::invalid_argument on bad dimensions.
  [[nodiscard]] std::vector<SweepPoint> build() const;

 private:
  /// Shared dimension validation for build()/point_at().
  void check_dimensions() const;
  std::vector<VcKind> vcs_{VcKind::kAuthenticated};
  std::vector<ValidityKind> validities_{ValidityKind::kStrong};
  std::vector<std::string> patterns_{"rotating"};
  std::vector<FaultSpec> faults_{FaultSpec{}};
  std::vector<std::pair<int, int>> sizes_{{4, 1}};
  std::vector<std::string> net_profiles_{"uniform"};
  std::vector<core::CertMode> cert_modes_{core::CertMode::kPerVote};
  std::vector<std::string> topologies_{"full-mesh"};
  std::vector<Time> gsts_{0.0};
  std::vector<Time> deltas_{1.0};
  std::vector<std::uint64_t> seeds_{1};
  Value domain_ = 3;
  Time horizon_ = 1e9;
  bool near_miss_ = false;
};

/// Result of one cell: the raw RunResult plus the verdicts of the paper's
/// three properties (Termination / Agreement / Validity) against the real
/// input configuration of the execution. The flags are derived from
/// `report` (core::check_execution over the pruned correct-process
/// decisions), which also carries the per-property violation messages —
/// so a liveness miss and a validity breach are distinguishable at a
/// glance.
struct SweepOutcome {
  SweepPoint point;
  RunResult result;
  core::ExecutionReport report;
  bool decided = false;      // = report.termination
  bool agreement = true;     // = report.agreement
  bool validity_ok = true;   // = report.validity
  std::string error;         // exception text if the run threw
  /// Wall-clock time run_point spent on this cell, in microseconds. NOT
  /// deterministic — excluded from the sweep wire format; surfaces only in
  /// valcon_sweep's --timing stream.
  double wall_micros = 0.0;
};

/// Aggregate of a whole sweep.
struct SweepSummary {
  std::size_t total = 0;
  std::size_t decided = 0;
  std::size_t agreement_violations = 0;
  std::size_t validity_violations = 0;
  std::size_t errors = 0;
  double mean_latency = 0.0;             // mean last decision time (decided)
  double mean_message_complexity = 0.0;  // mean over decided runs
  double mean_word_complexity = 0.0;
  double wall_seconds = 0.0;
  double scenarios_per_second = 0.0;
};

/// Runs a single cell (what the pool workers execute).
[[nodiscard]] SweepOutcome run_point(const SweepPoint& point);

/// Fans cells out over `jobs` worker threads. Outcome order always matches
/// the input order, and each outcome is independent of the job count.
class SweepRunner {
 public:
  explicit SweepRunner(int jobs = 1);

  [[nodiscard]] int jobs() const { return jobs_; }

  [[nodiscard]] std::vector<SweepOutcome> run(
      const std::vector<SweepPoint>& points) const;

  /// Streams the outcomes of the matrix slice [begin, end) to `on_outcome`
  /// in strictly ascending index order, materializing no point vector:
  /// cells are decoded on demand via point_at() and completed outcomes are
  /// buffered only inside a bounded reorder window (workers that run ahead
  /// of the emit cursor block), so memory is O(jobs), not O(end - begin).
  /// Concatenating run_range() over any partition of [0, size()) yields
  /// exactly the outcomes of run(build()) — this is the contract the
  /// sharded sweep is built on. The sink is called from worker threads but
  /// never concurrently; an exception it throws — or one thrown while
  /// decoding a cell (e.g. a custom pattern violating the domain
  /// contract) — aborts the sweep and is rethrown here, at any job count.
  /// Throws std::invalid_argument unless begin <= end <= matrix.size().
  void run_range(const ScenarioMatrix& matrix, std::size_t begin,
                 std::size_t end,
                 const std::function<void(SweepOutcome&&)>& on_outcome) const;

  [[nodiscard]] static SweepSummary summarize(
      const std::vector<SweepOutcome>& outcomes, double wall_seconds);

 private:
  int jobs_;
};

/// Named matrices shared by the CLI and the bench:
///   "smoke"     — all stacks x the four legacy strategies, n=4 (quick
///                 check);
///   "full"      — all stacks x {Strong, Weak, Median, ConvexHull} x the
///                 four legacy strategies (plus fault-free) x {(4,1),
///                 (7,2)} x two GSTs x three seeds: 720 scenarios (pinned:
///                 its per-scenario JSON is the cross-version determinism
///                 reference);
///   "byzantine" — all stacks x every built-in strategy (plus fault-free),
///                 n=4, two seeds: the strategy-coverage matrix;
///   "validity"  — all stacks x all five validity properties x every
///                 built-in proposal pattern x every network profile over
///                 a 2-value domain at n=4, t=1: the input-space coverage
///                 matrix, on which CorrectProposal validity is solvable
///                 (pigeonhole over domain 2) — unreachable from the old
///                 hard-coded 3-value rotating assignment;
///   "certs"     — all stacks x both certificate backends (per-vote and
///                 aggregate) x fault-free / crash / equivocate at {(4,1),
///                 (7,2)}, two seeds: the cert_mode coverage matrix. The
///                 cert axis is non-trivial, so its cells carry the
///                 cert_mode wire field — the pinned legacy matrices never
///                 do;
///   "committee" — the large-n topology matrix: all stacks x committee
///                 topologies (k in {4, 7, 10}) x both certificate
///                 backends x fault-free / crash at n in {50, 100, 200}
///                 (faults land on the highest ids, i.e. listeners), two
///                 seeds, unanimous proposals. The topology and cert axes
///                 are non-trivial, so its cells carry the topology and
///                 cert_mode wire fields; test_topology pins its job-count
///                 determinism.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] ScenarioMatrix named_matrix(const std::string& name);

}  // namespace valcon::harness
