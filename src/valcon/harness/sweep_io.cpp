#include "valcon/harness/sweep_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace valcon::harness::io {

namespace {

/// Thread-safe strerror: checkpoint writes happen from a sweep that may be
/// running a pool, and std::strerror shares a static buffer across threads.
std::string errno_message(int err = errno) {
  return std::system_category().message(err);
}

/// Reverses json_escape() for the escape forms it emits (\" \\ \n \t
/// \u00XX); unknown escapes pass the escaped character through.
std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char c = s[++i];
    switch (c) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u':
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtol(s.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
        }
        break;
      default: out += c;  // covers \" and \\ (and tolerates \/)
    }
  }
  return out;
}

/// The number following `"key": ` in `text`, if present and parseable.
std::optional<double> number_field(const std::string& text,
                                   const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = text.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

std::optional<bool> bool_field(const std::string& text,
                               const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  if (text.compare(pos + needle.size(), 4, "true") == 0) return true;
  if (text.compare(pos + needle.size(), 5, "false") == 0) return false;
  return std::nullopt;
}

/// The (unescaped) string following `"key": "` in `text`, if present.
std::optional<std::string> string_field(const std::string& text,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t j = pos + needle.size();
  std::string raw;
  while (j < text.size() && text[j] != '"') {
    raw += text[j];
    if (text[j] == '\\' && j + 1 < text.size()) raw += text[j + 1], ++j;
    ++j;
  }
  if (j >= text.size()) return std::nullopt;  // unterminated
  return json_unescape(raw);
}

std::size_t size_field_or_throw(const std::string& text,
                                const std::string& key,
                                const std::string& what) {
  const auto v = number_field(text, key);
  if (!v.has_value() || *v < 0) {
    throw std::runtime_error(what + ": missing or bad \"" + key + "\"");
  }
  return static_cast<std::size_t>(*v);
}

}  // namespace

// ------------------------------------------------------------- primitives

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // \r and friends (common in exception text from system calls)
          // must not reach the output raw: JSON forbids bare controls.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::optional<int> parse_int(const std::string& s, int min_value) {
  if (s.empty()) return std::nullopt;
  if (std::isdigit(static_cast<unsigned char>(s[0])) == 0 && s[0] != '-') {
    return std::nullopt;  // no leading whitespace or '+'
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  if (v < min_value || v > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(v);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto first = item.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = item.find_last_not_of(" \t");
    out.push_back(item.substr(first, last - first + 1));
  }
  return out;
}

// ----------------------------------------------------------------- shards

std::optional<ShardSpec> parse_shard_spec(const std::string& s) {
  const auto slash = s.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size()) {
    return std::nullopt;
  }
  const auto index = parse_int(s.substr(0, slash), 0);
  const auto count = parse_int(s.substr(slash + 1), 1);
  if (!index.has_value() || !count.has_value() || *index >= *count) {
    return std::nullopt;
  }
  return ShardSpec{*index, *count};
}

ShardRange shard_range(std::size_t total, const ShardSpec& spec) {
  if (spec.index < 0 || spec.count < 1 || spec.index >= spec.count) {
    throw std::invalid_argument("bad shard spec " +
                                std::to_string(spec.index) + "/" +
                                std::to_string(spec.count));
  }
  const auto i = static_cast<std::size_t>(spec.index);
  const auto m = static_cast<std::size_t>(spec.count);
  return ShardRange{total * i / m, total * (i + 1) / m};
}

// -------------------------------------------------- per-scenario records

std::string outcome_line(const SweepOutcome& o) {
  const ScenarioConfig& cfg = o.point.config;
  std::ostringstream os;
  os << "    {\"label\": \"" << json_escape(o.point.label) << "\", "
     << "\"vc\": \"" << to_string(cfg.vc) << "\", "
     << "\"validity\": \"" << to_string(o.point.validity) << "\", "
     << "\"n\": " << cfg.n << ", \"t\": " << cfg.t << ", "
     << "\"gst\": " << json_number(cfg.gst) << ", "
     << "\"delta\": " << json_number(cfg.delta) << ", "
     << "\"seed\": " << cfg.seed << ", ";
  // The proposal-pattern / network-profile fields appear only when the
  // matrix declares the axis non-trivially (the tag is set): legacy
  // matrices — the pinned "full" document above all — keep their exact
  // legacy bytes.
  if (!o.point.pattern_tag.empty()) {
    os << "\"pattern\": \"" << json_escape(o.point.pattern_tag) << "\", ";
  }
  if (!o.point.net_profile_tag.empty()) {
    os << "\"net_profile\": \"" << json_escape(o.point.net_profile_tag)
       << "\", ";
  }
  if (!o.point.cert_tag.empty()) {
    os << "\"cert_mode\": \"" << json_escape(o.point.cert_tag) << "\", ";
  }
  if (!o.point.topology_tag.empty()) {
    os << "\"topology\": \"" << json_escape(o.point.topology_tag) << "\", ";
  }
  os << "\"faults\": [";
  bool first = true;
  for (const auto& [pid, fault] : cfg.faults) {
    if (!first) os << ", ";
    first = false;
    os << "{\"id\": " << pid << ", \"kind\": \"" << json_escape(fault.strategy)
       << "\"}";
  }
  os << "], ";
  if (!o.error.empty()) {
    os << "\"error\": \"" << json_escape(o.error) << "\"}";
    return os.str();
  }
  os << "\"decided\": " << (o.decided ? "true" : "false") << ", "
     << "\"agreement\": " << (o.agreement ? "true" : "false") << ", "
     << "\"validity_ok\": " << (o.validity_ok ? "true" : "false") << ", "
     << "\"decisions\": {";
  first = true;
  for (const auto& [pid, v] : o.result.decisions) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << pid << "\": " << v;
  }
  os << "}, "
     << "\"last_decision_time\": " << json_number(o.result.last_decision_time)
     << ", \"message_complexity\": " << o.result.message_complexity
     << ", \"word_complexity\": " << o.result.word_complexity
     << ", \"messages_total\": " << o.result.messages_total
     << ", \"events\": " << o.result.events;
  // The verify tally exists only on cert-axis cells (same gate as the
  // cert_mode field above): it is the number the axis is about, and it is
  // deterministic per cell, so the "certs" document doubles as the
  // job-count determinism reference for the aggregate backend.
  if (!o.point.cert_tag.empty()) {
    os << ", \"verifies_total\": " << o.result.verifies_total;
  }
  // The near-miss fields exist only when the matrix opted in
  // (ScenarioMatrix::record_near_miss) — same gating convention as the
  // pattern/net_profile fields above, so every pinned legacy document
  // keeps its exact bytes.
  if (o.point.near_miss) {
    os << ", \"min_vote_margin\": " << o.result.min_vote_margin
       << ", \"conflicting_votes\": " << o.result.conflicting_votes
       << ", \"queue_drained\": " << (o.result.queue_drained ? "true" : "false")
       << ", \"end_time\": " << json_number(o.result.end_time)
       << ", \"grace_cutoff\": " << json_number(o.result.grace_cutoff);
  }
  os << "}";
  return os.str();
}

ScenarioRecord parse_outcome_line(const std::string& line) {
  ScenarioRecord r;
  // Escaped text can never contain a bare `"error": "` sequence (any quote
  // inside a string is \"), so key lookups on the raw line are unambiguous.
  if (line.find("\"error\": \"") != std::string::npos) {
    r.has_error = true;
    return r;
  }
  const auto decided = bool_field(line, "decided");
  const auto agreement = bool_field(line, "agreement");
  const auto validity_ok = bool_field(line, "validity_ok");
  const auto latency = number_field(line, "last_decision_time");
  const auto msgs = number_field(line, "message_complexity");
  const auto words = number_field(line, "word_complexity");
  if (!decided.has_value() || !agreement.has_value() ||
      !validity_ok.has_value() || !latency.has_value() || !msgs.has_value() ||
      !words.has_value()) {
    throw std::runtime_error("malformed scenario line: " + line);
  }
  r.decided = *decided;
  r.agreement = *agreement;
  r.validity_ok = *validity_ok;
  r.last_decision_time = *latency;
  r.message_complexity = *msgs;
  r.word_complexity = *words;
  return r;
}

void JsonSummary::add(const ScenarioRecord& r) {
  ++total;
  if (r.has_error) {
    ++errors;
    return;
  }
  if (r.decided) {
    ++decided;
    latency_sum += r.last_decision_time;
    message_sum += r.message_complexity;
    word_sum += r.word_complexity;
  }
  if (!r.agreement) ++agreement_violations;
  if (!r.validity_ok) ++validity_violations;
}

bool JsonSummary::healthy() const {
  return agreement_violations == 0 && validity_violations == 0 &&
         errors == 0 && decided == total;
}

std::string JsonSummary::to_json() const {
  double mean_latency = 0, mean_msgs = 0, mean_words = 0;
  if (decided > 0) {
    const auto d = static_cast<double>(decided);
    mean_latency = latency_sum / d;
    mean_msgs = message_sum / d;
    mean_words = word_sum / d;
  }
  std::ostringstream os;
  os << "{\"total\": " << total << ", \"decided\": " << decided
     << ", \"agreement_violations\": " << agreement_violations
     << ", \"validity_violations\": " << validity_violations
     << ", \"errors\": " << errors
     << ", \"mean_latency\": " << json_number(mean_latency)
     << ", \"mean_message_complexity\": " << json_number(mean_msgs)
     << ", \"mean_word_complexity\": " << json_number(mean_words) << "}";
  return os.str();
}

// ------------------------------------------------------------- documents

void document_header(std::ostream& os, const std::string& matrix,
                     const std::optional<ShardSpec>& shard,
                     std::size_t total) {
  os << "{\n  \"matrix\": \"" << json_escape(matrix) << "\",\n";
  if (shard.has_value()) {
    const ShardRange range = shard_range(total, *shard);
    os << "  \"shard\": {\"index\": " << shard->index
       << ", \"count\": " << shard->count << ", \"total\": " << total
       << ", \"begin\": " << range.begin << ", \"end\": " << range.end
       << "},\n";
  }
  os << "  \"scenarios\": [\n";
}

void document_footer(std::ostream& os, const JsonSummary& summary) {
  os << "  ],\n  \"summary\": " << summary.to_json() << "\n}\n";
}

ShardDocument parse_document(std::istream& is) {
  const auto fail = [](const std::string& what) {
    throw std::runtime_error("malformed sweep document: " + what);
  };
  std::vector<std::string> raw;
  std::string line;
  while (std::getline(is, line)) raw.push_back(line);
  std::size_t at = 0;
  const auto next = [&]() -> const std::string& {
    if (at >= raw.size()) fail("truncated");
    return raw[at++];
  };

  ShardDocument doc;
  if (next() != "{") fail("expected '{' on line 1");
  {
    const std::string& m = next();
    const auto name = string_field(m, "matrix");
    if (m.rfind("  \"matrix\": ", 0) != 0 || !name.has_value()) {
      fail("expected the matrix line");
    }
    doc.matrix = *name;
  }
  if (at < raw.size() && raw[at].rfind("  \"shard\": {", 0) == 0) {
    const std::string& s = next();
    ShardSpec spec;
    spec.index =
        static_cast<int>(size_field_or_throw(s, "index", "shard header"));
    spec.count =
        static_cast<int>(size_field_or_throw(s, "count", "shard header"));
    doc.total = size_field_or_throw(s, "total", "shard header");
    if (spec.index >= spec.count || spec.count < 1) fail("bad shard header");
    const ShardRange range = shard_range(doc.total, spec);
    if (range.begin != size_field_or_throw(s, "begin", "shard header") ||
        range.end != size_field_or_throw(s, "end", "shard header")) {
      fail("shard header range disagrees with index/count/total");
    }
    doc.shard = spec;
  }
  if (next() != "  \"scenarios\": [") fail("expected the scenarios array");
  for (;;) {
    const std::string& l = next();
    if (l == "  ],") break;
    if (l.rfind("    {", 0) != 0) fail("unexpected scenario line: " + l);
    const bool comma = !l.empty() && l.back() == ',';
    doc.lines.push_back(comma ? l.substr(0, l.size() - 1) : l);
  }
  if (next().rfind("  \"summary\": ", 0) != 0) fail("expected the summary");
  if (next() != "}") fail("expected the closing '}'");
  if (!doc.shard.has_value()) doc.total = doc.lines.size();
  return doc;
}

void merge_documents(std::ostream& os, std::vector<ShardDocument> docs) {
  if (docs.empty()) throw std::invalid_argument("no shard documents to merge");
  const std::string matrix = docs.front().matrix;
  const std::size_t total = docs.front().total;
  struct Piece {
    ShardRange range;
    const ShardDocument* doc;
  };
  std::vector<Piece> pieces;
  pieces.reserve(docs.size());
  for (const ShardDocument& doc : docs) {
    if (doc.matrix != matrix) {
      throw std::invalid_argument("shard matrices differ: '" + matrix +
                                  "' vs '" + doc.matrix + "'");
    }
    if (doc.total != total) {
      throw std::invalid_argument(
          "shard totals differ: " + std::to_string(total) + " vs " +
          std::to_string(doc.total));
    }
    const ShardRange range = doc.shard.has_value()
                                 ? shard_range(total, *doc.shard)
                                 : ShardRange{0, total};
    if (doc.lines.size() != range.end - range.begin) {
      throw std::invalid_argument(
          "shard [" + std::to_string(range.begin) + ", " +
          std::to_string(range.end) + ") carries " +
          std::to_string(doc.lines.size()) + " scenarios, expected " +
          std::to_string(range.end - range.begin));
    }
    pieces.push_back(Piece{range, &doc});
  }
  std::sort(pieces.begin(), pieces.end(), [](const Piece& a, const Piece& b) {
    return a.range.begin < b.range.begin;
  });
  std::size_t expect = 0;
  for (const Piece& piece : pieces) {
    // Empty slices (count > total leaves some shards cell-less) cover
    // nothing and constrain nothing.
    if (piece.range.begin == piece.range.end) continue;
    if (piece.range.begin < expect) {
      throw std::invalid_argument(
          "shards overlap at index " + std::to_string(piece.range.begin));
    }
    if (piece.range.begin > expect) {
      throw std::invalid_argument("shards leave a gap: [" +
                                  std::to_string(expect) + ", " +
                                  std::to_string(piece.range.begin) +
                                  ") is covered by no shard");
    }
    expect = piece.range.end;
  }
  if (expect != total) {
    throw std::invalid_argument(
        "shards leave a gap: [" + std::to_string(expect) + ", " +
        std::to_string(total) + ") is covered by no shard");
  }

  document_header(os, matrix, std::nullopt, total);
  JsonSummary summary;
  std::size_t emitted = 0;
  for (const Piece& piece : pieces) {
    for (const std::string& scenario : piece.doc->lines) {
      summary.add(parse_outcome_line(scenario));
      os << scenario << (++emitted < total ? ",\n" : "\n");
    }
  }
  document_footer(os, summary);
}

// ------------------------------------------------------------ checkpoint

bool Checkpoint::same_work(const Checkpoint& other) const {
  return matrix == other.matrix && strategies == other.strategies &&
         patterns == other.patterns && net_profiles == other.net_profiles &&
         cert_modes == other.cert_modes && topologies == other.topologies &&
         shard.index == other.shard.index &&
         shard.count == other.shard.count && total == other.total &&
         begin == other.begin && end == other.end;
}

std::string Checkpoint::to_json() const {
  std::ostringstream os;
  os << "{\"matrix\": \"" << json_escape(matrix) << "\", \"strategies\": \""
     << json_escape(strategies) << "\", \"patterns\": \""
     << json_escape(patterns) << "\", \"net_profiles\": \""
     << json_escape(net_profiles) << "\", \"cert_modes\": \""
     << json_escape(cert_modes) << "\", \"topologies\": \""
     << json_escape(topologies) << "\", \"shard_index\": " << shard.index
     << ", \"shard_count\": " << shard.count << ", \"total\": " << total
     << ", \"begin\": " << begin << ", \"end\": " << end
     << ", \"next\": " << next << ", \"sidecar_bytes\": " << sidecar_bytes
     << "}\n";
  return os.str();
}

Checkpoint Checkpoint::parse(const std::string& text) {
  Checkpoint cp;
  const auto matrix = string_field(text, "matrix");
  const auto strategies = string_field(text, "strategies");
  if (!matrix.has_value() || !strategies.has_value()) {
    throw std::runtime_error("malformed checkpoint: missing matrix/strategies");
  }
  cp.matrix = *matrix;
  cp.strategies = *strategies;
  // Pre-pattern-axis checkpoints carry neither filter field; they resume
  // as "no filter", which is exactly the work they recorded.
  cp.patterns = string_field(text, "patterns").value_or("");
  cp.net_profiles = string_field(text, "net_profiles").value_or("");
  cp.cert_modes = string_field(text, "cert_modes").value_or("");
  cp.topologies = string_field(text, "topologies").value_or("");
  cp.shard.index =
      static_cast<int>(size_field_or_throw(text, "shard_index", "checkpoint"));
  cp.shard.count =
      static_cast<int>(size_field_or_throw(text, "shard_count", "checkpoint"));
  cp.total = size_field_or_throw(text, "total", "checkpoint");
  cp.begin = size_field_or_throw(text, "begin", "checkpoint");
  cp.end = size_field_or_throw(text, "end", "checkpoint");
  cp.next = size_field_or_throw(text, "next", "checkpoint");
  cp.sidecar_bytes = size_field_or_throw(text, "sidecar_bytes", "checkpoint");
  if (cp.begin > cp.end || cp.next < cp.begin || cp.next > cp.end ||
      cp.end > cp.total) {
    throw std::runtime_error("malformed checkpoint: inconsistent indices");
  }
  return cp;
}

void atomic_write(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("cannot open " + tmp + ": " + errno_message());
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("cannot write " + tmp + ": " +
                               errno_message(err));
    }
    written += static_cast<std::size_t>(n);
  }
  // The rename must never be observed pointing at un-persisted data
  // (delayed allocation would otherwise leave an empty file after power
  // loss), so the content is fsynced before and the directory entry after.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot fsync " + tmp + ": " +
                             errno_message(err));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp + " over " + path + ": " +
                             errno_message());
  }
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {  // best effort: not every filesystem supports it
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

std::string sidecar_path(const std::string& checkpoint_path) {
  return checkpoint_path + ".scenarios";
}

void for_each_sidecar_line(
    const std::string& path, std::size_t count,
    const std::function<void(const std::string&, std::size_t)>& fn) {
  if (count == 0) return;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read sidecar " + path);
  std::string line;
  std::size_t seen = 0;
  while (seen < count && std::getline(in, line)) {
    // A line that hit EOF before its newline is torn — never count it as
    // complete.
    if (in.eof()) break;
    fn(line, seen++);
  }
  if (seen < count) {
    throw std::runtime_error(
        "sidecar " + path + " has " + std::to_string(seen) +
        " complete lines, expected " + std::to_string(count));
  }
}

std::vector<std::string> read_sidecar(const std::string& path,
                                      std::size_t count) {
  std::vector<std::string> lines;
  lines.reserve(count);
  for_each_sidecar_line(
      path, count,
      [&lines](const std::string& line, std::size_t) {
        lines.push_back(line);
      });
  return lines;
}

}  // namespace valcon::harness::io
