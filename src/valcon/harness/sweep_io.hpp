// Sharding, checkpointing and the sweep JSON wire format.
//
// This unit is the single source of truth for everything the sweep CLIs
// put on disk: the per-scenario JSON lines, the aggregate summary block,
// the shard header, the checkpoint file and the strict CLI parsers. Both
// `valcon_sweep` and `valcon_merge` link against it, which is what makes
// a merged set of shard files byte-identical to a single-shot run: the
// bytes are produced by one writer, and the aggregate summary is defined
// over the *emitted* per-scenario numbers (parse-back of the JSON lines),
// not over the in-memory doubles. Re-deriving the summary from the lines
// is exactly associative — any partition of the matrix replays the same
// sequence of round-tripped values in index order — whereas summing raw
// doubles shard-by-shard would drift in the last ulp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "valcon/harness/sweep.hpp"

namespace valcon::harness::io {

// ------------------------------------------------------------- primitives

/// Shortest-ish fixed formatting ("%.12g") shared by every number the
/// sweep emits. The aggregate summary is computed over the values this
/// prints (see parse-back note above), so the precision choice only
/// affects display, never byte-stability.
[[nodiscard]] std::string json_number(double v);

/// Escapes '"', '\\' and every control character < 0x20 (as \n, \t or
/// \u00XX) so arbitrary exception text is always valid JSON.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Strict full-string integer parse; rejects garbage, trailing text and
/// values outside [min_value, INT_MAX]. Used for --jobs, --shard and
/// --stop-after (std::atoi silently turned "abc" and "-3" into defaults).
[[nodiscard]] std::optional<int> parse_int(const std::string& s,
                                           int min_value);

/// Splits "a, b,c" into {"a","b","c"} (whitespace-trimmed, empties
/// dropped). Shared so the checkpoint's strategy identity is canonical.
[[nodiscard]] std::vector<std::string> split_csv(const std::string& csv);

// ----------------------------------------------------------------- shards

/// A shard selector as given on the command line: slice `index` of
/// `count` (0-based, index < count).
struct ShardSpec {
  int index = 0;
  int count = 1;
};

/// Parses strict "I/M" (e.g. "0/3"); nullopt on garbage, I < 0, M < 1 or
/// I >= M.
[[nodiscard]] std::optional<ShardSpec> parse_shard_spec(const std::string& s);

/// The contiguous, index-stable half-open slice [begin, end) of a
/// `total`-cell matrix owned by shard `index` of `count`. Slices are
/// balanced (sizes differ by at most one), disjoint, and exhaustive:
/// concatenating them in index order yields exactly [0, total).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

[[nodiscard]] ShardRange shard_range(std::size_t total, const ShardSpec& spec);

// -------------------------------------------------- per-scenario records

/// Writes one cell's outcome as the canonical single-line JSON object
/// (four-space indent, no trailing comma or newline) used inside the
/// "scenarios" array by both tools and the checkpoint sidecar.
[[nodiscard]] std::string outcome_line(const SweepOutcome& o);

/// The summary-relevant fields of one emitted scenario line.
struct ScenarioRecord {
  bool has_error = false;
  bool decided = false;
  bool agreement = true;
  bool validity_ok = true;
  double last_decision_time = 0.0;
  double message_complexity = 0.0;
  double word_complexity = 0.0;
};

/// Parses a line produced by outcome_line(). Throws std::runtime_error on
/// anything malformed (a merge of hand-edited shards must fail loudly).
[[nodiscard]] ScenarioRecord parse_outcome_line(const std::string& line);

/// The aggregate summary, accumulated record-by-record in index order.
/// add() must see every record of the matrix exactly once and in index
/// order for the means to be byte-stable (see file comment).
struct JsonSummary {
  std::size_t total = 0;
  std::size_t decided = 0;
  std::size_t agreement_violations = 0;
  std::size_t validity_violations = 0;
  std::size_t errors = 0;
  double latency_sum = 0.0;
  double message_sum = 0.0;
  double word_sum = 0.0;

  void add(const ScenarioRecord& r);
  /// True when every cell decided and nothing was violated or errored.
  [[nodiscard]] bool healthy() const;
  /// The "summary" JSON object (means derived from the sums).
  [[nodiscard]] std::string to_json() const;
};

// ------------------------------------------------------------- documents

/// Emits everything of the sweep document that precedes the scenario
/// lines: opening brace, matrix name, the shard header (when `shard` is
/// set) and the `"scenarios": [` opener. Callers then stream the lines —
/// each line terminated with ",\n" except the last with "\n" — and close
/// with document_footer().
void document_header(std::ostream& os, const std::string& matrix,
                     const std::optional<ShardSpec>& shard, std::size_t total);

/// Closes the scenarios array and appends the summary block.
void document_footer(std::ostream& os, const JsonSummary& summary);

/// One parsed sweep/shard JSON document: the matrix name, the shard
/// header when present (single-shot documents have none and count as
/// shard 0/1), and the raw scenario lines, verbatim.
struct ShardDocument {
  std::string matrix;
  std::optional<ShardSpec> shard;
  std::size_t total = 0;  // matrix size; for shard-less documents, #lines
  std::vector<std::string> lines;
};

/// Parses a document written by valcon_sweep. Throws std::runtime_error
/// on malformed input.
[[nodiscard]] ShardDocument parse_document(std::istream& is);

/// Verifies the documents are same-matrix, pairwise disjoint and jointly
/// exhaustive slices of [0, total), then writes the merged single-shot
/// document (scenario lines verbatim, summary re-derived from them) to
/// `os`. Throws std::invalid_argument naming the first overlap / gap /
/// mismatch.
void merge_documents(std::ostream& os, std::vector<ShardDocument> docs);

// ------------------------------------------------------------ checkpoint

/// Resumable progress of one (matrix, filters, shard) invocation: `next`
/// is the first index of [begin, end) not yet completed. The scenario
/// lines for [begin, next) live in the sidecar file
/// `<checkpoint>.scenarios`, one line each, in index order.
struct Checkpoint {
  std::string matrix;
  std::string strategies;  // canonical comma-join of the --strategies list
  /// Canonical comma-joins of the --patterns / --net-profiles /
  /// --cert-modes / --topologies filters. Absent from checkpoint files
  /// predating the corresponding axis; parse() defaults each to "" (no
  /// filter), so old checkpoints keep resuming.
  std::string patterns;
  std::string net_profiles;
  std::string cert_modes;
  std::string topologies;
  ShardSpec shard;
  std::size_t total = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t next = 0;
  /// Byte length of the sidecar's first (next - begin) lines: resume
  /// truncates the sidecar to exactly this offset, dropping any line left
  /// behind by a crash between the sidecar append and the checkpoint
  /// update.
  std::uint64_t sidecar_bytes = 0;

  /// True when `other` describes the same work partition (everything but
  /// `next` / `sidecar_bytes` matches).
  [[nodiscard]] bool same_work(const Checkpoint& other) const;

  [[nodiscard]] std::string to_json() const;
  /// Throws std::runtime_error on malformed text.
  [[nodiscard]] static Checkpoint parse(const std::string& text);
};

/// Writes `content` to `path` atomically and durably (temp file, fsync,
/// rename, best-effort directory fsync), so a checkpoint is never
/// observed half-written — not even across power loss. Throws
/// std::runtime_error on I/O failure.
void atomic_write(const std::string& path, const std::string& content);

/// The sidecar path holding a checkpoint's completed scenario lines.
[[nodiscard]] std::string sidecar_path(const std::string& checkpoint_path);

/// Streams the first `count` complete (newline-terminated) lines of the
/// sidecar to `fn` as (line, index). A trailing line that hit EOF before
/// its newline is torn (the writer appends "line\n" then checkpoints) and
/// never counts. Throws std::runtime_error if fewer than `count` complete
/// lines exist. This is the one reader of the sidecar format — final
/// document assembly and read_sidecar() both go through it.
void for_each_sidecar_line(
    const std::string& path, std::size_t count,
    const std::function<void(const std::string&, std::size_t)>& fn);

/// for_each_sidecar_line() collected into a vector (tests, small files).
[[nodiscard]] std::vector<std::string> read_sidecar(const std::string& path,
                                                    std::size_t count);

}  // namespace valcon::harness::io
