// Plain-text table rendering for the bench binaries (EXPERIMENTS.md): each
// bench prints the rows/series the corresponding paper artifact reports.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace valcon::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
      os << "|";
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : "";
        os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
      }
      os << "\n";
    };
    print_row(headers_);
    os << "|";
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting for table cells.
[[nodiscard]] inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace valcon::harness
