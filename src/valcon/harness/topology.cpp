#include "valcon/harness/topology.hpp"

#include <charconv>
#include <stdexcept>
#include <string_view>
#include <system_error>
#include <utility>

#include "valcon/core/thresholds.hpp"
#include "valcon/crypto/hash.hpp"

namespace valcon::harness {

namespace {

/// Context a member's inner stack runs under: same id/now/send/timers as
/// the real process (members are the k lowest ids, so no id remapping),
/// but n/t/keys/signer rescoped to the committee. The inherited default
/// broadcast loops send(p) for p < n() == k — exactly the committee. Built
/// on the stack per callback: strategy shims may hand a different base
/// context object each dispatch, so caching one across callbacks would
/// dangle.
class CommitteeCtx final : public sim::ForwardingContext {
 public:
  CommitteeCtx(sim::Context& base, int k, int t_c,
               const crypto::KeyRegistry& keys, const crypto::Signer& signer)
      : ForwardingContext(base),
        k_(k),
        t_c_(t_c),
        keys_(keys),
        signer_(signer) {}

  [[nodiscard]] int n() const override { return k_; }
  [[nodiscard]] int t() const override { return t_c_; }
  [[nodiscard]] const crypto::KeyRegistry& keys() const override {
    return keys_;
  }
  [[nodiscard]] const crypto::Signer& signer() const override {
    return signer_;
  }

 private:
  int k_;
  int t_c_;
  const crypto::KeyRegistry& keys_;
  const crypto::Signer& signer_;
};

}  // namespace

void Topology::validate(int n) const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("Topology '" + name + "': " + what);
  };
  if (name.empty()) throw std::invalid_argument("Topology: empty name");
  if (committee_k < 0) {
    fail("committee size must be >= 1 (0 encodes full-mesh), got " +
         std::to_string(committee_k));
  }
  if (committee_k > n) {
    fail("committee size " + std::to_string(committee_k) +
         " exceeds system size n=" + std::to_string(n));
  }
}

Topology named_topology(const std::string& name) {
  if (name == "full-mesh") return Topology{};
  constexpr std::string_view kCommittee = "committee-";
  if (name.size() > kCommittee.size() &&
      name.compare(0, kCommittee.size(), kCommittee) == 0) {
    const char* first = name.data() + kCommittee.size();
    const char* last = name.data() + name.size();
    int k = 0;
    const auto [ptr, ec] = std::from_chars(first, last, k);
    if (ec == std::errc{} && ptr == last && k >= 1) {
      Topology topo;
      topo.name = name;
      topo.committee_k = k;
      return topo;
    }
  }
  std::string known;
  for (const std::string& form : topology_names()) {
    if (!known.empty()) known += ", ";
    known += form;
  }
  throw std::invalid_argument("unknown topology '" + name +
                              "' (known: " + known + ")");
}

std::vector<std::string> topology_names() {
  return {"committee-<k>", "full-mesh"};
}

crypto::Hash announce_digest(Value value) {
  return crypto::Hasher("valcon/topo-announce").add(value).finish();
}

CommitteeHost::CommitteeHost(
    int committee_k, int committee_t, core::CertMode cert_mode,
    std::shared_ptr<const crypto::KeyRegistry> committee_keys,
    StackFactory make_inner, core::Universal::DecideCb on_decide)
    : k_(committee_k),
      t_c_(committee_t),
      cert_mode_(cert_mode),
      keys_(std::move(committee_keys)),
      make_inner_(std::move(make_inner)),
      on_decide_(std::move(on_decide)) {}

CommitteeHost::~CommitteeHost() = default;

void CommitteeHost::on_start(sim::Context& ctx) {
  if (ctx.id() >= k_) return;  // listeners are purely reactive
  signer_.emplace(keys_->signer_for(ctx.id()));
  inner_ = make_inner_([this](sim::Context&, Value decided) {
    // Fires synchronously under the committee context, whose id is real
    // but whose n/keys are the committee's — so only latch the value here
    // and let the dispatching callback record/announce with the base
    // context (flush_member_decide).
    if (!pending_decide_.has_value()) pending_decide_ = decided;
  });
  CommitteeCtx cctx(ctx, k_, t_c_, *keys_, *signer_);
  inner_->on_start(cctx);
  flush_member_decide(ctx);
}

void CommitteeHost::on_message(sim::Context& ctx, ProcessId from,
                               const sim::PayloadPtr& m) {
  if (ctx.id() < k_) {
    if (m->mux_child() != sim::Payload::kNotWrapped) {
      // Inner-stack traffic. Only committee peers have a seat in the
      // inner system; anything a (Byzantine) listener injects is dropped
      // before the protocol code can see an out-of-range id.
      if (from < 0 || from >= k_ || inner_ == nullptr) return;
      CommitteeCtx cctx(ctx, k_, t_c_, *keys_, *signer_);
      inner_->on_message(cctx, from, m);
      flush_member_decide(ctx);
      return;
    }
    if (cert_mode_ != core::CertMode::kAggregate) return;
    if (from < 0 || from >= k_) return;
    const auto* announce = dynamic_cast<const DecisionAnnounce*>(m.get());
    if (announce != nullptr) handle_committee_vote(ctx, from, *announce);
    return;
  }
  // Listener: decide at most once, and only on committee-originated fanout.
  if (listener_decided_ || from < 0 || from >= k_) return;
  if (cert_mode_ == core::CertMode::kAggregate) {
    const auto* cert =
        dynamic_cast<const core::QuorumCertificatePayload*>(m.get());
    if (cert != nullptr) handle_listener_cert(ctx, *cert);
    return;
  }
  const auto* announce = dynamic_cast<const DecisionAnnounce*>(m.get());
  if (announce != nullptr) handle_listener_announce(ctx, from, *announce);
}

void CommitteeHost::on_timer(sim::Context& ctx, std::uint64_t tag) {
  if (ctx.id() >= k_ || inner_ == nullptr) return;
  // CommitteeHost arms no timers of its own, so every tag belongs to the
  // inner stack verbatim.
  CommitteeCtx cctx(ctx, k_, t_c_, *keys_, *signer_);
  inner_->on_timer(cctx, tag);
  flush_member_decide(ctx);
}

void CommitteeHost::flush_member_decide(sim::Context& ctx) {
  if (!pending_decide_.has_value() || member_announced_) return;
  member_announced_ = true;
  const Value decided = *pending_decide_;
  if (on_decide_) on_decide_(ctx, decided);
  const crypto::Hash digest = announce_digest(decided);
  const crypto::Signature sig = signer_->sign(digest);
  if (cert_mode_ == core::CertMode::kAggregate) {
    // Vote within the committee; the relay step (handle_committee_vote)
    // turns a quorum of these into one certificate for the listeners.
    for (ProcessId to = 0; to < k_; ++to) {
      ctx.send(to, sim::make_payload<DecisionAnnounce>(decided, sig));
    }
  } else {
    // Per-vote fanout: every deciding member vouches to every listener.
    for (ProcessId to = k_; to < ctx.n(); ++to) {
      ctx.send(to, sim::make_payload<DecisionAnnounce>(decided, sig));
    }
  }
}

void CommitteeHost::handle_committee_vote(sim::Context& ctx, ProcessId from,
                                          const DecisionAnnounce& announce) {
  if (announce.sig.signer != from) return;
  const crypto::Hash digest = announce_digest(announce.value);
  if (announce.sig.digest != digest) return;
  // Speculative aggregation (core/quorum.hpp): record unverified, pay one
  // verify_aggregate at certify time.
  votes_.add(announce.sig);
  if (relayed_) return;
  // Only the plurality(t_c) lowest-ranked members relay certificates — at
  // least one is correct, and cert traffic stays O(t_c * (n - k)).
  if (ctx.id() >= core::plurality(t_c_)) return;
  const int quorum = core::quorum_n_minus_t(k_, t_c_);
  if (votes_.count(digest) < quorum) return;
  const auto cert =
      core::certify_verified(votes_, *keys_, digest, k_, quorum);
  if (!cert.has_value()) return;
  relayed_ = true;
  const auto [margin, conflicting] = votes_.rivalry(digest);
  ctx.note_quorum(margin, conflicting);
  for (ProcessId to = k_; to < ctx.n(); ++to) {
    ctx.send(to, sim::make_payload<core::QuorumCertificatePayload>(
                     kAnnounceTag, 0, announce.value, cert->voters,
                     cert->agg));
  }
}

void CommitteeHost::handle_listener_announce(sim::Context& ctx,
                                             ProcessId from,
                                             const DecisionAnnounce& announce) {
  if (announce.sig.signer != from) return;
  const crypto::Hash digest = announce_digest(announce.value);
  if (announce.sig.digest != digest) return;
  if (!keys_->verify(announce.sig)) return;
  auto& vouchers = listener_votes_[announce.value];
  vouchers.insert(from);
  if (static_cast<int>(vouchers.size()) < core::plurality(t_c_)) return;
  listener_decided_ = true;
  if (on_decide_) on_decide_(ctx, announce.value);
}

void CommitteeHost::handle_listener_cert(
    sim::Context& ctx, const core::QuorumCertificatePayload& cert) {
  if (cert.tag != kAnnounceTag) return;
  // Never trust the carried digest: recompute from the value so the
  // certificate binds to exactly this announce step (the forge-qc
  // strategy keeps this check honest).
  const crypto::Hash digest = announce_digest(cert.value);
  if (cert.agg.digest != digest) return;
  if (cert.voters.count() < core::quorum_n_minus_t(k_, t_c_)) return;
  if (!keys_->verify_aggregate(cert.voters, cert.agg)) return;
  listener_decided_ = true;
  if (on_decide_) on_decide_(ctx, cert.value);
}

}  // namespace valcon::harness
