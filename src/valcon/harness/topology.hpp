// Communication topologies: who runs the consensus stack and who listens.
//
// The paper's algorithms are full-mesh: every process runs the whole stack
// and every broadcast reaches all n processes, so message complexity is
// O(n^2) and n=1000 scenarios are dominated by traffic that adds nothing
// to the experiment. A Topology is the harness-level axis that changes
// that shape without touching the protocol code:
//
//   "full-mesh"     — the default. Every process runs the stack exactly as
//                     before; the wire format and every pinned sweep
//                     output are byte-identical.
//   "committee-<k>" — the k lowest-id processes form the consensus
//                     committee (generalizing examples/
//                     blockchain_committee.cpp, leap-style committee-of-k
//                     operation): they run the full Universal stack among
//                     themselves over a k-sized key registry, with inner
//                     fault tolerance t_c = (k - 1) / 3. The remaining
//                     n - k processes are listeners that never run
//                     consensus; they decide from announced decisions:
//
//                       * cert_mode per-vote: every member that decides
//                         sends a signed DecisionAnnounce to every
//                         listener, which decides once plurality(t_c)
//                         distinct members vouch for one value.
//                       * cert_mode aggregate: members exchange announce
//                         votes within the committee; the plurality(t_c)
//                         lowest-ranked members certify a
//                         (k - t_c)-quorum into one PR 9
//                         QuorumCertificatePayload and relay that to the
//                         listeners, so certificate traffic — not vote
//                         traffic — crosses the overlay: O(k^2 + t_c * n)
//                         messages instead of O(n^2).
//
// CommitteeHost implements both roles in one Process keyed off the runtime
// id, so Byzantine strategy shims wrap it exactly like the full-mesh
// stack. Everything here is deterministic: committee membership is a pure
// function of (topology, n), and announces ride the ordinary simulated
// network.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/core/quorum.hpp"
#include "valcon/core/universal.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/payload.hpp"
#include "valcon/sim/process.hpp"

namespace valcon::harness {

/// One topology-axis value. committee_k == 0 encodes the full mesh (every
/// process runs the stack); committee_k >= 1 selects the committee of the
/// k lowest-id processes.
struct Topology {
  std::string name = "full-mesh";
  int committee_k = 0;

  [[nodiscard]] bool full_mesh() const { return committee_k == 0; }

  /// The committee's internal fault tolerance: the largest t_c with
  /// k > 3 * t_c, i.e. the committee is sized like a sound system of its
  /// own. (System-size derivation, not a vote threshold — the protocol
  /// thresholds below are always the core/thresholds.hpp helpers.)
  [[nodiscard]] static int committee_fault_tolerance(int k) {
    return (k - 1) / 3;
  }

  /// Throws std::invalid_argument for malformed fields: empty name, a
  /// negative committee size, or a committee larger than the system.
  void validate(int n) const;
};

/// Parses a topology token: "full-mesh", or "committee-<k>" with k >= 1
/// (e.g. "committee-10"). Throws std::invalid_argument for anything else,
/// listing the known forms.
[[nodiscard]] Topology named_topology(const std::string& name);

/// The known topology forms, sorted — for error messages and usage text.
[[nodiscard]] std::vector<std::string> topology_names();

/// A committee member's signed decision announcement. `sig` is the
/// member's committee-registry signature over the domain-separated digest
/// of `value`; listeners recompute the digest themselves, so a relayed or
/// replayed announce binds to exactly one value.
struct DecisionAnnounce final : sim::Payload {
  DecisionAnnounce(Value value_in, crypto::Signature sig_in)
      : value(value_in), sig(sig_in) {}

  VALCON_PAYLOAD_TYPE("topo/announce")

  [[nodiscard]] std::size_t size_words() const override { return 2; }

  Value value;
  crypto::Signature sig;
};

/// The domain-separated digest a DecisionAnnounce (and the aggregate-mode
/// certificate) signs: a pure function of the decided value.
[[nodiscard]] crypto::Hash announce_digest(Value value);

/// One process under a committee topology — member or listener, decided by
/// the runtime id (members are ids [0, committee_k)).
///
/// Members build the inner Universal stack lazily at on_start (listeners
/// never pay for one) and run it behind a context that rescopes n/t/keys/
/// signer to the committee: since members are the k lowest ids, inner ids
/// ARE outer ids and the stock broadcast loop over n() == k reaches
/// exactly the committee. Traffic from non-members never reaches the
/// inner stack. Decisions are recorded through the same DecideCb the
/// full-mesh path uses (the context's id/now are the real ones), then
/// fanned out per the cert mode documented on Topology.
class CommitteeHost final : public sim::Process {
 public:
  /// Builds the inner Universal stack with the given decide callback
  /// (CommitteeHost supplies its own, so it can announce after recording).
  using StackFactory = std::function<std::unique_ptr<core::Universal>(
      core::Universal::DecideCb)>;

  CommitteeHost(int committee_k, int committee_t, core::CertMode cert_mode,
                std::shared_ptr<const crypto::KeyRegistry> committee_keys,
                StackFactory make_inner, core::Universal::DecideCb on_decide);
  ~CommitteeHost() override;

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, ProcessId from,
                  const sim::PayloadPtr& m) override;
  void on_timer(sim::Context& ctx, std::uint64_t tag) override;

 private:
  /// Protocol-local tag for the aggregate-mode announce certificate.
  static constexpr std::uint32_t kAnnounceTag = 0;

  void flush_member_decide(sim::Context& ctx);
  void handle_committee_vote(sim::Context& ctx, ProcessId from,
                             const DecisionAnnounce& announce);
  void handle_listener_announce(sim::Context& ctx, ProcessId from,
                                const DecisionAnnounce& announce);
  void handle_listener_cert(sim::Context& ctx,
                            const core::QuorumCertificatePayload& cert);

  int k_;
  int t_c_;
  core::CertMode cert_mode_;
  std::shared_ptr<const crypto::KeyRegistry> keys_;
  StackFactory make_inner_;
  core::Universal::DecideCb on_decide_;

  // Member state (ids < k_).
  std::unique_ptr<core::Universal> inner_;
  std::optional<crypto::Signer> signer_;
  std::optional<Value> pending_decide_;
  bool member_announced_ = false;
  core::QuorumCollector votes_;  // aggregate mode: committee announce votes
  bool relayed_ = false;

  // Listener state (ids >= k_).
  std::map<Value, std::set<ProcessId>> listener_votes_;  // per-vote mode
  bool listener_decided_ = false;
};

}  // namespace valcon::harness
