#include "valcon/harness/validity_kind.hpp"

#include <stdexcept>

namespace valcon::harness {

std::string to_string(ValidityKind kind) {
  switch (kind) {
    case ValidityKind::kStrong: return "Strong";
    case ValidityKind::kWeak: return "Weak";
    case ValidityKind::kCorrectProposal: return "CorrectProposal";
    case ValidityKind::kMedian: return "Median";
    case ValidityKind::kConvexHull: return "ConvexHull";
  }
  return "?";
}

std::unique_ptr<core::ValidityProperty> make_validity(ValidityKind kind, int n,
                                                      int t) {
  switch (kind) {
    case ValidityKind::kStrong:
      return std::make_unique<core::StrongValidity>();
    case ValidityKind::kWeak:
      return std::make_unique<core::WeakValidity>();
    case ValidityKind::kCorrectProposal:
      return std::make_unique<core::CorrectProposalValidity>();
    case ValidityKind::kMedian:
      return std::make_unique<core::MedianValidity>(n, t);
    case ValidityKind::kConvexHull:
      return std::make_unique<core::ConvexHullValidity>();
  }
  throw std::invalid_argument("unknown ValidityKind");
}

}  // namespace valcon::harness
