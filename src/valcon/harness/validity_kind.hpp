// The paper's named validity properties as an enumerable sweep dimension.
//
// Lives in its own header (rather than sweep.hpp, its historical home) so
// that lower-level harness units — notably the proposal-pattern registry
// (pattern.hpp), whose adversarial pattern conditions on the property under
// test — can name the dimension without dragging in the whole sweep engine.
#pragma once

#include <memory>
#include <string>

#include "valcon/core/validity.hpp"

namespace valcon::harness {

/// The paper's named validity properties as sweep dimensions.
enum class ValidityKind {
  kStrong,
  kWeak,
  kCorrectProposal,
  kMedian,
  kConvexHull,
};

[[nodiscard]] std::string to_string(ValidityKind kind);

/// Instantiates the property for a given system size (Median needs n, t).
[[nodiscard]] std::unique_ptr<core::ValidityProperty> make_validity(
    ValidityKind kind, int n, int t);

}  // namespace valcon::harness
