#include "valcon/lb/dolev_reischuk.hpp"

#include "valcon/sim/adversary.hpp"

namespace valcon::lb {

EbaseOutcome run_ebase_experiment(int n, int t, harness::VcKind vc,
                                  std::uint64_t seed) {
  const int half_t = (t + 1) / 2;  // ceil(t/2)
  const Value v_star = 7;

  harness::ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.vc = vc;
  cfg.seed = seed;
  cfg.gst = 0.0;

  sim::SimConfig sim_cfg;
  sim_cfg.n = n;
  sim_cfg.t = t;
  sim_cfg.seed = seed;
  sim_cfg.net.gst = 0.0;
  sim_cfg.net.delta = 1.0;
  sim::Simulator simulator(sim_cfg);

  const core::StrongValidity validity;
  const core::LambdaFn lambda = core::make_lambda(validity, n, t);

  auto outcome = std::make_shared<EbaseOutcome>();
  auto decisions = std::make_shared<std::map<ProcessId, Value>>();

  // Members of B: the last ceil(t/2) processes.
  std::vector<ProcessId> group_b;
  for (ProcessId p = n - half_t; p < n; ++p) group_b.push_back(p);

  for (ProcessId p = 0; p < n; ++p) {
    auto stack = std::make_unique<sim::ComponentHost>(harness::make_universal(
        cfg, v_star, lambda, [decisions, p](sim::Context&, Value v) {
          (*decisions)[p] = v;
        }));
    if (p >= n - half_t) {
      simulator.mark_faulty(p);
      simulator.add_process(
          p, std::make_unique<sim::MessageDropShim>(std::move(stack), half_t,
                                                    group_b));
    } else {
      simulator.add_process(p, std::move(stack));
    }
  }

  simulator.run(1e7);

  outcome->correct_messages = simulator.metrics().message_complexity();
  outcome->bound =
      static_cast<std::uint64_t>(half_t) * static_cast<std::uint64_t>(half_t);
  outcome->bound_respected = outcome->correct_messages > outcome->bound;

  bool all_decided = true;
  for (ProcessId p = 0; p < n - half_t; ++p) {
    if (decisions->count(p) == 0) all_decided = false;
  }
  outcome->all_correct_decided = all_decided;
  std::optional<Value> seen;
  bool agree = true;
  for (ProcessId p = 0; p < n - half_t; ++p) {
    const auto it = decisions->find(p);
    if (it == decisions->end()) continue;
    if (seen.has_value() && *seen != it->second) agree = false;
    seen = it->second;
  }
  outcome->agreement = agree;
  return *outcome;
}

}  // namespace valcon::lb
