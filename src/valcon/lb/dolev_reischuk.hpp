// The Theorem 4 experiment: the E_base adversary of the extended
// Dolev-Reischuk bound.
//
// Groups: A = n - ceil(t/2) correct processes, B = ceil(t/2) faulty ones
// that behave correctly (same proposal v*), except that each member of B
// (1) ignores the first ceil(t/2) messages it receives and (2) omits
// sending messages to other members of B. GST = 0, so every message sent by
// a correct process counts.
//
// Theorem 4 proves any consensus algorithm with a non-trivial validity
// property must make correct processes send *more than* (ceil(t/2))^2
// messages in this execution — otherwise the pigeonhole argument (Lemma 5)
// yields a process in B that decides without hearing anyone, and the merge
// with E_v (Lemma 7) breaks Agreement. The experiment measures Universal's
// actual message count against the bound.
#pragma once

#include <cstdint>

#include "valcon/harness/scenario.hpp"

namespace valcon::lb {

struct EbaseOutcome {
  std::uint64_t correct_messages = 0;  // sent by A (GST = 0: all count)
  std::uint64_t bound = 0;             // (ceil(t/2))^2
  bool bound_respected = false;        // correct_messages > bound
  bool all_correct_decided = false;
  bool agreement = false;
};

/// Runs Universal (given vector-consensus flavor) against E_base.
[[nodiscard]] EbaseOutcome run_ebase_experiment(int n, int t,
                                                harness::VcKind vc,
                                                std::uint64_t seed);

}  // namespace valcon::lb
