#include "valcon/lb/partition.hpp"

#include <stdexcept>
#include <string>

#include "valcon/sim/adversary.hpp"

namespace valcon::lb {

PartitionOutcome run_partition_experiment(int n, int t, std::uint64_t seed) {
  // Theorem 1's construction needs n <= 3t (here the two canonical shapes);
  // a throw, not an assert — NDEBUG builds would otherwise run a partition
  // geometry the proof says nothing about and report it as a result.
  if (t < 1 || (n != 3 * t && n != 3 * t + 1)) {
    throw std::invalid_argument(
        "run_partition_experiment requires n == 3t or n == 3t+1 with "
        "t >= 1, got n=" + std::to_string(n) + " t=" + std::to_string(t));
  }
  // Groups: A = [0, n-2t), B = [n-2t, n-t) (Byzantine), C = [n-t, n).
  const int a_end = n - 2 * t;
  const int b_end = n - t;
  const Value value_a = 0;
  const Value value_c = 1;
  // Both sides must independently run many views (the C side only decides
  // in C-led views), so give the partition plenty of pre-GST time.
  const Time partition_until = 1e6;
  const Time gst = 2e6;

  harness::ScenarioConfig cfg;  // reused only for stack construction
  cfg.n = n;
  cfg.t = t;
  cfg.vc = harness::VcKind::kAuthenticated;

  sim::SimConfig sim_cfg;
  sim_cfg.n = n;
  sim_cfg.t = t;
  sim_cfg.seed = seed;
  sim_cfg.net.gst = gst;
  sim_cfg.net.delta = 1.0;
  sim::Simulator simulator(sim_cfg);

  const core::StrongValidity validity;
  const core::LambdaFn lambda = core::make_lambda(validity, n, t);

  auto outcome = std::make_shared<PartitionOutcome>();

  const auto side_of = [b_end](ProcessId p) { return p >= b_end ? 1 : 0; };

  for (ProcessId p = 0; p < n; ++p) {
    if (p < a_end) {
      simulator.add_process(
          p, std::make_unique<sim::ComponentHost>(harness::make_universal(
                 cfg, value_a, lambda,
                 [outcome, p](sim::Context& ctx, Value v) {
                   outcome->decisions[p] = v;
                   static_cast<void>(ctx);
                 })));
    } else if (p < b_end) {
      // Split-brain: face 0 plays the A side with A's proposal, face 1
      // plays the C side with C's proposal.
      simulator.mark_faulty(p);
      auto face0 = std::make_unique<sim::ComponentHost>(harness::make_universal(
          cfg, value_a, lambda, [](sim::Context&, Value) {}));
      auto face1 = std::make_unique<sim::ComponentHost>(harness::make_universal(
          cfg, value_c, lambda, [](sim::Context&, Value) {}));
      simulator.add_process(p, std::make_unique<sim::TwoFacedProcess>(
                                   std::move(face0), std::move(face1),
                                   side_of));
    } else {
      simulator.add_process(
          p, std::make_unique<sim::ComponentHost>(harness::make_universal(
                 cfg, value_c, lambda,
                 [outcome, p](sim::Context& ctx, Value v) {
                   outcome->decisions[p] = v;
                   static_cast<void>(ctx);
                 })));
    }
  }

  // Step 3 of the Lemma 2 construction: delay A <-> C communication.
  std::vector<ProcessId> group_a;
  std::vector<ProcessId> group_c;
  for (ProcessId p = 0; p < a_end; ++p) group_a.push_back(p);
  for (ProcessId p = b_end; p < n; ++p) group_c.push_back(p);
  simulator.network().hold_between(group_a, group_c, partition_until);

  outcome->events = simulator.run(gst + 200.0);

  for (const auto& [pid, v] : outcome->decisions) {
    if (pid < a_end) {
      outcome->side_a_value = v;
    } else {
      outcome->side_c_value = v;
    }
  }
  outcome->agreement_violated =
      outcome->side_a_value.has_value() && outcome->side_c_value.has_value() &&
      *outcome->side_a_value != *outcome->side_c_value;
  return *outcome;
}

}  // namespace valcon::lb
