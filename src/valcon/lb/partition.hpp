// The partitioning/merging construction behind Theorem 1 (and Lemma 2),
// executed for real on the simulator.
//
// With n <= 3t, quorums of size n-t need not intersect in a correct
// process. The experiment splits the system into groups A (n-2t), B (t,
// Byzantine, split-brain) and C (t), delays all A <-> C traffic until both
// sides decide (legal before GST), and lets each B member run two
// independent copies of the full Universal stack — one facing A (proposing
// like A), one facing C (proposing like C).
//
//   n = 3t   : side A∪B and side C∪B each muster n-t participants; both
//              reach (conflicting) decisions — Agreement is violated
//              between *correct* processes, exactly the contradiction in
//              Lemma 2's merged execution E.
//   n = 3t+1 : the C side is one process short of a quorum; it stalls until
//              GST and then adopts the A-side decision — no violation,
//              matching the paper's n > 3t solvability frontier.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "valcon/harness/scenario.hpp"

namespace valcon::lb {

struct PartitionOutcome {
  std::map<ProcessId, Value> decisions;  // correct processes (A and C)
  bool agreement_violated = false;
  std::optional<Value> side_a_value;
  std::optional<Value> side_c_value;
  std::uint64_t events = 0;
};

/// Runs the attack on Universal over authenticated vector consensus with
/// Strong Validity. `n` must be 3t or 3t+1.
[[nodiscard]] PartitionOutcome run_partition_experiment(int n, int t,
                                                        std::uint64_t seed);

}  // namespace valcon::lb
