// Byzantine behaviors used by the paper's proof constructions.
//
//  * SilentProcess     — crashes at time 0 (canonical executions, §3.1: "no
//                        faulty process takes any computational step").
//  * CrashShim         — behaves correctly, then stops at a given time.
//  * MessageDropShim   — the Theorem 4 (Dolev-Reischuk) adversary: behaves
//                        correctly except it ignores the first k messages it
//                        receives and omits sending to a designated group.
//  * TwoFacedProcess   — the partitioning adversary of Lemma 2 / Theorem 1:
//                        runs two independent copies of a correct protocol,
//                        one facing each partition side, so each side
//                        observes a consistent-looking (but equivocating)
//                        participant.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "valcon/sim/process.hpp"

namespace valcon::sim {

class SilentProcess final : public Process {};

/// Wraps an inner process; ignores every event at/after `crash_time`.
class CrashShim final : public Process {
 public:
  CrashShim(std::unique_ptr<Process> inner, Time crash_time)
      : inner_(std::move(inner)), crash_time_(crash_time) {}

  void on_start(Context& ctx) override {
    if (ctx.now() < crash_time_) inner_->on_start(ctx);
  }
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    if (ctx.now() < crash_time_) inner_->on_message(ctx, from, m);
  }
  void on_timer(Context& ctx, std::uint64_t tag) override {
    if (ctx.now() < crash_time_) inner_->on_timer(ctx, tag);
  }

 private:
  std::unique_ptr<Process> inner_;
  Time crash_time_;
};

/// The E_base adversary of Theorem 4: correct behavior, except that the
/// first `ignore_count` received messages are dropped and no message is sent
/// to processes in `omit_to`.
class MessageDropShim final : public Process {
 public:
  MessageDropShim(std::unique_ptr<Process> inner, int ignore_count,
                  std::vector<ProcessId> omit_to)
      : inner_(std::move(inner)),
        ignore_remaining_(ignore_count),
        omit_to_(std::move(omit_to)) {}

  void on_start(Context& ctx) override {
    FilterCtx fctx(this, ctx);
    inner_->on_start(fctx);
  }
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    if (ignore_remaining_ > 0) {
      --ignore_remaining_;
      return;
    }
    FilterCtx fctx(this, ctx);
    inner_->on_message(fctx, from, m);
  }
  void on_timer(Context& ctx, std::uint64_t tag) override {
    FilterCtx fctx(this, ctx);
    inner_->on_timer(fctx, tag);
  }

 private:
  class FilterCtx final : public Context {
   public:
    FilterCtx(MessageDropShim* shim, Context& base)
        : shim_(shim), base_(base) {}

    [[nodiscard]] Time now() const override { return base_.now(); }
    [[nodiscard]] ProcessId id() const override { return base_.id(); }
    [[nodiscard]] int n() const override { return base_.n(); }
    [[nodiscard]] int t() const override { return base_.t(); }
    [[nodiscard]] Time delta() const override { return base_.delta(); }
    void send(ProcessId to, PayloadPtr payload) override {
      for (ProcessId omit : shim_->omit_to_) {
        if (omit == to) return;
      }
      base_.send(to, std::move(payload));
    }
    void set_timer(Time delay, std::uint64_t tag) override {
      base_.set_timer(delay, tag);
    }
    [[nodiscard]] const crypto::KeyRegistry& keys() const override {
      return base_.keys();
    }
    [[nodiscard]] const crypto::Signer& signer() const override {
      return base_.signer();
    }
    [[nodiscard]] Rng& rng() override { return base_.rng(); }

   private:
    MessageDropShim* shim_;
    Context& base_;
  };

  std::unique_ptr<Process> inner_;
  int ignore_remaining_;
  std::vector<ProcessId> omit_to_;
};

/// Split-brain equivocator. `side(p)` assigns every process to face 0 or 1;
/// inbound messages are routed to the matching inner copy, and each copy's
/// outbound traffic is confined to its own side. Timers are tagged per face.
class TwoFacedProcess final : public Process {
 public:
  /// Wrapper for self-addressed messages so they return to the same face.
  struct FacedSelfMsg final : Payload {
    FacedSelfMsg(int f, PayloadPtr m) : face(f), inner(std::move(m)) {}
    [[nodiscard]] const char* type_name() const override {
      return inner->type_name();
    }
    [[nodiscard]] std::size_t size_words() const override {
      return inner->size_words();
    }
    int face;
    PayloadPtr inner;
  };

  TwoFacedProcess(std::unique_ptr<Process> face0,
                  std::unique_ptr<Process> face1,
                  std::function<int(ProcessId)> side)
      : side_(std::move(side)) {
    faces_[0] = std::move(face0);
    faces_[1] = std::move(face1);
  }

  void on_start(Context& ctx) override {
    for (int f = 0; f < 2; ++f) {
      FaceCtx fctx(this, ctx, f);
      faces_[static_cast<std::size_t>(f)]->on_start(fctx);
    }
  }

  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    if (const auto* self = dynamic_cast<const FacedSelfMsg*>(m.get())) {
      FaceCtx fctx(this, ctx, self->face);
      faces_[static_cast<std::size_t>(self->face)]->on_message(fctx, from,
                                                               self->inner);
      return;
    }
    const int f = side_(from);
    FaceCtx fctx(this, ctx, f);
    faces_[static_cast<std::size_t>(f)]->on_message(fctx, from, m);
  }

  void on_timer(Context& ctx, std::uint64_t tag) override {
    const int f = static_cast<int>(tag & 1);
    FaceCtx fctx(this, ctx, f);
    faces_[static_cast<std::size_t>(f)]->on_timer(fctx, tag >> 1);
  }

 private:
  class FaceCtx final : public Context {
   public:
    FaceCtx(TwoFacedProcess* shim, Context& base, int face)
        : shim_(shim), base_(base), face_(face) {}

    [[nodiscard]] Time now() const override { return base_.now(); }
    [[nodiscard]] ProcessId id() const override { return base_.id(); }
    [[nodiscard]] int n() const override { return base_.n(); }
    [[nodiscard]] int t() const override { return base_.t(); }
    [[nodiscard]] Time delta() const override { return base_.delta(); }
    void send(ProcessId to, PayloadPtr payload) override {
      if (to == base_.id()) {
        base_.send(to, make_payload<FacedSelfMsg>(face_, std::move(payload)));
        return;
      }
      if (shim_->side_(to) != face_) return;
      base_.send(to, std::move(payload));
    }
    void set_timer(Time delay, std::uint64_t tag) override {
      base_.set_timer(delay, (tag << 1) | static_cast<std::uint64_t>(face_));
    }
    [[nodiscard]] const crypto::KeyRegistry& keys() const override {
      return base_.keys();
    }
    [[nodiscard]] const crypto::Signer& signer() const override {
      return base_.signer();
    }
    [[nodiscard]] Rng& rng() override { return base_.rng(); }

   private:
    TwoFacedProcess* shim_;
    Context& base_;
    int face_;
  };

  std::array<std::unique_ptr<Process>, 2> faces_;
  std::function<int(ProcessId)> side_;
};

}  // namespace valcon::sim
