// Byzantine behaviors used by the paper's proof constructions and by the
// harness adversary strategies (harness/strategy.hpp).
//
//  * SilentProcess     — crashes at time 0 (canonical executions, §3.1: "no
//                        faulty process takes any computational step").
//  * CrashShim         — behaves correctly, then stops at a given time.
//  * MessageDropShim   — the Theorem 4 (Dolev-Reischuk) adversary: behaves
//                        correctly except it ignores the first k messages it
//                        receives and omits sending to a designated group.
//  * TwoFacedProcess   — the partitioning adversary of Lemma 2 / Theorem 1:
//                        runs two independent copies of a correct protocol,
//                        one facing each partition side, so each side
//                        observes a consistent-looking (but equivocating)
//                        participant. The side assignment may depend on the
//                        current time, which expresses scheduled
//                        equivocation (switch faces at a chosen instant).
//  * MutatingShim      — arbitrary payload tampering: outbound messages are
//                        randomly dropped, replaced by unrecognizable
//                        garbage, or duplicated.
//  * AdaptiveOmitShim  — adaptive corruption: observes inbound traffic and
//                        silences itself towards the most talkative senders.
//  * ColludingFacedProcess / ColludingOmitShim — coordinated multi-process
//                        adversaries: a whole group of faulty processes
//                        jointly executes the Lemma 2 partition (consistent
//                        face pairs) or withholds votes at the quorum edge
//                        (one shared trip wire). The shared state that makes
//                        them agree is plumbed by the harness strategy layer
//                        (harness/strategy.hpp: StrategyShared).
//
// All randomness flows through the per-process Rng of the Context, so every
// behavior is a deterministic function of (configuration, seed).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "valcon/sim/process.hpp"

namespace valcon::sim {

class SilentProcess final : public Process {};

/// Wraps an inner process; ignores every event at/after `crash_time`.
class CrashShim final : public Process {
 public:
  CrashShim(std::unique_ptr<Process> inner, Time crash_time)
      : inner_(std::move(inner)), crash_time_(crash_time) {}

  void on_start(Context& ctx) override {
    if (ctx.now() < crash_time_) inner_->on_start(ctx);
  }
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    if (ctx.now() < crash_time_) inner_->on_message(ctx, from, m);
  }
  void on_timer(Context& ctx, std::uint64_t tag) override {
    if (ctx.now() < crash_time_) inner_->on_timer(ctx, tag);
  }

 private:
  std::unique_ptr<Process> inner_;
  Time crash_time_;
};

/// The E_base adversary of Theorem 4: correct behavior, except that the
/// first `ignore_count` received messages are dropped and no message is sent
/// to processes in `omit_to`.
class MessageDropShim final : public Process {
 public:
  MessageDropShim(std::unique_ptr<Process> inner, int ignore_count,
                  std::vector<ProcessId> omit_to)
      : inner_(std::move(inner)),
        ignore_remaining_(ignore_count),
        omit_to_(std::move(omit_to)) {}

  void on_start(Context& ctx) override {
    FilterCtx fctx(this, ctx);
    inner_->on_start(fctx);
  }
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    if (ignore_remaining_ > 0) {
      --ignore_remaining_;
      return;
    }
    FilterCtx fctx(this, ctx);
    inner_->on_message(fctx, from, m);
  }
  void on_timer(Context& ctx, std::uint64_t tag) override {
    FilterCtx fctx(this, ctx);
    inner_->on_timer(fctx, tag);
  }

 private:
  class FilterCtx final : public ForwardingContext {
   public:
    FilterCtx(MessageDropShim* shim, Context& base)
        : ForwardingContext(base), shim_(shim) {}

    void send(ProcessId to, PayloadPtr payload) override {
      for (ProcessId omit : shim_->omit_to_) {
        if (omit == to) return;
      }
      ForwardingContext::send(to, std::move(payload));
    }

   private:
    MessageDropShim* shim_;
  };

  std::unique_ptr<Process> inner_;
  int ignore_remaining_;
  std::vector<ProcessId> omit_to_;
};

/// Split-brain equivocator. `side(p, now)` assigns every process to face 0
/// or 1 (possibly changing over time — scheduled equivocation); inbound
/// messages are routed to the matching inner copy, and each copy's outbound
/// traffic is confined to its own side. Timers are tagged per face.
class TwoFacedProcess final : public Process {
 public:
  /// Wrapper for self-addressed messages so they return to the same face.
  // valcon-lint: allow(payload-type) -- forwards the inner payload's identity
  struct FacedSelfMsg final : Payload {
    FacedSelfMsg(int f, PayloadPtr m) : face(f), inner(std::move(m)) {}
    [[nodiscard]] const char* type_name() const override {
      return inner->type_name();
    }
    [[nodiscard]] PayloadTypeId type_id() const override {
      return inner->type_id();
    }
    [[nodiscard]] std::size_t size_words() const override {
      return inner->size_words();
    }
    int face;
    PayloadPtr inner;
  };

  using Side = std::function<int(ProcessId)>;
  using TimedSide = std::function<int(ProcessId, Time)>;

  TwoFacedProcess(std::unique_ptr<Process> face0,
                  std::unique_ptr<Process> face1, Side side)
      : TwoFacedProcess(std::move(face0), std::move(face1),
                        TimedSide([side = std::move(side)](ProcessId p, Time) {
                          return side(p);
                        })) {}

  TwoFacedProcess(std::unique_ptr<Process> face0,
                  std::unique_ptr<Process> face1, TimedSide side)
      : side_(std::move(side)) {
    faces_[0] = std::move(face0);
    faces_[1] = std::move(face1);
  }

  void on_start(Context& ctx) override {
    for (int f = 0; f < 2; ++f) {
      FaceCtx fctx(this, ctx, f);
      faces_[static_cast<std::size_t>(f)]->on_start(fctx);
    }
  }

  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    if (const auto* self = dynamic_cast<const FacedSelfMsg*>(m.get())) {
      FaceCtx fctx(this, ctx, self->face);
      faces_[static_cast<std::size_t>(self->face)]->on_message(fctx, from,
                                                               self->inner);
      return;
    }
    const int f = side_(from, ctx.now());
    FaceCtx fctx(this, ctx, f);
    faces_[static_cast<std::size_t>(f)]->on_message(fctx, from, m);
  }

  void on_timer(Context& ctx, std::uint64_t tag) override {
    const int f = static_cast<int>(tag & 1);
    FaceCtx fctx(this, ctx, f);
    faces_[static_cast<std::size_t>(f)]->on_timer(fctx, tag >> 1);
  }

 private:
  class FaceCtx final : public ForwardingContext {
   public:
    FaceCtx(TwoFacedProcess* shim, Context& base, int face)
        : ForwardingContext(base), shim_(shim), face_(face) {}

    void send(ProcessId to, PayloadPtr payload) override {
      if (to == id()) {
        ForwardingContext::send(
            to, make_payload<FacedSelfMsg>(face_, std::move(payload)));
        return;
      }
      if (shim_->side_(to, now()) != face_) return;
      ForwardingContext::send(to, std::move(payload));
    }
    void set_timer(Time delay, std::uint64_t tag) override {
      ForwardingContext::set_timer(
          delay, (tag << 1) | static_cast<std::uint64_t>(face_));
    }

   private:
    TwoFacedProcess* shim_;
    int face_;
  };

  std::array<std::unique_ptr<Process>, 2> faces_;
  TimedSide side_;
};

/// Unrecognizable protocol message: no component dynamic_casts to it, so
/// receivers must (and do) ignore it. Used by MutatingShim to model
/// arbitrary payload corruption while keeping word accounting honest.
// valcon-protomap: allow(black-hole) -- adversarial garbage is meant to be dropped
struct GarbagePayload final : Payload {
  explicit GarbagePayload(std::size_t words) : words_(words == 0 ? 1 : words) {}
  VALCON_PAYLOAD_TYPE("adversary/garbage")
  [[nodiscard]] std::size_t size_words() const override { return words_; }

 private:
  std::size_t words_;
};

/// Arbitrary payload mutation: wraps a correct process; each outbound
/// message is tampered with probability `rate` — dropped, replaced by a
/// GarbagePayload of the same word size, or sent twice, chosen uniformly
/// from the per-process Rng (deterministic per (config, seed)).
class MutatingShim final : public Process {
 public:
  MutatingShim(std::unique_ptr<Process> inner, double rate)
      : inner_(std::move(inner)), rate_(rate) {}

  void on_start(Context& ctx) override {
    MutCtx mctx(this, ctx);
    inner_->on_start(mctx);
  }
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    MutCtx mctx(this, ctx);
    inner_->on_message(mctx, from, m);
  }
  void on_timer(Context& ctx, std::uint64_t tag) override {
    MutCtx mctx(this, ctx);
    inner_->on_timer(mctx, tag);
  }

 private:
  class MutCtx final : public ForwardingContext {
   public:
    MutCtx(MutatingShim* shim, Context& base)
        : ForwardingContext(base), shim_(shim) {}

    void send(ProcessId to, PayloadPtr payload) override {
      if (rng().uniform(0.0, 1.0) >= shim_->rate_) {
        ForwardingContext::send(to, std::move(payload));
        return;
      }
      switch (rng().next_below(3)) {
        case 0:  // omission
          return;
        case 1:  // corruption
          ForwardingContext::send(
              to, make_payload<GarbagePayload>(payload->size_words()));
          return;
        default:  // duplication
          ForwardingContext::send(to, payload);
          ForwardingContext::send(to, std::move(payload));
          return;
      }
    }

   private:
    MutatingShim* shim_;
  };

  std::unique_ptr<Process> inner_;
  double rate_;
};

/// Adaptive corruption: behaves correctly while counting inbound messages
/// per sender; once `observe` messages have been seen it picks the
/// `victims` most talkative senders (ties broken towards lower ids) and
/// permanently stops sending to them — an adversary that targets whoever is
/// driving progress. Victim choice depends only on the delivery order, so
/// it is deterministic per (config, seed).
class AdaptiveOmitShim final : public Process {
 public:
  AdaptiveOmitShim(std::unique_ptr<Process> inner, int victims, int observe)
      : inner_(std::move(inner)),
        victims_(victims),
        observe_remaining_(observe) {
    if (observe_remaining_ <= 0) chosen_ = true;  // victims picked lazily
  }

  [[nodiscard]] const std::vector<ProcessId>& victims() const {
    return victim_ids_;
  }

  void on_start(Context& ctx) override {
    OmitCtx octx(this, ctx);
    inner_->on_start(octx);
  }
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    if (!chosen_) {
      ++counts_[from];
      if (--observe_remaining_ <= 0) pick_victims();
    }
    OmitCtx octx(this, ctx);
    inner_->on_message(octx, from, m);
  }
  void on_timer(Context& ctx, std::uint64_t tag) override {
    OmitCtx octx(this, ctx);
    inner_->on_timer(octx, tag);
  }

 private:
  void pick_victims() {
    chosen_ = true;
    std::vector<std::pair<ProcessId, std::uint64_t>> ranked(counts_.begin(),
                                                            counts_.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    const auto k = std::min<std::size_t>(
        ranked.size(), static_cast<std::size_t>(std::max(victims_, 0)));
    for (std::size_t i = 0; i < k; ++i) victim_ids_.push_back(ranked[i].first);
  }

  class OmitCtx final : public ForwardingContext {
   public:
    OmitCtx(AdaptiveOmitShim* shim, Context& base)
        : ForwardingContext(base), shim_(shim) {}

    void send(ProcessId to, PayloadPtr payload) override {
      for (ProcessId victim : shim_->victim_ids_) {
        if (victim == to) return;
      }
      ForwardingContext::send(to, std::move(payload));
    }

   private:
    AdaptiveOmitShim* shim_;
  };

  std::unique_ptr<Process> inner_;
  int victims_;
  int observe_remaining_;
  bool chosen_ = false;
  std::map<ProcessId, std::uint64_t> counts_;
  std::vector<ProcessId> victim_ids_;
};

/// Coordinated split-brain for a whole *group* of colluders — the Lemma 2
/// partition adversary executed jointly. Like TwoFacedProcess, every member
/// runs two full protocol stacks, one per partition side; unlike a lone
/// equivocator, messages between group members carry a face tag (the
/// TwoFacedProcess::FacedSelfMsg wrapper, whose routing is sender-agnostic),
/// so each member keeps BOTH world views consistent with every other member.
/// Outsiders assigned to side 0 observe one coherent system in which all
/// colluders participate, outsiders on side 1 a different one. The side
/// assignment must be identical across the group; it comes from shared
/// per-run state (harness/strategy.hpp: StrategyShared). Sends to an
/// outsider on the other side are dropped.
class ColludingFacedProcess final : public Process {
 public:
  using Side = std::function<int(ProcessId)>;

  ColludingFacedProcess(std::unique_ptr<Process> face0,
                        std::unique_ptr<Process> face1, Side side,
                        std::vector<ProcessId> colluders)
      : side_(std::move(side)), colluders_(std::move(colluders)) {
    faces_[0] = std::move(face0);
    faces_[1] = std::move(face1);
  }

  void on_start(Context& ctx) override {
    for (int f = 0; f < 2; ++f) {
      FaceCtx fctx(this, ctx, f);
      faces_[static_cast<std::size_t>(f)]->on_start(fctx);
    }
  }

  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    // Face-tagged messages (from self or a co-colluder) return to the
    // tagged face; outsider messages are routed by the sender's side.
    if (const auto* tagged =
            dynamic_cast<const TwoFacedProcess::FacedSelfMsg*>(m.get())) {
      FaceCtx fctx(this, ctx, tagged->face);
      faces_[static_cast<std::size_t>(tagged->face)]->on_message(fctx, from,
                                                                 tagged->inner);
      return;
    }
    const int f = side_(from);
    FaceCtx fctx(this, ctx, f);
    faces_[static_cast<std::size_t>(f)]->on_message(fctx, from, m);
  }

  void on_timer(Context& ctx, std::uint64_t tag) override {
    const int f = static_cast<int>(tag & 1);
    FaceCtx fctx(this, ctx, f);
    faces_[static_cast<std::size_t>(f)]->on_timer(fctx, tag >> 1);
  }

 private:
  [[nodiscard]] bool colludes_with(ProcessId q) const {
    return std::find(colluders_.begin(), colluders_.end(), q) !=
           colluders_.end();
  }

  class FaceCtx final : public ForwardingContext {
   public:
    FaceCtx(ColludingFacedProcess* shim, Context& base, int face)
        : ForwardingContext(base), shim_(shim), face_(face) {}

    void send(ProcessId to, PayloadPtr payload) override {
      if (to == id() || shim_->colludes_with(to)) {
        ForwardingContext::send(
            to, make_payload<TwoFacedProcess::FacedSelfMsg>(
                    face_, std::move(payload)));
        return;
      }
      if (shim_->side_(to) != face_) return;
      ForwardingContext::send(to, std::move(payload));
    }
    void set_timer(Time delay, std::uint64_t tag) override {
      ForwardingContext::set_timer(
          delay, (tag << 1) | static_cast<std::uint64_t>(face_));
    }

   private:
    ColludingFacedProcess* shim_;
    int face_;
  };

  std::array<std::unique_ptr<Process>, 2> faces_;
  Side side_;
  std::vector<ProcessId> colluders_;
};

/// Shared state of a vote-withholding collusion group: the victim set, the
/// delivery threshold, and the group-wide tally of deliveries observed so
/// far. Every member holds the same instance (built once per run via the
/// harness StrategyShared blackboard), so the cut below trips for the whole
/// group at one logical instant. Runs are single-threaded, so the bare
/// counter is deterministic — delivery order is a function of (config, seed).
struct WithholdLedger {
  std::vector<ProcessId> victims;
  std::uint64_t threshold = 0;
  std::uint64_t deliveries = 0;
  bool configured = false;  // set by whoever fills victims/threshold first
  [[nodiscard]] bool tripped() const { return deliveries >= threshold; }
};

/// Quorum-edge vote withholding: behaves correctly (proposes, votes,
/// relays) while the group's shared tally is below the threshold; from the
/// delivery that trips it, every member simultaneously stops sending to the
/// victim set. A lone AdaptiveOmitShim can only remove itself from a
/// victim's quorums; a group tripping together removes ALL colluders'
/// votes mid-protocol — the quorum edge.
class ColludingOmitShim final : public Process {
 public:
  ColludingOmitShim(std::unique_ptr<Process> inner,
                    std::shared_ptr<WithholdLedger> ledger)
      : inner_(std::move(inner)), ledger_(std::move(ledger)) {}

  void on_start(Context& ctx) override {
    OmitCtx octx(this, ctx);
    inner_->on_start(octx);
  }
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    ++ledger_->deliveries;
    OmitCtx octx(this, ctx);
    inner_->on_message(octx, from, m);
  }
  void on_timer(Context& ctx, std::uint64_t tag) override {
    OmitCtx octx(this, ctx);
    inner_->on_timer(octx, tag);
  }

 private:
  class OmitCtx final : public ForwardingContext {
   public:
    OmitCtx(ColludingOmitShim* shim, Context& base)
        : ForwardingContext(base), shim_(shim) {}

    void send(ProcessId to, PayloadPtr payload) override {
      if (shim_->ledger_->tripped()) {
        for (ProcessId victim : shim_->ledger_->victims) {
          if (victim == to) return;
        }
      }
      ForwardingContext::send(to, std::move(payload));
    }

   private:
    ColludingOmitShim* shim_;
  };

  std::unique_ptr<Process> inner_;
  std::shared_ptr<WithholdLedger> ledger_;
};

}  // namespace valcon::sim
