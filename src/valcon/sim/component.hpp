// Protocol composition.
//
// The paper's algorithms are built from nested instances ("Uses: Quad,
// instance quad" etc.). A Component is a protocol layer with the same three
// callbacks as a Process; Mux is a Component that owns named child
// components and transparently multiplexes messages and timers to them, so a
// stack like Universal -> VectorConsensus -> Quad composes without any layer
// knowing about the others' wire formats.
//
// Child messages are wrapped in MuxMsg (the wrapper contributes nothing to
// word accounting — headers are constant-size). Timer tags are radix-encoded
// along the nesting path.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "valcon/sim/process.hpp"

namespace valcon::sim {

class Component {
 public:
  virtual ~Component() = default;
  virtual void on_start(Context&) {}
  virtual void on_message(Context&, ProcessId /*from*/, const PayloadPtr&) {}
  virtual void on_timer(Context&, std::uint64_t /*tag*/) {}
};

// A metrics name of its own would hide the real per-type traffic breakdown,
// so MuxMsg forwards the wrapped payload's identity (captured once at
// construction, see below).
// valcon-lint: allow(payload-type) -- forwards the inner payload's identity
struct MuxMsg final : Payload {
  MuxMsg(std::uint32_t child_idx, PayloadPtr inner_payload)
      : child(child_idx),
        inner(std::move(inner_payload)),
        name_(inner->type_name()),
        type_id_(inner->type_id()),
        words_(inner->size_words()) {}

  // The wrapped message's metrics identity, captured once at construction:
  // Metrics::on_send queries the outermost payload on every send, and for
  // a multi-level Mux stack the per-send virtual walk down the wrapper
  // chain (twice: id and words) was measurable on the hot path.
  [[nodiscard]] const char* type_name() const override { return name_; }
  [[nodiscard]] PayloadTypeId type_id() const override { return type_id_; }
  [[nodiscard]] std::size_t size_words() const override { return words_; }
  [[nodiscard]] std::int32_t mux_child() const override {
    return static_cast<std::int32_t>(child);
  }

  std::uint32_t child;
  PayloadPtr inner;

 private:
  const char* name_;
  PayloadTypeId type_id_;
  std::size_t words_;
};

/// A component with children. Subclasses implement the own_* hooks for their
/// own protocol logic and register children with make_child().
class Mux : public Component {
 public:
  static constexpr std::uint64_t kTagRadix = 1024;

  void on_start(Context& ctx) final {
    ScopedCtx scope(this, ctx);
    own_start(ctx);
    for (std::size_t i = 0; i < children_.size(); ++i) {
      children_[i]->on_start(*child_ctxs_[i]);
    }
  }

  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) final {
    ScopedCtx scope(this, ctx);
    const std::int32_t child = m->mux_child();
    if (child != Payload::kNotWrapped) {
      // Only MuxMsg answers the routing hook (see Payload::mux_child).
      assert(dynamic_cast<const MuxMsg*>(m.get()) != nullptr);
      const auto* mux = static_cast<const MuxMsg*>(m.get());
      if (mux->child < children_.size()) {
        children_[mux->child]->on_message(*child_ctxs_[mux->child], from,
                                          mux->inner);
      }
      return;
    }
    own_message(ctx, from, m);
  }

  void on_timer(Context& ctx, std::uint64_t tag) final {
    ScopedCtx scope(this, ctx);
    const std::uint64_t idx = tag % kTagRadix;
    if (idx == 0) {
      own_timer(ctx, tag / kTagRadix);
    } else if (idx - 1 < children_.size()) {
      children_[idx - 1]->on_timer(*child_ctxs_[idx - 1], tag / kTagRadix);
    }
  }

 protected:
  virtual void own_start(Context&) {}
  virtual void own_message(Context&, ProcessId /*from*/, const PayloadPtr&) {}
  virtual void own_timer(Context&, std::uint64_t /*tag*/) {}

  /// Constructs and registers a child component; returns a typed reference
  /// owned by this Mux.
  template <typename T, typename... Args>
  T& make_child(Args&&... args) {
    auto child = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *child;
    add_child(std::move(child));
    return ref;
  }

  /// Registers an already-constructed (possibly polymorphic) child.
  Component& add_child(std::unique_ptr<Component> child) {
    const auto idx = static_cast<std::uint32_t>(children_.size());
    children_.push_back(std::move(child));
    child_ctxs_.push_back(std::make_unique<ChildCtx>(this, idx));
    return *children_.back();
  }

  /// Context adapter for child `idx`, for invoking child methods directly
  /// (e.g. a late `propose` request). Only valid while a callback of this
  /// Mux is on the stack.
  [[nodiscard]] Context& child_context(std::size_t idx) {
    return *child_ctxs_[idx];
  }

  [[nodiscard]] Component& child(std::size_t idx) { return *children_[idx]; }

  /// The context of the callback currently executing. Valid only inside
  /// on_start / on_message / on_timer (including child callbacks invoked
  /// from them), which is where all protocol logic runs.
  [[nodiscard]] Context& ctx() {
    assert(current_ != nullptr);
    return *current_;
  }

  /// Delivers a message to child `idx` as if it arrived from `from` — used
  /// by layers that perform local (non-network) handoff.
  void inject_to_child(std::size_t idx, ProcessId from, const PayloadPtr& m) {
    children_[idx]->on_message(*child_ctxs_[idx], from, m);
  }

  [[nodiscard]] std::size_t child_count() const { return children_.size(); }

  /// Sets own timer with a tag that routes back to own_timer.
  void set_own_timer(Context& base, Time delay, std::uint64_t tag) {
    base.set_timer(delay, tag * kTagRadix);
  }

  /// Binds `ctx` as the current context for the duration of a scope. Needed
  /// by public entry points invoked from *outside* this Mux's callbacks
  /// (e.g. a parent layer calling disseminate()/propose() on a child Mux):
  /// such methods must open a CallScope before touching child_context().
  class CallScope;

 private:
  class ChildCtx final : public Context {
   public:
    ChildCtx(Mux* owner, std::uint32_t idx) : owner_(owner), idx_(idx) {}

    [[nodiscard]] Time now() const override { return base().now(); }
    [[nodiscard]] ProcessId id() const override { return base().id(); }
    [[nodiscard]] int n() const override { return base().n(); }
    [[nodiscard]] int t() const override { return base().t(); }
    [[nodiscard]] Time delta() const override { return base().delta(); }

    void send(ProcessId to, PayloadPtr payload) override {
      base().send(to, make_payload<MuxMsg>(idx_, std::move(payload)));
    }
    void broadcast(const PayloadPtr& payload) override {
      // One wrapper shared by every recipient instead of n identical
      // wrappers: payloads are immutable and shared by design, so this is
      // observationally identical — and protocol stacks broadcast almost
      // everything, so on a multi-level stack it removes (levels × n - 1)
      // allocations per broadcast. The base context still sees one send()
      // per recipient (Byzantine shims interpose on those, not here).
      base().broadcast(make_payload<MuxMsg>(idx_, payload));
    }
    void set_timer(Time delay, std::uint64_t tag) override {
      base().set_timer(delay, tag * kTagRadix + idx_ + 1);
    }
    void note_quorum(int margin, std::uint64_t conflicting) override {
      base().note_quorum(margin, conflicting);
    }
    [[nodiscard]] const crypto::KeyRegistry& keys() const override {
      return base().keys();
    }
    [[nodiscard]] const crypto::Signer& signer() const override {
      return base().signer();
    }
    [[nodiscard]] Rng& rng() override { return base().rng(); }

   private:
    [[nodiscard]] Context& base() const {
      assert(owner_->current_ != nullptr);
      return *owner_->current_;
    }
    Mux* owner_;
    std::uint32_t idx_;
  };

  struct ScopedCtx {
    ScopedCtx(Mux* mux, Context& ctx) : mux_(mux), prev_(mux->current_) {
      mux_->current_ = &ctx;
    }
    ~ScopedCtx() { mux_->current_ = prev_; }
    Mux* mux_;
    Context* prev_;
  };

  std::vector<std::unique_ptr<Component>> children_;
  std::vector<std::unique_ptr<ChildCtx>> child_ctxs_;
  Context* current_ = nullptr;
};

class Mux::CallScope {
 public:
  CallScope(Mux* mux, Context& ctx) : scope_(mux, ctx) {}

 private:
  ScopedCtx scope_;
};

/// Adapts a root Component into a Process the simulator can host.
class ComponentHost final : public Process {
 public:
  explicit ComponentHost(std::unique_ptr<Component> root)
      : root_(std::move(root)) {}

  [[nodiscard]] Component& root() { return *root_; }

  void on_start(Context& ctx) override { root_->on_start(ctx); }
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    root_->on_message(ctx, from, m);
  }
  void on_timer(Context& ctx, std::uint64_t tag) override {
    root_->on_timer(ctx, tag);
  }

 private:
  std::unique_ptr<Component> root_;
};

}  // namespace valcon::sim
