// Complexity accounting, exactly as defined in Section 3.1 of the paper:
//
//   "The message complexity of E is the number of messages sent by correct
//    processes during [GST, infinity)."
//
// Communication complexity counts words instead (footnote 4). Totals over
// the whole execution (including pre-GST and faulty senders) are also kept
// for diagnostics.
//
// The per-type breakdown is counted by interned PayloadTypeId — a dense
// array increment on the per-message hot path — and materialized back into
// the historical string-keyed map only when by_type() is asked for, so the
// reporting format is unchanged while on_send performs no string
// construction, no tree lookup and (steady-state) no allocation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/sim/payload.hpp"

namespace valcon::sim {

/// Near-miss counters for the adversary search (harness/search.hpp): how
/// close the execution came to a safety violation, reported by correct
/// processes at quorum-certificate formation (Context::note_quorum).
struct NearMiss {
  /// Minimum over all QCs formed by correct processes of (votes for the
  /// winning digest − votes for the strongest competing digest in the same
  /// view/phase); -1 when no correct process ever formed a QC (e.g. the
  /// non-authenticated stack, which does not run Quad). A small margin
  /// means the adversary nearly split the voters.
  int min_vote_margin = -1;
  /// Total votes correct processes collected for digests that lost their
  /// view — nonzero only when an adversary made voters disagree.
  std::uint64_t conflicting_votes = 0;
};

class Metrics {
 public:
  void on_send(bool sender_correct, bool post_gst, std::size_t words,
               PayloadTypeId type) {
    ++messages_total_;
    words_total_ += words;
    if (sender_correct && post_gst) {
      ++messages_post_gst_;
      words_post_gst_ += words;
      if (type >= by_type_.size()) by_type_.resize(type + 1, 0);
      ++by_type_[type];
    }
  }

  /// Messages sent by correct processes at/after GST (paper's metric).
  [[nodiscard]] std::uint64_t message_complexity() const {
    return messages_post_gst_;
  }
  /// Words sent by correct processes at/after GST (paper's footnote 4).
  [[nodiscard]] std::uint64_t communication_complexity() const {
    return words_post_gst_;
  }
  [[nodiscard]] std::uint64_t messages_total() const { return messages_total_; }
  [[nodiscard]] std::uint64_t words_total() const { return words_total_; }

  /// Post-GST correct-sender message counts per payload type, materialized
  /// lazily from the interned counters. Types never seen (count zero) are
  /// absent, exactly as with the old string-keyed map; the sum of the
  /// values equals message_complexity().
  [[nodiscard]] std::map<std::string, std::uint64_t> by_type() const {
    std::map<std::string, std::uint64_t> out;
    // One registry snapshot instead of a locked name_of per id (sweeps
    // materialize this once per cell, from many threads).
    const std::vector<std::string> names = PayloadTypeRegistry::names();
    for (PayloadTypeId id = 0; id < by_type_.size(); ++id) {
      if (by_type_[id] != 0) {
        out[names[id]] += by_type_[id];
      }
    }
    return out;
  }

  /// Records a quorum certificate formed by a correct process: the margin
  /// over the strongest competitor and the votes the losers collected.
  /// Cold path (at most one QC per view per phase), so a branch and an add
  /// cost nothing next to on_send.
  void on_quorum(int margin, std::uint64_t conflicting) {
    if (near_miss_.min_vote_margin < 0 || margin < near_miss_.min_vote_margin) {
      near_miss_.min_vote_margin = margin;
    }
    near_miss_.conflicting_votes += conflicting;
  }

  [[nodiscard]] const NearMiss& near_miss() const { return near_miss_; }

  void reset() {
    messages_total_ = words_total_ = 0;
    messages_post_gst_ = words_post_gst_ = 0;
    by_type_.clear();
    near_miss_ = NearMiss{};
  }

 private:
  std::uint64_t messages_total_ = 0;
  std::uint64_t words_total_ = 0;
  std::uint64_t messages_post_gst_ = 0;
  std::uint64_t words_post_gst_ = 0;
  std::vector<std::uint64_t> by_type_;  // indexed by PayloadTypeId
  NearMiss near_miss_;
};

}  // namespace valcon::sim
