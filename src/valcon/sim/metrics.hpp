// Complexity accounting, exactly as defined in Section 3.1 of the paper:
//
//   "The message complexity of E is the number of messages sent by correct
//    processes during [GST, infinity)."
//
// Communication complexity counts words instead (footnote 4). Totals over
// the whole execution (including pre-GST and faulty senders) are also kept
// for diagnostics.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "valcon/common.hpp"

namespace valcon::sim {

class Metrics {
 public:
  void on_send(bool sender_correct, bool post_gst, std::size_t words,
               const char* type_name) {
    ++messages_total_;
    words_total_ += words;
    if (sender_correct && post_gst) {
      ++messages_post_gst_;
      words_post_gst_ += words;
      by_type_[type_name] += 1;
    }
  }

  /// Messages sent by correct processes at/after GST (paper's metric).
  [[nodiscard]] std::uint64_t message_complexity() const {
    return messages_post_gst_;
  }
  /// Words sent by correct processes at/after GST (paper's footnote 4).
  [[nodiscard]] std::uint64_t communication_complexity() const {
    return words_post_gst_;
  }
  [[nodiscard]] std::uint64_t messages_total() const { return messages_total_; }
  [[nodiscard]] std::uint64_t words_total() const { return words_total_; }

  /// Post-GST correct-sender message counts per payload type.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& by_type() const {
    return by_type_;
  }

  void reset() {
    messages_total_ = words_total_ = 0;
    messages_post_gst_ = words_post_gst_ = 0;
    by_type_.clear();
  }

 private:
  std::uint64_t messages_total_ = 0;
  std::uint64_t words_total_ = 0;
  std::uint64_t messages_post_gst_ = 0;
  std::uint64_t words_post_gst_ = 0;
  std::map<std::string, std::uint64_t> by_type_;
};

}  // namespace valcon::sim
