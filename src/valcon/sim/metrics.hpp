// Complexity accounting, exactly as defined in Section 3.1 of the paper:
//
//   "The message complexity of E is the number of messages sent by correct
//    processes during [GST, infinity)."
//
// Communication complexity counts words instead (footnote 4). Totals over
// the whole execution (including pre-GST and faulty senders) are also kept
// for diagnostics.
//
// The per-type breakdown is counted by interned PayloadTypeId — a dense
// array increment on the per-message hot path — and materialized back into
// the historical string-keyed map only when by_type() is asked for, so the
// reporting format is unchanged while on_send performs no string
// construction, no tree lookup and (steady-state) no allocation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/sim/payload.hpp"

namespace valcon::sim {

class Metrics {
 public:
  void on_send(bool sender_correct, bool post_gst, std::size_t words,
               PayloadTypeId type) {
    ++messages_total_;
    words_total_ += words;
    if (sender_correct && post_gst) {
      ++messages_post_gst_;
      words_post_gst_ += words;
      if (type >= by_type_.size()) by_type_.resize(type + 1, 0);
      ++by_type_[type];
    }
  }

  /// Messages sent by correct processes at/after GST (paper's metric).
  [[nodiscard]] std::uint64_t message_complexity() const {
    return messages_post_gst_;
  }
  /// Words sent by correct processes at/after GST (paper's footnote 4).
  [[nodiscard]] std::uint64_t communication_complexity() const {
    return words_post_gst_;
  }
  [[nodiscard]] std::uint64_t messages_total() const { return messages_total_; }
  [[nodiscard]] std::uint64_t words_total() const { return words_total_; }

  /// Post-GST correct-sender message counts per payload type, materialized
  /// lazily from the interned counters. Types never seen (count zero) are
  /// absent, exactly as with the old string-keyed map; the sum of the
  /// values equals message_complexity().
  [[nodiscard]] std::map<std::string, std::uint64_t> by_type() const {
    std::map<std::string, std::uint64_t> out;
    // One registry snapshot instead of a locked name_of per id (sweeps
    // materialize this once per cell, from many threads).
    const std::vector<std::string> names = PayloadTypeRegistry::names();
    for (PayloadTypeId id = 0; id < by_type_.size(); ++id) {
      if (by_type_[id] != 0) {
        out[names[id]] += by_type_[id];
      }
    }
    return out;
  }

  void reset() {
    messages_total_ = words_total_ = 0;
    messages_post_gst_ = words_post_gst_ = 0;
    by_type_.clear();
  }

 private:
  std::uint64_t messages_total_ = 0;
  std::uint64_t words_total_ = 0;
  std::uint64_t messages_post_gst_ = 0;
  std::uint64_t words_post_gst_ = 0;
  std::vector<std::uint64_t> by_type_;  // indexed by PayloadTypeId
};

}  // namespace valcon::sim
