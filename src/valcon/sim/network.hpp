// The partially synchronous network of Dwork-Lynch-Stockmeyer [42], as used
// in Section 3.1:
//
//  * there is a Global Stabilization Time (GST) and a bound delta such that
//    every message sent by a correct process at time s is delivered by
//    max(s, GST) + delta;
//  * before GST the adversary schedules deliveries arbitrarily (within that
//    bound); after GST it still chooses delays, but only within delta.
//
// The adversary surface: per-link holds (delay a link until a given time,
// clipped to the model bound), permanent link blocks (allowed only for
// faulty senders — the network is reliable between correct processes), and
// a custom delay policy hook.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "valcon/common.hpp"
#include "valcon/sim/rng.hpp"

namespace valcon::sim {

struct NetworkConfig {
  Time gst = 0.0;
  Time delta = 1.0;
  /// Minimum network latency (> 0 keeps event ordering sane).
  Time min_delay = 1e-3;
  /// Default cap on adversarial pre-GST delays when no hold is installed.
  /// The model allows anything up to (GST - s) + delta; experiments that
  /// need long pre-GST delays install holds explicitly.
  Time default_pre_gst_cap = 3.0;
};

class Network {
 public:
  Network(NetworkConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Delay all (from -> to) deliveries so they arrive no earlier than
  /// `until` (clipped to the model bound max(send, GST) + delta).
  void hold(ProcessId from, ProcessId to, Time until) {
    holds_[{from, to}] = until;
  }

  /// Symmetric hold between two groups of processes.
  template <typename GroupA, typename GroupB>
  void hold_between(const GroupA& a, const GroupB& b, Time until) {
    for (ProcessId x : a) {
      for (ProcessId y : b) {
        hold(x, y, until);
        hold(y, x, until);
      }
    }
  }

  /// Permanently drop messages from `from` to `to`. Only legal when `from`
  /// is faulty (the caller asserts that; the network is reliable between
  /// correct processes).
  void block(ProcessId from, ProcessId to) { blocked_.insert({from, to}); }

  /// Optional custom policy: returns the desired arrival time for a message
  /// (before clamping to the model bounds), or nullopt to use the default.
  using DelayPolicy = std::function<std::optional<Time>(
      ProcessId from, ProcessId to, Time send_time)>;
  void set_delay_policy(DelayPolicy policy) { policy_ = std::move(policy); }

  /// Returns the arrival time for a message, or nullopt if dropped.
  [[nodiscard]] std::optional<Time> arrival_time(ProcessId from, ProcessId to,
                                                 Time send_time) {
    if (blocked_.count({from, to}) != 0) return std::nullopt;
    const Time lower = send_time + config_.min_delay;
    const Time upper = model_bound(send_time);

    Time arrival;
    std::optional<Time> custom;
    if (policy_) custom = policy_(from, to, send_time);
    if (custom.has_value()) {
      arrival = *custom;
    } else if (send_time >= config_.gst) {
      arrival = send_time + rng_.uniform(config_.min_delay, config_.delta);
    } else {
      // The cap is clamped to `lower` so a pre-GST cap smaller than the
      // minimum latency (an adversary profile starving the window shut)
      // degrades to prompt delivery instead of an inverted uniform range.
      const Time cap = std::max(
          lower, std::min(upper, send_time + config_.default_pre_gst_cap));
      arrival = rng_.uniform(lower, cap);
    }
    if (auto it = holds_.find({from, to}); it != holds_.end()) {
      arrival = std::max(arrival, it->second);
    }
    if (arrival < lower) arrival = lower;
    if (arrival > upper) arrival = upper;
    return arrival;
  }

  /// max(s, GST) + delta: the latest the model permits delivery.
  [[nodiscard]] Time model_bound(Time send_time) const {
    return std::max(send_time, config_.gst) + config_.delta;
  }

 private:
  NetworkConfig config_;
  Rng rng_;
  std::map<std::pair<ProcessId, ProcessId>, Time> holds_;
  std::set<std::pair<ProcessId, ProcessId>> blocked_;
  DelayPolicy policy_;
};

}  // namespace valcon::sim
