// The partially synchronous network of Dwork-Lynch-Stockmeyer [42], as used
// in Section 3.1:
//
//  * there is a Global Stabilization Time (GST) and a bound delta such that
//    every message sent by a correct process at time s is delivered by
//    max(s, GST) + delta;
//  * before GST the adversary schedules deliveries arbitrarily (within that
//    bound); after GST it still chooses delays, but only within delta.
//
// The adversary surface: per-link holds (delay a link until a given time,
// clipped to the model bound), permanent link blocks (allowed only for
// faulty senders — the network is reliable between correct processes), and
// a custom delay policy hook.
//
// The per-link state lives in dense n x n arrays sized at construction (n
// is small and fixed for a run), so the per-message arrival_time query is
// branch-and-index only — no tree walks, no allocation. Installing a hold
// or block validates the ids; arrival_time assumes in-range ids (its only
// caller, Simulator::do_send, validates the destination and owns the
// source).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/sim/rng.hpp"

namespace valcon::sim {

struct NetworkConfig {
  Time gst = 0.0;
  Time delta = 1.0;
  /// Minimum network latency (> 0 keeps event ordering sane).
  Time min_delay = 1e-3;
  /// Default cap on adversarial pre-GST delays when no hold is installed.
  /// The model allows anything up to (GST - s) + delta; experiments that
  /// need long pre-GST delays install holds explicitly.
  Time default_pre_gst_cap = 3.0;
};

class Network {
 public:
  /// `n` fixes the process-id space [0, n) the per-link tables cover.
  Network(NetworkConfig config, int n, std::uint64_t seed)
      : config_(config),
        n_(n),
        rng_(seed),
        holds_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
               kNoHold),
        blocked_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                 0) {}

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Delay all (from -> to) deliveries so they arrive no earlier than
  /// `until` (clipped to the model bound max(send, GST) + delta). A later
  /// hold on the same link overwrites the earlier one. Throws
  /// std::out_of_range for ids outside [0, n).
  void hold(ProcessId from, ProcessId to, Time until) {
    holds_[link(from, to)] = until;
  }

  /// Symmetric hold between two groups of processes.
  template <typename GroupA, typename GroupB>
  void hold_between(const GroupA& a, const GroupB& b, Time until) {
    for (ProcessId x : a) {
      for (ProcessId y : b) {
        hold(x, y, until);
        hold(y, x, until);
      }
    }
  }

  /// Permanently drop messages from `from` to `to`. Only legal when `from`
  /// is faulty (the caller asserts that; the network is reliable between
  /// correct processes). Throws std::out_of_range for ids outside [0, n).
  void block(ProcessId from, ProcessId to) { blocked_[link(from, to)] = 1; }

  /// Optional custom policy: returns the desired arrival time for a message
  /// (before clamping to the model bounds), or nullopt to use the default.
  using DelayPolicy = std::function<std::optional<Time>(
      ProcessId from, ProcessId to, Time send_time)>;
  void set_delay_policy(DelayPolicy policy) { policy_ = std::move(policy); }

  /// Returns the arrival time for a message, or nullopt if dropped.
  /// Hot path: `from` and `to` must be in [0, n) — Simulator::do_send
  /// guarantees this.
  [[nodiscard]] std::optional<Time> arrival_time(ProcessId from, ProcessId to,
                                                 Time send_time) {
    const std::size_t idx = static_cast<std::size_t>(from) *
                                static_cast<std::size_t>(n_) +
                            static_cast<std::size_t>(to);
    if (blocked_[idx] != 0) return std::nullopt;
    const Time lower = send_time + config_.min_delay;
    const Time upper = model_bound(send_time);

    Time arrival;
    std::optional<Time> custom;
    if (policy_) custom = policy_(from, to, send_time);
    if (custom.has_value()) {
      arrival = *custom;
    } else if (send_time >= config_.gst) {
      arrival = send_time + rng_.uniform(config_.min_delay, config_.delta);
    } else {
      // The cap is clamped to `lower` so a pre-GST cap smaller than the
      // minimum latency (an adversary profile starving the window shut)
      // degrades to prompt delivery instead of an inverted uniform range.
      const Time cap = std::max(
          lower, std::min(upper, send_time + config_.default_pre_gst_cap));
      arrival = rng_.uniform(lower, cap);
    }
    // kNoHold is -infinity, so an un-held link takes the max unchanged —
    // the same semantics as the old map lookup, without the branch.
    arrival = std::max(arrival, holds_[idx]);
    if (arrival < lower) arrival = lower;
    if (arrival > upper) arrival = upper;
    return arrival;
  }

  /// max(s, GST) + delta: the latest the model permits delivery.
  [[nodiscard]] Time model_bound(Time send_time) const {
    return std::max(send_time, config_.gst) + config_.delta;
  }

 private:
  static constexpr Time kNoHold = -std::numeric_limits<Time>::infinity();

  /// Row-major (from, to) index with validation — the mutation surface
  /// (hold/block) goes through here; arrival_time trusts its caller.
  [[nodiscard]] std::size_t link(ProcessId from, ProcessId to) const {
    if (from < 0 || from >= n_ || to < 0 || to >= n_) {
      throw std::out_of_range("link (" + std::to_string(from) + " -> " +
                              std::to_string(to) + ") outside [0, " +
                              std::to_string(n_) + ")^2");
    }
    return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(to);
  }

  NetworkConfig config_;
  int n_;
  Rng rng_;
  std::vector<Time> holds_;           // n x n, kNoHold when un-held
  std::vector<std::uint8_t> blocked_;  // n x n, 0 / 1
  DelayPolicy policy_;
};

}  // namespace valcon::sim
