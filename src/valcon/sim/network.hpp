// The partially synchronous network of Dwork-Lynch-Stockmeyer [42], as used
// in Section 3.1:
//
//  * there is a Global Stabilization Time (GST) and a bound delta such that
//    every message sent by a correct process at time s is delivered by
//    max(s, GST) + delta;
//  * before GST the adversary schedules deliveries arbitrarily (within that
//    bound); after GST it still chooses delays, but only within delta.
//
// The adversary surface: per-link holds (delay a link until a given time,
// clipped to the model bound), permanent link blocks (allowed only for
// faulty senders — the network is reliable between correct processes), and
// a custom delay policy hook.
//
// The per-link state is hybrid: below kDenseThreshold the tables are dense
// n x n arrays (branch-and-index on the hot path, exactly as before), above
// it they are hash maps keyed by the same row-major link index so memory is
// O(active links) instead of O(n^2) at n in the thousands. Either way the
// arrays/maps are allocated lazily on the first hold()/block() — a clean
// run (no adversary) pays zero bytes and skips the lookup entirely via the
// any_holds_/any_blocks_ flags. An absent entry means "no hold" (kNoHold,
// -infinity) / "not blocked", so the two backends are observably identical;
// tests force Storage::kSparse at small n and compare verbatim against
// dense. arrival_time assumes in-range ids (its only caller,
// Simulator::do_send, validates the destination and owns the source);
// installing a hold or block validates the ids.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/sim/rng.hpp"

namespace valcon::sim {

struct NetworkConfig {
  Time gst = 0.0;
  Time delta = 1.0;
  /// Minimum network latency (> 0 keeps event ordering sane).
  Time min_delay = 1e-3;
  /// Default cap on adversarial pre-GST delays when no hold is installed.
  /// The model allows anything up to (GST - s) + delta; experiments that
  /// need long pre-GST delays install holds explicitly.
  Time default_pre_gst_cap = 3.0;
};

class Network {
 public:
  /// Link-table backend. kAuto picks dense arrays at n <= kDenseThreshold
  /// and sparse hash storage above; the explicit values exist so property
  /// tests can run the sparse structure at small n in lockstep against the
  /// dense one. Both are lazy: nothing is allocated until the first
  /// hold()/block().
  enum class Storage { kAuto, kDense, kSparse };

  /// Largest n for which kAuto keeps the dense n x n tables. 64 x 64 links
  /// is 40 KiB of hold floors — cheap; past that the quadratic tables
  /// dominate a run's footprint while sweeps rarely touch more than a few
  /// hundred links.
  static constexpr int kDenseThreshold = 64;

  /// `n` fixes the process-id space [0, n) the per-link tables cover.
  Network(NetworkConfig config, int n, std::uint64_t seed,
          Storage storage = Storage::kAuto)
      : config_(config),
        n_(n),
        rng_(seed),
        dense_(storage == Storage::kDense ||
               (storage == Storage::kAuto && n <= kDenseThreshold)) {}

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Delay all (from -> to) deliveries so they arrive no earlier than
  /// `until` (clipped to the model bound max(send, GST) + delta). A later
  /// hold on the same link overwrites the earlier one. Throws
  /// std::out_of_range for ids outside [0, n).
  void hold(ProcessId from, ProcessId to, Time until) {
    const std::size_t idx = link(from, to);
    if (dense_) {
      if (holds_.empty()) {
        holds_.assign(
            static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
            kNoHold);
      }
      holds_[idx] = until;
    } else {
      sparse_holds_[idx] = until;
    }
    any_holds_ = true;
  }

  /// Symmetric hold between two groups of processes.
  template <typename GroupA, typename GroupB>
  void hold_between(const GroupA& a, const GroupB& b, Time until) {
    for (ProcessId x : a) {
      for (ProcessId y : b) {
        hold(x, y, until);
        hold(y, x, until);
      }
    }
  }

  /// Permanently drop messages from `from` to `to`. Only legal when `from`
  /// is faulty (the caller asserts that; the network is reliable between
  /// correct processes). Throws std::out_of_range for ids outside [0, n).
  void block(ProcessId from, ProcessId to) {
    const std::size_t idx = link(from, to);
    if (dense_) {
      if (blocked_.empty()) {
        blocked_.assign(
            static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 0);
      }
      blocked_[idx] = 1;
    } else {
      sparse_blocked_.insert(idx);
    }
    any_blocks_ = true;
  }

  /// Optional custom policy: returns the desired arrival time for a message
  /// (before clamping to the model bounds), or nullopt to use the default.
  using DelayPolicy = std::function<std::optional<Time>(
      ProcessId from, ProcessId to, Time send_time)>;
  void set_delay_policy(DelayPolicy policy) { policy_ = std::move(policy); }

  /// Returns the arrival time for a message, or nullopt if dropped.
  /// Hot path: `from` and `to` must be in [0, n) — Simulator::do_send
  /// guarantees this.
  [[nodiscard]] std::optional<Time> arrival_time(ProcessId from, ProcessId to,
                                                 Time send_time) {
    const std::size_t idx = static_cast<std::size_t>(from) *
                                static_cast<std::size_t>(n_) +
                            static_cast<std::size_t>(to);
    // The blocked check must stay ahead of any Rng consumption: a dropped
    // message draws no randomness, and the pinned sweeps depend on that.
    if (any_blocks_ && is_blocked(idx)) return std::nullopt;
    const Time lower = send_time + config_.min_delay;
    const Time upper = model_bound(send_time);

    Time arrival;
    std::optional<Time> custom;
    if (policy_) custom = policy_(from, to, send_time);
    if (custom.has_value()) {
      arrival = *custom;
    } else if (send_time >= config_.gst) {
      arrival = send_time + rng_.uniform(config_.min_delay, config_.delta);
    } else {
      // The cap is clamped to `lower` so a pre-GST cap smaller than the
      // minimum latency (an adversary profile starving the window shut)
      // degrades to prompt delivery instead of an inverted uniform range.
      const Time cap = std::max(
          lower, std::min(upper, send_time + config_.default_pre_gst_cap));
      arrival = rng_.uniform(lower, cap);
    }
    // kNoHold is -infinity, so an un-held link takes the max unchanged;
    // skipping the lookup when no hold was ever installed is therefore
    // observably identical, not a shortcut.
    if (any_holds_) arrival = std::max(arrival, hold_floor(idx));
    if (arrival < lower) arrival = lower;
    if (arrival > upper) arrival = upper;
    return arrival;
  }

  /// max(s, GST) + delta: the latest the model permits delivery.
  [[nodiscard]] Time model_bound(Time send_time) const {
    return std::max(send_time, config_.gst) + config_.delta;
  }

  /// True when this instance uses the dense n x n tables (kAuto resolved at
  /// construction). Exposed for the hybrid-equivalence tests.
  [[nodiscard]] bool dense_storage() const { return dense_; }

  /// Bytes held by the link tables right now — 0 until the first
  /// hold()/block(), O(active links) in sparse mode. Approximate for the
  /// hash backend (buckets are not counted); used by tests and benches to
  /// pin the lazy/sparse behavior, not for accounting.
  [[nodiscard]] std::size_t link_table_bytes() const {
    std::size_t bytes = holds_.capacity() * sizeof(Time) +
                        blocked_.capacity() * sizeof(std::uint8_t);
    bytes += sparse_holds_.size() * (sizeof(std::size_t) + sizeof(Time));
    bytes += sparse_blocked_.size() * sizeof(std::size_t);
    return bytes;
  }

 private:
  static constexpr Time kNoHold = -std::numeric_limits<Time>::infinity();

  [[nodiscard]] bool is_blocked(std::size_t idx) const {
    if (dense_) return blocked_[idx] != 0;
    return sparse_blocked_.count(idx) != 0;
  }

  [[nodiscard]] Time hold_floor(std::size_t idx) const {
    if (dense_) return holds_[idx];
    const auto it = sparse_holds_.find(idx);
    return it == sparse_holds_.end() ? kNoHold : it->second;
  }

  /// Row-major (from, to) index with validation — the mutation surface
  /// (hold/block) goes through here; arrival_time trusts its caller.
  [[nodiscard]] std::size_t link(ProcessId from, ProcessId to) const {
    if (from < 0 || from >= n_ || to < 0 || to >= n_) {
      throw std::out_of_range("link (" + std::to_string(from) + " -> " +
                              std::to_string(to) + ") outside [0, " +
                              std::to_string(n_) + ")^2");
    }
    return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(to);
  }

  NetworkConfig config_;
  int n_;
  Rng rng_;
  bool dense_;
  bool any_holds_ = false;   // false => no hold lookup at all
  bool any_blocks_ = false;  // false => no blocked lookup at all
  std::vector<Time> holds_;            // dense backend, lazily sized n x n
  std::vector<std::uint8_t> blocked_;  // dense backend, lazily sized n x n
  // Sparse backend: keyed by the same row-major link index. Lookup-only on
  // the hot path (never iterated), so unordered storage stays deterministic.
  std::unordered_map<std::size_t, Time> sparse_holds_;
  std::unordered_set<std::size_t> sparse_blocked_;
  DelayPolicy policy_;
};

}  // namespace valcon::sim
