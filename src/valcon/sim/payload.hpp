// Message payloads.
//
// Every protocol message derives from Payload. Payloads are immutable and
// shared: the network hands the same object to every recipient. size_words()
// implements the paper's communication-complexity accounting (footnote 4):
// a word holds a constant number of values, hashes and signatures, so e.g. a
// vector of x proposals costs x words and a threshold signature costs 1.
#pragma once

#include <cstddef>
#include <memory>

namespace valcon::sim {

class Payload {
 public:
  virtual ~Payload() = default;

  /// Stable name used for metrics breakdowns (e.g. "quad/propose").
  [[nodiscard]] virtual const char* type_name() const = 0;

  /// Size in words for communication-complexity accounting.
  [[nodiscard]] virtual std::size_t size_words() const { return 1; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace valcon::sim
