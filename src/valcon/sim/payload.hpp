// Message payloads.
//
// Every protocol message derives from Payload. Payloads are immutable and
// shared: the network hands the same object to every recipient. size_words()
// implements the paper's communication-complexity accounting (footnote 4):
// a word holds a constant number of values, hashes and signatures, so e.g. a
// vector of x proposals costs x words and a threshold signature costs 1.
//
// Payload types are interned: every distinct type_name() maps to a small
// dense PayloadTypeId, which is what Metrics counts by on the per-message
// hot path (an array index instead of a string-keyed map lookup). Concrete
// payload classes declare both name and id with VALCON_PAYLOAD_TYPE, which
// caches the interned id in a function-local static so the registry is
// consulted once per type, not once per message. Wrapper payloads (MuxMsg,
// equivocation envelopes) forward type_id() to the wrapped message, exactly
// as they forward type_name().
//
// make_payload allocates from the current PayloadSlab when a simulator is
// dispatching (see payload_slab.hpp) — the allocation-free fast path — and
// falls back to make_shared outside any simulation scope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "valcon/sim/payload_slab.hpp"

namespace valcon::sim {

/// Dense index identifying an interned payload type name.
using PayloadTypeId = std::uint32_t;

/// Process-global intern table for payload type names. Registration is
/// mutex-protected (payload classes intern once, from a function-local
/// static initializer); readers get copies, so concurrent sweeps never
/// observe a torn table.
class PayloadTypeRegistry {
 public:
  /// Returns the id for `name`, interning it on first sight. Two classes
  /// using the same name share an id — the same aliasing the string-keyed
  /// map had.
  [[nodiscard]] static PayloadTypeId intern(const char* name);

  /// The name interned for `id`. Throws std::out_of_range for an id no
  /// intern() call has returned.
  [[nodiscard]] static std::string name_of(PayloadTypeId id);

  /// Snapshot of every interned name, indexed by id — one lock acquisition
  /// for consumers (Metrics::by_type) that would otherwise call name_of
  /// once per id.
  [[nodiscard]] static std::vector<std::string> names();

  /// Number of interned types so far.
  [[nodiscard]] static std::uint32_t size();
};

class Payload {
 public:
  virtual ~Payload() = default;

  /// Stable name used for metrics breakdowns (e.g. "quad/propose").
  [[nodiscard]] virtual const char* type_name() const = 0;

  /// Interned id of type_name(), used by the per-message metrics path.
  /// This default resolves through the registry on every call; hot payload
  /// classes override it via VALCON_PAYLOAD_TYPE, which caches the id.
  [[nodiscard]] virtual PayloadTypeId type_id() const {
    return PayloadTypeRegistry::intern(type_name());
  }

  /// Size in words for communication-complexity accounting.
  [[nodiscard]] virtual std::size_t size_words() const { return 1; }

  /// Protocol-composition routing hook: a multiplexer envelope returns its
  /// child index, every other payload returns kNotWrapped. This is what
  /// lets Mux route a delivery with one predictable virtual call instead
  /// of a dynamic_cast per nesting level. Reserved for sim::MuxMsg — other
  /// payloads must not override it (Mux static_casts on a non-negative
  /// answer, and asserts the type in debug builds).
  static constexpr std::int32_t kNotWrapped = -1;
  [[nodiscard]] virtual std::int32_t mux_child() const { return kNotWrapped; }
};

/// Declares type_name() and a cached-id type_id() for a concrete payload
/// class. The function-local static interns the name exactly once (C++
/// guarantees thread-safe initialization), so per-message calls cost one
/// guarded load.
#define VALCON_PAYLOAD_TYPE(name_literal)                                \
  [[nodiscard]] const char* type_name() const override {                 \
    return (name_literal);                                               \
  }                                                                      \
  [[nodiscard]] ::valcon::sim::PayloadTypeId type_id() const override {  \
    static const ::valcon::sim::PayloadTypeId cached_type_id =           \
        ::valcon::sim::PayloadTypeRegistry::intern(name_literal);        \
    return cached_type_id;                                               \
  }

using PayloadPtr = std::shared_ptr<const Payload>;

template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  if (PayloadSlab* slab = PayloadSlab::current()) {
    return std::allocate_shared<T>(SlabAllocator<T>(slab),
                                   std::forward<Args>(args)...);
  }
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

}  // namespace valcon::sim
