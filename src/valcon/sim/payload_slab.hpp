// Per-run payload arena.
//
// Every simulated message allocates at least one Payload (often several:
// each Mux layer wraps the inner message in a MuxMsg), and with the default
// make_shared path each of those is a heap allocation on the per-message
// hot path. A PayloadSlab replaces that with a bump-pointer block allocator
// plus per-size free lists: blocks of 64 KiB are carved out 16 bytes at a
// time, and freed payloads are recycled through an intrusive free list, so
// the steady state performs no heap allocation at all and peak memory is
// bounded by the number of *live* payloads, not the number of messages.
//
// Ownership and lifetime: the slab is reference-counted. Every payload
// allocated from it keeps a shared_ptr to the slab inside its control block
// (see SlabAllocator), so a PayloadPtr that escapes the Simulator — a test
// stashing a delivered message, say — keeps the backing memory alive until
// the last reference drops. A slab is single-threaded by construction: it
// is owned by one Simulator, which runs on one thread.
//
// The thread-local "current" slab is how make_payload finds the arena
// without any signature change: Simulator::step opens a PayloadSlab::Scope
// around event dispatch, and payload construction inside protocol callbacks
// lands in that simulator's slab. Outside any scope (test fixtures building
// payloads by hand), make_payload falls back to make_shared.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace valcon::sim {

class PayloadSlab {
 public:
  /// Size of the blocks carved into payload allocations.
  static constexpr std::size_t kBlockBytes = 64 * 1024;
  /// Allocation granularity and guaranteed alignment.
  static constexpr std::size_t kGranularity = 16;
  /// Requests above this go straight to operator new (none of the library
  /// payloads comes close; this is a safety valve for exotic user types).
  static constexpr std::size_t kMaxPooledBytes = 1024;

  PayloadSlab(const PayloadSlab&) = delete;
  PayloadSlab& operator=(const PayloadSlab&) = delete;

  /// Owner handle: the Simulator constructs one, and its destructor
  /// retires the slab — which self-destructs only once the last live
  /// payload is gone, so payloads that escape their simulator stay valid.
  class Handle {
   public:
    Handle() : slab_(new PayloadSlab()) {}
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { slab_->retire(); }
    [[nodiscard]] PayloadSlab* get() const { return slab_; }
    [[nodiscard]] PayloadSlab& operator*() const { return *slab_; }

   private:
    PayloadSlab* slab_;
  };

  [[nodiscard]] void* allocate(std::size_t bytes) {
    ++live_;
    const std::size_t need = round_up(bytes);
    if (need > kMaxPooledBytes) {
      ++oversize_allocs_;
      return ::operator new(bytes);
    }
    const std::size_t bucket = need / kGranularity;
    if (FreeNode* node = free_lists_[bucket]) {
      free_lists_[bucket] = node->next;
      return node;
    }
    if (remaining_ < need) grow();
    void* p = bump_;
    bump_ += need;
    remaining_ -= need;
    return p;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t need = round_up(bytes);
    if (need > kMaxPooledBytes) {
      ::operator delete(p);
    } else {
      const std::size_t bucket = need / kGranularity;
      auto* node = static_cast<FreeNode*>(p);
      node->next = free_lists_[bucket];
      free_lists_[bucket] = node;
    }
    // Last payload of a retired slab: nothing can reach the slab anymore.
    if (--live_ == 0 && retired_) delete this;
  }

  /// Heap allocations this slab has performed: one per 64 KiB block plus
  /// one per oversize request. The bench divides this by the message count
  /// to demonstrate the (amortized) zero-allocation steady state.
  [[nodiscard]] std::uint64_t blocks_allocated() const {
    return static_cast<std::uint64_t>(blocks_.size());
  }
  [[nodiscard]] std::uint64_t oversize_allocs() const {
    return oversize_allocs_;
  }

  /// The slab new payloads are currently allocated from (nullptr outside
  /// any Scope).
  [[nodiscard]] static PayloadSlab* current() { return t_current_; }

  /// Binds `slab` as the current arena for the enclosing scope. Scopes
  /// nest (a simulator stepping inside another simulator's callback — the
  /// strategy test-beds do this — restores the outer arena on exit). Only
  /// a raw pointer to the owner's shared_ptr is stored, so entering and
  /// leaving a scope touches no reference count.
  class Scope {
   public:
    explicit Scope(PayloadSlab* slab) : prev_(t_current_) {
      t_current_ = slab;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { t_current_ = prev_; }

   private:
    PayloadSlab* prev_;
  };

 private:
  friend class Handle;

  PayloadSlab() = default;
  ~PayloadSlab() {
    for (void* block : blocks_) ::operator delete(block);
  }

  /// Called by the owning Handle: self-destructs now if no payload is
  /// live, otherwise defers to the last deallocate().
  void retire() noexcept {
    if (live_ == 0) {
      delete this;
    } else {
      retired_ = true;
    }
  }

  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(FreeNode) <= kGranularity);

  static constexpr std::size_t round_up(std::size_t bytes) {
    return (bytes + kGranularity - 1) & ~(kGranularity - 1);
  }

  void grow() {
    blocks_.push_back(::operator new(kBlockBytes));
    bump_ = static_cast<std::byte*>(blocks_.back());
    remaining_ = kBlockBytes;
  }

  static inline thread_local PayloadSlab* t_current_ = nullptr;

  std::vector<void*> blocks_;
  std::byte* bump_ = nullptr;
  std::size_t remaining_ = 0;
  // One list head per kGranularity-sized class up to kMaxPooledBytes.
  FreeNode* free_lists_[kMaxPooledBytes / kGranularity + 1] = {};
  std::uint64_t oversize_allocs_ = 0;
  std::uint64_t live_ = 0;
  bool retired_ = false;
};

/// Allocator adapter handing allocate_shared's single combined
/// (control block + payload) allocation to a PayloadSlab. It holds a raw
/// slab pointer — copying it is free, which matters because the shared_ptr
/// machinery copies the allocator several times per allocation — and the
/// slab's live-payload count (allocate/deallocate pairs) is what keeps the
/// slab alive until the last payload is gone.
template <typename T>
class SlabAllocator {
 public:
  using value_type = T;

  explicit SlabAllocator(PayloadSlab* slab) : slab_(slab) {}
  template <typename U>
  SlabAllocator(const SlabAllocator<U>& other) : slab_(other.slab_) {}

  [[nodiscard]] T* allocate(std::size_t count) {
    if constexpr (alignof(T) > PayloadSlab::kGranularity) {
      return static_cast<T*>(
          ::operator new(count * sizeof(T), std::align_val_t(alignof(T))));
    } else {
      return static_cast<T*>(slab_->allocate(count * sizeof(T)));
    }
  }
  void deallocate(T* p, std::size_t count) noexcept {
    if constexpr (alignof(T) > PayloadSlab::kGranularity) {
      ::operator delete(p, std::align_val_t(alignof(T)));
    } else {
      slab_->deallocate(p, count * sizeof(T));
    }
  }

  template <typename U>
  [[nodiscard]] bool operator==(const SlabAllocator<U>& other) const {
    return slab_ == other.slab_;
  }

  PayloadSlab* slab_;
};

}  // namespace valcon::sim
