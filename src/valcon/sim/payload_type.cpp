#include "valcon/sim/payload.hpp"

#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace valcon::sim {

namespace {

struct InternTable {
  std::mutex mu;
  // Point lookups only — never iterated.  Intern order (and thus id
  // assignment) depends on which payload class a run constructs first,
  // which concurrent sweeps do not agree on; anything serialized must
  // re-key by name (see Metrics::by_type).
  std::unordered_map<std::string, PayloadTypeId> ids;
  std::vector<std::string> names;  // id -> name, in intern order
};

// Leaked intentionally: payload classes intern from function-local statics
// whose destruction order relative to a file-scope table is unspecified.
InternTable& table() {
  static auto* t = new InternTable();
  return *t;
}

}  // namespace

PayloadTypeId PayloadTypeRegistry::intern(const char* name) {
  InternTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  const auto [it, inserted] =
      t.ids.try_emplace(name, static_cast<PayloadTypeId>(t.names.size()));
  if (inserted) t.names.push_back(it->first);
  return it->second;
}

std::string PayloadTypeRegistry::name_of(PayloadTypeId id) {
  InternTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  if (id >= t.names.size()) {
    throw std::out_of_range("payload type id " + std::to_string(id) +
                            " has not been interned (only " +
                            std::to_string(t.names.size()) + " types)");
  }
  return t.names[id];
}

std::vector<std::string> PayloadTypeRegistry::names() {
  InternTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  return t.names;
}

std::uint32_t PayloadTypeRegistry::size() {
  InternTable& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  return static_cast<std::uint32_t>(t.names.size());
}

}  // namespace valcon::sim
