// Process and Context: the interface between protocol code and the
// simulator.
//
// A Process is a deterministic state machine driven by three callbacks
// (start, message delivery, timer expiry), mirroring the computational model
// of Section 3.1. All interaction with the environment happens through the
// Context passed to each callback: sending, broadcasting, timers, the PKI
// and the per-process RNG. Context is abstract so that Byzantine shims and
// protocol multiplexers can interpose transparently.
#pragma once

#include <cstdint>

#include "valcon/common.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/payload.hpp"
#include "valcon/sim/rng.hpp"

namespace valcon::sim {

class Context {
 public:
  virtual ~Context() = default;

  [[nodiscard]] virtual Time now() const = 0;
  [[nodiscard]] virtual ProcessId id() const = 0;
  [[nodiscard]] virtual int n() const = 0;
  [[nodiscard]] virtual int t() const = 0;
  /// Post-GST message-delay bound delta (known to processes, per the model).
  [[nodiscard]] virtual Time delta() const = 0;

  /// Point-to-point authenticated send.
  virtual void send(ProcessId to, PayloadPtr payload) = 0;

  /// Best-effort broadcast: a plain send to every process, self included.
  /// (This is the paper's `beb` instance [23]: no guarantees with a faulty
  /// sender beyond what the network gives.)
  virtual void broadcast(const PayloadPtr& payload) {
    for (ProcessId p = 0; p < n(); ++p) send(p, payload);
  }

  /// Schedules on_timer(tag) after `delay` local time. Timers cannot be
  /// cancelled; protocols must guard stale timers with their own state.
  virtual void set_timer(Time delay, std::uint64_t tag) = 0;

  /// Near-miss reporting channel: protocol code calls this when it forms a
  /// quorum certificate, passing the vote margin over the strongest
  /// competing digest and the total votes the losers collected. The
  /// simulator folds reports from correct processes into its Metrics
  /// (sim/metrics.hpp: NearMiss); the default is a no-op so shims,
  /// multiplexers and test contexts need not care.
  virtual void note_quorum(int /*margin*/, std::uint64_t /*conflicting*/) {}

  [[nodiscard]] virtual const crypto::KeyRegistry& keys() const = 0;
  [[nodiscard]] virtual const crypto::Signer& signer() const = 0;
  [[nodiscard]] virtual Rng& rng() = 0;
};

class Process {
 public:
  virtual ~Process() = default;

  virtual void on_start(Context&) {}
  virtual void on_message(Context&, ProcessId /*from*/, const PayloadPtr&) {}
  virtual void on_timer(Context&, std::uint64_t /*tag*/) {}
};

/// Context that forwards every operation to a base context. Byzantine shims
/// and protocol multiplexers derive from it and override only the calls they
/// interpose on (usually send()). broadcast() is intentionally NOT forwarded:
/// the inherited default loops over this->send(), so a send() override sees
/// every broadcast copy individually.
class ForwardingContext : public Context {
 public:
  explicit ForwardingContext(Context& base) : base_(base) {}

  [[nodiscard]] Time now() const override { return base_.now(); }
  [[nodiscard]] ProcessId id() const override { return base_.id(); }
  [[nodiscard]] int n() const override { return base_.n(); }
  [[nodiscard]] int t() const override { return base_.t(); }
  [[nodiscard]] Time delta() const override { return base_.delta(); }
  void send(ProcessId to, PayloadPtr payload) override {
    base_.send(to, std::move(payload));
  }
  void set_timer(Time delay, std::uint64_t tag) override {
    base_.set_timer(delay, tag);
  }
  void note_quorum(int margin, std::uint64_t conflicting) override {
    base_.note_quorum(margin, conflicting);
  }
  [[nodiscard]] const crypto::KeyRegistry& keys() const override {
    return base_.keys();
  }
  [[nodiscard]] const crypto::Signer& signer() const override {
    return base_.signer();
  }
  [[nodiscard]] Rng& rng() override { return base_.rng(); }

 protected:
  [[nodiscard]] Context& base() { return base_; }
  [[nodiscard]] const Context& base() const { return base_; }

 private:
  Context& base_;
};

}  // namespace valcon::sim
