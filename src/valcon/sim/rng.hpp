// Deterministic pseudo-random number generation (splitmix64).
//
// All nondeterminism in a simulation (network delays, tie-breaking in
// adversary policies) flows from one seeded stream, so every execution is
// reproducible from (config, seed).
#pragma once

#include <cstdint>

#include "valcon/common.hpp"

namespace valcon::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [lo, hi].
  double uniform(double lo, double hi) {
    const double unit =
        static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    return lo + unit * (hi - lo);
  }

  /// Derives an independent stream (for per-process RNGs).
  Rng fork() { return Rng(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace valcon::sim
