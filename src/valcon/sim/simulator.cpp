#include "valcon/sim/simulator.hpp"

#include <stdexcept>
#include <string>

namespace valcon::sim {

class Simulator::ProcessContext final : public Context {
 public:
  ProcessContext(Simulator* sim, ProcessId id, std::uint64_t rng_seed)
      : sim_(sim),
        id_(id),
        signer_(sim->keys_.signer_for(id)),
        rng_(rng_seed) {}

  [[nodiscard]] Time now() const override { return sim_->now_; }
  [[nodiscard]] ProcessId id() const override { return id_; }
  [[nodiscard]] int n() const override { return sim_->config_.n; }
  [[nodiscard]] int t() const override { return sim_->config_.t; }
  [[nodiscard]] Time delta() const override {
    return sim_->config_.net.delta;
  }

  void send(ProcessId to, PayloadPtr payload) override {
    sim_->do_send(id_, to, std::move(payload));
  }

  void set_timer(Time delay, std::uint64_t tag) override {
    sim_->do_set_timer(id_, delay, tag);
  }

  [[nodiscard]] const crypto::KeyRegistry& keys() const override {
    return sim_->keys_;
  }
  [[nodiscard]] const crypto::Signer& signer() const override {
    return signer_;
  }
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  Simulator* sim_;
  ProcessId id_;
  crypto::Signer signer_;
  Rng rng_;
};

Simulator::~Simulator() = default;

namespace {

// Runs before any other member is constructed (config_ is the first member),
// so an invalid configuration never reaches KeyRegistry & co.
SimConfig validated(SimConfig config) {
  if (config.n <= 0 || config.t < 0 || config.t >= config.n) {
    throw std::invalid_argument("SimConfig requires 0 <= t < n, got n=" +
                                std::to_string(config.n) +
                                " t=" + std::to_string(config.t));
  }
  return config;
}

}  // namespace

Simulator::Simulator(SimConfig config)
    : config_(validated(config)),
      network_(config.net, config.seed * 0x9e3779b1ULL + 17),
      keys_(config.n, config.threshold_k > 0 ? config.threshold_k
                                             : config.n - config.t,
            config.seed),
      processes_(static_cast<std::size_t>(config.n)),
      contexts_(static_cast<std::size_t>(config.n)),
      faulty_(static_cast<std::size_t>(config.n), false),
      started_(static_cast<std::size_t>(config.n), false) {}

std::size_t Simulator::checked_index(ProcessId id) const {
  if (id < 0 || id >= config_.n) {
    throw std::out_of_range("process id " + std::to_string(id) +
                            " outside [0, " + std::to_string(config_.n) + ")");
  }
  return static_cast<std::size_t>(id);
}

void Simulator::add_process(ProcessId id, std::unique_ptr<Process> process,
                            Time start_time) {
  const std::size_t idx = checked_index(id);
  if (process == nullptr) {
    throw std::invalid_argument("add_process: null process for id " +
                                std::to_string(id));
  }
  if (processes_[idx] != nullptr) {
    throw std::invalid_argument("add_process: duplicate process id " +
                                std::to_string(id));
  }
  processes_[idx] = std::move(process);
  contexts_[idx] = std::make_unique<ProcessContext>(
      this, id, config_.seed * 1000003ULL + static_cast<std::uint64_t>(id));
  queue_.push(Event{start_time, next_seq_++, EventKind::kStart, id, -1,
                    nullptr, 0});
}

void Simulator::mark_faulty(ProcessId id) { faulty_[checked_index(id)] = true; }

std::uint64_t Simulator::run(Time horizon) {
  std::uint64_t events = 0;
  while (step(horizon)) ++events;
  return events;
}

bool Simulator::step(Time horizon) {
  if (queue_.empty()) return false;
  const Event event = queue_.top();
  if (event.time > horizon) return false;
  queue_.pop();
  now_ = std::max(now_, event.time);
  dispatch(event);
  return true;
}

void Simulator::dispatch(const Event& event) {
  const auto idx = static_cast<std::size_t>(event.target);
  Process* process = processes_[idx].get();
  if (process == nullptr) return;
  Context& ctx = *contexts_[idx];
  switch (event.kind) {
    case EventKind::kStart:
      started_[idx] = true;
      process->on_start(ctx);
      break;
    case EventKind::kDeliver:
      if (!started_[idx]) return;  // model: no steps before local start
      process->on_message(ctx, event.from, event.payload);
      break;
    case EventKind::kTimer:
      if (!started_[idx]) return;
      process->on_timer(ctx, event.tag);
      break;
  }
}

void Simulator::do_send(ProcessId from, ProcessId to, PayloadPtr payload) {
  assert(to >= 0 && to < config_.n);
  const bool correct = !faulty_[static_cast<std::size_t>(from)];
  const bool post_gst = now_ >= config_.net.gst;
  metrics_.on_send(correct, post_gst, payload->size_words(),
                   payload->type_name());
  const std::optional<Time> arrival = network_.arrival_time(from, to, now_);
  if (!arrival.has_value()) {
    assert(!correct && "the network is reliable between correct processes");
    return;
  }
  queue_.push(Event{*arrival, next_seq_++, EventKind::kDeliver, to, from,
                    std::move(payload), 0});
}

void Simulator::do_set_timer(ProcessId pid, Time delay, std::uint64_t tag) {
  assert(delay >= 0);
  queue_.push(Event{now_ + delay, next_seq_++, EventKind::kTimer, pid, -1,
                    nullptr, tag});
}

}  // namespace valcon::sim
