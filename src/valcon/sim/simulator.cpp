#include "valcon/sim/simulator.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace valcon::sim {

class Simulator::ProcessContext final : public Context {
 public:
  ProcessContext(Simulator* sim, ProcessId id, std::uint64_t rng_seed)
      : sim_(sim),
        id_(id),
        signer_(sim->keys_->signer_for(id)),
        rng_(rng_seed) {}

  [[nodiscard]] Time now() const override { return sim_->now_; }
  [[nodiscard]] ProcessId id() const override { return id_; }
  [[nodiscard]] int n() const override { return sim_->config_.n; }
  [[nodiscard]] int t() const override { return sim_->config_.t; }
  [[nodiscard]] Time delta() const override {
    return sim_->config_.net.delta;
  }

  void send(ProcessId to, PayloadPtr payload) override {
    sim_->do_send(id_, to, std::move(payload));
  }

  void set_timer(Time delay, std::uint64_t tag) override {
    sim_->do_set_timer(id_, delay, tag);
  }

  void note_quorum(int margin, std::uint64_t conflicting) override {
    // Only correct processes feed the near-miss counters: a faulty shim's
    // inner stacks (equivocation faces etc.) form QCs of their own, and
    // counting those would report the adversary's private state as a
    // near-miss observed by the system.
    if (sim_->faulty_[static_cast<std::size_t>(id_)] == 0) {
      sim_->metrics_.on_quorum(margin, conflicting);
    }
  }

  [[nodiscard]] const crypto::KeyRegistry& keys() const override {
    return *sim_->keys_;
  }
  [[nodiscard]] const crypto::Signer& signer() const override {
    return signer_;
  }
  [[nodiscard]] Rng& rng() override { return rng_; }

 private:
  Simulator* sim_;
  ProcessId id_;
  crypto::Signer signer_;
  Rng rng_;
};

Simulator::~Simulator() = default;

namespace {

int resolved_threshold(const SimConfig& config) {
  return config.threshold_k > 0 ? config.threshold_k : config.n - config.t;
}

// Runs before any other member is constructed (config_ is the first member),
// so an invalid configuration never reaches KeyRegistry & co. Every later
// member initializer reads config_, never the constructor argument.
SimConfig validated(SimConfig config) {
  if (config.n <= 0 || config.t < 0 || config.t >= config.n) {
    throw std::invalid_argument("SimConfig requires 0 <= t < n, got n=" +
                                std::to_string(config.n) +
                                " t=" + std::to_string(config.t));
  }
  if (config.keys != nullptr) {
    const int k = resolved_threshold(config);
    if (config.keys->n() != config.n || config.keys->threshold_k() != k ||
        config.keys->seed() != config.seed) {
      throw std::invalid_argument(
          "SimConfig.keys was built for (n=" +
          std::to_string(config.keys->n()) +
          ", k=" + std::to_string(config.keys->threshold_k()) +
          ", seed=" + std::to_string(config.keys->seed()) +
          "), not this config's (n=" + std::to_string(config.n) +
          ", k=" + std::to_string(k) +
          ", seed=" + std::to_string(config.seed) + ")");
    }
  }
  return config;
}

}  // namespace

Simulator::Simulator(SimConfig config)
    : config_(validated(std::move(config))),
      network_(config_.net, config_.n, config_.seed * 0x9e3779b1ULL + 17),
      keys_(config_.keys != nullptr
                ? config_.keys
                : std::make_shared<const crypto::KeyRegistry>(
                      config_.n, resolved_threshold(config_), config_.seed)),
      processes_(static_cast<std::size_t>(config_.n)),
      contexts_(static_cast<std::size_t>(config_.n)),
      faulty_(static_cast<std::size_t>(config_.n), false),
      started_(static_cast<std::size_t>(config_.n), false),
      queue_(config_.net.delta > 0 ? config_.net.delta / 16.0
                                   : 1.0 / 16.0) {}

std::size_t Simulator::checked_index(ProcessId id) const {
  if (id < 0 || id >= config_.n) {
    throw std::out_of_range("process id " + std::to_string(id) +
                            " outside [0, " + std::to_string(config_.n) + ")");
  }
  return static_cast<std::size_t>(id);
}

void Simulator::add_process(ProcessId id, std::unique_ptr<Process> process,
                            Time start_time) {
  const std::size_t idx = checked_index(id);
  if (process == nullptr) {
    throw std::invalid_argument("add_process: null process for id " +
                                std::to_string(id));
  }
  if (processes_[idx] != nullptr) {
    throw std::invalid_argument("add_process: duplicate process id " +
                                std::to_string(id));
  }
  processes_[idx] = std::move(process);
  contexts_[idx] = std::make_unique<ProcessContext>(
      this, id, config_.seed * 1000003ULL + static_cast<std::uint64_t>(id));
  queue_.push(Event{start_time, Event::pack(next_seq_++, EventKind::kStart),
                    0, id, -1});
}

void Simulator::mark_faulty(ProcessId id) { faulty_[checked_index(id)] = 1; }

std::uint64_t Simulator::run(Time horizon) {
  // One slab scope for the whole loop instead of one per event.
  const PayloadSlab::Scope slab_scope(slab_.get());
  std::uint64_t events = 0;
  while (step_unscoped(horizon)) ++events;
  return events;
}

bool Simulator::step(Time horizon) {
  // Payloads constructed by the protocol callbacks come from this
  // simulator's slab.
  const PayloadSlab::Scope slab_scope(slab_.get());
  return step_unscoped(horizon);
}

bool Simulator::step_unscoped(Time horizon) {
  Event event{};
  if (!queue_.pop_until(horizon, event)) return false;
  now_ = std::max(now_, event.time);
  dispatch(event);
  return true;
}

void Simulator::dispatch(const Event& event) {
  const auto idx = static_cast<std::size_t>(event.target);
  Process* process = processes_[idx].get();
  switch (event.kind()) {
    case EventKind::kStart:
      if (process == nullptr) return;
      started_[idx] = 1;
      process->on_start(*contexts_[idx]);
      break;
    case EventKind::kDeliver: {
      // The slot is recycled before the handler runs (the payload itself is
      // moved out first), so a throwing handler never leaks a slot.
      PayloadPtr payload = std::move(payload_slots_[event.aux]);
      free_slots_.push_back(event.aux);
      if (process == nullptr || started_[idx] == 0) return;
      process->on_message(*contexts_[idx], event.from, payload);
      break;
    }
    case EventKind::kTimer:
      if (process == nullptr || started_[idx] == 0) return;
      process->on_timer(*contexts_[idx], event.aux);
      break;
  }
}

void Simulator::do_send(ProcessId from, ProcessId to, PayloadPtr payload) {
  // A Byzantine shim handing the network an out-of-range destination must
  // fail loudly in every build type: the assert this replaces compiled out
  // of release builds and left faulty_/payload_slots_ indexing as UB.
  if (to < 0 || to >= config_.n) {
    throw std::out_of_range("send to process id " + std::to_string(to) +
                            " outside [0, " + std::to_string(config_.n) + ")");
  }
  const bool correct = faulty_[static_cast<std::size_t>(from)] == 0;
  const bool post_gst = now_ >= config_.net.gst;
  metrics_.on_send(correct, post_gst, payload->size_words(),
                   payload->type_id());
  const std::optional<Time> arrival = network_.arrival_time(from, to, now_);
  if (!arrival.has_value()) {
    assert(!correct && "the network is reliable between correct processes");
    return;
  }
  const std::uint64_t slot = acquire_slot(std::move(payload));
  queue_.push(Event{*arrival, Event::pack(next_seq_++, EventKind::kDeliver),
                    slot, to, from});
}

void Simulator::do_set_timer(ProcessId pid, Time delay, std::uint64_t tag) {
  assert(delay >= 0);
  queue_.push(Event{now_ + delay, Event::pack(next_seq_++, EventKind::kTimer),
                    tag, pid, -1});
}

}  // namespace valcon::sim
