// Deterministic discrete-event simulator for the model of Section 3.1.
//
// A deployment is n Process instances (some marked faulty), one Network, one
// KeyRegistry and one Metrics sink. Events (start, delivery, timer) execute
// in (time, insertion) order, so every run is a deterministic function of
// (configuration, seed) — which is what lets the tests replay adversarial
// executions like those constructed in the paper's proofs.
//
// The event queue is a calendar queue over 32-byte trivially-copyable
// events: payloads live in a slot pool on the side (an event carries a slot
// index), so queue operations move plain structs and never touch a
// shared_ptr reference count, and push/pop are O(1) amortized whatever the
// number of in-flight events. Payload allocation itself goes through the
// simulator's PayloadSlab (see payload_slab.hpp); together with the
// interned-id Metrics and the flat-array Network this makes the
// steady-state per-message path (do_send -> arrival_time -> on_send ->
// queue push/pop) free of heap allocation.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/metrics.hpp"
#include "valcon/sim/network.hpp"
#include "valcon/sim/payload_slab.hpp"
#include "valcon/sim/process.hpp"

namespace valcon::sim {

struct SimConfig {
  int n = 4;
  int t = 1;
  NetworkConfig net;
  std::uint64_t seed = 1;
  /// Threshold k for the (k, n)-threshold signature scheme; defaults to
  /// n - t as used by Quad and vector dissemination.
  int threshold_k = -1;
  /// Optional pre-built key registry to share across simulators (the
  /// registry is an immutable pure function of (n, threshold_k, seed), so
  /// sweeps reuse one instance across every cell with the same triple —
  /// see harness::shared_key_registry). Must match this config's (n,
  /// resolved threshold_k, seed); the constructor throws otherwise. When
  /// null, the simulator builds its own.
  std::shared_ptr<const crypto::KeyRegistry> keys;
};

class Simulator {
 public:
  explicit Simulator(SimConfig config);
  ~Simulator();  // out of line: ProcessContext is an incomplete type here

  /// Installs the process with id `id`, starting at local time
  /// `start_time` (all correct processes must start by GST, per the model).
  /// Throws std::out_of_range for ids outside [0, n) and
  /// std::invalid_argument for a duplicate id or a null process.
  void add_process(ProcessId id, std::unique_ptr<Process> process,
                   Time start_time = 0.0);

  /// Throws std::out_of_range for ids outside [0, n).
  void mark_faulty(ProcessId id);
  [[nodiscard]] bool is_faulty(ProcessId id) const {
    return faulty_[checked_index(id)] != 0;
  }

  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const crypto::KeyRegistry& keys() const { return *keys_; }
  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

  /// The payload arena backing make_payload during this simulator's
  /// dispatch (exposed for allocation accounting in benches/tests).
  [[nodiscard]] const PayloadSlab& payload_slab() const { return *slab_; }

  /// Runs until the event queue drains or simulated time exceeds `horizon`.
  /// Returns the number of events processed.
  std::uint64_t run(Time horizon = 1e18);

  /// Processes a single event; returns false when the queue is empty or the
  /// next event is beyond `horizon`.
  bool step(Time horizon = 1e18);

  /// True when the event queue is empty — i.e. a run that stopped did so
  /// because it drained, not because a horizon cut it with events pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  enum class EventKind : std::uint8_t { kStart, kDeliver, kTimer };

  struct Event {
    Time time;
    /// (insertion sequence << 2) | kind: one word both breaks time ties by
    /// insertion order and carries the event kind, keeping the struct at
    /// 32 bytes (two per cache line for the queue's sort/copy loops).
    std::uint64_t seq_kind;
    std::uint64_t aux;  // kTimer: the tag; kDeliver: payload slot index
    ProcessId target;
    ProcessId from;  // kDeliver only

    [[nodiscard]] EventKind kind() const {
      return static_cast<EventKind>(seq_kind & 3);
    }
    [[nodiscard]] static std::uint64_t pack(std::uint64_t seq, EventKind k) {
      return (seq << 2) | static_cast<std::uint64_t>(k);
    }
  };
  static_assert(std::is_trivially_copyable_v<Event>);

  /// Calendar (ladder) event queue: exact (time, seq) pop order — the
  /// same strict total order the old std::priority_queue comparator
  /// induced, so every execution is bit-for-bit unchanged — at O(1)
  /// amortized push/pop whatever the number of in-flight events. A binary
  /// heap pays ~log(n) data-dependent branch mispredictions per operation,
  /// which dominated the hot path once a few hundred events were in
  /// flight.
  ///
  /// Near-future events land in a ring of kBuckets buckets of width
  /// `width_` covering [base_, base_ + span). Buckets are sorted lazily:
  /// a push is a plain append, and a bucket is sorted (ascending (time,
  /// seq)) once, when the pop cursor reaches it — so dense buckets cost
  /// O(log k) comparisons per event in one tight std::sort instead of an
  /// O(k) insertion shift per push. The rare push into the bucket
  /// currently being consumed (an immediate delivery) inserts into the
  /// unconsumed suffix in place. Events beyond the window go to an
  /// overflow min-heap and are re-bucketed when the window advances; the
  /// advance jumps straight to the overflow minimum, so sparse schedules
  /// (long timers) cost no empty-bucket scans.
  class EventQueue {
   public:
    explicit EventQueue(Time bucket_width)
        : width_(bucket_width > 0 ? bucket_width : 1.0),
          inv_width_(1.0 / width_) {}

    [[nodiscard]] bool empty() const { return size_ == 0; }

    /// Pops the next event into `out` unless the queue is empty or the
    /// next event is beyond `horizon` — one cursor walk for what would
    /// otherwise be a top() + pop() pair on the hottest line of step().
    [[nodiscard]] bool pop_until(Time horizon, Event& out) {
      if (size_ == 0) return false;
      advance_to_next();
      Bucket& bucket = ring_[cursor_];
      const Event& next = bucket.events[bucket.consumed];
      if (next.time > horizon) return false;
      out = next;
      if (++bucket.consumed == bucket.events.size()) {
        bucket.events.clear();  // keeps capacity: no steady-state alloc
        bucket.consumed = 0;
        bucket.sorted = false;
      }
      --size_;
      return true;
    }

    void push(const Event& event) {
      ++size_;
      // Defensive clamp: events are never scheduled before the current
      // cursor bucket (time >= now), but floating-point division on an
      // exact bucket boundary may round one bucket low.
      if (event.time >= window_end_) {
        overflow_.push_back(event);
        std::push_heap(overflow_.begin(), overflow_.end(), after);
        return;
      }
      Bucket& bucket = ring_[bucket_index(event.time)];
      if (bucket.sorted) {
        insert_sorted(bucket, event);
      } else {
        bucket.events.push_back(event);
      }
    }

   private:
    static constexpr std::size_t kBuckets = 128;

    struct Bucket {
      std::vector<Event> events;
      std::size_t consumed = 0;  // prefix already popped (implies sorted)
      bool sorted = false;       // cursor has reached this bucket
    };

    [[nodiscard]] static bool before(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.seq_kind < b.seq_kind;
    }
    [[nodiscard]] static bool after(const Event& a, const Event& b) {
      return before(b, a);
    }

    static void insert_sorted(Bucket& bucket, const Event& event) {
      std::vector<Event>& v = bucket.events;
      // Almost every event is the latest of its bucket; walk back only on
      // the rare inversion.
      std::size_t i = v.size();
      v.push_back(event);
      while (i > bucket.consumed && before(event, v[i - 1])) {
        v[i] = v[i - 1];
        --i;
      }
      v[i] = event;
    }

    /// Moves cursor_ to the bucket holding the global minimum, advancing
    /// the window over the overflow heap as needed. Pre: !empty().
    void advance_to_next() {
      for (;;) {
        while (cursor_ < kBuckets) {
          Bucket& bucket = ring_[cursor_];
          if (bucket.consumed < bucket.events.size()) {
            if (!bucket.sorted) {
              std::sort(bucket.events.begin(), bucket.events.end(), before);
              bucket.sorted = true;
            }
            return;
          }
          ++cursor_;
        }
        // Ring drained: jump the window to the overflow minimum and
        // re-bucket everything that now falls inside it.
        const Time min_time = overflow_.front().time;
        const double laps = std::floor((min_time - base_) / span());
        base_ += (laps > 0 ? laps : 0) * span();
        window_end_ = base_ + span();
        cursor_ = 0;
        while (!overflow_.empty() && overflow_.front().time < window_end_) {
          std::pop_heap(overflow_.begin(), overflow_.end(), after);
          ring_[bucket_index(overflow_.back().time)].events.push_back(
              overflow_.back());
          overflow_.pop_back();
        }
      }
    }

    /// Ring index for a time inside the window, defensive against
    /// floating-point rounding at bucket boundaries: an index that rounds
    /// below the cursor (or below base_ after a rebase) is clamped to the
    /// cursor bucket, whose exact in-bucket sort keeps the global (time,
    /// seq) order intact.
    [[nodiscard]] std::size_t bucket_index(Time time) const {
      // Multiplying by the reciprocal instead of dividing saves real time
      // per push; the mapping stays monotonic in `time`, which is all
      // bucket assignment needs (exact order is restored per bucket).
      const Time offset = time - base_;
      std::size_t index =
          offset > 0 ? static_cast<std::size_t>(offset * inv_width_) : 0;
      if (index >= kBuckets) index = kBuckets - 1;
      if (index < cursor_) index = cursor_;
      return index;
    }

    [[nodiscard]] Time span() const {
      return width_ * static_cast<Time>(kBuckets);
    }

    Time width_;
    Time inv_width_;
    Time base_ = 0.0;
    Time window_end_ = width_ * static_cast<Time>(kBuckets);
    std::size_t cursor_ = 0;
    std::size_t size_ = 0;
    Bucket ring_[kBuckets];
    std::vector<Event> overflow_;  // min-heap on (time, seq)
  };

  class ProcessContext;

  /// Validates `id` against [0, n); throws std::out_of_range otherwise.
  [[nodiscard]] std::size_t checked_index(ProcessId id) const;

  /// step() without installing the slab scope (run() installs one for
  /// the whole loop).
  bool step_unscoped(Time horizon);

  void dispatch(const Event& event);
  void do_send(ProcessId from, ProcessId to, PayloadPtr payload);
  void do_set_timer(ProcessId pid, Time delay, std::uint64_t tag);

  [[nodiscard]] std::uint64_t acquire_slot(PayloadPtr payload) {
    if (!free_slots_.empty()) {
      const std::uint64_t slot = free_slots_.back();
      free_slots_.pop_back();
      payload_slots_[slot] = std::move(payload);
      return slot;
    }
    payload_slots_.push_back(std::move(payload));
    return payload_slots_.size() - 1;
  }

  SimConfig config_;
  PayloadSlab::Handle slab_;
  Network network_;
  Metrics metrics_;
  std::shared_ptr<const crypto::KeyRegistry> keys_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<ProcessContext>> contexts_;
  std::vector<std::uint8_t> faulty_;   // byte flags: the hot path reads these
  std::vector<std::uint8_t> started_;
  EventQueue queue_;
  std::vector<PayloadPtr> payload_slots_;   // in-flight delivery payloads
  std::vector<std::uint64_t> free_slots_;   // recycled payload_slots_ indices
  std::uint64_t next_seq_ = 0;
  Time now_ = 0.0;
};

}  // namespace valcon::sim
