// Deterministic discrete-event simulator for the model of Section 3.1.
//
// A deployment is n Process instances (some marked faulty), one Network, one
// KeyRegistry and one Metrics sink. Events (start, delivery, timer) execute
// in (time, insertion) order, so every run is a deterministic function of
// (configuration, seed) — which is what lets the tests replay adversarial
// executions like those constructed in the paper's proofs.
#pragma once

#include <cassert>
#include <memory>
#include <queue>
#include <vector>

#include "valcon/common.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/sim/metrics.hpp"
#include "valcon/sim/network.hpp"
#include "valcon/sim/process.hpp"

namespace valcon::sim {

struct SimConfig {
  int n = 4;
  int t = 1;
  NetworkConfig net;
  std::uint64_t seed = 1;
  /// Threshold k for the (k, n)-threshold signature scheme; defaults to
  /// n - t as used by Quad and vector dissemination.
  int threshold_k = -1;
};

class Simulator {
 public:
  explicit Simulator(SimConfig config);
  ~Simulator();  // out of line: ProcessContext is an incomplete type here

  /// Installs the process with id `id`, starting at local time
  /// `start_time` (all correct processes must start by GST, per the model).
  /// Throws std::out_of_range for ids outside [0, n) and
  /// std::invalid_argument for a duplicate id or a null process.
  void add_process(ProcessId id, std::unique_ptr<Process> process,
                   Time start_time = 0.0);

  /// Throws std::out_of_range for ids outside [0, n).
  void mark_faulty(ProcessId id);
  [[nodiscard]] bool is_faulty(ProcessId id) const {
    return faulty_[checked_index(id)];
  }

  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const crypto::KeyRegistry& keys() const { return keys_; }
  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

  /// Runs until the event queue drains or simulated time exceeds `horizon`.
  /// Returns the number of events processed.
  std::uint64_t run(Time horizon = 1e18);

  /// Processes a single event; returns false when the queue is empty or the
  /// next event is beyond `horizon`.
  bool step(Time horizon = 1e18);

  /// True when the event queue is empty — i.e. a run that stopped did so
  /// because it drained, not because a horizon cut it with events pending.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  enum class EventKind { kStart, kDeliver, kTimer };

  struct Event {
    Time time;
    std::uint64_t seq;
    EventKind kind;
    ProcessId target;
    ProcessId from;  // kDeliver only
    PayloadPtr payload;
    std::uint64_t tag;  // kTimer only
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  class ProcessContext;

  /// Validates `id` against [0, n); throws std::out_of_range otherwise.
  [[nodiscard]] std::size_t checked_index(ProcessId id) const;

  void dispatch(const Event& event);
  void do_send(ProcessId from, ProcessId to, PayloadPtr payload);
  void do_set_timer(ProcessId pid, Time delay, std::uint64_t tag);

  SimConfig config_;
  Network network_;
  Metrics metrics_;
  crypto::KeyRegistry keys_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<ProcessContext>> contexts_;
  std::vector<bool> faulty_;
  std::vector<bool> started_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  Time now_ = 0.0;
};

}  // namespace valcon::sim
