// Lint fixture: nondeterminism sources the linter must catch.  This file
// is never compiled — it exists to pin valcon_lint.py's behavior (see
// tools/valcon_lint.py --self-test).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double wall_now() {
  const auto tp = std::chrono::system_clock::now();  // lint-expect: wall-clock
  return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

long stamp_seconds() {
  return time(nullptr);  // lint-expect: wall-clock
}

int noisy_roll() {
  std::random_device rd;  // lint-expect: raw-rand
  return static_cast<int>(rd());
}

int libc_roll() {
  return rand() % 6;  // lint-expect: raw-rand
}

const char* build_banner() {
  return "built on " __DATE__ " at " __TIME__;  // lint-expect: build-stamp
}
