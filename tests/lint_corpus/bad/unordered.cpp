// Lint fixture: hash-order iteration and pointer keys.  Never compiled.
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Widget {};

void dump_counts(std::ostream& os) {
  std::unordered_map<std::string, std::uint64_t> counts;
  counts["a"] = 1;
  for (const auto& [name, value] : counts) {  // lint-expect: unordered-iteration
    os << name << value;
  }
}

void walk_members() {
  std::unordered_set<int> members = {1, 2, 3};
  for (auto it = members.begin(); it != members.end(); ++it) {  // lint-expect: unordered-iteration
  }
}

void pointer_keyed() {
  std::map<Widget*, int> ranks;  // lint-expect: pointer-key
  std::unordered_map<const Widget*, int> cache;  // lint-expect: pointer-key
  (void)ranks;
  (void)cache;
}
