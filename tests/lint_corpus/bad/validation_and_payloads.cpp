// Lint fixture: assert-only input validation, undeclared payload identity,
// and suppressions that fail to carry a reason.  Never compiled.
#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "valcon/sim/payload.hpp"

struct Frame {
  int n = 0;
};

Frame parse_frame(const std::vector<unsigned char>& bytes) {
  assert(!bytes.empty());  // lint-expect: assert-validation
  Frame f;
  f.n = bytes[0];
  assert(f.n > 0 && f.n < 64);  // lint-expect: assert-validation
  return f;
}

struct BareMsg final : valcon::sim::Payload {  // lint-expect: payload-type
  int round = 0;
};

// A waiver without a written reason is itself a finding: suppressions are
// part of the audit trail.
// valcon-lint: allow(pointer-key)  // lint-expect: bad-suppression
// valcon-lint: allow(no-such-rule) -- misspelled  // lint-expect: bad-suppression
