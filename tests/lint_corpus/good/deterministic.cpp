// Lint fixture: deterministic counterparts of everything bad/ trips on.
// Never compiled; must produce zero findings.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

// Monotonic host timing (progress reporting, benchmarks) is fine: it is
// not wall-clock and it must never feed serialized output.
double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Identifiers merely *containing* "time(" or "rand" must not trip:
// arrival_time(...) is a lookup, operand/rng are names.
double arrival_time(double base, double delta) { return base + delta; }
int operand_count(int operands) { return operands; }

// Point lookups and membership tests on unordered containers are fine —
// only iteration depends on hash order.
std::uint64_t hit_count(
    const std::unordered_map<std::string, std::uint64_t>& counts,
    const std::string& key) {
  const auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}

// Iteration that must be ordered goes through a sorted materialization,
// exactly like Metrics::by_type().
std::map<std::string, std::uint64_t> sorted_view(
    const std::unordered_map<std::string, std::uint64_t>& counts) {
  return {counts.find("a"), counts.find("a")};
}

// External input gets a real error path; asserts may still guard internal
// invariants in non-parsing functions.
int parse_count(const std::string& text) {
  if (text.empty() || text[0] < '0' || text[0] > '9') {
    throw std::invalid_argument("parse_count: not a digit: " + text);
  }
  return text[0] - '0';
}

// Stable-id keys instead of pointer keys.
struct Entry {
  int id = 0;
};
std::map<int, Entry> by_id;
