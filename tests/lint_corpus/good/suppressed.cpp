// Lint fixture: every rule is waivable with a written reason, on the same
// line or the line directly above.  Never compiled; zero findings.
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "valcon/sim/payload.hpp"

// Log timestamps are presentation, not simulation state; they never feed
// the golden documents.
std::int64_t log_stamp() {
  // valcon-lint: allow(wall-clock) -- log banner timestamp, never serialized
  return std::chrono::system_clock::now().time_since_epoch().count();
}

void debug_dump(const std::unordered_map<std::string, int>& m) {
  long total = 0;
  for (const auto& [k, v] : m) {  // valcon-lint: allow(unordered-iteration) -- order-insensitive sum for a debug counter
    (void)k;
    total += v;
  }
  (void)total;
}

// valcon-lint: allow(payload-type) -- fixture wrapper forwarding identity
struct ForwardingMsg final : valcon::sim::Payload {
  explicit ForwardingMsg(valcon::sim::PayloadPtr m) : inner(std::move(m)) {}
  [[nodiscard]] const char* type_name() const override {
    return inner->type_name();
  }
  valcon::sim::PayloadPtr inner;
};

struct DeclaredMsg final : valcon::sim::Payload {
  VALCON_PAYLOAD_TYPE("fixture/declared")
  int round = 0;
};
