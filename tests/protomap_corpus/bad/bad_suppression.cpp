// Malformed protomap suppressions: an unknown rule name and a marker
// with no ` -- reason`. Both must be flagged; nothing else is wrong
// with this file.
// protomap-expect: bad-suppression
#include "valcon/sim/mini_sim.hpp"

namespace valcon::fixture {

// valcon-protomap: allow(black-holes) -- rule name has a typo
class Quiet {
 public:
  // valcon-protomap: allow(raw-quorum)
  [[nodiscard]] int answer() const { return 42; }
};

}  // namespace valcon::fixture
