// A payload that is broadcast but that no dispatch site handles: every
// delivery is silently dropped. The analyzer must flag MDropped.
// protomap-expect: black-hole
#include "valcon/sim/mini_sim.hpp"

namespace valcon::fixture {

class Beacon {
 public:
  struct MDropped final : sim::Payload {
    explicit MDropped(int v) : value(v) {}
    VALCON_PAYLOAD_TYPE("beacon/dropped")
    int value;
  };

  void announce(sim::Context& ctx) {
    ctx.broadcast(sim::make_payload<MDropped>(1));
  }

  void on_message(sim::Context&, const sim::PayloadPtr&) {
    // No dynamic_cast to MDropped anywhere: the message goes nowhere.
  }
};

}  // namespace valcon::fixture
