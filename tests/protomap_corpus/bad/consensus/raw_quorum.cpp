// Raw quorum arithmetic in protocol code (this file sits under a
// consensus/ directory): vote thresholds spelled as `n - t`, `t + 1`
// or `2*t + 1` instead of the named core/thresholds.hpp helpers. Every
// arithmetic expression touching the fault bound t must be flagged.
// protomap-expect: raw-quorum
#include "valcon/sim/mini_sim.hpp"

namespace valcon::fixture {

class Tally {
 public:
  [[nodiscard]] bool quorum(const sim::Context& ctx, int votes) const {
    return votes >= ctx.n() - ctx.t();
  }

  [[nodiscard]] bool plurality_reached(int votes, int t) const {
    return votes >= t + 1;
  }

  [[nodiscard]] bool byz_quorum_reached(int votes, int t) const {
    return votes >= 2 * t + 1;
  }
};

}  // namespace valcon::fixture
