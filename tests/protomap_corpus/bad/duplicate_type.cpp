// Two payload classes claiming the same wire type string: metrics and
// debugging would conflate them. Both are otherwise conforming (sent
// and handled), so only duplicate-type must fire.
// protomap-expect: duplicate-type
#include "valcon/sim/mini_sim.hpp"

namespace valcon::fixture {

class Echoer {
 public:
  struct MEcho final : sim::Payload {
    explicit MEcho(int v) : value(v) {}
    VALCON_PAYLOAD_TYPE("dup/echo")
    int value;
  };

  void run(sim::Context& ctx) {
    ctx.broadcast(sim::make_payload<MEcho>(1));
  }

  void on_message(sim::Context&, const sim::PayloadPtr& m) {
    if (dynamic_cast<const MEcho*>(m.get()) != nullptr) {
      ++count_;
    }
  }

 private:
  int count_ = 0;
};

class Mirror {
 public:
  struct MEcho final : sim::Payload {
    explicit MEcho(int v) : value(v) {}
    VALCON_PAYLOAD_TYPE("dup/echo")
    int value;
  };

  void run(sim::Context& ctx) {
    ctx.broadcast(sim::make_payload<MEcho>(2));
  }

  void on_message(sim::Context&, const sim::PayloadPtr& m) {
    if (dynamic_cast<const MEcho*>(m.get()) != nullptr) {
      ++count_;
    }
  }

 private:
  int count_ = 0;
};

}  // namespace valcon::fixture
