// A payload class that nobody ever constructs: the wire format drifted
// away from the implementation (or the sender was deleted without its
// message). The analyzer must flag MForgotten and accept MUsed.
// protomap-expect: orphan-payload
#include "valcon/sim/mini_sim.hpp"

namespace valcon::fixture {

class Widget {
 public:
  struct MUsed final : sim::Payload {
    explicit MUsed(int v) : value(v) {}
    VALCON_PAYLOAD_TYPE("widget/used")
    int value;
  };

  struct MForgotten final : sim::Payload {
    explicit MForgotten(int v) : value(v) {}
    VALCON_PAYLOAD_TYPE("widget/forgotten")
    int value;
  };

  void propose(sim::Context& ctx) {
    ctx.broadcast(sim::make_payload<MUsed>(7));
  }

  void on_message(sim::Context&, const sim::PayloadPtr& m) {
    if (const auto* used = dynamic_cast<const MUsed*>(m.get())) {
      last_ = used->value;
    }
  }

 private:
  int last_ = 0;
};

}  // namespace valcon::fixture
