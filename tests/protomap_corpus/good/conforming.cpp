// A fully conforming protocol fragment: every payload has a unique
// wire type, a make_payload construction site and a dynamic_cast
// dispatch site. The analyzer must report nothing.
// protomap-good: orphan-payload black-hole duplicate-type
#include "valcon/sim/mini_sim.hpp"

namespace valcon::fixture {

class PingPong {
 public:
  struct MPing final : sim::Payload {
    explicit MPing(int s) : seq(s) {}
    VALCON_PAYLOAD_TYPE("pp/ping")
    int seq;
  };

  struct MPong final : sim::Payload {
    explicit MPong(int s) : seq(s) {}
    VALCON_PAYLOAD_TYPE("pp/pong")
    int seq;
  };

  void start(sim::Context& ctx) {
    ctx.broadcast(sim::make_payload<MPing>(0));
  }

  void on_message(sim::Context& ctx, sim::ProcessId from,
                  const sim::PayloadPtr& m) {
    if (const auto* ping = dynamic_cast<const MPing*>(m.get())) {
      ctx.send(from, sim::make_payload<MPong>(ping->seq + 1));
      return;
    }
    if (const auto* pong = dynamic_cast<const MPong*>(m.get())) {
      last_seq_ = pong->seq;
    }
  }

 private:
  int last_seq_ = 0;
};

}  // namespace valcon::fixture
