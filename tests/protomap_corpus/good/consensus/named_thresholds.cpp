// Protocol code under a consensus/ directory that spells every vote
// threshold through the named core/thresholds.hpp helpers: the
// raw-quorum rule must stay silent (the arithmetic lives in core/,
// outside the scanned directories).
// protomap-good: raw-quorum
#include "valcon/core/thresholds.hpp"
#include "valcon/sim/mini_sim.hpp"

namespace valcon::fixture {

class Tally {
 public:
  [[nodiscard]] bool quorum(const sim::Context& ctx, int votes) const {
    return votes >= core::quorum_n_minus_t(ctx.n(), ctx.t());
  }

  [[nodiscard]] bool plurality_reached(int votes, int t) const {
    return votes >= core::plurality(t);
  }

  [[nodiscard]] bool byz_quorum_reached(int n, int votes, int t) const {
    return votes >= core::byz_quorum(n, t);
  }
};

}  // namespace valcon::fixture
