// A deliberately unhandled payload (modeled on the real tree's
// GarbagePayload) carrying a well-formed suppression: the black-hole
// rule must honor the allow() and the bad-suppression rule must accept
// its syntax. Zero findings expected.
// protomap-good: black-hole bad-suppression
#include "valcon/sim/mini_sim.hpp"

namespace valcon::fixture {

// valcon-protomap: allow(black-hole) -- fixture: noise nobody should parse
struct MNoise final : sim::Payload {
  explicit MNoise(int w) : words(w) {}
  VALCON_PAYLOAD_TYPE("fixture/noise")
  int words;
};

class Jammer {
 public:
  void jam(sim::Context& ctx) {
    ctx.broadcast(sim::make_payload<MNoise>(3));
  }
};

}  // namespace valcon::fixture
