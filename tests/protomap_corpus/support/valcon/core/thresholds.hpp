#pragma once
// Fixture copy of the named-threshold helpers. Lives under core/ so
// the raw-quorum rule (scoped to consensus/ and bcast/ directories)
// does not scan it, exactly like the real src/valcon/core/thresholds.hpp.

namespace valcon::core {

[[nodiscard]] constexpr int quorum_n_minus_t(int n, int t) { return n - t; }
[[nodiscard]] constexpr int plurality(int t) { return t + 1; }
[[nodiscard]] constexpr int byz_quorum(int, int t) { return 2 * t + 1; }

}  // namespace valcon::core
