#pragma once
// Minimal stand-in for the real valcon/sim payload machinery, just
// enough for the protomap fixture corpus to parse standalone: the
// analyzer keys on the qualified name valcon::sim::Payload, the
// VALCON_PAYLOAD_TYPE macro, make_payload call sites and dynamic_cast
// dispatch sites, all of which this header reproduces in shape.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace valcon::sim {

using ProcessId = int;
using PayloadTypeId = std::uint32_t;

struct PayloadTypeRegistry {
  static PayloadTypeId intern(const char*) { return 0; }
};

struct Payload {
  Payload() = default;
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  virtual ~Payload() = default;
  [[nodiscard]] virtual const char* type_name() const = 0;
  [[nodiscard]] virtual PayloadTypeId type_id() const = 0;
  [[nodiscard]] virtual std::size_t size_words() const { return 1; }
};

using PayloadPtr = std::shared_ptr<const Payload>;

#define VALCON_PAYLOAD_TYPE(name_literal)                              \
  [[nodiscard]] const char* type_name() const override {               \
    return name_literal;                                               \
  }                                                                    \
  [[nodiscard]] PayloadTypeId type_id() const override {               \
    return PayloadTypeRegistry::intern(name_literal);                  \
  }

template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

class Context {
 public:
  virtual ~Context() = default;
  [[nodiscard]] virtual int n() const = 0;
  [[nodiscard]] virtual int t() const = 0;
  virtual void send(ProcessId to, PayloadPtr payload) = 0;
  virtual void broadcast(PayloadPtr payload) = 0;
};

}  // namespace valcon::sim
