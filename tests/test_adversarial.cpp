// Adversarial integration suite: Byzantine equivocation, hostile pre-GST
// scheduling, crash storms and combined faults against every protocol
// stack — validated with the formal execution checker (Termination /
// Agreement / Validity as defined in Sections 3.2-3.3).
#include <gtest/gtest.h>

#include <set>

#include "valcon/core/execution_checker.hpp"
#include "valcon/harness/scenario.hpp"
#include "valcon/lb/partition.hpp"

using namespace valcon;
using namespace valcon::core;
using harness::ScenarioConfig;
using harness::VcKind;

namespace {

/// Runs Universal with a two-faced Byzantine process that plays two full,
/// correct protocol stacks with conflicting proposals (6 towards the lower
/// half, 9 towards the upper) via the "equivocate" adversary strategy. With
/// n > 3t this must never break any property. Going through run_universal
/// (rather than a hand-rolled Simulator loop with a fixed 1e7 horizon) buys
/// the decide-then-grace cutoff: the equivocator's inner stacks can re-arm
/// timers forever, and the cutoff stops the run 10*delta after the last
/// correct decision instead of simulating to the horizon.
ExecutionReport run_split_brain(int n, int t, VcKind kind,
                                std::uint64_t seed) {
  const ProcessId byz = n - 1;
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.seed = seed;
  cfg.vc = kind;
  for (int p = 0; p < n; ++p) cfg.proposals.push_back(p % 2);
  cfg.proposals[static_cast<std::size_t>(byz)] = 6;  // face-0 proposal
  cfg.faults[byz] = harness::Fault::equivocate(9);   // face-1 proposal

  const StrongValidity validity;
  const auto lambda = make_lambda(validity, n, t, {0, 1, 6, 9}, {0, 1, 6, 9});
  const auto result = harness::run_universal(cfg, lambda);
  return check_execution(validity, n, t, cfg.proposals, {byz},
                         result.decisions);
}

}  // namespace

// ------------------------------------------------ split-brain (n > 3t)

class SplitBrainSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitBrainSweep, AllPropertiesSurviveEquivocation) {
  const auto [kind_int, seed_int] = GetParam();
  const auto report = run_split_brain(
      4, 1, static_cast<VcKind>(kind_int), static_cast<std::uint64_t>(seed_int));
  EXPECT_TRUE(report.ok()) << [&] {
    std::string all;
    for (const auto& v : report.violations) all += v + "; ";
    return all;
  }();
}

INSTANTIATE_TEST_SUITE_P(Kinds, SplitBrainSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Range(1, 4)));

TEST(SplitBrain, SevenProcessesAuth) {
  const auto report = run_split_brain(7, 2, VcKind::kAuthenticated, 5);
  EXPECT_TRUE(report.ok());
}

// ------------------------------------------------- hostile pre-GST phase

TEST(LateGst, AuthSurvivesLongAsynchronousPrefix) {
  // GST at 200 delta; before it the adversary delays everything to the
  // model bound on half the links.
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.gst = 200.0;
  cfg.proposals = {1, 0, 1, 0};
  const StrongValidity validity;
  const auto lambda = make_lambda(validity, cfg.n, cfg.t);

  sim::SimConfig sim_cfg;
  sim_cfg.n = cfg.n;
  sim_cfg.t = cfg.t;
  sim_cfg.seed = 3;
  sim_cfg.net.gst = cfg.gst;
  sim::Simulator simulator(sim_cfg);
  std::map<ProcessId, Value> decisions;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    simulator.add_process(
        p, std::make_unique<sim::ComponentHost>(harness::make_universal(
               cfg, cfg.proposals[static_cast<std::size_t>(p)], lambda,
               [&decisions, p](sim::Context&, Value v) { decisions[p] = v; })));
  }
  // Adversarial pre-GST schedule: peer-to-peer delays stretched to the
  // bound on a ring of links.
  for (ProcessId p = 0; p < cfg.n; ++p) {
    simulator.network().hold(p, (p + 1) % cfg.n, cfg.gst);
  }
  simulator.run(1e6);
  const auto report = check_execution(validity, cfg.n, cfg.t, cfg.proposals,
                                      {}, decisions);
  EXPECT_TRUE(report.ok());
  // Nobody may decide "too early" only *because* of asynchrony — but early
  // decision is allowed; what matters is all decisions agree and are valid.
}

TEST(LateGst, EverySeedEveryKind) {
  for (const VcKind kind : {VcKind::kAuthenticated, VcKind::kFast}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ScenarioConfig cfg;
      cfg.n = 4;
      cfg.t = 1;
      cfg.gst = 60.0;
      cfg.seed = seed;
      cfg.vc = kind;
      cfg.horizon = 1e15;
      cfg.proposals = {2, 2, 2, 2};
      const StrongValidity validity;
      const auto result =
          harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
      EXPECT_TRUE(result.all_correct_decided(cfg))
          << to_string(kind) << " seed " << seed;
      EXPECT_EQ(result.common_decision(), std::optional<Value>(2))
          << to_string(kind) << " seed " << seed;
    }
  }
}

// ----------------------------------------------------------- crash storms

class CrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweep, CrashAtArbitraryTimesIsHarmless) {
  // One process crashes at a parameterized time (mid-handshake, mid-Quad,
  // post-decision...). The survivors must still reach valid consensus.
  const double crash_time = 0.5 * GetParam();
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  cfg.proposals = {3, 1, 3, 1};
  cfg.faults[1] = harness::Fault::crash(crash_time);
  const StrongValidity validity;
  const auto result =
      harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
  EXPECT_TRUE(result.all_correct_decided(cfg)) << "crash at " << crash_time;
  EXPECT_TRUE(result.agreement()) << "crash at " << crash_time;
  const auto report =
      check_execution(validity, cfg.n, cfg.t, cfg.proposals,
                      {1}, result.decisions);
  EXPECT_TRUE(report.ok()) << "crash at " << crash_time;
}

INSTANTIATE_TEST_SUITE_P(Times, CrashSweep, ::testing::Range(1, 14));

// ------------------------------------------------- checker self-validation

TEST(ExecutionChecker, FlagsAgreementViolation) {
  const StrongValidity validity;
  const std::map<ProcessId, Value> decisions = {{0, 1}, {2, 0}};
  const auto report =
      check_execution(validity, 3, 1, {1, 1, 0}, {1}, decisions);
  EXPECT_FALSE(report.agreement);
  EXPECT_TRUE(report.termination);
}

TEST(ExecutionChecker, FlagsValidityViolation) {
  const StrongValidity validity;
  // Unanimous 5 but somebody decided 6.
  const std::map<ProcessId, Value> decisions = {{0, 6}, {1, 6}, {2, 6}};
  const auto report =
      check_execution(validity, 3, 1, {5, 5, 5}, {}, decisions);
  EXPECT_FALSE(report.validity);
  EXPECT_TRUE(report.agreement);
  ASSERT_FALSE(report.violations.empty());
}

TEST(ExecutionChecker, FlagsMissingDecision) {
  const StrongValidity validity;
  const std::map<ProcessId, Value> decisions = {{0, 5}};
  const auto report =
      check_execution(validity, 3, 1, {5, 5, 5}, {}, decisions);
  EXPECT_FALSE(report.termination);
}

TEST(ExecutionChecker, RejectsTooManyFaults) {
  const StrongValidity validity;
  const auto report = check_execution(validity, 3, 1, {5, 5, 5}, {0, 1}, {});
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.violations.empty());
}

// --------------------------------------- the paper's own attack, re-used

TEST(PartitionCheckerIntegration, ViolationIsDetectedByChecker) {
  const auto outcome = lb::run_partition_experiment(3, 1, 2);
  ASSERT_TRUE(outcome.agreement_violated);
  const StrongValidity validity;
  const auto report = check_execution(validity, 3, 1, {0, 0, 1}, {1},
                                      outcome.decisions);
  EXPECT_FALSE(report.agreement);
}
