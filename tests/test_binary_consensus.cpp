// Unit tests: the signature-free binary consensus (the "Binary DBFT"
// substrate of Algorithm 3) — agreement, termination, the justified-value
// validity Algorithm 3 depends on, late proposals, silent faults, and
// Byzantine equivocation.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "valcon/consensus/binary_consensus.hpp"
#include "valcon/sim/adversary.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;
using namespace valcon::sim;
using consensus::BinaryConsensus;

namespace {

class BinHost final : public Mux {
 public:
  BinHost(std::optional<bool> input, Time propose_at,
          std::map<ProcessId, bool>* decisions)
      : input_(input), propose_at_(propose_at), decisions_(decisions) {
    bin_ = &make_child<BinaryConsensus>([this](Context& ctx, bool v) {
      decisions_->emplace(ctx.id(), v);
    });
  }

 protected:
  void own_start(Context& ctx) override {
    if (!input_.has_value()) return;
    if (propose_at_ <= 0) {
      bin_->propose(child_context(0), *input_);
    } else {
      set_own_timer(ctx, propose_at_, 1);
    }
  }
  void own_timer(Context&, std::uint64_t) override {
    if (input_.has_value()) bin_->propose(child_context(0), *input_);
  }

 private:
  std::optional<bool> input_;
  Time propose_at_;
  std::map<ProcessId, bool>* decisions_;
  BinaryConsensus* bin_;
};

SimConfig cfg(int n, int t, std::uint64_t seed) {
  SimConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.net.delta = 1.0;
  return c;
}

struct Setup {
  int n;
  int t;
  std::uint64_t seed;
};

std::map<ProcessId, bool> run_binary(
    const Setup& setup, const std::vector<std::optional<bool>>& inputs,
    const std::vector<ProcessId>& silent = {}, Time late_at = 0.0) {
  Simulator sim(cfg(setup.n, setup.t, setup.seed));
  std::map<ProcessId, bool> decisions;
  for (ProcessId p = 0; p < setup.n; ++p) {
    const bool is_silent =
        std::find(silent.begin(), silent.end(), p) != silent.end();
    if (is_silent) {
      sim.mark_faulty(p);
      sim.add_process(p, std::make_unique<SilentProcess>());
      continue;
    }
    sim.add_process(
        p, std::make_unique<ComponentHost>(std::make_unique<BinHost>(
               inputs[static_cast<std::size_t>(p)], late_at, &decisions)));
  }
  sim.run(1e6);
  for (const ProcessId p : silent) decisions.erase(p);
  return decisions;
}

}  // namespace

TEST(BinaryConsensus, UnanimousOneDecidesOne) {
  const auto decisions = run_binary({4, 1, 1}, {true, true, true, true});
  ASSERT_EQ(decisions.size(), 4u);
  for (const auto& [p, v] : decisions) EXPECT_TRUE(v);
}

TEST(BinaryConsensus, UnanimousZeroDecidesZero) {
  const auto decisions = run_binary({4, 1, 2}, {false, false, false, false});
  ASSERT_EQ(decisions.size(), 4u);
  for (const auto& [p, v] : decisions) EXPECT_FALSE(v);
}

TEST(BinaryConsensus, MixedInputsAgreeOnAProposedValue) {
  const auto decisions = run_binary({4, 1, 3}, {true, false, true, false});
  ASSERT_EQ(decisions.size(), 4u);
  std::optional<bool> seen;
  for (const auto& [p, v] : decisions) {
    if (seen.has_value()) EXPECT_EQ(v, *seen);
    seen = v;
  }
}

TEST(BinaryConsensus, JustifiedValidity_AllCorrectZeroByzantineCannotForceOne) {
  // Three correct processes propose 0; the faulty one is silent. The
  // decision must be 0: 1 is never justified (at most t EST(1) senders).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto decisions =
        run_binary({4, 1, seed}, {false, false, false, std::nullopt}, {3});
    ASSERT_EQ(decisions.size(), 3u) << "seed " << seed;
    for (const auto& [p, v] : decisions) EXPECT_FALSE(v) << "seed " << seed;
  }
}

TEST(BinaryConsensus, ToleratesSilentProposer) {
  // P0 proposes round 0; make it silent — rounds must rotate past it.
  const auto decisions =
      run_binary({4, 1, 4}, {std::nullopt, true, true, true}, {0});
  ASSERT_EQ(decisions.size(), 3u);
  for (const auto& [p, v] : decisions) EXPECT_TRUE(v);
}

TEST(BinaryConsensus, LateProposalsStillTerminate) {
  // Algorithm 3 proposes 0s only after n-t instances decided 1: proposals
  // can arrive long after on_start. Delay all proposals by 30 delta.
  const auto decisions = run_binary({4, 1, 5}, {true, true, false, true}, {},
                                    /*late_at=*/30.0);
  ASSERT_EQ(decisions.size(), 4u);
  std::optional<bool> seen;
  for (const auto& [p, v] : decisions) {
    if (seen.has_value()) EXPECT_EQ(v, *seen);
    seen = v;
  }
}

TEST(BinaryConsensus, EquivocatingProcessCannotBreakAgreement) {
  // A two-faced process proposes 0 to one half and 1 to the other.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Simulator sim(cfg(4, 1, seed));
    std::map<ProcessId, bool> decisions;
    sim.mark_faulty(3);
    for (ProcessId p = 0; p < 3; ++p) {
      sim.add_process(
          p, std::make_unique<ComponentHost>(std::make_unique<BinHost>(
                 p % 2 == 0, 0.0, &decisions)));
    }
    std::map<ProcessId, bool> byz_decisions;
    auto face0 = std::make_unique<ComponentHost>(
        std::make_unique<BinHost>(false, 0.0, &byz_decisions));
    auto face1 = std::make_unique<ComponentHost>(
        std::make_unique<BinHost>(true, 0.0, &byz_decisions));
    sim.add_process(3, std::make_unique<TwoFacedProcess>(
                           std::move(face0), std::move(face1),
                           [](ProcessId p) { return p % 2; }));
    sim.run(1e6);
    ASSERT_EQ(decisions.size(), 3u) << "seed " << seed;
    std::optional<bool> seen;
    for (const auto& [p, v] : decisions) {
      if (seen.has_value()) EXPECT_EQ(v, *seen) << "seed " << seed;
      seen = v;
    }
  }
}

// Parameterized sweep: agreement + termination across system sizes, fault
// patterns and schedules.
class BinarySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BinarySweep, AgreementAndTermination) {
  const auto [n, seed_int] = GetParam();
  const int t = (n - 1) / 3;
  const auto seed = static_cast<std::uint64_t>(seed_int);
  std::vector<std::optional<bool>> inputs;
  for (int p = 0; p < n; ++p) inputs.emplace_back((p + seed_int) % 2 == 0);
  std::vector<ProcessId> silent;
  for (int f = 0; f < t; ++f) silent.push_back(n - 1 - f);
  const auto decisions = run_binary({n, t, seed}, inputs, silent);
  ASSERT_EQ(decisions.size(), static_cast<std::size_t>(n - t));
  std::optional<bool> seen;
  for (const auto& [p, v] : decisions) {
    if (seen.has_value()) EXPECT_EQ(v, *seen);
    seen = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinarySweep,
                         ::testing::Combine(::testing::Values(4, 7, 10),
                                            ::testing::Range(1, 6)));
