// Unit tests: Bracha reliable broadcast (Appendix B.2's primitive) and slow
// broadcast (Algorithm 4), driven directly on the simulator.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "valcon/bcast/brb.hpp"
#include "valcon/bcast/slow_broadcast.hpp"
#include "valcon/sim/adversary.hpp"
#include "valcon/sim/component.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;
using namespace valcon::sim;
using bcast::ReliableBroadcast;
using bcast::SlowBroadcast;

namespace {

using Bytes = std::vector<std::uint8_t>;

/// Hosts one BRB instance (sender = 0) and broadcasts at start if sender.
class BrbHost final : public Mux {
 public:
  BrbHost(ProcessId sender, Bytes to_send,
          std::map<ProcessId, Bytes>* delivered)
      : sender_(sender), to_send_(std::move(to_send)), delivered_(delivered) {
    brb_ = &make_child<ReliableBroadcast>(
        sender, [this](Context& ctx, const Bytes& m) {
          (*delivered_)[ctx.id()] = m;
        });
  }

 protected:
  void own_start(Context& ctx) override {
    if (ctx.id() == sender_ && !to_send_.empty()) {
      brb_->broadcast(child_context(0), to_send_);
    }
  }

 private:
  ProcessId sender_;
  Bytes to_send_;
  std::map<ProcessId, Bytes>* delivered_;
  ReliableBroadcast* brb_;
};

/// A Byzantine BRB sender that equivocates: SENDs m0 to low half, m1 to
/// high half, by running two correct BRB faces.
SimConfig cfg(int n, int t, std::uint64_t seed = 1) {
  SimConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.net.delta = 1.0;
  return c;
}

}  // namespace

TEST(Brb, AllCorrectDeliverSendersMessage) {
  Simulator sim(cfg(4, 1));
  std::map<ProcessId, Bytes> delivered;
  const Bytes msg = {1, 2, 3};
  for (ProcessId p = 0; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<BrbHost>(0, p == 0 ? msg : Bytes{},
                                                     &delivered)));
  }
  sim.run();
  ASSERT_EQ(delivered.size(), 4u);
  for (const auto& [pid, m] : delivered) EXPECT_EQ(m, msg);
}

TEST(Brb, SilentSenderNobodyDelivers) {
  Simulator sim(cfg(4, 1));
  std::map<ProcessId, Bytes> delivered;
  sim.mark_faulty(0);
  sim.add_process(0, std::make_unique<SilentProcess>());
  for (ProcessId p = 1; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<BrbHost>(0, Bytes{}, &delivered)));
  }
  sim.run();
  EXPECT_TRUE(delivered.empty());
}

TEST(Brb, EquivocatingSenderCannotSplitDeliveries) {
  // The sender runs two faces broadcasting different messages to the two
  // halves. BRB Consistency: no two correct processes deliver different
  // messages (they may deliver nothing).
  Simulator sim(cfg(4, 1));
  std::map<ProcessId, Bytes> delivered;
  sim.mark_faulty(0);
  auto face0 = std::make_unique<ComponentHost>(
      std::make_unique<BrbHost>(0, Bytes{7}, &delivered));
  auto face1 = std::make_unique<ComponentHost>(
      std::make_unique<BrbHost>(0, Bytes{9}, &delivered));
  sim.add_process(0, std::make_unique<TwoFacedProcess>(
                         std::move(face0), std::move(face1),
                         [](ProcessId p) { return p <= 1 ? 0 : 1; }));
  for (ProcessId p = 1; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<BrbHost>(0, Bytes{}, &delivered)));
  }
  sim.run(1e5);
  delivered.erase(0);
  std::optional<Bytes> seen;
  for (const auto& [pid, m] : delivered) {
    if (seen.has_value()) EXPECT_EQ(m, *seen) << "consistency violated";
    seen = m;
  }
}

TEST(Brb, TotalityFromPartialReadySet) {
  // If one correct process delivers, all correct processes deliver — even
  // when the sender crashes right after its SEND wave reaches only some.
  Simulator sim(cfg(4, 1));
  std::map<ProcessId, Bytes> delivered;
  const Bytes msg = {5};
  auto sender_host = std::make_unique<ComponentHost>(
      std::make_unique<BrbHost>(0, msg, &delivered));
  sim.mark_faulty(0);
  // Crash shortly after start: SEND goes out (t=0), then silence.
  sim.add_process(0, std::make_unique<CrashShim>(std::move(sender_host),
                                                 /*crash_time=*/0.5));
  for (ProcessId p = 1; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<BrbHost>(0, Bytes{}, &delivered)));
  }
  sim.run(1e5);
  delivered.erase(0);
  // Either nobody or everybody (here: everybody, since SEND reached all
  // three correct processes before the crash).
  if (!delivered.empty()) {
    EXPECT_EQ(delivered.size(), 3u);
    for (const auto& [pid, m] : delivered) EXPECT_EQ(m, msg);
  }
}

TEST(Brb, MessageComplexityQuadratic) {
  for (const int n : {4, 7, 10}) {
    Simulator sim(cfg(n, (n - 1) / 3));
    std::map<ProcessId, Bytes> delivered;
    for (ProcessId p = 0; p < n; ++p) {
      sim.add_process(p, std::make_unique<ComponentHost>(
                             std::make_unique<BrbHost>(
                                 0, p == 0 ? Bytes{1} : Bytes{}, &delivered)));
    }
    sim.run();
    // SEND n + ECHO n^2 + READY n^2 (+/- self deliveries).
    EXPECT_LE(sim.metrics().messages_total(),
              static_cast<std::uint64_t>(3 * n * n));
    EXPECT_GE(sim.metrics().messages_total(),
              static_cast<std::uint64_t>(2 * n * n));
  }
}

// -------------------------------------------------------- slow broadcast

namespace {

class SlowHost final : public Mux {
 public:
  SlowHost(bool is_sender, std::map<ProcessId, Time>* deliver_times)
      : is_sender_(is_sender), deliver_times_(deliver_times) {
    slow_ = &make_child<SlowBroadcast>(
        [this](Context& ctx, const Bytes&, ProcessId) {
          deliver_times_->emplace(ctx.id(), ctx.now());
        });
  }

 protected:
  void own_start(Context& ctx) override {
    if (is_sender_) slow_->broadcast(child_context(0), Bytes{42});
  }

 private:
  bool is_sender_;
  std::map<ProcessId, Time>* deliver_times_;
  SlowBroadcast* slow_;
};

}  // namespace

TEST(SlowBroadcast, PacingGrowsWithSenderIndex) {
  // Sender P2 over n = 4 waits delta * 4^2 = 16 between sends: the last
  // recipient hears it no earlier than 3 * 16 = 48.
  Simulator sim(cfg(4, 1));
  std::map<ProcessId, Time> times;
  for (ProcessId p = 0; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<SlowHost>(p == 2, &times)));
  }
  sim.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_GE(times.at(3), 48.0);
  EXPECT_LE(times.at(0), 2.0);  // first recipient hears immediately
}

TEST(SlowBroadcast, SenderZeroIsFast) {
  Simulator sim(cfg(4, 1));
  std::map<ProcessId, Time> times;
  for (ProcessId p = 0; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<SlowHost>(p == 0, &times)));
  }
  sim.run();
  ASSERT_EQ(times.size(), 4u);
  // P0 waits only delta between sends: everyone hears within ~n*delta.
  for (const auto& [pid, at] : times) EXPECT_LE(at, 5.0);
}
