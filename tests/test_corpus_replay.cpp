// Replays the committed adversary-search regression corpus
// (tests/corpus/*.json, path baked in as VALCON_CORPUS_DIR). Each cell is
// reconstructed from its JSON alone — no C++ fixture — resolved through
// candidate_point() and re-run; the recorded verdict and property flags
// must reproduce exactly. This is the contract that makes a mined
// counterexample a regression test: anyone breaking the simulator, a
// strategy, or the matrix resolution in a way that changes any of these
// executions trips this target.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "valcon/harness/search.hpp"

using namespace valcon;
using harness::classify;
using harness::CorpusCell;
using harness::Counterexample;
using harness::parse_cell;
using harness::SweepOutcome;
using harness::Verdict;
using harness::verdict_token;

namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(VALCON_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

// The corpus must exist and keep covering the interesting verdicts: all
// three property violations, and at least one cell from each colluding
// multi-process strategy (the adversary class the search was built to
// exercise). Guards against the corpus being gutted to "fix" a failure.
TEST(CorpusReplay, CorpusCoversAllVerdictsAndTheColludingStrategies) {
  const auto files = corpus_files();
  ASSERT_FALSE(files.empty()) << "no cells under " << VALCON_CORPUS_DIR;
  std::set<std::string> verdicts;
  std::set<std::string> strategies;
  for (const auto& path : files) {
    const CorpusCell cell = parse_cell(slurp(path));
    verdicts.insert(verdict_token(cell.verdict));
    strategies.insert(cell.candidate.strategy);
  }
  EXPECT_TRUE(verdicts.count("termination"));
  EXPECT_TRUE(verdicts.count("agreement"));
  EXPECT_TRUE(verdicts.count("validity"));
  EXPECT_TRUE(strategies.count("collude-equivocate"));
  EXPECT_TRUE(strategies.count("collude-withhold"));
}

// Every committed cell replays to its recorded verdict and flags.
TEST(CorpusReplay, EveryCellReproducesItsRecordedOutcome) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const CorpusCell cell = parse_cell(slurp(path));
    const SweepOutcome outcome = harness::evaluate(cell.candidate);
    ASSERT_TRUE(outcome.error.empty()) << outcome.error;
    EXPECT_EQ(classify(outcome), cell.verdict);
    EXPECT_EQ(outcome.decided, cell.expect_decided);
    EXPECT_EQ(outcome.agreement, cell.expect_agreement);
    EXPECT_EQ(outcome.validity_ok, cell.expect_validity_ok);
    // The flags are derived from the checker report, never hand-set.
    EXPECT_EQ(outcome.decided, outcome.report.termination);
    EXPECT_EQ(outcome.agreement, outcome.report.agreement);
    EXPECT_EQ(outcome.validity_ok, outcome.report.validity);
  }
}

// File names match the canonical cell_filename() and the bytes round-trip
// through cell_json(): the corpus stays regenerable byte-for-byte from the
// search tool.
TEST(CorpusReplay, CellsAreCanonicallyNamedAndRoundTrip) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const std::string bytes = slurp(path);
    const CorpusCell cell = parse_cell(bytes);
    Counterexample cx;
    cx.candidate = cell.candidate;
    cx.verdict = cell.verdict;
    cx.outcome = harness::evaluate(cell.candidate);
    EXPECT_EQ(path.filename().string(), harness::cell_filename(cx));
    EXPECT_EQ(harness::cell_json(cx), bytes);
  }
}

// Committed cells are already minimal: shrinking one again changes nothing
// (the shrinker is idempotent and the corpus is at its fixpoint). The space
// mirrors the one the corpus was mined from (README.md in the corpus dir).
TEST(CorpusReplay, CellsAreAtTheShrinkFixpoint) {
  harness::SearchOptions options;
  options.space.sizes = {{3, 1}, {4, 2}};
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const CorpusCell cell = parse_cell(slurp(path));
    const Counterexample shrunk =
        harness::shrink(cell.candidate, cell.verdict, options);
    EXPECT_EQ(shrunk.candidate.key(), cell.candidate.key());
  }
}
