// Unit tests: SHA-256 (FIPS vectors), structured hashing, the simulated PKI
// and the (k, n)-threshold signature scheme.
#include <gtest/gtest.h>

#include <string>

#include "valcon/crypto/hash.hpp"
#include "valcon/crypto/sha256.hpp"
#include "valcon/crypto/signatures.hpp"

using namespace valcon;
using namespace valcon::crypto;

namespace {

std::string hex(const Sha256::Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (const auto b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

}  // namespace

TEST(Sha256, FipsVectorEmpty) {
  EXPECT_EQ(hex(Sha256::hash("", 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, FipsVectorAbc) {
  EXPECT_EQ(hex(Sha256::hash("abc", 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, FipsVectorTwoBlocks) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(hex(Sha256::hash(msg.data(), msg.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk.data(), chunk.size());
  EXPECT_EQ(hex(ctx.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "partially synchronous byzantine consensus";
  Sha256 ctx;
  for (const char c : msg) ctx.update(&c, 1);
  EXPECT_EQ(ctx.digest(), Sha256::hash(msg.data(), msg.size()));
}

TEST(Hasher, DomainSeparation) {
  const Hash a = Hasher("domain-a").add(std::int64_t{42}).finish();
  const Hash b = Hasher("domain-b").add(std::int64_t{42}).finish();
  EXPECT_NE(a, b);
}

TEST(Hasher, LengthPrefixingPreventsConcatenationCollisions) {
  const Hash a = Hasher("d").add("ab").add("c").finish();
  const Hash b = Hasher("d").add("a").add("bc").finish();
  EXPECT_NE(a, b);
}

TEST(Hasher, Deterministic) {
  const auto make = [] {
    return Hasher("d").add(std::int64_t{-7}).add("x").finish();
  };
  EXPECT_EQ(make(), make());
}

TEST(Hash, HexPrefix) {
  Hash h;
  h.bytes[0] = 0xab;
  h.bytes[1] = 0xcd;
  EXPECT_EQ(h.hex_prefix(4), "abcd");
}

TEST(Signatures, SignVerifyRoundtrip) {
  const KeyRegistry keys(4, 3, 99);
  const Hash digest = Hasher("msg").add("hello").finish();
  const Signature sig = keys.signer_for(2).sign(digest);
  EXPECT_EQ(sig.signer, 2);
  EXPECT_TRUE(keys.verify(sig));
}

TEST(Signatures, TamperedMacRejected) {
  const KeyRegistry keys(4, 3, 99);
  Signature sig = keys.signer_for(1).sign(Hasher("m").add("x").finish());
  sig.mac ^= 1;
  EXPECT_FALSE(keys.verify(sig));
}

TEST(Signatures, WrongSignerClaimRejected) {
  const KeyRegistry keys(4, 3, 99);
  Signature sig = keys.signer_for(1).sign(Hasher("m").add("x").finish());
  sig.signer = 2;  // forged identity: mac no longer matches
  EXPECT_FALSE(keys.verify(sig));
}

TEST(Signatures, DifferentSeedsDifferentKeys) {
  const KeyRegistry keys_a(4, 3, 1);
  const KeyRegistry keys_b(4, 3, 2);
  const Hash digest = Hasher("m").add("x").finish();
  const Signature sig = keys_a.signer_for(0).sign(digest);
  EXPECT_FALSE(keys_b.verify(sig));
}

TEST(Threshold, CombineRequiresKDistinctSigners) {
  const KeyRegistry keys(4, 3, 7);
  const Hash digest = Hasher("m").add("t").finish();
  std::vector<Signature> partials;
  partials.push_back(keys.signer_for(0).sign(digest));
  partials.push_back(keys.signer_for(1).sign(digest));
  EXPECT_FALSE(keys.combine(partials).has_value());  // only 2 < k = 3
  partials.push_back(keys.signer_for(0).sign(digest));
  EXPECT_FALSE(keys.combine(partials).has_value());  // duplicate signer
  partials.pop_back();
  partials.push_back(keys.signer_for(2).sign(digest));
  const auto tsig = keys.combine(partials);
  ASSERT_TRUE(tsig.has_value());
  EXPECT_TRUE(keys.verify(*tsig));
  EXPECT_EQ(tsig->digest, digest);
}

TEST(Threshold, MixedDigestsRejected) {
  const KeyRegistry keys(4, 3, 7);
  const Hash d1 = Hasher("m").add("a").finish();
  const Hash d2 = Hasher("m").add("b").finish();
  std::vector<Signature> partials = {keys.signer_for(0).sign(d1),
                                     keys.signer_for(1).sign(d1),
                                     keys.signer_for(2).sign(d2)};
  EXPECT_FALSE(keys.combine(partials).has_value());
}

TEST(Threshold, InvalidPartialRejected) {
  const KeyRegistry keys(4, 3, 7);
  const Hash digest = Hasher("m").add("t").finish();
  std::vector<Signature> partials = {keys.signer_for(0).sign(digest),
                                     keys.signer_for(1).sign(digest),
                                     keys.signer_for(2).sign(digest)};
  partials[1].mac ^= 1;
  EXPECT_FALSE(keys.combine(partials).has_value());
}

TEST(Threshold, ForgedThresholdSigRejected) {
  const KeyRegistry keys(4, 3, 7);
  ThresholdSignature forged;
  forged.digest = Hasher("m").add("t").finish();
  forged.mac = 0xdeadbeef;
  EXPECT_FALSE(keys.verify(forged));
}
