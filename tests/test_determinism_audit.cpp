// Pins the invariants established by the PR-6 determinism audit (see
// docs/static-analysis.md): output-feeding views are sorted materializations
// independent of intern/hash order, serialization is dense-index order, and
// caller-input validation is a real error path that survives NDEBUG.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "valcon/consensus/reed_solomon.hpp"
#include "valcon/core/input_config.hpp"
#include "valcon/lb/partition.hpp"
#include "valcon/sim/metrics.hpp"
#include "valcon/sim/payload.hpp"

namespace {

using valcon::core::InputConfig;

TEST(DeterminismAudit, ByTypeIsSortedByNameNotInternOrder) {
  // Intern in reverse-lexical order: the ids come out in intern order, but
  // by_type() must re-key by name into a sorted map before anything is
  // serialized from it.
  const auto zeta = valcon::sim::PayloadTypeRegistry::intern("audit/zeta");
  const auto alpha = valcon::sim::PayloadTypeRegistry::intern("audit/alpha");

  valcon::sim::Metrics m;
  m.on_send(true, true, 1, zeta);
  m.on_send(true, true, 1, alpha);
  m.on_send(true, true, 1, zeta);
  m.on_send(false, true, 1, zeta);   // faulty sender: not counted
  m.on_send(true, false, 1, alpha);  // pre-GST: not counted

  const auto by = m.by_type();
  ASSERT_EQ(by.count("audit/alpha"), 1u);
  ASSERT_EQ(by.count("audit/zeta"), 1u);
  EXPECT_EQ(by.at("audit/alpha"), 1u);
  EXPECT_EQ(by.at("audit/zeta"), 2u);

  // std::map iteration is the serialization order: sorted by name.
  std::vector<std::string> keys;
  std::uint64_t sum = 0;
  for (const auto& [name, count] : by) {
    keys.push_back(name);
    sum += count;
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(sum, m.message_complexity());
}

TEST(DeterminismAudit, RegistryRoundTripAndUnknownIdThrows) {
  const auto id = valcon::sim::PayloadTypeRegistry::intern("audit/roundtrip");
  EXPECT_EQ(valcon::sim::PayloadTypeRegistry::name_of(id), "audit/roundtrip");
  EXPECT_EQ(valcon::sim::PayloadTypeRegistry::intern("audit/roundtrip"), id);
  EXPECT_THROW(valcon::sim::PayloadTypeRegistry::name_of(0xFFFFFFFFu),
               std::out_of_range);
}

TEST(DeterminismAudit, InputConfigDigestIgnoresInsertionOrder) {
  // Slot storage is dense: the digest and the serialized bytes must be a
  // pure function of (n, slot contents), not of the order set() was called.
  const InputConfig a = InputConfig::of(5, {{0, 7}, {3, 2}, {4, 9}});
  const InputConfig b = InputConfig::of(5, {{4, 9}, {0, 7}, {3, 2}});
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.serialize(), b.serialize());

  const auto back = InputConfig::deserialize(a.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->digest(), a.digest());
}

TEST(DeterminismAudit, InputConfigDeserializeRejectsMalformedBytes) {
  // External input gets an error path, not an assert.
  EXPECT_FALSE(InputConfig::deserialize({}).has_value());
  auto bytes = InputConfig::of(3, {{1, 4}}).serialize();
  bytes.pop_back();  // truncated
  EXPECT_FALSE(InputConfig::deserialize(bytes).has_value());
}

TEST(DeterminismAudit, ReedSolomonRejectsBadParameters) {
  using valcon::consensus::ReedSolomon;
  EXPECT_THROW(ReedSolomon(5, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(4, 5), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(256, 2), std::invalid_argument);

  // Valid parameters still round-trip.
  const ReedSolomon rs(4, 2);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  const auto shares = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> received(
      shares.begin(), shares.end());
  const auto decoded = rs.decode(received, 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(DeterminismAudit, PartitionExperimentRejectsBadGeometry) {
  // n must be 3t or 3t+1 with t >= 1: outside that, the Lemma 2
  // construction is meaningless and the call must refuse, not assert.
  EXPECT_THROW(valcon::lb::run_partition_experiment(8, 2, 1),
               std::invalid_argument);
  EXPECT_THROW(valcon::lb::run_partition_experiment(3, 0, 1),
               std::invalid_argument);
}

}  // namespace
