// Unit tests: the validity formalism of Section 3.3 — input configurations,
// the similarity (~) and compatibility (⋄) relations (including the paper's
// worked examples), and the finite-domain enumeration of I and sim(c).
#include <gtest/gtest.h>

#include <set>

#include "valcon/core/similarity.hpp"

using namespace valcon;
using namespace valcon::core;

namespace {

// The paper's running example (Section 3.4), 0-based: n = 3, t = 1.
const InputConfig kC = InputConfig::of(3, {{0, 0}, {1, 1}, {2, 0}});

std::uint64_t binomial(int n, int k) {
  std::uint64_t r = 1;
  for (int i = 0; i < k; ++i) r = r * static_cast<std::uint64_t>(n - i) /
                                  static_cast<std::uint64_t>(i + 1);
  return r;
}

std::uint64_t ipow(std::uint64_t b, int e) {
  std::uint64_t r = 1;
  while (e-- > 0) r *= b;
  return r;
}

}  // namespace

TEST(InputConfig, BasicAccessors) {
  const InputConfig c = InputConfig::of(4, {{0, 5}, {2, 7}, {3, 5}});
  EXPECT_EQ(c.n(), 4);
  EXPECT_EQ(c.count(), 3);
  EXPECT_TRUE(c.participates(0));
  EXPECT_FALSE(c.participates(1));
  EXPECT_EQ(c.at(2), std::optional<Value>(7));
  EXPECT_EQ(c.at(1), std::nullopt);
  EXPECT_EQ(c.processes(), (std::vector<ProcessId>{0, 2, 3}));
  EXPECT_EQ(c.proposals(), (std::vector<Value>{5, 7, 5}));
  EXPECT_EQ(c.sorted_proposals(), (std::vector<Value>{5, 5, 7}));
}

TEST(InputConfig, ValidForRequiresBetweenNMinusTAndNPairs) {
  const InputConfig c3 = InputConfig::of(4, {{0, 1}, {1, 1}, {2, 1}});
  EXPECT_TRUE(c3.valid_for(4, 1));
  const InputConfig c2 = InputConfig::of(4, {{0, 1}, {1, 1}});
  EXPECT_FALSE(c2.valid_for(4, 1));
  EXPECT_TRUE(c2.valid_for(4, 2));
  EXPECT_FALSE(c3.valid_for(5, 1));  // wrong n
}

TEST(InputConfig, Unanimity) {
  Value v = -1;
  EXPECT_TRUE(InputConfig::of(3, {{0, 4}, {2, 4}}).unanimous(&v));
  EXPECT_EQ(v, 4);
  EXPECT_FALSE(InputConfig::of(3, {{0, 4}, {2, 5}}).unanimous());
  EXPECT_FALSE(InputConfig(3).unanimous());  // empty: no unanimous value
}

TEST(InputConfig, SerializeRoundtrip) {
  const InputConfig c = InputConfig::of(5, {{0, -9}, {1, 0}, {4, 1234567}});
  const auto back = InputConfig::deserialize(c.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);
}

TEST(InputConfig, DeserializeRejectsGarbage) {
  EXPECT_FALSE(InputConfig::deserialize({}).has_value());
  EXPECT_FALSE(InputConfig::deserialize({4, 1, 2}).has_value());
}

TEST(InputConfig, DigestDistinguishesConfigs) {
  std::set<std::string> digests;
  for_each_config(3, {0, 1}, 2, 3, [&](const InputConfig& c) {
    digests.insert(c.digest().hex_prefix(32));
    return true;
  });
  // 3*4 + 8 = 20 configurations, all with distinct digests.
  EXPECT_EQ(digests.size(), 20u);
}

TEST(Similarity, PaperExampleSection34) {
  // c = ((P1,0),(P2,1),(P3,0)) is similar to ((P1,0),(P3,0)) but not to
  // ((P1,0),(P2,0)).
  EXPECT_TRUE(similar(kC, InputConfig::of(3, {{0, 0}, {2, 0}})));
  EXPECT_FALSE(similar(kC, InputConfig::of(3, {{0, 0}, {1, 0}})));
}

TEST(Similarity, IntroExample) {
  // From Section 1: ((P1,0),(P2,1)) ~ ((P1,0),(P3,0)), but not
  // ((P1,0),(P2,0)). (n = 3, t = 1.)
  const InputConfig c = InputConfig::of(3, {{0, 0}, {1, 1}});
  EXPECT_TRUE(similar(c, InputConfig::of(3, {{0, 0}, {2, 0}})));
  EXPECT_FALSE(similar(c, InputConfig::of(3, {{0, 0}, {1, 0}})));
}

TEST(Similarity, ReflexiveAndSymmetric) {
  for_each_config(3, {0, 1}, 2, 3, [&](const InputConfig& a) {
    EXPECT_TRUE(similar(a, a));
    for_each_config(3, {0, 1}, 2, 3, [&](const InputConfig& b) {
      EXPECT_EQ(similar(a, b), similar(b, a));
      return true;
    });
    return true;
  });
}

TEST(Similarity, DisjointConfigsNotSimilar) {
  // n = 4, t = 2: configurations of size 2 can be disjoint.
  const InputConfig a = InputConfig::of(4, {{0, 1}, {1, 1}});
  const InputConfig b = InputConfig::of(4, {{2, 1}, {3, 1}});
  EXPECT_FALSE(similar(a, b));
}

TEST(Compatibility, PaperExampleSection41) {
  // n = 3, t = 1: ((P1,0),(P2,0)) ⋄ ((P1,1),(P3,1)), but not
  // ((P1,1),(P2,1),(P3,1)).
  const InputConfig c = InputConfig::of(3, {{0, 0}, {1, 0}});
  EXPECT_TRUE(compatible(c, InputConfig::of(3, {{0, 1}, {2, 1}}), 1));
  EXPECT_FALSE(compatible(c, InputConfig::of(3, {{0, 1}, {1, 1}, {2, 1}}), 1));
}

TEST(Compatibility, IrreflexiveAndSymmetric) {
  for_each_config(3, {0, 1}, 2, 3, [&](const InputConfig& a) {
    EXPECT_FALSE(compatible(a, a, 1));
    for_each_config(3, {0, 1}, 2, 3, [&](const InputConfig& b) {
      EXPECT_EQ(compatible(a, b, 1), compatible(b, a, 1));
      return true;
    });
    return true;
  });
}

TEST(Enumeration, CountsMatchClosedForm) {
  // |I| = sum_{x=n-t}^{n} C(n,x) * |V|^x.
  const int n = 4;
  const int t = 1;
  const std::vector<Value> domain = {0, 1, 2};
  std::uint64_t expected = 0;
  for (int x = n - t; x <= n; ++x) {
    expected += binomial(n, x) * ipow(domain.size(), x);
  }
  EXPECT_EQ(enumerate_configs(n, t, domain).size(), expected);
}

TEST(Enumeration, ExactCount) {
  EXPECT_EQ(enumerate_configs_exact(4, 3, {0, 1}).size(),
            binomial(4, 3) * ipow(2, 3));
}

TEST(Enumeration, SimMatchesPairwiseFilter) {
  const std::vector<Value> domain = {0, 1};
  const int t = 1;
  for_each_config(4, domain, 3, 3, [&](const InputConfig& c) {
    const auto from_fast = enumerate_similar(c, t, domain);
    std::set<InputConfig> fast_set(from_fast.begin(), from_fast.end());
    std::set<InputConfig> slow_set;
    for (const auto& cand : enumerate_configs(4, t, domain)) {
      if (similar(c, cand)) slow_set.insert(cand);
    }
    EXPECT_EQ(fast_set, slow_set) << "at c = " << c.to_string();
    return true;
  });
}

TEST(Enumeration, SimIncludesSelf) {
  const InputConfig c = InputConfig::of(4, {{0, 1}, {1, 0}, {3, 1}});
  const auto sims = enumerate_similar(c, 1, {0, 1});
  EXPECT_NE(std::find(sims.begin(), sims.end(), c), sims.end());
}

TEST(Enumeration, EveryFullConfigSimilarToEveryOverlappingRestriction) {
  // A full configuration c_n and any c with matching proposals on π(c)
  // are similar (used in Lemma 4's case analysis).
  const InputConfig full = InputConfig::of(4, {{0, 1}, {1, 0}, {2, 1}, {3, 0}});
  const InputConfig restricted = InputConfig::of(4, {{0, 1}, {1, 0}, {2, 1}});
  EXPECT_TRUE(similar(full, restricted));
}
