// Unit tests for the zero-allocation hot-path structures: the flat-array
// Network (checked property-style against a reference implementation with
// the historical map/set semantics), the interned-id Metrics breakdown, the
// payload-type registry, the payload slab's lifetime guarantees, and the
// release-mode validation of Simulator::do_send.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "valcon/harness/scenario.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;
using namespace valcon::sim;

namespace {

// ------------------------------------------------------------- Network

/// The pre-refactor Network, verbatim: map-keyed holds, set-keyed blocks,
/// identical clamping arithmetic and identical Rng consumption. The
/// property test drives it in lock-step with the real Network; any
/// divergence in either the returned arrival or the RNG stream position
/// shows up as a mismatch on some later query.
class ReferenceNetwork {
 public:
  ReferenceNetwork(NetworkConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  void hold(ProcessId from, ProcessId to, Time until) {
    holds_[{from, to}] = until;
  }
  void block(ProcessId from, ProcessId to) { blocked_.insert({from, to}); }
  void set_delay_policy(Network::DelayPolicy policy) {
    policy_ = std::move(policy);
  }

  std::optional<Time> arrival_time(ProcessId from, ProcessId to,
                                   Time send_time) {
    if (blocked_.count({from, to}) != 0) return std::nullopt;
    const Time lower = send_time + config_.min_delay;
    const Time upper = std::max(send_time, config_.gst) + config_.delta;
    Time arrival;
    std::optional<Time> custom;
    if (policy_) custom = policy_(from, to, send_time);
    if (custom.has_value()) {
      arrival = *custom;
    } else if (send_time >= config_.gst) {
      arrival = send_time + rng_.uniform(config_.min_delay, config_.delta);
    } else {
      const Time cap = std::max(
          lower, std::min(upper, send_time + config_.default_pre_gst_cap));
      arrival = rng_.uniform(lower, cap);
    }
    if (auto it = holds_.find({from, to}); it != holds_.end()) {
      arrival = std::max(arrival, it->second);
    }
    if (arrival < lower) arrival = lower;
    if (arrival > upper) arrival = upper;
    return arrival;
  }

 private:
  NetworkConfig config_;
  Rng rng_;
  std::map<std::pair<ProcessId, ProcessId>, Time> holds_;
  std::set<std::pair<ProcessId, ProcessId>> blocked_;
  Network::DelayPolicy policy_;
};

void run_lockstep(Network& flat, ReferenceNetwork& reference, int n,
                  std::uint64_t op_seed, int ops) {
  Rng driver(op_seed);
  for (int op = 0; op < ops; ++op) {
    const auto from = static_cast<ProcessId>(driver.next_below(
        static_cast<std::uint64_t>(n)));
    const auto to = static_cast<ProcessId>(driver.next_below(
        static_cast<std::uint64_t>(n)));
    switch (driver.next_below(8)) {
      case 0: {  // hold — repeats on the same link test overwrite-hold
        const Time until = driver.uniform(-5.0, 60.0);
        flat.hold(from, to, until);
        reference.hold(from, to, until);
        break;
      }
      case 1:
        flat.block(from, to);
        reference.block(from, to);
        break;
      default: {  // the hot-path query, pre- and post-GST send times
        const Time send_time = driver.uniform(0.0, 30.0);
        const std::optional<Time> got = flat.arrival_time(from, to, send_time);
        const std::optional<Time> want =
            reference.arrival_time(from, to, send_time);
        ASSERT_EQ(got.has_value(), want.has_value())
            << "op " << op << " link " << from << "->" << to;
        if (got.has_value()) {
          ASSERT_EQ(*got, *want) << "op " << op << " link " << from << "->"
                                 << to << " send " << send_time;
        }
        break;
      }
    }
  }
}

TEST(NetworkFlatArrays, MatchesMapSemanticsUnderRandomOps) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    NetworkConfig config;
    config.gst = 10.0;
    config.delta = 1.0;
    const std::uint64_t net_seed = seed * 7919;
    Network flat(config, 6, net_seed);
    ReferenceNetwork reference(config, net_seed);
    run_lockstep(flat, reference, 6, seed, 3000);
  }
}

TEST(NetworkFlatArrays, MatchesMapSemanticsWithDelayPolicy) {
  NetworkConfig config;
  config.gst = 10.0;
  const auto policy = [](ProcessId from, ProcessId, Time send_time)
      -> std::optional<Time> {
    // Custom delay on even senders, default path (rng consumption) on odd.
    if (from % 2 == 0) return send_time + 0.25;
    return std::nullopt;
  };
  Network flat(config, 5, 99);
  ReferenceNetwork reference(config, 99);
  flat.set_delay_policy(policy);
  reference.set_delay_policy(policy);
  run_lockstep(flat, reference, 5, 42, 3000);
}

TEST(NetworkFlatArrays, HoldIsClampedToTheModelBound) {
  NetworkConfig config;
  config.gst = 10.0;
  config.delta = 1.0;
  Network net(config, 3, 1);
  net.hold(0, 1, 1e9);
  const std::optional<Time> arrival = net.arrival_time(0, 1, 2.0);
  ASSERT_TRUE(arrival.has_value());
  EXPECT_EQ(*arrival, 10.0 + 1.0);  // max(send, gst) + delta
}

TEST(NetworkFlatArrays, LaterHoldOverwritesEarlierHold) {
  NetworkConfig config;
  config.gst = 100.0;
  Network net(config, 3, 1);
  net.hold(0, 1, 50.0);
  net.hold(0, 1, 2.0);  // overwrite with a weaker hold
  const std::optional<Time> arrival = net.arrival_time(0, 1, 0.0);
  ASSERT_TRUE(arrival.has_value());
  EXPECT_LT(*arrival, 50.0);  // the 50.0 hold is gone
}

TEST(NetworkFlatArrays, HoldBetweenCoversBothDirections) {
  NetworkConfig config;
  config.gst = 100.0;
  Network net(config, 4, 1);
  const std::vector<ProcessId> a{0, 1};
  const std::vector<ProcessId> b{2};
  net.hold_between(a, b, 40.0);
  for (const auto& [from, to] :
       {std::pair<ProcessId, ProcessId>{0, 2}, {2, 0}, {1, 2}, {2, 1}}) {
    const std::optional<Time> arrival = net.arrival_time(from, to, 0.0);
    ASSERT_TRUE(arrival.has_value());
    EXPECT_GE(*arrival, 40.0) << from << "->" << to;
  }
  // Links within a group are not held.
  const std::optional<Time> inside = net.arrival_time(0, 1, 0.0);
  ASSERT_TRUE(inside.has_value());
  EXPECT_LT(*inside, 40.0);
}

TEST(NetworkFlatArrays, RejectsOutOfRangeLinkIds) {
  Network net(NetworkConfig{}, 4, 1);
  EXPECT_THROW(net.hold(-1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(net.hold(0, 4, 1.0), std::out_of_range);
  EXPECT_THROW(net.block(4, 0), std::out_of_range);
  EXPECT_THROW(net.block(0, -1), std::out_of_range);
}

// ----------------------------------------------------- payload types

TEST(PayloadTypeRegistry, InternIsIdempotentAndRoundTrips) {
  const PayloadTypeId a = PayloadTypeRegistry::intern("test/hot-path-a");
  const PayloadTypeId b = PayloadTypeRegistry::intern("test/hot-path-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, PayloadTypeRegistry::intern("test/hot-path-a"));
  EXPECT_EQ(PayloadTypeRegistry::name_of(a), "test/hot-path-a");
  EXPECT_EQ(PayloadTypeRegistry::name_of(b), "test/hot-path-b");
  EXPECT_THROW(static_cast<void>(PayloadTypeRegistry::name_of(0xffffffffu)),
               std::out_of_range);
}

struct MacroPayload final : Payload {
  VALCON_PAYLOAD_TYPE("test/macro-payload")
};

TEST(PayloadTypeRegistry, MacroCachesTheInternedId) {
  const MacroPayload p;
  EXPECT_EQ(std::string(p.type_name()), "test/macro-payload");
  EXPECT_EQ(p.type_id(), PayloadTypeRegistry::intern("test/macro-payload"));
  EXPECT_EQ(PayloadTypeRegistry::name_of(p.type_id()), "test/macro-payload");
}

// ------------------------------------------------------------- Metrics

TEST(MetricsInterned, ByTypeMatchesAStringKeyedRecount) {
  const PayloadTypeId a = PayloadTypeRegistry::intern("test/metrics-a");
  const PayloadTypeId b = PayloadTypeRegistry::intern("test/metrics-b");
  const PayloadTypeId c = PayloadTypeRegistry::intern("test/metrics-c");

  Metrics metrics;
  std::map<std::string, std::uint64_t> expected;  // the old data structure
  const auto record = [&](bool correct, bool post_gst, std::size_t words,
                          PayloadTypeId type) {
    metrics.on_send(correct, post_gst, words, type);
    if (correct && post_gst) {
      ++expected[PayloadTypeRegistry::name_of(type)];
    }
  };
  for (int i = 0; i < 100; ++i) record(true, true, 1, a);
  for (int i = 0; i < 31; ++i) record(true, true, 2, b);
  record(false, true, 1, c);   // faulty sender: never in the breakdown
  record(true, false, 1, c);   // pre-GST: never in the breakdown
  record(false, false, 4, a);

  EXPECT_EQ(metrics.by_type(), expected);
  // "test/metrics-c" was only sent faulty/pre-GST, so it must be absent —
  // same as the old map, which only grew keys on the counted branch.
  EXPECT_EQ(metrics.by_type().count("test/metrics-c"), 0u);
  // The breakdown partitions exactly the paper's message complexity.
  std::uint64_t sum = 0;
  for (const auto& [name, count] : metrics.by_type()) sum += count;
  EXPECT_EQ(sum, metrics.message_complexity());
  EXPECT_EQ(metrics.message_complexity(), 131u);
  EXPECT_EQ(metrics.messages_total(), 134u);

  metrics.reset();
  EXPECT_TRUE(metrics.by_type().empty());
}

// -------------------------------------------------------- payload slab

struct SlabPing final : Payload {
  VALCON_PAYLOAD_TYPE("test/slab-ping")
};

class KeepLastPayload final : public Process {
 public:
  explicit KeepLastPayload(PayloadPtr* out) : out_(out) {}
  void on_message(Context&, ProcessId, const PayloadPtr& m) override {
    *out_ = m;
  }

 private:
  PayloadPtr* out_;
};

class SlabPinger final : public Process {
 public:
  void on_start(Context& ctx) override {
    ctx.send(1, make_payload<SlabPing>());
  }
};

TEST(PayloadSlab, PayloadsOutliveTheirSimulator) {
  PayloadPtr kept;
  {
    SimConfig cfg;
    cfg.n = 2;
    cfg.t = 0;
    Simulator sim(cfg);
    sim.add_process(0, std::make_unique<SlabPinger>());
    sim.add_process(1, std::make_unique<KeepLastPayload>(&kept));
    sim.run();
    ASSERT_NE(kept, nullptr);
    EXPECT_GE(sim.payload_slab().blocks_allocated(), 1u);
  }
  // The simulator (and with it the slab owner) is gone; the payload's
  // control block keeps the slab alive. ASan (the CI sanitize job) would
  // flag this as use-after-free if the arena were freed eagerly.
  EXPECT_EQ(std::string(kept->type_name()), "test/slab-ping");
  EXPECT_EQ(kept->type_id(), PayloadTypeRegistry::intern("test/slab-ping"));
}

TEST(PayloadSlab, RecyclesFreedPayloadsInsteadOfGrowing) {
  // A long token run churns through far more payloads than fit in one
  // block; the free lists must keep the block count tiny.
  class TokenRing final : public Process {
   public:
    void on_start(Context& ctx) override {
      ctx.send((ctx.id() + 1) % ctx.n(), make_payload<SlabPing>());
    }
    void on_message(Context& ctx, ProcessId, const PayloadPtr&) override {
      ctx.send((ctx.id() + 1) % ctx.n(), make_payload<SlabPing>());
    }
  };
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 0;
  Simulator sim(cfg);
  for (ProcessId p = 0; p < 4; ++p) {
    sim.add_process(p, std::make_unique<TokenRing>());
  }
  sim.run(/*horizon=*/2000.0);
  EXPECT_GT(sim.metrics().messages_total(), 10000u);
  EXPECT_LE(sim.payload_slab().blocks_allocated(), 4u);
  EXPECT_EQ(sim.payload_slab().oversize_allocs(), 0u);
}

// ------------------------------------------------- do_send validation

class WildSender final : public Process {
 public:
  explicit WildSender(ProcessId to) : to_(to) {}
  void on_start(Context& ctx) override {
    ctx.send(to_, make_payload<SlabPing>());
  }

 private:
  ProcessId to_;
};

TEST(Simulator, OutOfRangeSendThrowsInEveryBuildType) {
  // This used to be assert-only: a Byzantine shim sending to a bogus id
  // indexed faulty_ out of bounds in release builds.
  for (const ProcessId bogus : {-1, 4, 1000}) {
    SimConfig cfg;
    cfg.n = 4;
    cfg.t = 1;
    Simulator sim(cfg);
    sim.add_process(0, std::make_unique<WildSender>(bogus));
    EXPECT_THROW(sim.run(), std::out_of_range) << "to=" << bogus;
  }
}

// --------------------------------------------------- shared key cache

TEST(SharedKeyRegistry, ReturnsTheSameInstancePerTriple) {
  const auto a = harness::shared_key_registry(4, 3, 17);
  const auto b = harness::shared_key_registry(4, 3, 17);
  const auto c = harness::shared_key_registry(7, 5, 17);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->n(), 4);
  EXPECT_EQ(a->threshold_k(), 3);
  EXPECT_EQ(a->seed(), 17u);
}

TEST(SharedKeyRegistry, CachedRegistrySignsIdenticallyToAFreshOne) {
  const auto shared = harness::shared_key_registry(4, 3, 21);
  const crypto::KeyRegistry fresh(4, 3, 21);
  const crypto::Hash digest = crypto::Hasher("test").add("d").finish();
  for (ProcessId p = 0; p < 4; ++p) {
    const crypto::Signature a = shared->signer_for(p).sign(digest);
    const crypto::Signature b = fresh.signer_for(p).sign(digest);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(fresh.verify(a));
    EXPECT_TRUE(shared->verify(b));
  }
}

TEST(Simulator, RejectsAMismatchedSharedKeyRegistry) {
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.seed = 5;
  cfg.keys = harness::shared_key_registry(4, 3, 6);  // wrong seed
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
  cfg.keys = harness::shared_key_registry(7, 3, 5);  // wrong n
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
  cfg.keys = harness::shared_key_registry(4, 2, 5);  // wrong threshold
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
  cfg.keys = harness::shared_key_registry(4, 3, 5);  // matches n - t, seed
  Simulator sim(cfg);
  EXPECT_EQ(&sim.keys(), cfg.keys.get());
}

// ------------------------------------------------------- event order

TEST(EventQueue, EqualTimeEventsFireInInsertionOrder) {
  // The (time, seq) order the old priority_queue comparator induced must
  // survive the calendar-queue swap: many timers armed for the same
  // instant fire in the order they were set.
  class TagRecorder final : public Process {
   public:
    explicit TagRecorder(std::vector<std::uint64_t>* out) : out_(out) {}
    void on_start(Context& ctx) override {
      for (std::uint64_t tag = 0; tag < 32; ++tag) {
        ctx.set_timer(1.0, tag);
      }
    }
    void on_timer(Context&, std::uint64_t tag) override {
      out_->push_back(tag);
    }

   private:
    std::vector<std::uint64_t>* out_;
  };
  SimConfig cfg;
  cfg.n = 1;
  cfg.t = 0;
  Simulator sim(cfg);
  std::vector<std::uint64_t> fired;
  sim.add_process(0, std::make_unique<TagRecorder>(&fired));
  sim.run();
  ASSERT_EQ(fired.size(), 32u);
  for (std::uint64_t tag = 0; tag < 32; ++tag) EXPECT_EQ(fired[tag], tag);
}

TEST(EventQueue, FarFutureEventsInterleaveNearOnesInExactTimeOrder) {
  // Exercises the calendar queue's overflow heap and window-advance path:
  // delays spanning many bucket windows (the window covers 8 * delta),
  // sitting exactly on window boundaries, duplicated (tie-broken by
  // insertion seq), and clustered tightly — the firing order must be the
  // stable sort of the delays.
  const std::vector<Time> delays = {
      0.1,   500.0, 8.0,  7.999, 8.001, 0.1,  1000.5, 64.0, 64.0,
      3.125, 0.001, 16.0, 999.5, 0.1,   72.0, 8.0,    2.75, 1000.5};
  class Arm final : public Process {
   public:
    Arm(const std::vector<Time>* delays, std::vector<std::uint64_t>* out)
        : delays_(delays), out_(out) {}
    void on_start(Context& ctx) override {
      for (std::size_t i = 0; i < delays_->size(); ++i) {
        ctx.set_timer((*delays_)[i], i);
      }
    }
    void on_timer(Context&, std::uint64_t tag) override {
      out_->push_back(tag);
    }

   private:
    const std::vector<Time>* delays_;
    std::vector<std::uint64_t>* out_;
  };
  SimConfig cfg;
  cfg.n = 1;
  cfg.t = 0;
  Simulator sim(cfg);
  std::vector<std::uint64_t> fired;
  sim.add_process(0, std::make_unique<Arm>(&delays, &fired));
  sim.run();

  std::vector<std::uint64_t> expected(delays.size());
  for (std::uint64_t i = 0; i < expected.size(); ++i) expected[i] = i;
  std::stable_sort(expected.begin(), expected.end(),
                   [&delays](std::uint64_t a, std::uint64_t b) {
                     return delays[a] < delays[b];
                   });
  EXPECT_EQ(fired, expected);
}

}  // namespace
