// The theory core, checked exhaustively on small instances:
//
//  * Theorem 3 / Definition 2 — closed-form Λ functions agree with the
//    generic ⋂_{c'~c} val(c') enumeration (soundness of Universal's Λ);
//  * Theorem 1 / 2 — for n <= 3t, solvable <=> trivial (with a computable
//    always_admissible witness);
//  * the solvability frontier of Correct-Proposal validity (a pigeonhole
//    consequence of C_S that our classifier must discover);
//  * classification sanity over randomly sampled table-based properties
//    (the "Figure 1 landscape": trivial ⊂ C_S).
#include <gtest/gtest.h>

#include <memory>

#include "valcon/core/classification.hpp"
#include "valcon/sim/rng.hpp"

using namespace valcon;
using namespace valcon::core;

namespace {

/// Checks that the property's closed-form Λ lands inside the enumerated
/// intersection for every c in I_{n-t}.
void expect_closed_form_sound(const ValidityProperty& val, int n, int t,
                              const std::vector<Value>& domain) {
  for_each_config(n, domain, n - t, n - t, [&](const InputConfig& vec) {
    const auto closed = val.closed_form_lambda(vec, n, t);
    EXPECT_TRUE(closed.has_value())
        << val.name() << ": no closed form at " << vec.to_string();
    if (!closed.has_value()) return true;
    bool admissible_everywhere = true;
    for_each_similar(vec, t, domain, [&](const InputConfig& sim_c) {
      if (!val.admissible(sim_c, *closed)) {
        admissible_everywhere = false;
        return false;
      }
      return true;
    });
    EXPECT_TRUE(admissible_everywhere)
        << val.name() << ": Λ(" << vec.to_string() << ") = " << *closed
        << " is not in the similar-admissible intersection";
    return true;
  });
}

}  // namespace

// ------------------------- Λ soundness (Definition 2, used by Theorem 5)

TEST(Lambda, StrongClosedFormSound_N4T1) {
  expect_closed_form_sound(StrongValidity(), 4, 1, {0, 1, 2});
}

TEST(Lambda, StrongClosedFormSound_N5T1) {
  expect_closed_form_sound(StrongValidity(), 5, 1, {0, 1});
}

TEST(Lambda, WeakClosedFormSound_N4T1) {
  expect_closed_form_sound(WeakValidity(), 4, 1, {0, 1, 2});
}

TEST(Lambda, ConvexHullClosedFormSound_N4T1) {
  expect_closed_form_sound(ConvexHullValidity(), 4, 1, {0, 1, 2});
}

TEST(Lambda, MedianClosedFormSound_N4T1) {
  expect_closed_form_sound(MedianValidity(4, 1), 4, 1, {0, 1, 2});
}

TEST(Lambda, IntervalClosedFormSound_N5T1) {
  // k must be in [t+1, n-2t] = [2, 3].
  expect_closed_form_sound(IntervalValidity(2, 1), 5, 1, {0, 1});
  expect_closed_form_sound(IntervalValidity(3, 1), 5, 1, {0, 1});
}

TEST(Lambda, CorrectProposalClosedFormSoundWithSmallDomain) {
  // n - t = 3 slots over |V| = 2 values: pigeonhole guarantees a value with
  // multiplicity >= t+1 = 2, so Λ exists everywhere and must be sound.
  expect_closed_form_sound(CorrectProposalValidity(), 4, 1, {0, 1});
}

TEST(Lambda, StrongForcedValueWithLargeMultiplicity) {
  // n = 4, t = 1: an entry with multiplicity >= n-2t = 2 forces Λ.
  const StrongValidity val;
  const InputConfig vec = InputConfig::of(4, {{0, 7}, {1, 7}, {2, 3}});
  EXPECT_EQ(val.closed_form_lambda(vec, 4, 1), std::optional<Value>(7));
}

TEST(Lambda, GenericMatchesClosedFormWhenBothDefined) {
  const std::vector<Value> domain = {0, 1, 2};
  const StrongValidity val;
  for_each_config(4, domain, 3, 3, [&](const InputConfig& vec) {
    const auto generic = generic_lambda(val, vec, 1, domain, domain);
    const auto closed = val.closed_form_lambda(vec, 4, 1);
    EXPECT_TRUE(generic.has_value());
    EXPECT_TRUE(closed.has_value());
    if (!generic.has_value() || !closed.has_value()) return false;
    // Both must be members of the intersection; when the intersection is a
    // singleton they must agree exactly.
    const auto intersection =
        similar_admissible_intersection(val, vec, 1, domain, domain);
    EXPECT_NE(std::find(intersection.begin(), intersection.end(), *generic),
              intersection.end());
    EXPECT_NE(std::find(intersection.begin(), intersection.end(), *closed),
              intersection.end());
    if (intersection.size() == 1) {
      EXPECT_EQ(*generic, *closed);
    }
    return true;
  });
}

TEST(Lambda, CorrectProposalUnsolvableInstanceHasNoLambda) {
  // vec = (0, 1, 2) with n = 4, t = 1: every value has multiplicity 1 < t+1,
  // so ⋂ proposals over sim(vec) is empty — C_S fails here.
  const CorrectProposalValidity val;
  const InputConfig vec = InputConfig::of(4, {{0, 0}, {1, 1}, {2, 2}});
  EXPECT_FALSE(val.closed_form_lambda(vec, 4, 1).has_value());
  const std::vector<Value> domain = {0, 1, 2};
  EXPECT_FALSE(generic_lambda(val, vec, 1, domain, domain).has_value());
}

TEST(Lambda, MakeLambdaThrowsOnUnsolvableInstance) {
  const CorrectProposalValidity val;
  const auto lambda = make_lambda(val, 4, 1, {0, 1, 2}, {0, 1, 2});
  EXPECT_THROW(lambda(InputConfig::of(4, {{0, 0}, {1, 1}, {2, 2}})),
               std::invalid_argument);
}

// --------------------------------------- classification (Theorems 1-3, 5)

TEST(Classification, ConstantIsTrivialAndSolvableEverywhere) {
  const ConstantValidity val(1);
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{
           {3, 1}, {4, 1}, {4, 2}, {5, 2}, {6, 2}}) {
    const auto result = classify(val, n, t, {0, 1}, {0, 1});
    EXPECT_TRUE(result.trivial) << "n=" << n << " t=" << t;
    EXPECT_TRUE(result.solvable) << "n=" << n << " t=" << t;
    EXPECT_EQ(result.always_admissible, std::optional<Value>(1));
  }
}

TEST(Classification, StrongSolvableIffNGreaterThan3T) {
  const StrongValidity val;
  struct Case {
    int n, t;
    bool solvable;
  };
  for (const Case c : {Case{3, 1, false}, Case{4, 1, true}, Case{6, 2, false},
                       Case{7, 2, true}}) {
    const auto result = classify(val, c.n, c.t, {0, 1}, {0, 1});
    EXPECT_FALSE(result.trivial) << "n=" << c.n;
    EXPECT_EQ(result.solvable, c.solvable) << "n=" << c.n << " t=" << c.t;
    // Unlike Weak Validity (which satisfies C_S everywhere yet is
    // unsolvable at n <= 3t), Strong Validity fails C_S once n <= 3t: a
    // vector holding both values t times admits two conflicting unanimous
    // similar extensions, so the intersection is empty.
    EXPECT_EQ(result.similarity_condition, c.n > 3 * c.t)
        << "n=" << c.n << " t=" << c.t;
  }
}

TEST(Classification, WeakSatisfiesCsButUnsolvableAt3T) {
  // The paper's example after Theorem 3: Weak Validity satisfies C_S yet is
  // unsolvable with n <= 3t.
  const WeakValidity val;
  const auto result = classify(val, 3, 1, {0, 1}, {0, 1});
  EXPECT_TRUE(result.similarity_condition);
  EXPECT_FALSE(result.trivial);
  EXPECT_FALSE(result.solvable);
}

TEST(Classification, ConvexHullSolvableIffNGreaterThan3T) {
  const ConvexHullValidity val;
  EXPECT_FALSE(classify(val, 3, 1, {0, 1}, {0, 1}).solvable);
  EXPECT_TRUE(classify(val, 4, 1, {0, 1}, {0, 1}).solvable);
}

TEST(Classification, CorrectProposalFrontierByPigeonhole) {
  // C_S for Correct-Proposal validity over domain V holds iff every
  // (n-t)-multiset over V has a value with multiplicity >= t+1, i.e.
  // n - t > (|V|)(t) <=> n > |V| t + t. Frontier checks:
  const CorrectProposalValidity val;
  // n = 4, t = 1, |V| = 2: 3 slots, 2 values -> some value twice: solvable.
  EXPECT_TRUE(classify(val, 4, 1, {0, 1}, {0, 1}).solvable);
  // n = 4, t = 1, |V| = 3: vec (0,1,2) kills C_S: unsolvable.
  EXPECT_FALSE(classify(val, 4, 1, {0, 1, 2}, {0, 1, 2}).solvable);
  const auto result = classify(val, 4, 1, {0, 1, 2}, {0, 1, 2});
  ASSERT_TRUE(result.cs_counterexample.has_value());
  // The counterexample must genuinely have an empty intersection.
  EXPECT_FALSE(generic_lambda(val, *result.cs_counterexample, 1, {0, 1, 2},
                              {0, 1, 2})
                   .has_value());
  // n = 7, t = 2, |V| = 2: 5 slots, 2 values -> some value >= 3 = t+1.
  EXPECT_TRUE(classify(val, 7, 2, {0, 1}, {0, 1}).solvable);
}

TEST(Classification, TrivialImpliesSimilarityCondition) {
  // Theorem 3 holds for every solvable property; in particular a trivial
  // property always satisfies C_S (the always-admissible value is a valid
  // Λ output everywhere). Verified over sampled random table properties.
  sim::Rng rng(2024);
  const std::vector<Value> domain = {0, 1};
  const int n = 3;
  const int t = 1;
  const auto configs = enumerate_configs(n, t, domain);
  for (int trial = 0; trial < 40; ++trial) {
    TableValidity::Table table;
    for (const auto& c : configs) {
      std::set<Value> admissible;
      for (const Value v : domain) {
        if (rng.next_below(2) == 0) admissible.insert(v);
      }
      if (admissible.empty()) admissible.insert(0);
      table[c] = admissible;
    }
    const TableValidity val(std::move(table));
    const auto result = classify(val, n, t, domain, domain);
    if (result.trivial) {
      EXPECT_TRUE(result.similarity_condition)
          << "trivial property violating C_S found (impossible)";
    }
    // With n = 3t, the paper's characterization: solvable <=> trivial.
    EXPECT_EQ(result.solvable, result.trivial);
  }
}

TEST(Classification, AlwaysAdmissibleWitnessIsSound) {
  // Theorem 2's finite procedure returns a genuine witness.
  const ConstantValidity val(1);
  const auto witness = always_admissible_value(val, 4, 1, {0, 1}, {0, 1});
  ASSERT_TRUE(witness.has_value());
  for_each_config(4, {0, 1}, 3, 4, [&](const InputConfig& c) {
    EXPECT_TRUE(val.admissible(c, *witness));
    return true;
  });
}

TEST(Classification, SummaryMentionsKeyFacts) {
  const StrongValidity val;
  const auto result = classify(val, 4, 1, {0, 1}, {0, 1});
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("non-trivial"), std::string::npos);
  EXPECT_NE(summary.find("solvable"), std::string::npos);
}
