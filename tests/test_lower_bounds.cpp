// The paper's adversarial constructions, executed as tests:
//
//  * Theorem 1 / Lemma 2 — the partition attack violates Agreement at
//    n = 3t (quorum-based consensus is doomed there) and fails to at
//    n = 3t + 1;
//  * Theorem 4 — in E_base, Universal's correct processes always send more
//    than (ceil(t/2))^2 messages, and the protocol stays safe and live
//    under the ignore-first-⌈t/2⌉-messages adversary.
#include <gtest/gtest.h>

#include "valcon/lb/dolev_reischuk.hpp"
#include "valcon/lb/partition.hpp"

using namespace valcon;

TEST(PartitionAttack, ViolatesAgreementAtN3T) {
  for (const int t : {1, 2}) {
    const auto outcome = lb::run_partition_experiment(3 * t, t, 1);
    EXPECT_TRUE(outcome.agreement_violated) << "t=" << t;
    ASSERT_TRUE(outcome.side_a_value.has_value());
    ASSERT_TRUE(outcome.side_c_value.has_value());
    EXPECT_EQ(*outcome.side_a_value, 0);
    EXPECT_EQ(*outcome.side_c_value, 1);
    // Every correct process decided (both sides mustered quorums).
    EXPECT_EQ(outcome.decisions.size(), static_cast<std::size_t>(2 * t));
  }
}

TEST(PartitionAttack, NoViolationAtN3TPlus1) {
  for (const int t : {1, 2}) {
    const auto outcome = lb::run_partition_experiment(3 * t + 1, t, 1);
    EXPECT_FALSE(outcome.agreement_violated) << "t=" << t;
    // After GST the C side adopts the A side's decision.
    ASSERT_TRUE(outcome.side_a_value.has_value());
    if (outcome.side_c_value.has_value()) {
      EXPECT_EQ(*outcome.side_c_value, *outcome.side_a_value);
    }
  }
}

TEST(PartitionAttack, SeedIndependence) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EXPECT_TRUE(lb::run_partition_experiment(3, 1, seed).agreement_violated);
    EXPECT_FALSE(
        lb::run_partition_experiment(4, 1, seed).agreement_violated);
  }
}

TEST(DolevReischuk, EbaseRespectsQuadraticBound) {
  for (const auto& [n, t] :
       std::vector<std::pair<int, int>>{{4, 1}, {7, 2}, {10, 3}, {13, 4}}) {
    const auto outcome =
        lb::run_ebase_experiment(n, t, harness::VcKind::kAuthenticated, 1);
    EXPECT_TRUE(outcome.bound_respected)
        << "n=" << n << " t=" << t << ": " << outcome.correct_messages
        << " <= " << outcome.bound;
    EXPECT_TRUE(outcome.all_correct_decided) << "n=" << n;
    EXPECT_TRUE(outcome.agreement) << "n=" << n;
  }
}

TEST(DolevReischuk, EbaseNonAuthenticatedAlsoRespectsBound) {
  const auto outcome =
      lb::run_ebase_experiment(4, 1, harness::VcKind::kNonAuthenticated, 1);
  EXPECT_TRUE(outcome.bound_respected);
  EXPECT_TRUE(outcome.all_correct_decided);
  EXPECT_TRUE(outcome.agreement);
}
