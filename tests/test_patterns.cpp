// Proposal-pattern and network-profile dimensions (harness/pattern.hpp,
// harness/net_profile.hpp): registry contents and error paths, pinned
// built-in assignments, the named profiles' delay policies end to end,
// point_at ↔ build() equivalence on a matrix with every axis non-trivial,
// job-count determinism of the "validity" matrix, the CorrectProposal
// solvability flip that motivated the axes (unsolvable at domain 3 under
// rotating, solved at domain 2 under adversarial — ROADMAP open item 1),
// the grace-window / queue-drained satellite, and a regression pinning
// that the legacy "full" wire format is byte-identical to pre-refactor.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "valcon/core/lambda.hpp"
#include "valcon/harness/net_profile.hpp"
#include "valcon/harness/pattern.hpp"
#include "valcon/harness/sweep.hpp"
#include "valcon/harness/sweep_io.hpp"

using namespace valcon;
using namespace valcon::core;
using harness::Fault;
using harness::FaultSpec;
using harness::NetworkProfile;
using harness::PatternEnv;
using harness::PatternRegistry;
using harness::ProposalPattern;
using harness::ScenarioConfig;
using harness::ScenarioMatrix;
using harness::SweepOutcome;
using harness::SweepPoint;
using harness::SweepRunner;
using harness::ValidityKind;
using harness::VcKind;

namespace {

constexpr std::initializer_list<VcKind> kAllVcs = {
    VcKind::kAuthenticated, VcKind::kNonAuthenticated, VcKind::kFast};

std::vector<Value> assign(const std::string& pattern, int n,
                          std::uint64_t seed, Value domain,
                          ValidityKind validity = ValidityKind::kStrong) {
  PatternEnv env;
  env.n = n;
  env.t = 1;
  env.seed = seed;
  env.domain = domain;
  env.validity = validity;
  return PatternRegistry::global().make(pattern)->assign(env);
}

void expect_equal_results(const std::vector<SweepOutcome>& a,
                          const std::vector<SweepOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].point.label);
    EXPECT_EQ(a[i].result.decisions, b[i].result.decisions);
    EXPECT_EQ(a[i].result.decide_times, b[i].result.decide_times);
    EXPECT_EQ(a[i].result.message_complexity, b[i].result.message_complexity);
    EXPECT_EQ(a[i].result.word_complexity, b[i].result.word_complexity);
    EXPECT_EQ(a[i].result.events, b[i].result.events);
    EXPECT_EQ(a[i].result.queue_drained, b[i].result.queue_drained);
    EXPECT_EQ(a[i].error, b[i].error);
  }
}

}  // namespace

// ------------------------------------------------------------ the registry

TEST(PatternRegistry, BuiltinsAreRegistered) {
  auto& registry = PatternRegistry::global();
  for (const char* name : {"rotating", "unanimous", "split", "adversarial"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NE(registry.make(name), nullptr) << name;
  }
  const auto names = registry.names();
  EXPECT_GE(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PatternRegistry, UnknownNameThrowsAndListsRegistered) {
  try {
    static_cast<void>(PatternRegistry::global().make("no-such-pattern"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-pattern"), std::string::npos) << what;
    EXPECT_NE(what.find("rotating"), std::string::npos)
        << "message should list registered patterns: " << what;
  }
}

TEST(PatternRegistry, RejectsDuplicatesEmptyNamesAndNullFactories) {
  PatternRegistry registry;  // a private registry; global() stays clean
  registry.add("mine",
               [] { return PatternRegistry::global().make("rotating"); });
  EXPECT_TRUE(registry.contains("mine"));
  EXPECT_THROW(registry.add("mine", [] {
    return PatternRegistry::global().make("rotating");
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("", [] {
    return PatternRegistry::global().make("rotating");
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("null", PatternRegistry::Factory{}),
               std::invalid_argument);
}

// ----------------------------------------------- pinned built-in patterns

TEST(BuiltinPatterns, AssignmentsAreThePinnedOnes) {
  // rotating is the historical hard-coded assignment (p + seed) % domain;
  // the pinned "full" matrix is generated through it, so the arithmetic
  // must never drift.
  EXPECT_EQ(assign("rotating", 4, 1, 3), (std::vector<Value>{1, 2, 0, 1}));
  EXPECT_EQ(assign("rotating", 4, 2, 3), (std::vector<Value>{2, 0, 1, 2}));
  EXPECT_EQ(assign("unanimous", 4, 5, 3), (std::vector<Value>{2, 2, 2, 2}));
  EXPECT_EQ(assign("split", 4, 1, 3), (std::vector<Value>{1, 1, 2, 2}));
  EXPECT_EQ(assign("split", 7, 1, 3),
            (std::vector<Value>{1, 1, 1, 2, 2, 2, 2}));
}

TEST(BuiltinPatterns, AdversarialConditionsOnTheValidityKind) {
  // CorrectProposal: maximal diversity p % domain.
  EXPECT_EQ(assign("adversarial", 4, 1, 2, ValidityKind::kCorrectProposal),
            (std::vector<Value>{0, 1, 0, 1}));
  EXPECT_EQ(assign("adversarial", 4, 1, 3, ValidityKind::kCorrectProposal),
            (std::vector<Value>{0, 1, 2, 0}));
  // Strong/Weak: unanimity broken by a single dissenter at n-1.
  EXPECT_EQ(assign("adversarial", 4, 1, 3, ValidityKind::kStrong),
            (std::vector<Value>{1, 1, 1, 2}));
  EXPECT_EQ(assign("adversarial", 4, 1, 3, ValidityKind::kWeak),
            (std::vector<Value>{1, 1, 1, 2}));
  // Median/ConvexHull: alternating extremes.
  EXPECT_EQ(assign("adversarial", 4, 1, 3, ValidityKind::kMedian),
            (std::vector<Value>{0, 2, 0, 2}));
  EXPECT_EQ(assign("adversarial", 5, 7, 4, ValidityKind::kConvexHull),
            (std::vector<Value>{0, 3, 0, 3, 0}));
}

// ------------------------------------------------------- network profiles

TEST(NetworkProfiles, NamedLookupAndErrors) {
  EXPECT_EQ(harness::named_network_profile("uniform").policy,
            NetworkProfile::Policy::kNone);
  EXPECT_EQ(harness::named_network_profile("pre-gst-starve").policy,
            NetworkProfile::Policy::kStarvePreGst);
  EXPECT_EQ(harness::named_network_profile("targeted-slow-links").policy,
            NetworkProfile::Policy::kSlowTarget);
  try {
    static_cast<void>(harness::named_network_profile("no-such-profile"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-profile"), std::string::npos) << what;
    EXPECT_NE(what.find("pre-gst-starve"), std::string::npos)
        << "message should list the known profiles: " << what;
  }
}

TEST(NetworkProfiles, DelayPoliciesTargetTheRightLinks) {
  const auto starve = harness::named_network_profile("pre-gst-starve")
                          .make_delay_policy(/*gst=*/5.0);
  ASSERT_TRUE(static_cast<bool>(starve));
  EXPECT_TRUE(starve(0, 1, 2.0).has_value());    // pre-GST: held
  EXPECT_FALSE(starve(0, 1, 5.0).has_value());   // at/after GST: default
  EXPECT_FALSE(starve(0, 1, 9.0).has_value());

  const auto slow = harness::named_network_profile("targeted-slow-links")
                        .make_delay_policy(/*gst=*/0.0);
  ASSERT_TRUE(static_cast<bool>(slow));
  EXPECT_TRUE(slow(0, 2, 1.0).has_value());   // from the target
  EXPECT_TRUE(slow(3, 0, 1.0).has_value());   // into the target
  EXPECT_FALSE(slow(1, 2, 1.0).has_value());  // unrelated link

  EXPECT_FALSE(static_cast<bool>(
      harness::named_network_profile("uniform").make_delay_policy(0.0)));
}

TEST(NetworkProfiles, ValidationRejectsMalformedProfiles) {
  ScenarioConfig cfg;
  cfg.proposals = {1, 1, 1, 1};
  cfg.net_profile = harness::named_network_profile("targeted-slow-links");
  cfg.net_profile.target = 7;  // n = 4
  EXPECT_THROW(harness::validate(cfg), std::invalid_argument);
  cfg.net_profile = NetworkProfile{};
  cfg.net_profile.min_delay = 0.0;
  EXPECT_THROW(harness::validate(cfg), std::invalid_argument);
  cfg.net_profile = NetworkProfile{};
  cfg.net_profile.pre_gst_cap = 0.0;
  EXPECT_THROW(harness::validate(cfg), std::invalid_argument);
  // A minimum latency above delta would invert the post-GST sampling
  // window (the model bound overrides the requested minimum silently).
  cfg.net_profile = NetworkProfile{};
  cfg.net_profile.min_delay = cfg.delta + 1.0;
  EXPECT_THROW(harness::validate(cfg), std::invalid_argument);
  cfg.net_profile = NetworkProfile{};
  EXPECT_NO_THROW(harness::validate(cfg));
}

TEST(NetworkProfiles, EveryProfileStillReachesConsensusUnderEveryStack) {
  // The profiles exhaust the model's delay bounds but never break them, so
  // consensus must still terminate — starved pre-GST runs just pay for it
  // in latency (pinned ordering below for the authenticated stack).
  const StrongValidity validity;
  std::map<std::string, Time> latency;
  for (const VcKind kind : kAllVcs) {
    for (const std::string& name :
         {"uniform", "pre-gst-starve", "targeted-slow-links",
          "sampled-overlay"}) {
      SCOPED_TRACE(harness::to_string(kind) + " / " + name);
      ScenarioConfig cfg;
      cfg.n = 4;
      cfg.t = 1;
      cfg.gst = 5.0;
      cfg.vc = kind;
      cfg.proposals = {1, 1, 1, 1};
      cfg.net_profile = harness::named_network_profile(name);
      const auto result =
          harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
      EXPECT_TRUE(result.all_correct_decided(cfg));
      EXPECT_TRUE(result.agreement());
      EXPECT_EQ(result.common_decision(), std::optional<Value>(1));
      if (kind == VcKind::kAuthenticated) {
        latency[name] = result.last_decision_time;
      }
    }
  }
  // A maximally hostile pre-GST scheduler cannot beat the friendly-capped
  // uniform network.
  EXPECT_GT(latency["pre-gst-starve"], latency["uniform"]);
}

// ----------------------------------------------------- the extended matrix

TEST(PatternMatrix, SizeIsTheCrossProductOverAllNineDimensions) {
  ScenarioMatrix matrix;
  matrix.vc_kinds({VcKind::kAuthenticated, VcKind::kFast})
      .validities({ValidityKind::kStrong, ValidityKind::kMedian})
      .patterns({"rotating", "unanimous", "split"})
      .faults({FaultSpec{"silent", 0}, FaultSpec{"crash", -1}})
      .sizes({{4, 1}})
      .network_profiles({"uniform", "targeted-slow-links"})
      .gsts({0.0, 3.0})
      .seeds({1, 2});
  EXPECT_EQ(matrix.size(), 2u * 2u * 3u * 2u * 1u * 2u * 2u * 1u * 2u);
  const auto points = matrix.build();
  ASSERT_EQ(points.size(), matrix.size());
  std::set<std::string> labels;
  for (const auto& point : points) {
    EXPECT_NO_THROW(harness::validate(point.config)) << point.label;
    // Both axes are non-trivial, so every label carries both tags.
    EXPECT_NE(point.label.find(" pat="), std::string::npos) << point.label;
    EXPECT_NE(point.label.find(" net="), std::string::npos) << point.label;
    EXPECT_EQ(point.pattern_tag, point.pattern);
    EXPECT_EQ(point.net_profile_tag, point.config.net_profile.name);
    labels.insert(point.label);
  }
  EXPECT_EQ(labels.size(), points.size()) << "labels must be unique";
}

TEST(PatternMatrix, PointAtMatchesBuildOnTheValidityMatrix) {
  // point_at stays the one source of truth with the two new digits in the
  // mixed-radix decode; the "validity" matrix exercises ≥ 4 non-trivial
  // dimensions (vc, validity, pattern, fault, net-profile, gst).
  const ScenarioMatrix matrix = harness::named_matrix("validity");
  const auto points = matrix.build();
  ASSERT_EQ(points.size(), matrix.size());
  ASSERT_EQ(points.size(), 720u);
  for (const SweepPoint& expected : points) {
    const SweepPoint lazy = matrix.point_at(expected.index);
    SCOPED_TRACE(expected.label);
    EXPECT_EQ(lazy.index, expected.index);
    EXPECT_EQ(lazy.label, expected.label);
    EXPECT_EQ(lazy.validity, expected.validity);
    EXPECT_EQ(lazy.pattern, expected.pattern);
    EXPECT_EQ(lazy.pattern_tag, expected.pattern_tag);
    EXPECT_EQ(lazy.net_profile_tag, expected.net_profile_tag);
    EXPECT_EQ(lazy.config.proposals, expected.config.proposals);
    EXPECT_EQ(lazy.config.net_profile.name, expected.config.net_profile.name);
    EXPECT_EQ(lazy.config.seed, expected.config.seed);
    EXPECT_EQ(lazy.config.gst, expected.config.gst);
    EXPECT_EQ(lazy.config.faults.size(), expected.config.faults.size());
  }
  EXPECT_THROW(static_cast<void>(matrix.point_at(matrix.size())),
               std::out_of_range);
}

TEST(PatternMatrix, ValidityMatrixIsHealthyAndJobCountDeterministic) {
  const auto points = harness::named_matrix("validity").build();
  const auto jobs1 = SweepRunner(1).run(points);
  const auto jobs4 = SweepRunner(4).run(points);
  expect_equal_results(jobs1, jobs4);
  const auto summary = SweepRunner::summarize(jobs1, 1.0);
  EXPECT_EQ(summary.total, points.size());
  EXPECT_EQ(summary.decided, points.size());
  EXPECT_EQ(summary.agreement_violations, 0u);
  EXPECT_EQ(summary.validity_violations, 0u);
  EXPECT_EQ(summary.errors, 0u);
}

// ------------------------------------- the CorrectProposal solvability flip

TEST(CorrectProposal, UnsolvableUnderTheOldRotatingDomain3Assignment) {
  // ROADMAP open item 1, the "before": with the hard-coded 3-value
  // rotating assignment at n=4, t=1, the decided 3-entry vector is
  // all-distinct, no value reaches multiplicity t+1, and Λ is undefined —
  // every CorrectProposal cell errors out.
  const auto points = ScenarioMatrix()
                          .validities({ValidityKind::kCorrectProposal})
                          .seeds({1, 2})
                          .build();
  for (const auto& outcome : SweepRunner(2).run(points)) {
    EXPECT_FALSE(outcome.error.empty()) << outcome.point.label;
    EXPECT_NE(outcome.error.find("Λ undefined"), std::string::npos)
        << outcome.error;
  }
}

TEST(CorrectProposal, SolvedAtN4T1UnderTheDomain2AdversarialPattern) {
  // The "after" (the acceptance criterion of the axis refactor): over a
  // 2-value domain the pigeonhole guarantees a (t+1)-multiplicity value in
  // every 3-entry vector, so CorrectProposal is solvable even under the
  // maximally diverse adversarial assignment — every correct process
  // decides a value some correct process proposed.
  const auto points = harness::named_matrix("validity").build();
  std::size_t checked = 0;
  for (const auto& point : points) {
    if (point.validity != ValidityKind::kCorrectProposal ||
        point.pattern != "adversarial") {
      continue;
    }
    const SweepOutcome outcome = harness::run_point(point);
    SCOPED_TRACE(point.label);
    EXPECT_TRUE(outcome.error.empty()) << outcome.error;
    EXPECT_TRUE(outcome.decided);
    EXPECT_TRUE(outcome.agreement);
    EXPECT_TRUE(outcome.validity_ok);
    // Spell the property out rather than trusting validity_ok alone: each
    // decision is the proposal of some correct process.
    for (const auto& [pid, decided] : outcome.result.decisions) {
      bool proposed_by_correct = false;
      for (ProcessId p = 0; p < point.config.n; ++p) {
        if (point.config.faults.count(p) == 0 &&
            point.config.proposals[static_cast<std::size_t>(p)] == decided) {
          proposed_by_correct = true;
        }
      }
      EXPECT_TRUE(proposed_by_correct)
          << "process " << pid << " decided " << decided;
    }
    ++checked;
  }
  EXPECT_EQ(checked, 36u);  // 3 stacks x 2 faults x 3 profiles x 2 gsts
}

// ------------------------------------------------------------- the filters

TEST(PatternFilters, KeepOnlyTheNamedValues) {
  const auto points = harness::named_matrix("validity")
                          .keep_patterns({"adversarial"})
                          .keep_network_profiles({"uniform", "pre-gst-starve"})
                          .build();
  ASSERT_EQ(points.size(), 720u / 4u / 3u * 2u);
  for (const auto& point : points) {
    EXPECT_EQ(point.pattern, "adversarial");
    EXPECT_TRUE(point.config.net_profile.name == "uniform" ||
                point.config.net_profile.name == "pre-gst-starve")
        << point.label;
  }
}

TEST(PatternFilters, RejectUnknownNamesAndUnmatchedRequests) {
  // An empty filter would shrink the matrix to zero cells — a sweep that
  // runs nothing and exits green (e.g. `--patterns ,` splitting to {}).
  EXPECT_THROW(harness::named_matrix("validity").keep_patterns({}),
               std::invalid_argument);
  EXPECT_THROW(harness::named_matrix("validity").keep_network_profiles({}),
               std::invalid_argument);
  EXPECT_THROW(harness::named_matrix("validity").keep_patterns({"bogus"}),
               std::invalid_argument);
  EXPECT_THROW(
      harness::named_matrix("validity").keep_network_profiles({"bogus"}),
      std::invalid_argument);
  // Registered, but not swept by the "full" matrix: must not silently
  // produce an empty (or unfiltered) sweep.
  EXPECT_THROW(harness::named_matrix("full").keep_patterns({"unanimous"}),
               std::invalid_argument);
  EXPECT_THROW(
      harness::named_matrix("full").keep_network_profiles({"pre-gst-starve"}),
      std::invalid_argument);
}

// ------------------------------------------------- build-time range checks

TEST(DomainValidation, RejectsProposalsOutsideTheDomainAtBuildTime) {
  // An explicit equivocal_value the domain cannot express used to flow
  // into scenarios silently; it must be rejected when the matrix is built.
  FaultSpec oversized{"equivocate"};
  oversized.equivocal_value = 7;  // domain is [0, 3)
  try {
    static_cast<void>(ScenarioMatrix().faults({oversized}).build());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("equivocal_value 7"),
              std::string::npos)
        << e.what();
  }
  // Widening the domain legitimizes the same spec.
  EXPECT_NO_THROW(static_cast<void>(
      ScenarioMatrix().faults({oversized}).proposal_domain(8).build()));
  // Degenerate domains are rejected in the setter, with the value named.
  EXPECT_THROW(ScenarioMatrix().proposal_domain(1), std::invalid_argument);

  // A custom pattern that strays outside the domain is caught per cell.
  auto& registry = PatternRegistry::global();
  if (!registry.contains("test-out-of-domain")) {
    class OutOfDomain final : public ProposalPattern {
     public:
      std::vector<Value> assign(const PatternEnv& env) const override {
        return std::vector<Value>(static_cast<std::size_t>(env.n),
                                  env.domain);  // one past the end
      }
    };
    registry.add("test-out-of-domain",
                 [] { return std::make_unique<OutOfDomain>(); });
  }
  try {
    static_cast<void>(
        ScenarioMatrix().patterns({"test-out-of-domain"}).build());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("test-out-of-domain"),
              std::string::npos)
        << e.what();
  }
  // And an unknown pattern name fails dimension checking, not cell decode.
  EXPECT_THROW(static_cast<void>(ScenarioMatrix().patterns({"nope"}).build()),
               std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(ScenarioMatrix().network_profiles({"nope"}).build()),
      std::invalid_argument);
}

TEST(DomainValidation, DecodeFailuresOnWorkerThreadsRethrowAtAnyJobCount) {
  // run_range decodes cells on pool threads; a per-cell failure (here the
  // same out-of-domain pattern) must surface as the same loud exception
  // jobs=1 produces, not escape a worker and terminate the process.
  auto& registry = PatternRegistry::global();
  if (!registry.contains("test-out-of-domain")) {
    class OutOfDomain final : public ProposalPattern {
     public:
      std::vector<Value> assign(const PatternEnv& env) const override {
        return std::vector<Value>(static_cast<std::size_t>(env.n),
                                  env.domain);
      }
    };
    registry.add("test-out-of-domain",
                 [] { return std::make_unique<OutOfDomain>(); });
  }
  const ScenarioMatrix matrix =
      ScenarioMatrix()
          .patterns({"rotating", "test-out-of-domain"})
          .seeds({1, 2, 3, 4, 5, 6, 7, 8});
  for (const int jobs : {1, 4}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    EXPECT_THROW(SweepRunner(jobs).run_range(matrix, 0, matrix.size(),
                                             [](SweepOutcome&&) {}),
                 std::invalid_argument);
  }
}

// ------------------------------------------- custom patterns, end to end

TEST(CustomPatterns, RegisterAndSweepEndToEnd) {
  auto& registry = PatternRegistry::global();
  if (!registry.contains("test-all-zero")) {
    class AllZero final : public ProposalPattern {
     public:
      std::vector<Value> assign(const PatternEnv& env) const override {
        return std::vector<Value>(static_cast<std::size_t>(env.n), 0);
      }
    };
    registry.add("test-all-zero", [] { return std::make_unique<AllZero>(); });
  }
  const auto points = ScenarioMatrix()
                          .patterns({"test-all-zero"})
                          .seeds({1, 2})
                          .build();
  ASSERT_EQ(points.size(), 2u);
  for (const auto& outcome : SweepRunner(2).run(points)) {
    EXPECT_TRUE(outcome.error.empty()) << outcome.error;
    EXPECT_TRUE(outcome.decided);
    EXPECT_NE(outcome.point.label.find("pat=test-all-zero"),
              std::string::npos)
        << outcome.point.label;
    // Unanimity of the custom pattern pins the Strong-validity decision.
    EXPECT_EQ(outcome.result.common_decision(), std::optional<Value>(0));
  }
}

// ------------------------------------- grace window / queue-drained state

TEST(GraceWindow, QueueDrainedDistinguishesDrainFromCut) {
  const StrongValidity validity;
  const auto lambda = make_lambda(validity, 4, 1, {0, 1, 2}, {0, 1, 2});

  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.proposals = {1, 1, 1, 0};
  cfg.faults[3] = Fault::equivocate(2);

  // The default 10·delta window lets the equivocator's residual chatter
  // play out: the queue drains on its own.
  const auto relaxed = harness::run_universal(cfg, lambda);
  EXPECT_TRUE(relaxed.all_correct_decided(cfg));
  EXPECT_TRUE(relaxed.queue_drained);

  // A 1·delta window cuts the same run mid-chatter: fewer events, cut
  // recorded — the distinction complexity metrics need (ROADMAP item 2).
  cfg.grace_multiplier = 1.0;
  const auto tight = harness::run_universal(cfg, lambda);
  EXPECT_TRUE(tight.all_correct_decided(cfg));
  EXPECT_FALSE(tight.queue_drained);
  EXPECT_LT(tight.events, relaxed.events);
  EXPECT_EQ(tight.decisions, relaxed.decisions);  // cut only affects the tail

  cfg.grace_multiplier = 0.0;
  EXPECT_THROW(static_cast<void>(harness::run_universal(cfg, lambda)),
               std::invalid_argument);
}

// -------------------------------------------- legacy wire-format regression

TEST(LegacyWireFormat, FullMatrixCellZeroIsByteIdenticalToPreRefactor) {
  // The pinned cross-version determinism reference: cell 0 of "full", run
  // and serialized, must reproduce the pre-refactor bytes exactly — no
  // pattern/net_profile fields, no label tags, identical numbers. (CI
  // additionally pins the sha256 of the whole 720-cell document.)
  const ScenarioMatrix matrix = harness::named_matrix("full");
  const SweepPoint point = matrix.point_at(0);
  EXPECT_EQ(point.pattern, "rotating");
  EXPECT_TRUE(point.pattern_tag.empty());
  EXPECT_TRUE(point.net_profile_tag.empty());
  const SweepOutcome outcome = harness::run_point(point);
  EXPECT_EQ(
      harness::io::outcome_line(outcome),
      "    {\"label\": \"vc=auth(Alg1) val=Strong fault=none n=4 t=1 "
      "gst=0.00 delta=1.00 seed=1\", \"vc\": \"auth(Alg1)\", \"validity\": "
      "\"Strong\", \"n\": 4, \"t\": 1, \"gst\": 0, \"delta\": 1, \"seed\": "
      "1, \"faults\": [], \"decided\": true, \"agreement\": true, "
      "\"validity_ok\": true, \"decisions\": {\"0\": 0, \"1\": 0, \"2\": 0, "
      "\"3\": 0}, \"last_decision_time\": 4.97671658955, "
      "\"message_complexity\": 56, \"word_complexity\": 280, "
      "\"messages_total\": 56, \"events\": 65}");
}

TEST(LegacyWireFormat, LegacyMatricesCarryNoAxisTags) {
  for (const char* name : {"smoke", "full", "byzantine"}) {
    SCOPED_TRACE(name);
    for (const auto& point : harness::named_matrix(name).build()) {
      EXPECT_TRUE(point.pattern_tag.empty()) << point.label;
      EXPECT_TRUE(point.net_profile_tag.empty()) << point.label;
      EXPECT_EQ(point.label.find(" pat="), std::string::npos) << point.label;
      EXPECT_EQ(point.label.find(" net="), std::string::npos) << point.label;
      EXPECT_EQ(point.config.net_profile.name, "uniform");
    }
  }
}
