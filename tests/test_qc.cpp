// Quorum-certificate layer (core/quorum.hpp + the aggregatable scheme in
// crypto/signatures.hpp): aggregate construction and rejection cases,
// collector tallying and speculative aggregation, the wire payload's word
// accounting, end-to-end aggregate-mode decisions on every protocol stack,
// per-vote/aggregate decision equivalence, forge-qc honest rejection, and
// job-count determinism of aggregate-mode sweeps (the "certs" matrix cells
// carry verifies_total, so the byte comparison covers the verify tally).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "valcon/core/quorum.hpp"
#include "valcon/crypto/hash.hpp"
#include "valcon/crypto/signatures.hpp"
#include "valcon/harness/search.hpp"
#include "valcon/harness/sweep.hpp"
#include "valcon/harness/sweep_io.hpp"

using namespace valcon;
using namespace valcon::core;

namespace {

crypto::Hash digest_of(const char* text) {
  return crypto::Hasher("test/qc").add(std::string_view(text)).finish();
}

std::vector<crypto::Signature> sign_all(const crypto::KeyRegistry& keys,
                                        const crypto::Hash& digest,
                                        const std::vector<ProcessId>& who) {
  std::vector<crypto::Signature> sigs;
  for (const ProcessId id : who) {
    sigs.push_back(keys.signer_for(id).sign(digest));
  }
  return sigs;
}

crypto::VoterBitset bitset_of(int n, const std::vector<ProcessId>& who) {
  crypto::VoterBitset b(n);
  for (const ProcessId id : who) b.set(id);
  return b;
}

}  // namespace

// ------------------------------------------------------------ VoterBitset

TEST(VoterBitset, RejectsNonPositiveCapacityAndOutOfRangeSet) {
  EXPECT_THROW(crypto::VoterBitset(0), std::invalid_argument);
  EXPECT_THROW(crypto::VoterBitset(-3), std::invalid_argument);
  crypto::VoterBitset b(4);
  EXPECT_THROW(b.set(4), std::out_of_range);
  EXPECT_THROW(b.set(-1), std::out_of_range);
  EXPECT_FALSE(b.test(4));
  EXPECT_FALSE(b.test(-1));
}

TEST(VoterBitset, PacksCeilNOver64Words) {
  EXPECT_EQ(crypto::VoterBitset(1).words().size(), 1u);
  EXPECT_EQ(crypto::VoterBitset(64).words().size(), 1u);
  EXPECT_EQ(crypto::VoterBitset(65).words().size(), 2u);
  EXPECT_EQ(crypto::VoterBitset(70).words().size(), 2u);
  crypto::VoterBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_EQ(b.count(), 4);
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
}

// -------------------------------------------------------------- aggregate

TEST(Aggregate, RejectsEmptyMixedDigestAndDuplicateSigner) {
  const crypto::KeyRegistry keys(4, 3, 7);
  const auto d1 = digest_of("alpha");
  const auto d2 = digest_of("beta");
  EXPECT_FALSE(crypto::aggregate({}).has_value());

  auto mixed = sign_all(keys, d1, {0, 1});
  mixed.push_back(keys.signer_for(2).sign(d2));
  EXPECT_FALSE(crypto::aggregate(mixed).has_value());

  auto dup = sign_all(keys, d1, {0, 1});
  dup.push_back(keys.signer_for(1).sign(d1));
  EXPECT_FALSE(crypto::aggregate(dup).has_value());
}

TEST(Aggregate, VerifiesExactVoterSetOnly) {
  const crypto::KeyRegistry keys(7, 5, 11);
  const auto d = digest_of("round-3-value-1");
  const std::vector<ProcessId> voters = {0, 2, 5, 6};
  const auto agg = crypto::aggregate(sign_all(keys, d, voters));
  ASSERT_TRUE(agg.has_value());

  const auto exact = bitset_of(7, voters);
  EXPECT_TRUE(keys.verify_aggregate(exact, *agg));

  // Inflated bitset: one claimed voter the aggregate does not cover.
  auto inflated = exact;
  inflated.set(3);
  EXPECT_FALSE(keys.verify_aggregate(inflated, *agg));

  // Shrunken bitset: one genuine voter dropped from the claim.
  EXPECT_FALSE(keys.verify_aggregate(bitset_of(7, {0, 2, 5}), *agg));

  // Tampered aggregate over the genuine voter set.
  auto tampered = *agg;
  tampered.mac += 1;
  EXPECT_FALSE(keys.verify_aggregate(exact, tampered));

  // Mismatched voter universe (capacity != registry n) and empty bitset.
  EXPECT_FALSE(keys.verify_aggregate(bitset_of(8, voters), *agg));
  EXPECT_FALSE(keys.verify_aggregate(crypto::VoterBitset(7), *agg));
}

TEST(Aggregate, WorksWhenNIsNotAMultipleOf64) {
  const crypto::KeyRegistry keys(70, 47, 3);
  const auto d = digest_of("wide-universe");
  const std::vector<ProcessId> voters = {3, 63, 64, 69};
  const auto agg = crypto::aggregate(sign_all(keys, d, voters));
  ASSERT_TRUE(agg.has_value());
  EXPECT_TRUE(keys.verify_aggregate(bitset_of(70, voters), *agg));
  // The same claim short one second-word voter must fail.
  EXPECT_FALSE(keys.verify_aggregate(bitset_of(70, {3, 63, 64}), *agg));
}

// -------------------------------------------------------- QuorumCollector

TEST(QuorumCollector, DedupesBySignerAndTalliesPerDigest) {
  const crypto::KeyRegistry keys(4, 3, 5);
  const auto d1 = digest_of("one");
  const auto d2 = digest_of("two");
  QuorumCollector c;
  EXPECT_TRUE(c.add(keys.signer_for(0).sign(d1)));
  EXPECT_FALSE(c.add(keys.signer_for(0).sign(d1)));  // repeat ignored
  EXPECT_TRUE(c.add(keys.signer_for(1).sign(d1)));
  EXPECT_TRUE(c.add(keys.signer_for(0).sign(d2)));  // other digest: new tally
  EXPECT_EQ(c.count(d1), 2);
  EXPECT_EQ(c.count(d2), 1);
  EXPECT_EQ(c.digests().size(), 2u);
  EXPECT_EQ(c.partials(d1).size(), 2u);
}

TEST(QuorumCollector, SubQuorumNeverCertifies) {
  const crypto::KeyRegistry keys(4, 3, 5);
  const auto d = digest_of("needs-three");
  QuorumCollector c;
  c.add(keys.signer_for(0).sign(d));
  c.add(keys.signer_for(1).sign(d));
  EXPECT_FALSE(c.certify(d, 4, 3).has_value());
  c.add(keys.signer_for(2).sign(d));
  const auto cert = c.certify(d, 4, 3);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->voters.count(), 3);
  EXPECT_TRUE(keys.verify_aggregate(cert->voters, cert->agg));
}

TEST(QuorumCollector, CertifyVerifiedPrunesAPoisonedBatchOnce) {
  const crypto::KeyRegistry keys(4, 3, 9);
  const auto d = digest_of("poisoned");
  QuorumCollector c;
  c.add(keys.signer_for(0).sign(d));
  crypto::Signature bad = keys.signer_for(1).sign(d);
  bad.mac ^= 0x5a5a;  // a vote signature the registry rejects
  c.add(bad);
  c.add(keys.signer_for(2).sign(d));
  c.add(keys.signer_for(3).sign(d));

  // The first-three batch {0, bad 1, 2} fails its one aggregate check;
  // certify_verified prunes the rejected partial and retries with {0,2,3}.
  const auto cert = certify_verified(c, keys, d, 4, 3);
  ASSERT_TRUE(cert.has_value());
  EXPECT_FALSE(cert->voters.test(1));
  EXPECT_TRUE(keys.verify_aggregate(cert->voters, cert->agg));
  EXPECT_EQ(c.count(d), 3);  // the poisoned vote is gone
}

TEST(QuorumCollector, RivalryReportsMarginAndRivalVotes) {
  const crypto::KeyRegistry keys(4, 3, 5);
  const auto d1 = digest_of("winner");
  const auto d2 = digest_of("rival");
  QuorumCollector c;
  c.add(keys.signer_for(0).sign(d1));
  c.add(keys.signer_for(1).sign(d1));
  c.add(keys.signer_for(2).sign(d1));
  c.add(keys.signer_for(3).sign(d2));
  const auto [margin, rival_votes] = c.rivalry(d1);
  EXPECT_EQ(margin, 2);
  EXPECT_EQ(rival_votes, 1u);
}

// ------------------------------------------------ QuorumCertificatePayload

TEST(QuorumCertificatePayload, CountsHeaderAggregateBitsetAndBodyWords) {
  crypto::VoterBitset voters(70);
  voters.set(0);
  const QuorumCertificatePayload p(1, 3, -1, voters, {},
                                   std::vector<std::uint8_t>(9, 0xab));
  EXPECT_STREQ(p.type_name(), "core/quorum-cert");
  // 2 header/aggregate words + 2 bitset words + ceil(9/8) body words.
  EXPECT_EQ(p.size_words(), 6u);
}

// ------------------------------------------------------------- end to end

namespace {

harness::Candidate qc_candidate(harness::VcKind vc, CertMode mode,
                                const std::string& strategy) {
  harness::Candidate c;
  c.strategy = strategy;
  c.vc = vc;
  c.n = 4;
  c.t = 1;
  c.cert = mode;
  c.seed = 2;
  return c;
}

}  // namespace

TEST(AggregateEndToEnd, EveryStackDecidesCleanlyInAggregateMode) {
  for (const harness::VcKind vc :
       {harness::VcKind::kAuthenticated, harness::VcKind::kNonAuthenticated,
        harness::VcKind::kFast}) {
    const auto outcome =
        harness::evaluate(qc_candidate(vc, CertMode::kAggregate, "none"));
    EXPECT_EQ(harness::classify(outcome), harness::Verdict::kClean)
        << harness::vc_token(vc);
    EXPECT_FALSE(outcome.result.decisions.empty()) << harness::vc_token(vc);
  }
}

TEST(AggregateEndToEnd, DecidesTheSameValuesAsPerVote) {
  // Unanimous proposals force the decision, so the two backends must agree
  // on the decided values exactly, not just both be clean.
  for (const harness::VcKind vc :
       {harness::VcKind::kAuthenticated, harness::VcKind::kNonAuthenticated,
        harness::VcKind::kFast}) {
    auto per_vote = qc_candidate(vc, CertMode::kPerVote, "none");
    per_vote.pattern = "unanimous";
    auto agg = per_vote;
    agg.cert = CertMode::kAggregate;
    const auto a = harness::evaluate(per_vote);
    const auto b = harness::evaluate(agg);
    EXPECT_EQ(harness::classify(a), harness::Verdict::kClean);
    EXPECT_EQ(harness::classify(b), harness::Verdict::kClean);
    EXPECT_EQ(a.result.decisions, b.result.decisions) << harness::vc_token(vc);
  }
}

TEST(AggregateEndToEnd, AggregationCutsVerifiesAndNonauthMessages) {
  // The auth stack is signature-heavy: one aggregate check per quorum must
  // beat one check per vote. The nonauth stack relays votes all-to-all, so
  // the QC broadcast must cut total messages.
  const auto auth_pv = harness::evaluate(
      qc_candidate(harness::VcKind::kAuthenticated, CertMode::kPerVote,
                   "none"));
  const auto auth_agg = harness::evaluate(
      qc_candidate(harness::VcKind::kAuthenticated, CertMode::kAggregate,
                   "none"));
  EXPECT_LT(auth_agg.result.verifies_total, auth_pv.result.verifies_total);

  const auto na_pv = harness::evaluate(
      qc_candidate(harness::VcKind::kNonAuthenticated, CertMode::kPerVote,
                   "none"));
  const auto na_agg = harness::evaluate(
      qc_candidate(harness::VcKind::kNonAuthenticated, CertMode::kAggregate,
                   "none"));
  EXPECT_LT(na_agg.result.messages_total, na_pv.result.messages_total);
}

// ---------------------------------------------------------------- forge-qc

TEST(ForgeQc, HonestProcessesRejectEveryForgery) {
  // A forge-qc process floods forged certificates (inflated bitset,
  // tampered aggregate) under n > 3t. Every property must survive on every
  // stack — the whole point of receivers recomputing the expected digest
  // and paying the one aggregate check.
  for (const harness::VcKind vc :
       {harness::VcKind::kAuthenticated, harness::VcKind::kNonAuthenticated,
        harness::VcKind::kFast}) {
    const auto outcome =
        harness::evaluate(qc_candidate(vc, CertMode::kAggregate, "forge-qc"));
    EXPECT_EQ(harness::classify(outcome), harness::Verdict::kClean)
        << harness::vc_token(vc);
  }
}

TEST(ForgeQc, InertInPerVoteMode) {
  // No QCs flow per-vote, so the strategy degrades to a correct process;
  // keeping it in the default (sound-regime) search pool is safe.
  const auto outcome = harness::evaluate(qc_candidate(
      harness::VcKind::kAuthenticated, CertMode::kPerVote, "forge-qc"));
  EXPECT_EQ(harness::classify(outcome), harness::Verdict::kClean);
}

// ----------------------------------------------------------- determinism

TEST(CertsMatrix, OutcomeBytesAreJobCountIndependent) {
  // The "certs" matrix declares the cert axis non-trivially, so every cell
  // line carries cert_mode and verifies_total; byte-comparing the lines
  // across job counts therefore pins the aggregate backend's verify tally
  // (and everything else) as a function of (config, seed) only.
  const harness::ScenarioMatrix matrix = harness::named_matrix("certs");
  const auto lines_at = [&](int jobs) {
    std::vector<std::string> lines;
    lines.reserve(matrix.size());
    harness::SweepRunner(jobs).run_range(
        matrix, 0, matrix.size(), [&](harness::SweepOutcome&& o) {
          lines.push_back(harness::io::outcome_line(o));
        });
    return lines;
  };
  const std::vector<std::string> serial = lines_at(1);
  ASSERT_EQ(serial.size(), matrix.size());
  bool saw_aggregate = false;
  for (const std::string& line : serial) {
    EXPECT_NE(line.find("\"cert_mode\": \""), std::string::npos);
    EXPECT_NE(line.find("\"verifies_total\": "), std::string::npos);
    if (line.find("\"cert_mode\": \"aggregate\"") != std::string::npos) {
      saw_aggregate = true;
    }
  }
  EXPECT_TRUE(saw_aggregate);
  EXPECT_EQ(serial, lines_at(3));
}
