// Unit tests: the Quad-style consensus core — agreement, termination,
// external-validity gating (verify(v, Σ)), Byzantine/silent leaders, view
// and epoch changes, delayed starts, and the O(n^2) message pattern.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>

#include "valcon/consensus/quad.hpp"
#include "valcon/sim/adversary.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;
using namespace valcon::sim;
using namespace valcon::consensus;

namespace {

/// A trivial Quad value: an integer with an embedded "proof" flag.
class IntProposal final : public QuadProposal {
 public:
  IntProposal(Value v, bool proof_ok = true) : value_(v), proof_ok_(proof_ok) {}
  [[nodiscard]] Value value() const { return value_; }
  [[nodiscard]] bool proof_ok() const { return proof_ok_; }
  [[nodiscard]] crypto::Hash digest() const override {
    return crypto::Hasher("test/int-proposal").add(value_).finish();
  }
  [[nodiscard]] std::size_t size_words() const override { return 1; }

 private:
  Value value_;
  bool proof_ok_;
};

QuadVerifier proof_verifier() {
  return [](Context&, const QuadProposal& p) {
    const auto* ip = dynamic_cast<const IntProposal*>(&p);
    return ip != nullptr && ip->proof_ok();
  };
}

class QuadHost final : public Mux {
 public:
  QuadHost(std::optional<Value> input, std::map<ProcessId, Value>* decisions,
           QuadOptions options = {}, bool bad_proof = false)
      : input_(input), bad_proof_(bad_proof), decisions_(decisions) {
    quad_ = &make_child<Quad>(
        proof_verifier(),
        [this](Context& ctx, const QuadProposalPtr& v) {
          const auto* ip = dynamic_cast<const IntProposal*>(v.get());
          if (ip != nullptr) decisions_->emplace(ctx.id(), ip->value());
        },
        options);
  }

 protected:
  void own_start(Context&) override {
    if (input_.has_value()) {
      quad_->propose(child_context(0), std::make_shared<const IntProposal>(
                                           *input_, !bad_proof_));
    }
  }

 private:
  std::optional<Value> input_;
  bool bad_proof_;
  std::map<ProcessId, Value>* decisions_;
  Quad* quad_;
};

SimConfig cfg(int n, int t, std::uint64_t seed, Time gst = 0.0) {
  SimConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.net.gst = gst;
  c.net.delta = 1.0;
  return c;
}

}  // namespace

TEST(Quad, AllCorrectDecideACommonProposedValue) {
  Simulator sim(cfg(4, 1, 1));
  std::map<ProcessId, Value> decisions;
  for (ProcessId p = 0; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<QuadHost>(100 + p, &decisions)));
  }
  sim.run(1e6);
  ASSERT_EQ(decisions.size(), 4u);
  std::optional<Value> seen;
  for (const auto& [p, v] : decisions) {
    if (seen.has_value()) {
      EXPECT_EQ(v, *seen);
    }
    seen = v;
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 103);
  }
}

TEST(Quad, SilentLeaderViewChangeStillDecides) {
  Simulator sim(cfg(4, 1, 2));
  std::map<ProcessId, Value> decisions;
  sim.mark_faulty(0);  // leader of view 0
  sim.add_process(0, std::make_unique<SilentProcess>());
  for (ProcessId p = 1; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<QuadHost>(100 + p, &decisions)));
  }
  sim.run(1e6);
  ASSERT_EQ(decisions.size(), 3u);
  std::optional<Value> seen;
  for (const auto& [p, v] : decisions) {
    if (seen.has_value()) {
      EXPECT_EQ(v, *seen);
    }
    seen = v;
  }
}

TEST(Quad, TwoSilentOfSevenStillDecides) {
  Simulator sim(cfg(7, 2, 3));
  std::map<ProcessId, Value> decisions;
  for (const ProcessId f : {0, 1}) {  // two consecutive leaders silent
    sim.mark_faulty(f);
    sim.add_process(f, std::make_unique<SilentProcess>());
  }
  for (ProcessId p = 2; p < 7; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<QuadHost>(7, &decisions)));
  }
  sim.run(1e6);
  EXPECT_EQ(decisions.size(), 5u);
  for (const auto& [p, v] : decisions) EXPECT_EQ(v, 7);
}

TEST(Quad, InvalidProofNeverDecided) {
  // P0 (view-0 leader) proposes a value whose proof fails verify():
  // correct processes must not decide it; the next leader's value wins.
  Simulator sim(cfg(4, 1, 4));
  std::map<ProcessId, Value> decisions;
  sim.mark_faulty(0);
  sim.add_process(0, std::make_unique<ComponentHost>(
                         std::make_unique<QuadHost>(666, &decisions, QuadOptions{},
                                                    /*bad_proof=*/true)));
  for (ProcessId p = 1; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<QuadHost>(100 + p, &decisions)));
  }
  sim.run(1e6);
  decisions.erase(0);
  ASSERT_EQ(decisions.size(), 3u);
  for (const auto& [p, v] : decisions) EXPECT_NE(v, 666);
}

TEST(Quad, DecidesAcrossEpochBoundary) {
  // All leaders of epoch 0 are silent... impossible (only t can be), so
  // instead: delay every correct process's start beyond an epoch and let
  // epoch certificates resynchronize. Starts staggered by 15 delta with
  // GST late.
  Simulator sim(cfg(4, 1, 5, /*gst=*/50.0));
  std::map<ProcessId, Value> decisions;
  for (ProcessId p = 0; p < 4; ++p) {
    sim.add_process(p,
                    std::make_unique<ComponentHost>(
                        std::make_unique<QuadHost>(p, &decisions)),
                    /*start_time=*/p * 15.0);
  }
  sim.run(1e6);
  ASSERT_EQ(decisions.size(), 4u);
  std::optional<Value> seen;
  for (const auto& [p, v] : decisions) {
    if (seen.has_value()) {
      EXPECT_EQ(v, *seen);
    }
    seen = v;
  }
}

TEST(Quad, LateProposerStillReachesDecision) {
  // One correct process proposes only after 40 delta (models Algorithm 1's
  // "correct processes might start Quad after GST + delta" note).
  class LateQuadHost final : public Mux {
   public:
    LateQuadHost(Value input, Time at, std::map<ProcessId, Value>* decisions)
        : input_(input), at_(at), decisions_(decisions) {
      quad_ = &make_child<Quad>(
          proof_verifier(),
          [this](Context& ctx, const QuadProposalPtr& v) {
            const auto* ip = dynamic_cast<const IntProposal*>(v.get());
            if (ip != nullptr) decisions_->emplace(ctx.id(), ip->value());
          });
    }

   protected:
    void own_start(Context& ctx) override { set_own_timer(ctx, at_, 1); }
    void own_timer(Context&, std::uint64_t) override {
      quad_->propose(child_context(0),
                     std::make_shared<const IntProposal>(input_));
    }

   private:
    Value input_;
    Time at_;
    std::map<ProcessId, Value>* decisions_;
    Quad* quad_;
  };

  Simulator sim(cfg(4, 1, 6));
  std::map<ProcessId, Value> decisions;
  for (ProcessId p = 0; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<LateQuadHost>(
                               9, p == 0 ? 40.0 : 1.0, &decisions)));
  }
  sim.run(1e6);
  ASSERT_EQ(decisions.size(), 4u);
  for (const auto& [p, v] : decisions) EXPECT_EQ(v, 9);
}

TEST(Quad, MessageComplexityScalesQuadratically) {
  std::vector<double> ns;
  std::vector<double> msgs;
  for (const int n : {4, 8, 16, 32}) {
    Simulator sim(cfg(n, (n - 1) / 3, 7));
    std::map<ProcessId, Value> decisions;
    for (ProcessId p = 0; p < n; ++p) {
      sim.add_process(p, std::make_unique<ComponentHost>(
                             std::make_unique<QuadHost>(1, &decisions)));
    }
    sim.run(1e6);
    EXPECT_EQ(decisions.size(), static_cast<std::size_t>(n));
    ns.push_back(n);
    msgs.push_back(static_cast<double>(sim.metrics().message_complexity()));
  }
  // log-log slope of messages vs n should be ~2 (decide echo dominates).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const double lx = std::log(ns[i]);
    const double ly = std::log(msgs[i]);
    sx += lx; sy += ly; sxx += lx * lx; sxy += lx * ly;
  }
  const double m = static_cast<double>(ns.size());
  const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
  EXPECT_GT(slope, 1.5);
  EXPECT_LT(slope, 2.5);
}

TEST(Quad, DecideEchoAblationStillLive) {
  QuadOptions options;
  options.decide_echo = false;
  Simulator sim(cfg(4, 1, 8));
  std::map<ProcessId, Value> decisions;
  for (ProcessId p = 0; p < 4; ++p) {
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<QuadHost>(3, &decisions, options)));
  }
  sim.run(1e6);
  ASSERT_EQ(decisions.size(), 4u);
  for (const auto& [p, v] : decisions) EXPECT_EQ(v, 3);
}

class QuadSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QuadSweep, AgreementUnderSilentFaults) {
  const auto [n, seed_int] = GetParam();
  const int t = (n - 1) / 3;
  Simulator sim(cfg(n, t, static_cast<std::uint64_t>(seed_int)));
  std::map<ProcessId, Value> decisions;
  for (ProcessId p = 0; p < n; ++p) {
    if (p < t) {  // silence the first t (they lead the first views)
      sim.mark_faulty(p);
      sim.add_process(p, std::make_unique<SilentProcess>());
    } else {
      sim.add_process(p, std::make_unique<ComponentHost>(
                             std::make_unique<QuadHost>(p, &decisions)));
    }
  }
  sim.run(1e6);
  ASSERT_EQ(decisions.size(), static_cast<std::size_t>(n - t));
  std::optional<Value> seen;
  for (const auto& [p, v] : decisions) {
    if (seen.has_value()) {
      EXPECT_EQ(v, *seen);
    }
    seen = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuadSweep,
                         ::testing::Combine(::testing::Values(4, 7, 10, 13),
                                            ::testing::Range(1, 5)));
