// Unit + property tests: GF(2^8), the Reed-Solomon codec (including
// Berlekamp-Welch error correction) and the ADD protocol (Appendix B.3's
// data-dissemination substrate), with Byzantine share corruption.
#include <gtest/gtest.h>

#include <map>

#include "valcon/consensus/add.hpp"
#include "valcon/consensus/gf256.hpp"
#include "valcon/consensus/reed_solomon.hpp"
#include "valcon/sim/adversary.hpp"
#include "valcon/sim/rng.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;
using namespace valcon::sim;
using namespace valcon::consensus;

// ------------------------------------------------------------------ GF

TEST(Gf256, FieldAxiomsSpotChecks) {
  // 3 * 7 = 9 under the AES polynomial; every nonzero element inverts.
  EXPECT_EQ(gf256::mul(3, 7), 9);
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                         gf256::inv(static_cast<std::uint8_t>(a))),
              1);
  }
}

TEST(Gf256, MultiplicationCommutesAndDistributes) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  std::uint8_t acc = 1;
  for (unsigned e = 0; e < 20; ++e) {
    EXPECT_EQ(gf256::pow(5, e), acc);
    acc = gf256::mul(acc, 5);
  }
}

// ------------------------------------------------------------------- RS

namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

}  // namespace

TEST(ReedSolomon, RoundtripNoErrors) {
  Rng rng(7);
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {4, 2}, {7, 3}, {10, 4}, {31, 11}}) {
    for (const std::size_t len : {0u, 1u, 5u, 64u, 200u}) {
      const ReedSolomon rs(n, k);
      const auto data = random_bytes(rng, len);
      const auto shares = rs.encode(data);
      ASSERT_EQ(shares.size(), static_cast<std::size_t>(n));
      std::vector<std::optional<std::vector<std::uint8_t>>> received(
          static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) received[static_cast<std::size_t>(j)] = shares[static_cast<std::size_t>(j)];
      const auto decoded = rs.decode(received, 0);
      ASSERT_TRUE(decoded.has_value()) << "n=" << n << " k=" << k;
      EXPECT_EQ(*decoded, data);
    }
  }
}

TEST(ReedSolomon, DecodesFromExactlyKShares) {
  Rng rng(11);
  const ReedSolomon rs(7, 3);
  const auto data = random_bytes(rng, 40);
  const auto shares = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> received(7);
  received[1] = shares[1];
  received[4] = shares[4];
  received[6] = shares[6];
  const auto decoded = rs.decode(received, 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, FailsBelowKShares) {
  const ReedSolomon rs(7, 3);
  const auto shares = rs.encode({1, 2, 3, 4});
  std::vector<std::optional<std::vector<std::uint8_t>>> received(7);
  received[0] = shares[0];
  received[5] = shares[5];
  EXPECT_FALSE(rs.decode(received, 0).has_value());
}

// Property sweep: correct up to floor((m - k) / 2) corrupted shares.
class RsErrorSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RsErrorSweep, CorrectsErrors) {
  const auto [n, k, errors] = GetParam();
  ASSERT_LE(2 * errors, n - k) << "generator emitted an invalid combination";
  Rng rng(static_cast<std::uint64_t>(n * 1000 + k * 10 + errors));
  const ReedSolomon rs(n, k);
  const auto data = random_bytes(rng, 50);
  const auto shares = rs.encode(data);
  std::vector<std::optional<std::vector<std::uint8_t>>> received(
      static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) received[static_cast<std::size_t>(j)] = shares[static_cast<std::size_t>(j)];
  // Corrupt `errors` distinct shares (every byte, as a Byzantine would).
  for (int e = 0; e < errors; ++e) {
    for (auto& byte : *received[static_cast<std::size_t>(e)]) byte ^= 0xA5;
  }
  const auto decoded = rs.decode(received, errors);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

// Cross product of n x k x errors restricted to the correction radius
// 2 * errors <= n - k, so every instantiated test asserts something.
[[nodiscard]] inline std::vector<std::tuple<int, int, int>>
valid_rs_error_params() {
  std::vector<std::tuple<int, int, int>> params;
  for (const int n : {7, 10, 13}) {
    for (const int k : {3, 4}) {
      for (int errors = 0; errors <= 3; ++errors) {
        if (2 * errors <= n - k) params.emplace_back(n, k, errors);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RsErrorSweep,
                         ::testing::ValuesIn(valid_rs_error_params()));

TEST(ReedSolomon, RejectsWrongLengthShares) {
  const ReedSolomon rs(4, 2);
  const auto shares = rs.encode({9, 9, 9});
  std::vector<std::optional<std::vector<std::uint8_t>>> received(4);
  received[0] = shares[0];
  received[1] = shares[1];
  received[2] = std::vector<std::uint8_t>{1};  // malformed: skipped
  const auto decoded = rs.decode(received, 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (std::vector<std::uint8_t>{9, 9, 9}));
}

// ------------------------------------------------------------------ ADD

namespace {

class AddHost final : public Mux {
 public:
  AddHost(std::optional<std::vector<std::uint8_t>> input,
          std::map<ProcessId, std::vector<std::uint8_t>>* outputs)
      : input_(std::move(input)), outputs_(outputs) {
    add_ = &make_child<Add>(
        [this](Context& ctx, const std::vector<std::uint8_t>& m) {
          outputs_->emplace(ctx.id(), m);
        });
  }

 protected:
  void own_start(Context&) override {
    add_->input(child_context(0), input_);
  }

 private:
  std::optional<std::vector<std::uint8_t>> input_;
  std::map<ProcessId, std::vector<std::uint8_t>>* outputs_;
  Add* add_;
};

SimConfig add_cfg(int n, int t, std::uint64_t seed) {
  SimConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  return c;
}

}  // namespace

TEST(Add, EveryoneOutputsM_WithTPlus1Holders) {
  const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5, 6, 7};
  for (const auto& [n, t] : std::vector<std::pair<int, int>>{{4, 1}, {7, 2}}) {
    Simulator sim(add_cfg(n, t, 1));
    std::map<ProcessId, std::vector<std::uint8_t>> outputs;
    for (ProcessId p = 0; p < n; ++p) {
      // Exactly t+1 holders; the rest input ⊥.
      std::optional<std::vector<std::uint8_t>> input;
      if (p <= t) input = blob;
      sim.add_process(p, std::make_unique<ComponentHost>(
                             std::make_unique<AddHost>(input, &outputs)));
    }
    sim.run(1e5);
    ASSERT_EQ(outputs.size(), static_cast<std::size_t>(n)) << "n=" << n;
    for (const auto& [pid, m] : outputs) EXPECT_EQ(m, blob);
  }
}

TEST(Add, ToleratesSilentFaulty) {
  const std::vector<std::uint8_t> blob = {42, 43, 44};
  Simulator sim(add_cfg(7, 2, 2));
  std::map<ProcessId, std::vector<std::uint8_t>> outputs;
  for (ProcessId p = 0; p < 7; ++p) {
    if (p >= 5) {
      sim.mark_faulty(p);
      sim.add_process(p, std::make_unique<SilentProcess>());
      continue;
    }
    std::optional<std::vector<std::uint8_t>> input;
    if (p < 3) input = blob;  // t+1 = 3 holders
    sim.add_process(p, std::make_unique<ComponentHost>(
                           std::make_unique<AddHost>(input, &outputs)));
  }
  sim.run(1e5);
  ASSERT_EQ(outputs.size(), 5u);
  for (const auto& [pid, m] : outputs) EXPECT_EQ(m, blob);
}

TEST(Add, ByzantineGarbageSharesCannotCorruptOutput) {
  // Faulty processes participate but feed a *different* blob: their
  // disperse/reconstruct shares are inconsistent garbage from the point of
  // view of the true blob. Correct processes must still output the true M
  // (online error correction handles up to t wrong shares).
  const std::vector<std::uint8_t> blob = {10, 20, 30, 40, 50};
  const std::vector<std::uint8_t> junk = {99, 98, 97, 96, 95};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Simulator sim(add_cfg(7, 2, seed));
    std::map<ProcessId, std::vector<std::uint8_t>> outputs;
    for (ProcessId p = 0; p < 7; ++p) {
      const bool faulty = p >= 5;
      if (faulty) sim.mark_faulty(p);
      std::optional<std::vector<std::uint8_t>> input;
      if (faulty) {
        input = junk;  // equivocating holder
      } else if (p < 3) {
        input = blob;  // t+1 = 3 correct holders
      }
      sim.add_process(p, std::make_unique<ComponentHost>(
                             std::make_unique<AddHost>(input, &outputs)));
    }
    sim.run(1e5);
    for (ProcessId p = 0; p < 5; ++p) {
      ASSERT_TRUE(outputs.count(p)) << "P" << p << " seed " << seed;
      EXPECT_EQ(outputs.at(p), blob) << "P" << p << " seed " << seed;
    }
  }
}
