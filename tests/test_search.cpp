// Seeded adversary search (harness/search.hpp): verdict classification and
// wire tokens, candidate resolution (bounded horizon, fault placement),
// near-miss scoring, job-count-independent determinism of the whole
// report, shrinker idempotence and minimization, the planted colluding
// violations the search must find and shrink, the counterexample cell
// round trip, and the ExecutionReport edge cases the verdicts rest on
// (pruned faulty decisions, no-decision runs, grace-cut vs genuine stall,
// queue_drained both ways).
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "valcon/core/execution_checker.hpp"
#include "valcon/harness/search.hpp"
#include "valcon/harness/validity_kind.hpp"

using namespace valcon;
using harness::Candidate;
using harness::classify;
using harness::CorpusCell;
using harness::Counterexample;
using harness::evaluate;
using harness::SearchOptions;
using harness::SearchReport;
using harness::SweepOutcome;
using harness::ValidityKind;
using harness::VcKind;
using harness::Verdict;

namespace {

/// The unsound mining space the corpus came from: n <= 3t sizes where
/// violations are expected, over a tight budget so tests stay fast.
SearchOptions unsound_options(std::uint64_t search_seed) {
  SearchOptions options;
  options.space.sizes = {{3, 1}, {4, 2}};
  options.search_seed = search_seed;
  options.budget = 48;
  options.population = 12;
  return options;
}

}  // namespace

// ------------------------------------------------------ verdicts & tokens

TEST(Verdict, ClassifyNamesTheMostSevereViolation) {
  SweepOutcome outcome;
  outcome.decided = true;
  EXPECT_EQ(classify(outcome), Verdict::kClean);
  outcome.decided = false;
  EXPECT_EQ(classify(outcome), Verdict::kTermination);
  outcome.validity_ok = false;
  EXPECT_EQ(classify(outcome), Verdict::kValidity);
  outcome.agreement = false;  // disagreement outranks the validity breach
  EXPECT_EQ(classify(outcome), Verdict::kAgreement);
  outcome.error = "boom";  // an errored run outranks everything
  EXPECT_EQ(classify(outcome), Verdict::kError);
}

TEST(Verdict, TokensRoundTrip) {
  for (const Verdict v :
       {Verdict::kClean, Verdict::kTermination, Verdict::kAgreement,
        Verdict::kValidity, Verdict::kError}) {
    const auto back = harness::verdict_from_token(harness::verdict_token(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
  EXPECT_FALSE(harness::verdict_from_token("bogus").has_value());
}

TEST(Verdict, VcAndValidityTokensRoundTrip) {
  for (const VcKind vc : {VcKind::kAuthenticated, VcKind::kNonAuthenticated,
                          VcKind::kFast}) {
    const auto back = harness::vc_from_token(harness::vc_token(vc));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, vc);
  }
  for (const ValidityKind kind :
       {ValidityKind::kStrong, ValidityKind::kWeak,
        ValidityKind::kCorrectProposal, ValidityKind::kMedian,
        ValidityKind::kConvexHull}) {
    const auto back =
        harness::validity_from_token(harness::validity_token(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(harness::vc_from_token("auth(Alg1)").has_value());
  EXPECT_FALSE(harness::validity_from_token("Strong").has_value());
}

// ---------------------------------------------------- candidate resolution

TEST(CandidatePoint, ResolvesFaultsAndBoundsTheHorizon) {
  Candidate c;  // silent, fault_count -1, n=4, t=1, gst=0, delta=1
  c.gst = 5.0;
  const auto point = harness::candidate_point(c);
  ASSERT_EQ(point.config.faults.size(), 1u);
  EXPECT_EQ(point.config.faults.begin()->first, 3);  // highest id faulty
  EXPECT_DOUBLE_EQ(point.config.horizon, 5.0 + 200.0);
  EXPECT_TRUE(point.near_miss);

  Candidate none = c;
  none.strategy = "none";
  EXPECT_TRUE(harness::candidate_point(none).config.faults.empty());
}

TEST(CandidatePoint, UnknownStrategySurfacesAsAnErrorVerdict) {
  Candidate c;
  c.strategy = "no-such-strategy";
  const SweepOutcome outcome = evaluate(c);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_EQ(classify(outcome), Verdict::kError);
}

TEST(NearMissScore, RewardsCloserRuns) {
  SweepOutcome errored;
  errored.error = "boom";
  errored.result.min_vote_margin = 0;
  EXPECT_EQ(harness::near_miss_score(errored), 0.0);

  SweepOutcome far;
  far.result.queue_drained = true;
  SweepOutcome sliver = far;
  sliver.result.min_vote_margin = 0;  // one flipped vote from a rival QC
  SweepOutcome comfortable = far;
  comfortable.result.min_vote_margin = 5;
  EXPECT_GT(harness::near_miss_score(sliver),
            harness::near_miss_score(comfortable));
  EXPECT_GT(harness::near_miss_score(comfortable),
            harness::near_miss_score(far));

  SweepOutcome conflicting = far;
  conflicting.result.conflicting_votes = 4;
  EXPECT_GT(harness::near_miss_score(conflicting),
            harness::near_miss_score(far));
}

// ------------------------------------------------------------ determinism

TEST(Search, ReportBytesIdenticalAcrossJobCounts) {
  SearchOptions options = unsound_options(42);
  options.jobs = 1;
  const std::string jobs1 = harness::report_json(harness::run_search(options));
  options.jobs = 4;
  const std::string jobs4 = harness::report_json(harness::run_search(options));
  options.jobs = 8;
  const std::string jobs8 = harness::report_json(harness::run_search(options));
  EXPECT_EQ(jobs1, jobs4);
  EXPECT_EQ(jobs1, jobs8);
  // The unsound space must actually yield violations, or the byte
  // comparison above proves nothing about the interesting code paths.
  const SearchReport report = harness::run_search(options);
  EXPECT_FALSE(report.counterexamples.empty());
}

TEST(Search, SoundSpaceStaysClean) {
  // Over the default space (n > 3t) any violation is a simulator or
  // protocol bug — the same invariant the CI smoke run asserts.
  SearchOptions options;
  options.budget = 32;
  options.population = 8;
  options.jobs = 4;
  const SearchReport report = harness::run_search(options);
  EXPECT_TRUE(report.counterexamples.empty());
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.evaluated, 32u);
  // Clean candidates still rank by near-miss score.
  EXPECT_TRUE(report.best_candidate.has_value());
  EXPECT_GT(report.best_score, 0.0);
}

// -------------------------------------------------- planted colluding bugs

TEST(Search, FindsAndShrinksPlantedColludingEquivocation) {
  SearchOptions options = unsound_options(5);
  options.space.sizes = {{3, 1}};
  options.space.strategies = {"collude-equivocate"};
  options.space.vcs = {VcKind::kAuthenticated};
  options.space.net_profiles = {"uniform"};
  options.space.patterns = {"rotating"};
  options.jobs = 4;
  const SearchReport report = harness::run_search(options);
  ASSERT_FALSE(report.counterexamples.empty());
  bool agreement_found = false;
  for (const Counterexample& cx : report.counterexamples) {
    if (cx.verdict != Verdict::kAgreement) continue;
    agreement_found = true;
    // Shrunk to the minimal cell: smallest size in the space, the full
    // colluding group (-1), and a verdict the shrunk cell reproduces.
    EXPECT_EQ(cx.candidate.n, 3);
    EXPECT_EQ(cx.candidate.t, 1);
    EXPECT_EQ(cx.candidate.fault_count, -1);
    EXPECT_EQ(classify(evaluate(cx.candidate)), Verdict::kAgreement);
  }
  EXPECT_TRUE(agreement_found);
}

TEST(Search, FindsPlantedColludingWithholding) {
  SearchOptions options = unsound_options(5);
  options.space.sizes = {{3, 1}};
  options.space.strategies = {"collude-withhold"};
  options.space.vcs = {VcKind::kAuthenticated};
  options.space.net_profiles = {"uniform"};
  options.jobs = 4;
  const SearchReport report = harness::run_search(options);
  ASSERT_FALSE(report.counterexamples.empty());
  for (const Counterexample& cx : report.counterexamples) {
    EXPECT_EQ(classify(evaluate(cx.candidate)), cx.verdict);
  }
}

// --------------------------------------------------------------- shrinking

TEST(Shrink, IsIdempotent) {
  // The known agreement violation from the committed corpus.
  Candidate c;
  c.strategy = "collude-equivocate";
  c.n = 3;
  c.t = 1;
  c.gst = 30.0;
  c.seed = 2;
  ASSERT_EQ(classify(evaluate(c)), Verdict::kAgreement);
  const SearchOptions options = unsound_options(1);
  const Counterexample once =
      harness::shrink(c, Verdict::kAgreement, options);
  const Counterexample twice =
      harness::shrink(once.candidate, Verdict::kAgreement, options);
  EXPECT_EQ(once.candidate.key(), twice.candidate.key());
  EXPECT_EQ(classify(once.outcome), Verdict::kAgreement);
}

TEST(Shrink, MinimizesAxesAndRederivesTheSeed) {
  // A silent fault under the non-authenticated stack at n=3, t=1 stalls at
  // ANY gst and seed, so shrinking must drive both to their minima.
  Candidate c;
  c.strategy = "silent";
  c.vc = VcKind::kNonAuthenticated;
  c.n = 3;
  c.t = 1;
  c.gst = 30.0;
  c.seed = 9;
  ASSERT_EQ(classify(evaluate(c)), Verdict::kTermination);
  const Counterexample shrunk =
      harness::shrink(c, Verdict::kTermination, unsound_options(1));
  EXPECT_EQ(shrunk.candidate.gst, 0.0);
  EXPECT_EQ(shrunk.candidate.seed, 1u);
  EXPECT_EQ(shrunk.candidate.fault_count, -1);
  EXPECT_GT(shrunk.shrink_probes, 0);
  EXPECT_EQ(classify(shrunk.outcome), Verdict::kTermination);
}

TEST(Shrink, CanonicalizesTheFaultCount) {
  // A count that clamps to t names the same cell as -1; shrinking must
  // fold the two spellings together so dedup and file names agree.
  Candidate c;
  c.strategy = "silent";
  c.vc = VcKind::kNonAuthenticated;
  c.n = 3;
  c.t = 1;
  c.fault_count = 1;
  const Counterexample shrunk =
      harness::shrink(c, Verdict::kTermination, unsound_options(1));
  EXPECT_EQ(shrunk.candidate.fault_count, -1);
}

// ------------------------------------------------------------- wire format

TEST(CellFormat, RoundTripsThroughJsonAndFilename) {
  Candidate c;
  c.strategy = "collude-withhold";
  c.vc = VcKind::kNonAuthenticated;
  c.n = 3;
  c.t = 1;
  c.victims = 1;
  c.observe = 4;
  c.seed = 7;
  Counterexample cx;
  cx.candidate = c;
  cx.outcome = evaluate(c);
  cx.verdict = classify(cx.outcome);
  ASSERT_EQ(cx.verdict, Verdict::kTermination);

  const std::string json = harness::cell_json(cx);
  const CorpusCell cell = harness::parse_cell(json);
  EXPECT_TRUE(cell.candidate == c);
  EXPECT_EQ(cell.verdict, cx.verdict);
  EXPECT_EQ(cell.expect_decided, cx.outcome.decided);
  EXPECT_EQ(cell.expect_agreement, cx.outcome.agreement);
  EXPECT_EQ(cell.expect_validity_ok, cx.outcome.validity_ok);
  EXPECT_EQ(harness::cell_filename(cx),
            "termination-nonauth-collude-withhold-n3t1-s7.json");
}

TEST(CellFormat, ParserIsStrict) {
  EXPECT_THROW((void)harness::parse_cell("not json"), std::runtime_error);
  EXPECT_THROW((void)harness::parse_cell("{\"schema\": \"other-v9\"}"),
               std::runtime_error);
  // A valid cell with one field removed must be rejected, not defaulted.
  Candidate c;
  c.strategy = "silent";
  c.vc = VcKind::kNonAuthenticated;
  c.n = 3;
  c.t = 1;
  Counterexample cx;
  cx.candidate = c;
  cx.outcome = evaluate(c);
  cx.verdict = classify(cx.outcome);
  std::string json = harness::cell_json(cx);
  const auto pos = json.find("\"seed\"");
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, json.find(',', pos) + 2 - pos);
  EXPECT_THROW((void)harness::parse_cell(json), std::runtime_error);
}

// ------------------------------------------- ExecutionReport edge cases

TEST(ExecutionReport, PrunesFaultyDecisionsFromEveryProperty) {
  const auto validity = harness::make_validity(ValidityKind::kStrong, 4, 1);
  // Unanimous correct proposals: Strong validity then admits only 1.
  const std::vector<Value> proposals{1, 1, 1, 1};
  const std::map<ProcessId, Value> decisions{{0, 1}, {1, 1}, {2, 1}, {3, 2}};
  // P3 faulty: its rogue decision (2, inadmissible and conflicting) is
  // unconstrained, so every property still holds.
  const auto pruned =
      core::check_execution(*validity, 4, 1, proposals, {3}, decisions);
  EXPECT_TRUE(pruned.ok());
  EXPECT_TRUE(pruned.violations.empty());
  // Same execution with P3 correct: the rogue decision now violates both
  // Agreement and Validity.
  const auto kept =
      core::check_execution(*validity, 4, 1, proposals, {}, decisions);
  EXPECT_TRUE(kept.termination);
  EXPECT_FALSE(kept.agreement);
  EXPECT_FALSE(kept.validity);
  EXPECT_FALSE(kept.violations.empty());
}

TEST(ExecutionReport, NoDecisionRunNeverArmsTheGraceCutoff) {
  // Genuine stall: one silent fault starves the n=3, t=1 non-authenticated
  // stack of its quorum, so no correct process ever decides — the grace
  // cutoff is never armed and the run grinds to the (bounded) horizon.
  Candidate c;
  c.strategy = "silent";
  c.vc = VcKind::kNonAuthenticated;
  c.n = 3;
  c.t = 1;
  const SweepOutcome outcome = evaluate(c);
  ASSERT_TRUE(outcome.error.empty());
  EXPECT_FALSE(outcome.decided);
  EXPECT_FALSE(outcome.report.termination);
  EXPECT_FALSE(outcome.report.violations.empty());
  EXPECT_EQ(classify(outcome), Verdict::kTermination);
  EXPECT_EQ(outcome.result.grace_cutoff, -1.0);
  EXPECT_FALSE(outcome.result.queue_drained);
  // Far past any decision latency: only the horizon stopped it.
  EXPECT_GT(outcome.result.end_time, 100.0);
}

TEST(ExecutionReport, GraceCutDiffersFromQuiescentDrain) {
  // Fault-free authenticated run: decides, then the queue drains on its
  // own, strictly before the armed cutoff.
  Candidate drained;
  drained.strategy = "none";
  const SweepOutcome quiet = evaluate(drained);
  ASSERT_TRUE(quiet.error.empty());
  EXPECT_TRUE(quiet.decided);
  EXPECT_TRUE(quiet.result.queue_drained);
  EXPECT_GE(quiet.result.grace_cutoff, 0.0);
  EXPECT_LT(quiet.result.end_time, quiet.result.grace_cutoff);

  // Equivocation under the non-authenticated stack: still decides, but
  // residual chatter keeps the queue busy until the grace window cuts it —
  // a grace-cut, not a stall: the cutoff was armed.
  Candidate chatty;
  chatty.strategy = "equivocate";
  chatty.vc = VcKind::kNonAuthenticated;
  const SweepOutcome cut = evaluate(chatty);
  ASSERT_TRUE(cut.error.empty());
  EXPECT_TRUE(cut.decided);
  EXPECT_FALSE(cut.result.queue_drained);
  EXPECT_GE(cut.result.grace_cutoff, 0.0);
  EXPECT_LE(cut.result.end_time, cut.result.grace_cutoff);
}
