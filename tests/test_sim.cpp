// Unit tests: the discrete-event simulator — partial synchrony guarantees,
// metrics accounting (Section 3.1's message complexity definition), timers,
// determinism, and the Mux protocol-composition layer.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "valcon/sim/adversary.hpp"
#include "valcon/sim/component.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;
using namespace valcon::sim;

namespace {

struct Ping final : Payload {
  explicit Ping(int seq_in = 0) : seq(seq_in) {}
  VALCON_PAYLOAD_TYPE("ping")
  int seq;
};

/// Records every delivery with its time.
class Recorder final : public Process {
 public:
  struct Event {
    ProcessId from;
    Time at;
    int seq;
  };
  std::vector<Event> events;

  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    const auto* ping = dynamic_cast<const Ping*>(m.get());
    events.push_back({from, ctx.now(), ping != nullptr ? ping->seq : -1});
  }
};

/// Broadcasts `count` pings at start, spaced by timers.
class Pinger final : public Process {
 public:
  explicit Pinger(int count) : remaining_(count) {}

  void on_start(Context& ctx) override { fire(ctx); }
  void on_timer(Context& ctx, std::uint64_t) override { fire(ctx); }

 private:
  void fire(Context& ctx) {
    if (remaining_-- <= 0) return;
    ctx.broadcast(make_payload<Ping>(remaining_));
    ctx.set_timer(1.0, 1);
  }
  int remaining_;
};

SimConfig basic_config(int n, int t, Time gst = 0.0, std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.seed = seed;
  cfg.net.gst = gst;
  cfg.net.delta = 1.0;
  return cfg;
}

}  // namespace

TEST(Network, PostGstDeliveryWithinDelta) {
  Simulator sim(basic_config(3, 1, /*gst=*/0.0));
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.add_process(0, std::make_unique<Pinger>(10));
  sim.add_process(1, std::move(recorder));
  sim.add_process(2, std::make_unique<SilentProcess>());
  sim.run();
  ASSERT_EQ(rec->events.size(), 10u);
  // sends happen at integer times 0..9; each must arrive within delta.
  for (const auto& e : rec->events) {
    const double send_time = std::floor(e.at);
    EXPECT_LE(e.at - send_time, 1.0 + 1e-9);
  }
}

TEST(Network, PreGstDeliveryByGstPlusDelta) {
  Simulator sim(basic_config(3, 1, /*gst=*/100.0));
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.add_process(0, std::make_unique<Pinger>(5));
  sim.add_process(1, std::move(recorder));
  sim.add_process(2, std::make_unique<SilentProcess>());
  sim.network().hold(0, 1, 1e9);  // adversary: delay as long as possible
  sim.run();
  ASSERT_EQ(rec->events.size(), 5u);
  for (const auto& e : rec->events) {
    EXPECT_LE(e.at, 100.0 + 1.0 + 1e-9);  // clipped at GST + delta
    EXPECT_GE(e.at, 100.0);               // the hold was honored until GST
  }
}

TEST(Network, HoldDelaysDelivery) {
  Simulator sim(basic_config(3, 1, /*gst=*/100.0));
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.add_process(0, std::make_unique<Pinger>(1));
  sim.add_process(1, std::move(recorder));
  sim.add_process(2, std::make_unique<SilentProcess>());
  sim.network().hold(0, 1, 50.0);
  sim.run();
  ASSERT_EQ(rec->events.size(), 1u);
  EXPECT_GE(rec->events[0].at, 50.0);
}

TEST(Network, BlockedFaultySenderDropsMessages) {
  Simulator sim(basic_config(3, 1));
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.mark_faulty(0);
  sim.network().block(0, 1);
  sim.add_process(0, std::make_unique<Pinger>(3));
  sim.add_process(1, std::move(recorder));
  sim.add_process(2, std::make_unique<SilentProcess>());
  sim.run();
  EXPECT_TRUE(rec->events.empty());
}

TEST(Metrics, CountsOnlyCorrectSendersAtOrAfterGst) {
  Simulator sim(basic_config(3, 1, /*gst=*/5.5));
  sim.mark_faulty(1);
  sim.add_process(0, std::make_unique<Pinger>(10));  // sends at t = 0..9
  sim.add_process(1, std::make_unique<Pinger>(10));  // faulty: never counted
  sim.add_process(2, std::make_unique<SilentProcess>());
  sim.run();
  // P0 broadcasts to 3 processes at t in {6,7,8,9} post-GST: 4 * 3 = 12.
  EXPECT_EQ(sim.metrics().message_complexity(), 12u);
  EXPECT_EQ(sim.metrics().messages_total(), 60u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Simulator sim(basic_config(4, 1, 0.0, /*seed=*/42));
    auto recorder = std::make_unique<Recorder>();
    Recorder* rec = recorder.get();
    sim.add_process(0, std::make_unique<Pinger>(20));
    sim.add_process(1, std::move(recorder));
    sim.add_process(2, std::make_unique<Pinger>(20));
    sim.add_process(3, std::make_unique<SilentProcess>());
    sim.run();
    std::vector<double> times;
    for (const auto& e : rec->events) times.push_back(e.at);
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, SeedChangesSchedule) {
  const auto run_once = [](std::uint64_t seed) {
    Simulator sim(basic_config(4, 1, 0.0, seed));
    auto recorder = std::make_unique<Recorder>();
    Recorder* rec = recorder.get();
    sim.add_process(0, std::make_unique<Pinger>(20));
    sim.add_process(1, std::move(recorder));
    sim.add_process(2, std::make_unique<SilentProcess>());
    sim.add_process(3, std::make_unique<SilentProcess>());
    sim.run();
    std::vector<double> times;
    for (const auto& e : rec->events) times.push_back(e.at);
    return times;
  };
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(Simulator, RejectsOutOfRangeProcessIds) {
  Simulator sim(basic_config(4, 1));
  EXPECT_THROW(sim.mark_faulty(-1), std::out_of_range);
  EXPECT_THROW(sim.mark_faulty(4), std::out_of_range);
  EXPECT_THROW(static_cast<void>(sim.is_faulty(-1)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(sim.is_faulty(4)), std::out_of_range);
  EXPECT_THROW(sim.add_process(-1, std::make_unique<SilentProcess>()),
               std::out_of_range);
  EXPECT_THROW(sim.add_process(4, std::make_unique<SilentProcess>()),
               std::out_of_range);
  // In-range ids still work, and marking one process faulty is visible.
  sim.add_process(0, std::make_unique<SilentProcess>());
  sim.mark_faulty(0);
  EXPECT_TRUE(sim.is_faulty(0));
  EXPECT_FALSE(sim.is_faulty(3));
}

TEST(Simulator, RejectsDuplicateAndNullProcesses) {
  Simulator sim(basic_config(4, 1));
  sim.add_process(2, std::make_unique<SilentProcess>());
  EXPECT_THROW(sim.add_process(2, std::make_unique<SilentProcess>()),
               std::invalid_argument);
  EXPECT_THROW(sim.add_process(1, nullptr), std::invalid_argument);
}

TEST(Simulator, RejectsInvalidConfig) {
  EXPECT_THROW(Simulator(basic_config(0, 0)), std::invalid_argument);
  EXPECT_THROW(Simulator(basic_config(4, 4)), std::invalid_argument);
  EXPECT_THROW(Simulator(basic_config(4, -1)), std::invalid_argument);
}

TEST(Simulator, NoDeliveryBeforeLocalStart) {
  Simulator sim(basic_config(2, 1));
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.add_process(0, std::make_unique<Pinger>(1));
  sim.add_process(1, std::move(recorder), /*start_time=*/1000.0);
  sim.run();
  EXPECT_TRUE(rec->events.empty());  // delivered before P1 started: dropped
}

// ------------------------------------------------------------------ Mux

namespace {

/// Child component: echoes every ping back to the sender with seq + 1.
class EchoChild final : public Component {
 public:
  int received = 0;
  void on_message(Context& ctx, ProcessId from, const PayloadPtr& m) override {
    const auto* ping = dynamic_cast<const Ping*>(m.get());
    if (ping == nullptr) return;
    ++received;
    if (ping->seq < 3) ctx.send(from, make_payload<Ping>(ping->seq + 1));
  }
};

class ParentMux final : public Mux {
 public:
  ParentMux() { child_ = &make_child<EchoChild>(); }
  EchoChild* child_ = nullptr;
  int own_received = 0;

 protected:
  void own_start(Context& ctx) override {
    // Kick off: parent-level ping to peer, child-level ping to peer.
    if (ctx.id() == 0) {
      ctx.send(1, make_payload<Ping>(0));
      child_context(0).send(1, make_payload<Ping>(0));
    }
  }
  void own_message(Context&, ProcessId, const PayloadPtr& m) override {
    if (dynamic_cast<const Ping*>(m.get()) != nullptr) ++own_received;
  }
};

}  // namespace

TEST(Mux, RoutesChildAndOwnMessagesSeparately) {
  Simulator sim(basic_config(2, 1));
  auto host0 = std::make_unique<ComponentHost>(std::make_unique<ParentMux>());
  auto host1 = std::make_unique<ComponentHost>(std::make_unique<ParentMux>());
  auto* mux0 = dynamic_cast<ParentMux*>(&host0->root());
  auto* mux1 = dynamic_cast<ParentMux*>(&host1->root());
  sim.add_process(0, std::move(host0));
  sim.add_process(1, std::move(host1));
  sim.run();
  // P0's parent ping arrives at P1's own_message (not the child).
  EXPECT_EQ(mux1->own_received, 1);
  // Child pings bounce seq 0 -> 1 -> 2 -> 3: P1's child sees 0 and 2,
  // P0's child sees 1 and 3.
  EXPECT_EQ(mux1->child_->received, 2);
  EXPECT_EQ(mux0->child_->received, 2);
  EXPECT_EQ(mux0->own_received, 0);
}

TEST(TwoFaced, RoutesSelfMessagesToOriginatingFace) {
  // Face 0 talks to side {0}, face 1 to side {1}; each face broadcasts, so
  // its self-copy must come back to the same face.
  class SelfCounter final : public Process {
   public:
    int self_msgs = 0;
    void on_start(Context& ctx) override {
      ctx.broadcast(make_payload<Ping>(0));
    }
    void on_message(Context& ctx, ProcessId from, const PayloadPtr&) override {
      if (from == ctx.id()) ++self_msgs;
    }
  };

  Simulator sim(basic_config(3, 1));
  auto face0 = std::make_unique<SelfCounter>();
  auto face1 = std::make_unique<SelfCounter>();
  auto* f0 = face0.get();
  auto* f1 = face1.get();
  sim.mark_faulty(2);
  sim.add_process(0, std::make_unique<SilentProcess>());
  sim.add_process(1, std::make_unique<SilentProcess>());
  sim.add_process(
      2, std::make_unique<TwoFacedProcess>(
             std::move(face0), std::move(face1),
             [](ProcessId p) { return p == 1 ? 1 : 0; }));
  sim.run();
  EXPECT_EQ(f0->self_msgs, 1);
  EXPECT_EQ(f1->self_msgs, 1);
}

TEST(MessageDropShim, IgnoresFirstKMessages) {
  Simulator sim(basic_config(2, 1));
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.mark_faulty(1);
  sim.add_process(0, std::make_unique<Pinger>(5));
  sim.add_process(1, std::make_unique<MessageDropShim>(std::move(recorder), 3,
                                                       std::vector<ProcessId>{}));
  sim.run();
  EXPECT_EQ(rec->events.size(), 2u);  // 5 sent, first 3 ignored
}

TEST(Rng, ForkIndependence) {
  Rng a(7);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
  // uniform stays in range
  Rng c(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = c.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 3.0);
  }
}
