#include <gtest/gtest.h>

#include "valcon/harness/scenario.hpp"

using namespace valcon;

TEST(Smoke, AuthUniversalAllCorrect) {
  harness::ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.proposals = {5, 5, 5, 5};
  cfg.vc = harness::VcKind::kAuthenticated;
  const core::StrongValidity validity;
  const auto result =
      harness::run_universal(cfg, core::make_lambda(validity, cfg.n, cfg.t));
  EXPECT_TRUE(result.all_correct_decided(cfg));
  EXPECT_TRUE(result.agreement());
  EXPECT_EQ(result.common_decision(), 5);
}

TEST(Smoke, NonAuthUniversalAllCorrect) {
  harness::ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.proposals = {3, 3, 3, 3};
  cfg.vc = harness::VcKind::kNonAuthenticated;
  const core::StrongValidity validity;
  const auto result =
      harness::run_universal(cfg, core::make_lambda(validity, cfg.n, cfg.t));
  EXPECT_TRUE(result.all_correct_decided(cfg));
  EXPECT_TRUE(result.agreement());
  EXPECT_EQ(result.common_decision(), 3);
}

TEST(Smoke, FastUniversalAllCorrect) {
  harness::ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.proposals = {9, 9, 9, 9};
  cfg.vc = harness::VcKind::kFast;
  const core::StrongValidity validity;
  const auto result =
      harness::run_universal(cfg, core::make_lambda(validity, cfg.n, cfg.t));
  EXPECT_TRUE(result.all_correct_decided(cfg));
  EXPECT_TRUE(result.agreement());
  EXPECT_EQ(result.common_decision(), 9);
}

TEST(Smoke, AuthUniversalWithSilentFault) {
  harness::ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.proposals = {5, 5, 5, 5};
  cfg.faults[0] = harness::Fault::silent();  // the view-0 leader
  const core::StrongValidity validity;
  const auto result =
      harness::run_universal(cfg, core::make_lambda(validity, cfg.n, cfg.t));
  EXPECT_TRUE(result.all_correct_decided(cfg));
  EXPECT_TRUE(result.agreement());
  EXPECT_EQ(result.common_decision(), 5);
}
