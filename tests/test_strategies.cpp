// Adversary-strategy framework (harness/strategy.hpp): registry contents
// and error paths, legacy FaultKind-name aliases (round-trip against the
// pinned "full"-matrix labels), determinism of the new mutation /
// scheduled-equivocation / adaptive strategies across job counts, custom
// strategy registration end to end, and the --strategies matrix filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "valcon/core/lambda.hpp"
#include "valcon/harness/strategy.hpp"
#include "valcon/harness/sweep.hpp"
#include "valcon/sim/adversary.hpp"

using namespace valcon;
using namespace valcon::core;
using harness::Fault;
using harness::FaultSpec;
using harness::ScenarioConfig;
using harness::ScenarioMatrix;
using harness::Strategy;
using harness::StrategyEnv;
using harness::StrategyRegistry;
using harness::SweepOutcome;
using harness::SweepRunner;
using harness::ValidityKind;
using harness::VcKind;

namespace {

constexpr std::initializer_list<VcKind> kAllVcs = {
    VcKind::kAuthenticated, VcKind::kNonAuthenticated, VcKind::kFast};

ScenarioConfig base_config(VcKind kind = VcKind::kAuthenticated) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.vc = kind;
  cfg.proposals = {1, 1, 1, 0};
  return cfg;
}

void expect_equal_results(const std::vector<SweepOutcome>& a,
                          const std::vector<SweepOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].point.label);
    EXPECT_EQ(a[i].result.decisions, b[i].result.decisions);
    EXPECT_EQ(a[i].result.decide_times, b[i].result.decide_times);
    EXPECT_EQ(a[i].result.message_complexity, b[i].result.message_complexity);
    EXPECT_EQ(a[i].result.word_complexity, b[i].result.word_complexity);
    EXPECT_EQ(a[i].result.events, b[i].result.events);
    EXPECT_EQ(a[i].error, b[i].error);
  }
}

}  // namespace

// ------------------------------------------------------------ the registry

TEST(StrategyRegistry, BuiltinsAreRegistered) {
  auto& registry = StrategyRegistry::global();
  for (const char* name : {"silent", "crash", "equivocate", "delay", "mutate",
                           "equivocate-scheduled", "adaptive"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NE(registry.make(name), nullptr) << name;
  }
  const auto names = registry.names();
  EXPECT_GE(names.size(), 7u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(StrategyRegistry, UnknownNameThrowsAndListsRegistered) {
  try {
    static_cast<void>(StrategyRegistry::global().make("no-such-strategy"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-strategy"), std::string::npos) << what;
    EXPECT_NE(what.find("crash"), std::string::npos)
        << "message should list registered strategies: " << what;
  }
}

TEST(StrategyRegistry, UnknownStrategyInScenarioIsRejectedUpFront) {
  ScenarioConfig cfg = base_config();
  cfg.faults[3].strategy = "no-such-strategy";
  EXPECT_THROW(harness::validate(cfg), std::invalid_argument);
  const StrongValidity validity;
  EXPECT_THROW(static_cast<void>(harness::run_universal(
                   cfg, make_lambda(validity, cfg.n, cfg.t))),
               std::invalid_argument);
}

TEST(StrategyRegistry, RejectsDuplicatesEmptyNamesAndNullFactories) {
  StrategyRegistry registry;  // a private registry; global() stays clean
  registry.add("mine", [] { return StrategyRegistry::global().make("silent"); });
  EXPECT_TRUE(registry.contains("mine"));
  EXPECT_THROW(registry.add("mine", [] {
    return StrategyRegistry::global().make("silent");
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("", [] {
    return StrategyRegistry::global().make("silent");
  }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("null", StrategyRegistry::Factory{}),
               std::invalid_argument);
}

TEST(StrategyRegistry, ParameterValidationGoesThroughTheStrategyHook) {
  const StrongValidity validity;
  const auto lambda = make_lambda(validity, 4, 1);

  ScenarioConfig bad_rate = base_config();
  bad_rate.faults[3] = Fault::mutate(1.5);
  EXPECT_THROW(static_cast<void>(harness::run_universal(bad_rate, lambda)),
               std::invalid_argument);

  ScenarioConfig bad_victims = base_config();
  bad_victims.faults[3] = Fault::adaptive(/*victims=*/-2);
  EXPECT_THROW(static_cast<void>(harness::run_universal(bad_victims, lambda)),
               std::invalid_argument);

  ScenarioConfig bad_crash = base_config();
  bad_crash.faults[3] = Fault::crash(-1.0);
  EXPECT_THROW(static_cast<void>(harness::run_universal(bad_crash, lambda)),
               std::invalid_argument);
}

// ------------------------------------------------- legacy-alias round-trip

TEST(LegacyAliases, FaultHelpersNameTheLegacyStrategies) {
  EXPECT_EQ(Fault::silent().strategy, "silent");
  EXPECT_EQ(Fault::crash(1.0).strategy, "crash");
  EXPECT_EQ(Fault::equivocate(9).strategy, "equivocate");
  EXPECT_EQ(Fault::delay().strategy, "delay");
  EXPECT_EQ(Fault::mutate().strategy, "mutate");
  EXPECT_EQ(Fault::scheduled_equivocate(9).strategy, "equivocate-scheduled");
  EXPECT_EQ(Fault::adaptive().strategy, "adaptive");
}

TEST(LegacyAliases, FullMatrixLabelsAndFaultNamesAreThePinnedOnes) {
  // The "full" matrix is the cross-version determinism reference: its cell
  // labels and per-fault strategy names feed the sweep JSON and must not
  // drift now that FaultKind is a registry alias.
  const auto full = harness::named_matrix("full").build();
  ASSERT_EQ(full.size(), 720u);
  EXPECT_EQ(full[0].label,
            "vc=auth(Alg1) val=Strong fault=none n=4 t=1 gst=0.00 delta=1.00"
            " seed=1");
  // The fault-free spec spans sizes x gsts x seeds = 12 cells; the first
  // faulty cell follows it.
  EXPECT_EQ(full[12].label,
            "vc=auth(Alg1) val=Strong fault=silentx1 n=4 t=1 gst=0.00"
            " delta=1.00 seed=1");
  std::set<std::string> fault_names;
  for (const auto& point : full) {
    for (const auto& [pid, fault] : point.config.faults) {
      fault_names.insert(fault.strategy);
    }
  }
  EXPECT_EQ(fault_names,
            (std::set<std::string>{"silent", "crash", "equivocate", "delay"}));
}

TEST(LegacyAliases, EachLegacyStrategyStillReachesConsensus) {
  const StrongValidity validity;
  for (const Fault& fault : {Fault::silent(), Fault::crash(2.0),
                             Fault::equivocate(0), Fault::delay()}) {
    SCOPED_TRACE(fault.strategy);
    ScenarioConfig cfg = base_config();
    cfg.proposals = {1, 1, 1, 1};
    cfg.faults[3] = fault;
    const auto result =
        harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
    EXPECT_TRUE(result.all_correct_decided(cfg));
    EXPECT_TRUE(result.agreement());
    EXPECT_EQ(result.common_decision(), std::optional<Value>(1));
  }
}

// ----------------------------------------------- the new built-in strategies

TEST(NewStrategies, ByzantineMatrixCoversThemAndStaysHealthy) {
  const auto points = harness::named_matrix("byzantine").build();
  std::set<std::string> fault_names;
  for (const auto& point : points) {
    for (const auto& [pid, fault] : point.config.faults) {
      fault_names.insert(fault.strategy);
    }
  }
  for (const char* name :
       {"mutate", "equivocate-scheduled", "adaptive", "silent", "crash",
        "equivocate", "delay"}) {
    EXPECT_EQ(fault_names.count(name), 1u) << name;
  }
  const auto outcomes = SweepRunner(4).run(points);
  const auto summary = SweepRunner::summarize(outcomes, 1.0);
  EXPECT_EQ(summary.decided, points.size());
  EXPECT_EQ(summary.agreement_violations, 0u);
  EXPECT_EQ(summary.validity_violations, 0u);
  EXPECT_EQ(summary.errors, 0u);
}

TEST(NewStrategies, DeterministicAcrossJobCounts) {
  const auto points =
      ScenarioMatrix()
          .vc_kinds({VcKind::kAuthenticated, VcKind::kNonAuthenticated,
                     VcKind::kFast})
          .validities({ValidityKind::kStrong})
          .faults({FaultSpec{"mutate"}, FaultSpec{"equivocate-scheduled"},
                   FaultSpec{"adaptive"}})
          .sizes({{4, 1}})
          .gsts({0.0, 5.0})
          .seeds({1, 2, 3})
          .build();
  const auto jobs1 = SweepRunner(1).run(points);
  const auto jobs4 = SweepRunner(4).run(points);
  const auto jobs8 = SweepRunner(8).run(points);
  expect_equal_results(jobs1, jobs4);
  expect_equal_results(jobs1, jobs8);
}

TEST(NewStrategies, EachSurvivesEveryVcKind) {
  const StrongValidity validity;
  for (const VcKind kind : kAllVcs) {
    for (const Fault& fault :
         {Fault::mutate(0.5), Fault::scheduled_equivocate(9, 2.0),
          Fault::adaptive(/*victims=*/1, /*observe=*/4)}) {
      SCOPED_TRACE(harness::to_string(kind) + " / " + fault.strategy);
      ScenarioConfig cfg = base_config(kind);
      cfg.proposals = {1, 1, 1, 0};
      cfg.faults[3] = fault;
      const auto result = harness::run_universal(
          cfg, make_lambda(validity, cfg.n, cfg.t, {0, 1, 9}, {0, 1, 9}));
      EXPECT_TRUE(result.all_correct_decided(cfg));
      EXPECT_TRUE(result.agreement());
      // All correct processes propose 1, so Strong Validity forces 1.
      EXPECT_EQ(result.common_decision(), std::optional<Value>(1));
    }
  }
}

TEST(NewStrategies, MutateAtRateZeroMatchesNoTampering) {
  // rate = 0 never tampers, so the faulty process behaves correctly and
  // everyone decides the unanimous value.
  const StrongValidity validity;
  ScenarioConfig cfg = base_config();
  cfg.proposals = {2, 2, 2, 2};
  cfg.faults[3] = Fault::mutate(0.0);
  const auto result =
      harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
  EXPECT_TRUE(result.all_correct_decided(cfg));
  EXPECT_EQ(result.common_decision(), std::optional<Value>(2));
}

TEST(NewStrategies, AdaptiveShimPicksTheBusiestSenders) {
  // Unit-level check of the victim choice: feed the shim a traffic pattern
  // and verify it targets the top senders, ties towards lower ids.
  sim::AdaptiveOmitShim shim(std::make_unique<sim::SilentProcess>(),
                             /*victims=*/2, /*observe=*/6);
  class NullCtx final : public sim::Context {
   public:
    [[nodiscard]] Time now() const override { return 0.0; }
    [[nodiscard]] ProcessId id() const override { return 0; }
    [[nodiscard]] int n() const override { return 4; }
    [[nodiscard]] int t() const override { return 1; }
    [[nodiscard]] Time delta() const override { return 1.0; }
    void send(ProcessId, sim::PayloadPtr) override {}
    void set_timer(Time, std::uint64_t) override {}
    [[nodiscard]] const crypto::KeyRegistry& keys() const override {
      std::abort();
    }
    [[nodiscard]] const crypto::Signer& signer() const override {
      std::abort();
    }
    [[nodiscard]] sim::Rng& rng() override { return rng_; }

   private:
    sim::Rng rng_{1};
  } ctx;
  const auto msg = sim::make_payload<sim::GarbagePayload>(1);
  // Sender 2: three messages; senders 1 and 3: one each; sender 0: one.
  for (const ProcessId from : {2, 1, 2, 3, 2, 0}) {
    shim.on_message(ctx, from, msg);
  }
  ASSERT_EQ(shim.victims().size(), 2u);
  EXPECT_EQ(shim.victims()[0], 2);  // busiest
  EXPECT_EQ(shim.victims()[1], 0);  // 1-message tie broken towards lower id
}

// ------------------------------------------------------- custom strategies

namespace {

/// Toy plugin: a correct stack that omits all sends to even-numbered peers
/// — registered from outside the harness core, as docs/adversaries.md
/// teaches.
class OmitEvensStrategy final : public Strategy {
 public:
  std::unique_ptr<sim::Process> build(const StrategyEnv& env) const override {
    std::vector<ProcessId> evens;
    for (ProcessId q = 0; q < env.cfg.n; ++q) {
      if (q % 2 == 0 && q != env.self) evens.push_back(q);
    }
    return std::make_unique<sim::MessageDropShim>(
        env.recorded_stack(env.own_proposal()), /*ignore_count=*/0,
        std::move(evens));
  }
};

}  // namespace

TEST(CustomStrategies, RegisterAndRunEndToEnd) {
  auto& registry = StrategyRegistry::global();
  if (!registry.contains("test-omit-evens")) {
    registry.add("test-omit-evens",
                 [] { return std::make_unique<OmitEvensStrategy>(); });
  }
  const StrongValidity validity;
  ScenarioConfig cfg = base_config();
  cfg.proposals = {1, 1, 1, 1};
  cfg.faults[3].strategy = "test-omit-evens";
  const auto result =
      harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
  EXPECT_TRUE(result.all_correct_decided(cfg));
  EXPECT_TRUE(result.agreement());
  EXPECT_EQ(result.common_decision(), std::optional<Value>(1));

  // And the sweep engine picks it up like any built-in.
  const auto points = ScenarioMatrix()
                          .faults({FaultSpec{"test-omit-evens"}})
                          .seeds({1, 2})
                          .build();
  const auto outcomes = SweepRunner(2).run(points);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.error.empty()) << o.point.label << ": " << o.error;
    EXPECT_TRUE(o.decided) << o.point.label;
    EXPECT_NE(o.point.label.find("test-omit-evensx1"), std::string::npos);
  }
}

// -------------------------------------------------------- strategy filter

TEST(StrategyFilter, KeepsOnlyTheNamedStrategies) {
  const auto points = harness::named_matrix("byzantine")
                          .keep_strategies({"crash", "none"})
                          .build();
  ASSERT_FALSE(points.empty());
  for (const auto& point : points) {
    for (const auto& [pid, fault] : point.config.faults) {
      EXPECT_EQ(fault.strategy, "crash") << point.label;
    }
  }
  // Both the crash cells and the fault-free ("none") cells survive.
  EXPECT_TRUE(std::any_of(points.begin(), points.end(), [](const auto& p) {
    return p.config.faults.empty();
  }));
  EXPECT_TRUE(std::any_of(points.begin(), points.end(), [](const auto& p) {
    return !p.config.faults.empty();
  }));
}

TEST(StrategyFilter, RejectsUnknownNamesAndUnmatchedRequests) {
  // An empty filter would empty the fault dimension and shrink the matrix
  // to zero cells — a sweep that runs nothing and exits green.
  EXPECT_THROW(harness::named_matrix("smoke").keep_strategies({}),
               std::invalid_argument);
  EXPECT_THROW(harness::named_matrix("smoke").keep_strategies({"bogus"}),
               std::invalid_argument);
  EXPECT_THROW(
      harness::named_matrix("smoke").keep_strategies({"equivocate-scheduled"}),
      std::invalid_argument);  // registered, but not in the smoke matrix
  // A partially-matching request must not silently drop the absent name.
  EXPECT_THROW(
      harness::named_matrix("smoke").keep_strategies({"crash", "mutate"}),
      std::invalid_argument);
}
