// Scenario-matrix engine (harness/sweep.hpp) and the strategy-based fault
// model: matrix construction, thread-count-independent determinism, crash
// exactly at GST, equivocation and delay faults under every
// vector-consensus stack, and loud rejection of misconfigured scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "valcon/core/lambda.hpp"
#include "valcon/harness/sweep.hpp"
#include "valcon/harness/sweep_io.hpp"

using namespace valcon;
using namespace valcon::core;
using harness::FaultSpec;
using harness::ScenarioConfig;
using harness::ScenarioMatrix;
using harness::SweepOutcome;
using harness::SweepPoint;
using harness::SweepRunner;
using harness::ValidityKind;
using harness::VcKind;

namespace {

constexpr std::initializer_list<VcKind> kAllVcs = {
    VcKind::kAuthenticated, VcKind::kNonAuthenticated, VcKind::kFast};

void expect_equal_results(const std::vector<SweepOutcome>& a,
                          const std::vector<SweepOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].point.label);
    EXPECT_EQ(a[i].result.decisions, b[i].result.decisions);
    EXPECT_EQ(a[i].result.decide_times, b[i].result.decide_times);
    EXPECT_EQ(a[i].result.message_complexity, b[i].result.message_complexity);
    EXPECT_EQ(a[i].result.word_complexity, b[i].result.word_complexity);
    EXPECT_EQ(a[i].result.messages_total, b[i].result.messages_total);
    EXPECT_EQ(a[i].result.events, b[i].result.events);
    EXPECT_EQ(a[i].result.last_decision_time, b[i].result.last_decision_time);
    EXPECT_EQ(a[i].result.by_type, b[i].result.by_type);
    EXPECT_EQ(a[i].error, b[i].error);
  }
}

}  // namespace

// ------------------------------------------------------------- the matrix

TEST(ScenarioMatrix, SizeIsTheCrossProduct) {
  ScenarioMatrix matrix;
  matrix.vc_kinds({VcKind::kAuthenticated, VcKind::kFast})
      .validities({ValidityKind::kStrong, ValidityKind::kMedian})
      .faults({FaultSpec{"silent", 0}, FaultSpec{"crash", -1}})
      .sizes({{4, 1}, {7, 2}})
      .gsts({0.0, 3.0})
      .seeds({1, 2, 3});
  EXPECT_EQ(matrix.size(), 2u * 2u * 2u * 2u * 2u * 3u);
  const auto points = matrix.build();
  ASSERT_EQ(points.size(), matrix.size());
  std::set<std::string> labels;
  for (const auto& point : points) {
    EXPECT_NO_THROW(harness::validate(point.config)) << point.label;
    labels.insert(point.label);
  }
  EXPECT_EQ(labels.size(), points.size()) << "labels must be unique";
}

TEST(ScenarioMatrix, NamedMatricesBuildAndFullHasAtLeast500Cells) {
  const auto smoke = harness::named_matrix("smoke").build();
  EXPECT_GE(smoke.size(), 24u);
  const auto full = harness::named_matrix("full").build();
  EXPECT_GE(full.size(), 500u);
  // The full matrix must exercise every stack and every fault kind.
  std::set<VcKind> vcs;
  std::set<std::string> fault_kinds;
  for (const auto& point : full) {
    vcs.insert(point.config.vc);
    for (const auto& [pid, fault] : point.config.faults) {
      fault_kinds.insert(fault.strategy);
    }
  }
  EXPECT_EQ(vcs.size(), 3u);
  EXPECT_EQ(fault_kinds.size(), 4u);
  EXPECT_THROW(harness::named_matrix("nope"), std::invalid_argument);
}

TEST(ScenarioMatrix, RejectsBadDimensions) {
  EXPECT_THROW(ScenarioMatrix().sizes({{4, 4}}).build(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioMatrix().proposal_domain(1).build(),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(ScenarioMatrix().sizes({{4, 4}}).point_at(0)),
               std::invalid_argument);
}

// ------------------------------------------------------- lazy indexing

TEST(ScenarioMatrix, PointAtMatchesBuildOnThePinnedFullMatrix) {
  // point_at is the one source of truth for the index ↔ cell mapping; the
  // pinned "full" matrix is the reference it must reproduce cell for cell.
  const ScenarioMatrix matrix = harness::named_matrix("full");
  const auto points = matrix.build();
  ASSERT_EQ(points.size(), matrix.size());
  for (const SweepPoint& expected : points) {
    const SweepPoint lazy = matrix.point_at(expected.index);
    SCOPED_TRACE(expected.label);
    EXPECT_EQ(lazy.index, expected.index);
    EXPECT_EQ(lazy.label, expected.label);
    EXPECT_EQ(lazy.validity, expected.validity);
    EXPECT_EQ(lazy.config.n, expected.config.n);
    EXPECT_EQ(lazy.config.t, expected.config.t);
    EXPECT_EQ(lazy.config.gst, expected.config.gst);
    EXPECT_EQ(lazy.config.delta, expected.config.delta);
    EXPECT_EQ(lazy.config.seed, expected.config.seed);
    EXPECT_EQ(lazy.config.vc, expected.config.vc);
    EXPECT_EQ(lazy.config.proposals, expected.config.proposals);
    ASSERT_EQ(lazy.config.faults.size(), expected.config.faults.size());
    for (const auto& [pid, fault] : expected.config.faults) {
      const auto it = lazy.config.faults.find(pid);
      ASSERT_NE(it, lazy.config.faults.end());
      EXPECT_EQ(it->second.strategy, fault.strategy);
      EXPECT_EQ(it->second.crash_time, fault.crash_time);
      EXPECT_EQ(it->second.release_time, fault.release_time);
      EXPECT_EQ(it->second.equivocal_value, fault.equivocal_value);
      EXPECT_EQ(it->second.mutate_rate, fault.mutate_rate);
      EXPECT_EQ(it->second.switch_time, fault.switch_time);
      EXPECT_EQ(it->second.victims, fault.victims);
      EXPECT_EQ(it->second.observe, fault.observe);
    }
  }
  EXPECT_THROW(static_cast<void>(matrix.point_at(matrix.size())),
               std::out_of_range);
}

TEST(ScenarioMatrix, PointAtIndexesMillionCellMatricesWithoutBuilding) {
  // 240 base cells x 5000 seeds: big enough that materializing the cross
  // product would be absurd, and point_at must stay O(1) random access.
  std::vector<std::uint64_t> seeds(5000);
  for (std::size_t s = 0; s < seeds.size(); ++s) seeds[s] = s + 1;
  const ScenarioMatrix matrix = harness::named_matrix("full").seeds(seeds);
  ASSERT_GE(matrix.size(), 1000000u);
  const SweepPoint first = matrix.point_at(0);
  const SweepPoint last = matrix.point_at(matrix.size() - 1);
  EXPECT_EQ(first.config.seed, 1u);
  EXPECT_EQ(last.config.seed, seeds.back());
  EXPECT_NO_THROW(harness::validate(matrix.point_at(matrix.size() / 2)
                                        .config));
  EXPECT_THROW(static_cast<void>(matrix.point_at(matrix.size())),
               std::out_of_range);
}

// ---------------------------------------------------------- determinism

TEST(SweepRunner, ResultsIndependentOfJobCount) {
  const auto points = harness::named_matrix("smoke").build();
  const auto jobs1 = SweepRunner(1).run(points);
  const auto jobs4 = SweepRunner(4).run(points);
  const auto jobs8 = SweepRunner(8).run(points);
  expect_equal_results(jobs1, jobs4);
  expect_equal_results(jobs1, jobs8);
}

TEST(SweepRunner, InternedByTypeBreakdownIsJobCountDeterministic) {
  // The per-type counters are indexed by globally interned PayloadTypeId,
  // and intern order depends on which thread touches a type first — so the
  // materialized string-keyed breakdown must be identical whatever the job
  // count, and must partition the paper's message complexity exactly as
  // the old string-keyed map did. The byzantine matrix exercises every
  // built-in strategy (wrapper payloads forward their inner type id).
  const auto points = harness::named_matrix("byzantine").build();
  const auto jobs1 = SweepRunner(1).run(points);
  const auto jobs3 = SweepRunner(3).run(points);
  expect_equal_results(jobs1, jobs3);
  std::size_t with_breakdown = 0;
  for (const SweepOutcome& outcome : jobs1) {
    SCOPED_TRACE(outcome.point.label);
    std::uint64_t sum = 0;
    for (const auto& [name, count] : outcome.result.by_type) {
      EXPECT_GT(count, 0u) << name;
      sum += count;
    }
    EXPECT_EQ(sum, outcome.result.message_complexity);
    if (!outcome.result.by_type.empty()) ++with_breakdown;
  }
  EXPECT_GT(with_breakdown, points.size() / 2);
}

TEST(SweepRunner, RunRangeSlicesConcatenateToRunAtAnyShardCount) {
  const ScenarioMatrix matrix = harness::named_matrix("smoke");
  const auto reference = SweepRunner(1).run(matrix.build());
  for (const int shards : {1, 2, 3, 5, 7, 30}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::vector<SweepOutcome> streamed;
    for (int i = 0; i < shards; ++i) {
      const std::size_t begin =
          matrix.size() * static_cast<std::size_t>(i) /
          static_cast<std::size_t>(shards);
      const std::size_t end =
          matrix.size() * static_cast<std::size_t>(i + 1) /
          static_cast<std::size_t>(shards);
      SweepRunner(3).run_range(matrix, begin, end, [&](SweepOutcome&& o) {
        // Emission must be in strictly ascending index order.
        EXPECT_EQ(o.point.index,
                  streamed.empty() ? begin : streamed.back().point.index + 1);
        streamed.push_back(std::move(o));
      });
    }
    ASSERT_EQ(streamed.size(), reference.size());
    expect_equal_results(streamed, reference);
  }
}

TEST(SweepRunner, RunRangeRejectsBadSlicesAndPropagatesSinkErrors) {
  const ScenarioMatrix matrix = harness::named_matrix("smoke");
  const auto sink = [](SweepOutcome&&) {};
  EXPECT_THROW(SweepRunner(2).run_range(matrix, 0, matrix.size() + 1, sink),
               std::invalid_argument);
  EXPECT_THROW(SweepRunner(2).run_range(matrix, 5, 4, sink),
               std::invalid_argument);
  EXPECT_THROW(SweepRunner(4).run_range(matrix, 0, matrix.size(),
                                        [](SweepOutcome&& o) {
                                          if (o.point.index == 3) {
                                            throw std::runtime_error("sink");
                                          }
                                        }),
               std::runtime_error);
}

TEST(SweepRunner, SmokeMatrixIsHealthy) {
  const auto points = harness::named_matrix("smoke").build();
  const auto outcomes = SweepRunner(2).run(points);
  const auto summary = SweepRunner::summarize(outcomes, 1.0);
  EXPECT_EQ(summary.total, points.size());
  EXPECT_EQ(summary.decided, points.size());
  EXPECT_EQ(summary.agreement_violations, 0u);
  EXPECT_EQ(summary.validity_violations, 0u);
  EXPECT_EQ(summary.errors, 0u);
}

// ---------------------------------------------------------- fault edges

TEST(FaultEdges, CrashExactlyAtGst) {
  // GST > 0 and a process that crashes at precisely that instant: the
  // survivors must still reach consensus.
  for (const VcKind kind : kAllVcs) {
    SCOPED_TRACE(harness::to_string(kind));
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.t = 1;
    cfg.gst = 5.0;
    cfg.vc = kind;
    cfg.proposals = {2, 2, 2, 2};
    cfg.faults[3] = harness::Fault::crash(/*when=*/5.0);
    const StrongValidity validity;
    const auto result =
        harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
    EXPECT_TRUE(result.all_correct_decided(cfg));
    EXPECT_TRUE(result.agreement());
    ASSERT_TRUE(result.common_decision().has_value());
    EXPECT_EQ(*result.common_decision(), 2);  // unanimity pins the decision
  }
}

TEST(FaultEdges, EquivocatingProposerUnderEachVcKind) {
  for (const VcKind kind : kAllVcs) {
    SCOPED_TRACE(harness::to_string(kind));
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.t = 1;
    cfg.vc = kind;
    cfg.proposals = {1, 1, 1, 0};
    cfg.faults[3] = harness::Fault::equivocate(9);
    const StrongValidity validity;
    const auto result = harness::run_universal(
        cfg, make_lambda(validity, cfg.n, cfg.t, {0, 1, 9}, {0, 1, 9}));
    EXPECT_TRUE(result.all_correct_decided(cfg));
    EXPECT_TRUE(result.agreement());
    // All correct processes propose 1, so Strong Validity forces 1.
    ASSERT_TRUE(result.common_decision().has_value());
    EXPECT_EQ(*result.common_decision(), 1);
  }
}

TEST(FaultEdges, DelayedSenderUnderEachVcKind) {
  // One sender's outbound links are held until after GST; consensus must
  // still terminate and agree.
  for (const VcKind kind : kAllVcs) {
    SCOPED_TRACE(harness::to_string(kind));
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.t = 1;
    cfg.gst = 4.0;
    cfg.vc = kind;
    cfg.proposals = {0, 1, 0, 1};
    cfg.faults[0] = harness::Fault::delay();  // release < 0 -> gst + delta
    const StrongValidity validity;
    const auto result =
        harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
    EXPECT_TRUE(result.all_correct_decided(cfg));
    EXPECT_TRUE(result.agreement());
  }
}

TEST(FaultEdges, LastDecisionTimeExcludesFaultyDecisions) {
  // A delayed process runs a full recorded stack and — cut off from its
  // peers until after GST — decides strictly later than every correct
  // process (cell "vc=auth val=Strong fault=delayx1 n=4 t=1 gst=0 delta=1
  // seed=2" of the pinned full matrix). last_decision_time used to be
  // maxed over all recorded decisions before the faulty ones were pruned,
  // so the sweep's mean_latency silently included faulty processes; it
  // must be the max over the surviving (correct) decide_times.
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.gst = 0.0;
  cfg.delta = 1.0;
  cfg.seed = 2;
  cfg.vc = VcKind::kAuthenticated;
  cfg.proposals = {2, 0, 1, 2};
  cfg.faults[3] = harness::Fault::delay();
  const StrongValidity validity;
  const auto result =
      harness::run_universal(cfg, make_lambda(validity, cfg.n, cfg.t));
  EXPECT_TRUE(result.all_correct_decided(cfg));
  EXPECT_EQ(result.decide_times.count(3), 0u) << "faulty pid must be pruned";
  ASSERT_FALSE(result.decide_times.empty());
  double last_correct = 0.0;
  for (const auto& [pid, when] : result.decide_times) {
    last_correct = std::max(last_correct, when);
  }
  EXPECT_EQ(result.last_decision_time, last_correct);
}

// ----------------------------------------------- checker-derived verdicts

TEST(SweepOutcome, FlagsAreDerivedFromTheExecutionReport) {
  // run_point no longer computes decided/agreement/validity_ok by hand:
  // they are exactly the ExecutionReport of core::check_execution over the
  // (already faulty-pruned) decisions, so a violation always comes with
  // its human-readable reason.
  const auto outcomes = SweepRunner(4).run(
      harness::named_matrix("byzantine").build());
  for (const auto& outcome : outcomes) {
    SCOPED_TRACE(outcome.point.label);
    ASSERT_TRUE(outcome.error.empty());
    EXPECT_EQ(outcome.decided, outcome.report.termination);
    EXPECT_EQ(outcome.agreement, outcome.report.agreement);
    EXPECT_EQ(outcome.validity_ok, outcome.report.validity);
    EXPECT_EQ(outcome.report.ok(), outcome.report.violations.empty());
  }
}

TEST(SweepPoint, NearMissRecordingIsOffByDefaultAndGatesTheWireFields) {
  // The near-miss axis follows the pat=/net= tag convention: a matrix that
  // never opted in produces bytes identical to the pinned legacy format,
  // so tests/golden/full.sha256 cannot move.
  ScenarioMatrix matrix;
  matrix.vc_kinds({VcKind::kAuthenticated}).seeds({1});
  const SweepPoint legacy = matrix.point_at(0);
  EXPECT_FALSE(legacy.near_miss);
  const std::string legacy_line =
      harness::io::outcome_line(harness::run_point(legacy));
  EXPECT_EQ(legacy_line.find("min_vote_margin"), std::string::npos);
  EXPECT_EQ(legacy_line.find("queue_drained"), std::string::npos);

  matrix.record_near_miss();
  const SweepPoint recorded = matrix.point_at(0);
  EXPECT_TRUE(recorded.near_miss);
  const std::string line =
      harness::io::outcome_line(harness::run_point(recorded));
  EXPECT_NE(line.find("\"min_vote_margin\": "), std::string::npos);
  EXPECT_NE(line.find("\"conflicting_votes\": "), std::string::npos);
  EXPECT_NE(line.find("\"queue_drained\": "), std::string::npos);
  EXPECT_NE(line.find("\"end_time\": "), std::string::npos);
  EXPECT_NE(line.find("\"grace_cutoff\": "), std::string::npos);
}

TEST(ScenarioMatrix, HorizonDefaultsUnboundedAndRejectsNonPositive) {
  ScenarioMatrix matrix;
  EXPECT_EQ(matrix.point_at(0).config.horizon, ScenarioConfig{}.horizon);
  matrix.horizon(42.0);
  EXPECT_EQ(matrix.point_at(0).config.horizon, 42.0);
  EXPECT_THROW(matrix.horizon(0.0), std::invalid_argument);
  EXPECT_THROW(matrix.horizon(-1.0), std::invalid_argument);
}

// ------------------------------------------------------------ validation

TEST(ScenarioValidation, RejectsMisconfiguredScenarios) {
  const StrongValidity validity;
  const auto lambda = make_lambda(validity, 4, 1);

  ScenarioConfig wrong_proposals;
  wrong_proposals.proposals = {1, 2};  // n = 4
  EXPECT_THROW(static_cast<void>(harness::run_universal(wrong_proposals,
                                                        lambda)),
               std::invalid_argument);

  ScenarioConfig too_many_faults;
  too_many_faults.proposals = {1, 1, 1, 1};
  too_many_faults.faults[0] = {};
  too_many_faults.faults[1] = {};  // t = 1
  EXPECT_THROW(static_cast<void>(harness::run_universal(too_many_faults,
                                                        lambda)),
               std::invalid_argument);

  ScenarioConfig fault_out_of_range;
  fault_out_of_range.proposals = {1, 1, 1, 1};
  fault_out_of_range.faults[7] = {};
  EXPECT_THROW(static_cast<void>(harness::run_universal(fault_out_of_range,
                                                        lambda)),
               std::invalid_argument);

  ScenarioConfig bad_t;
  bad_t.t = 4;  // t must be < n
  bad_t.proposals = {1, 1, 1, 1};
  EXPECT_THROW(static_cast<void>(harness::run_universal(bad_t, lambda)),
               std::invalid_argument);

  ScenarioConfig bad_delta;
  bad_delta.proposals = {1, 1, 1, 1};
  bad_delta.delta = 0.0;
  EXPECT_THROW(static_cast<void>(harness::run_universal(bad_delta, lambda)),
               std::invalid_argument);

  ScenarioConfig negative_crash;
  negative_crash.proposals = {1, 1, 1, 1};
  negative_crash.faults[0] = harness::Fault::crash(-2.0);
  EXPECT_THROW(static_cast<void>(harness::run_universal(negative_crash,
                                                        lambda)),
               std::invalid_argument);

  ScenarioConfig ok;
  ok.proposals = {1, 1, 1, 1};
  EXPECT_NO_THROW(static_cast<void>(harness::run_universal(ok, lambda)));
}

TEST(ValidityFactory, CoversEveryKindAndRoundtripsNames) {
  for (const ValidityKind kind :
       {ValidityKind::kStrong, ValidityKind::kWeak,
        ValidityKind::kCorrectProposal, ValidityKind::kMedian,
        ValidityKind::kConvexHull}) {
    const auto property = harness::make_validity(kind, 7, 2);
    ASSERT_NE(property, nullptr);
    EXPECT_FALSE(harness::to_string(kind).empty());
  }
}
