// Sharding, checkpointing and the sweep JSON wire format
// (harness/sweep_io.hpp): escaping of control characters, strict CLI
// parsers, balanced shard ranges, outcome-line round-trips, checkpoint
// persistence (including torn-sidecar recovery) and the merge-tool
// verification that shards are disjoint and exhaustive.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "valcon/harness/sweep.hpp"
#include "valcon/harness/sweep_io.hpp"

using namespace valcon;
using namespace valcon::harness;
namespace io = valcon::harness::io;

namespace {

/// A scratch file path unique to the current test, cleaned up on exit.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + info->test_suite_name() + "_" +
            info->name() + "_" + tag;
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The document a `valcon_sweep --shard` run of `matrix` would emit for
/// `spec`, as one string (what the CLI streams, reproduced through the
/// same sweep_io writers).
std::string shard_document_text(const ScenarioMatrix& matrix,
                                const std::string& name,
                                const std::optional<io::ShardSpec>& spec) {
  const std::size_t total = matrix.size();
  const io::ShardRange range =
      io::shard_range(total, spec.value_or(io::ShardSpec{0, 1}));
  std::ostringstream os;
  io::document_header(os, name, spec, total);
  io::JsonSummary summary;
  SweepRunner(2).run_range(matrix, range.begin, range.end,
                           [&](SweepOutcome&& o) {
                             const std::string line = io::outcome_line(o);
                             summary.add(io::parse_outcome_line(line));
                             os << line
                                << (o.point.index + 1 < range.end ? ",\n"
                                                                  : "\n");
                           });
  io::document_footer(os, summary);
  return os.str();
}

io::ShardDocument parse_text(const std::string& text) {
  std::istringstream is(text);
  return io::parse_document(is);
}

}  // namespace

// -------------------------------------------------------------- escaping

TEST(JsonEscape, EscapesControlCharactersAsUnicode) {
  // \r and other sub-0x20 bytes used to be emitted raw, producing invalid
  // JSON whenever an exception message contained them.
  EXPECT_EQ(io::json_escape("a\rb"), "a\\u000db");
  EXPECT_EQ(io::json_escape(std::string("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(io::json_escape("q\"\\\n\t"), "q\\\"\\\\\\n\\t");
  EXPECT_EQ(io::json_escape("plain"), "plain");
}

// --------------------------------------------------------------- parsers

TEST(ParseInt, RejectsGarbageAndOutOfRange) {
  EXPECT_EQ(io::parse_int("4", 1), 4);
  EXPECT_EQ(io::parse_int("0", 0), 0);
  EXPECT_FALSE(io::parse_int("abc", 1).has_value());
  EXPECT_FALSE(io::parse_int("-3", 1).has_value());
  EXPECT_FALSE(io::parse_int("0", 1).has_value());
  EXPECT_FALSE(io::parse_int("3x", 1).has_value());
  EXPECT_FALSE(io::parse_int("", 1).has_value());
  EXPECT_FALSE(io::parse_int(" 5", 1).has_value());
  EXPECT_FALSE(io::parse_int("99999999999999", 1).has_value());
}

TEST(ParseShardSpec, AcceptsOnlyStrictIOverM) {
  const auto ok = io::parse_shard_spec("1/3");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->index, 1);
  EXPECT_EQ(ok->count, 3);
  EXPECT_FALSE(io::parse_shard_spec("3/3").has_value());  // index < count
  EXPECT_FALSE(io::parse_shard_spec("0/0").has_value());
  EXPECT_FALSE(io::parse_shard_spec("-1/2").has_value());
  EXPECT_FALSE(io::parse_shard_spec("a/b").has_value());
  EXPECT_FALSE(io::parse_shard_spec("1").has_value());
  EXPECT_FALSE(io::parse_shard_spec("1/2/3").has_value());
  EXPECT_FALSE(io::parse_shard_spec("/2").has_value());
  EXPECT_FALSE(io::parse_shard_spec("1/").has_value());
}

TEST(ShardRange, SlicesAreBalancedDisjointAndExhaustive) {
  for (const std::size_t total : {0u, 1u, 7u, 30u, 720u, 1000001u}) {
    for (const int m : {1, 2, 3, 7, 16, 100}) {
      std::size_t expect = 0;
      for (int i = 0; i < m; ++i) {
        const io::ShardRange r = io::shard_range(total, {i, m});
        EXPECT_EQ(r.begin, expect);
        EXPECT_LE(r.end - r.begin, total / static_cast<std::size_t>(m) + 1);
        expect = r.end;
      }
      EXPECT_EQ(expect, total) << "total=" << total << " m=" << m;
    }
  }
  EXPECT_THROW(static_cast<void>(io::shard_range(10, {3, 3})),
               std::invalid_argument);
}

// --------------------------------------------------- outcome round-trips

TEST(OutcomeLine, RoundTripsThroughParse) {
  const auto points = named_matrix("smoke").build();
  const SweepOutcome outcome = run_point(points.front());
  const std::string line = io::outcome_line(outcome);
  const io::ScenarioRecord r = io::parse_outcome_line(line);
  EXPECT_FALSE(r.has_error);
  EXPECT_EQ(r.decided, outcome.decided);
  EXPECT_EQ(r.agreement, outcome.agreement);
  EXPECT_EQ(r.validity_ok, outcome.validity_ok);
  EXPECT_EQ(r.message_complexity,
            static_cast<double>(outcome.result.message_complexity));
  EXPECT_EQ(r.word_complexity,
            static_cast<double>(outcome.result.word_complexity));
}

TEST(OutcomeLine, ErrorWithControlCharactersStaysValidJson) {
  SweepOutcome outcome;
  outcome.point = named_matrix("smoke").point_at(0);
  outcome.error = "bad\r\nthing\x01";
  const std::string line = io::outcome_line(outcome);
  EXPECT_NE(line.find("\\u000d"), std::string::npos);
  EXPECT_NE(line.find("\\u0001"), std::string::npos);
  for (const char c : line) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control character in JSON line";
  }
  EXPECT_TRUE(io::parse_outcome_line(line).has_error);
}

TEST(OutcomeLine, MalformedLineThrows) {
  EXPECT_THROW(static_cast<void>(io::parse_outcome_line("    {\"label\": 1}")),
               std::runtime_error);
}

TEST(OutcomeLine, AxisTagsSurfaceOnlyWhenTheMatrixDeclaresThem) {
  // Legacy matrices (both new axes at their single default) emit the
  // legacy bytes; a matrix sweeping the axes carries the fields — and the
  // extended line still round-trips through the summary parser.
  const SweepOutcome legacy = run_point(named_matrix("smoke").point_at(0));
  const std::string legacy_line = io::outcome_line(legacy);
  EXPECT_EQ(legacy_line.find("\"pattern\""), std::string::npos);
  EXPECT_EQ(legacy_line.find("\"net_profile\""), std::string::npos);

  const SweepOutcome tagged = run_point(
      named_matrix("validity").keep_patterns({"adversarial"}).point_at(0));
  const std::string tagged_line = io::outcome_line(tagged);
  EXPECT_NE(tagged_line.find("\"pattern\": \"adversarial\""),
            std::string::npos)
      << tagged_line;
  EXPECT_NE(tagged_line.find("\"net_profile\": \"uniform\""),
            std::string::npos)
      << tagged_line;
  const io::ScenarioRecord r = io::parse_outcome_line(tagged_line);
  EXPECT_EQ(r.decided, tagged.decided);
  EXPECT_EQ(r.validity_ok, tagged.validity_ok);
}

TEST(JsonSummary, AccumulatesMeansOverDecidedRunsOnly) {
  io::JsonSummary summary;
  io::ScenarioRecord decided;
  decided.decided = true;
  decided.last_decision_time = 2.0;
  decided.message_complexity = 10;
  decided.word_complexity = 100;
  io::ScenarioRecord errored;
  errored.has_error = true;
  io::ScenarioRecord violated;
  violated.decided = true;
  violated.last_decision_time = 4.0;
  violated.agreement = false;
  summary.add(decided);
  summary.add(errored);
  summary.add(violated);
  EXPECT_EQ(summary.total, 3u);
  EXPECT_EQ(summary.decided, 2u);
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_EQ(summary.agreement_violations, 1u);
  EXPECT_FALSE(summary.healthy());
  EXPECT_NE(summary.to_json().find("\"mean_latency\": 3"), std::string::npos);
}

// ------------------------------------------------------------ checkpoint

TEST(Checkpoint, JsonRoundTripAndWorkIdentity) {
  io::Checkpoint cp;
  cp.matrix = "full";
  cp.strategies = "crash,equivocate";
  cp.patterns = "adversarial,rotating";
  cp.net_profiles = "pre-gst-starve";
  cp.shard = {2, 5};
  cp.total = 720;
  cp.begin = 288;
  cp.end = 432;
  cp.next = 300;
  cp.sidecar_bytes = 4711;
  const io::Checkpoint back = io::Checkpoint::parse(cp.to_json());
  EXPECT_TRUE(back.same_work(cp));
  EXPECT_EQ(back.next, 300u);
  EXPECT_EQ(back.sidecar_bytes, 4711u);

  io::Checkpoint other = cp;
  other.strategies = "crash";
  EXPECT_FALSE(other.same_work(cp));
  other = cp;
  other.patterns = "rotating";
  EXPECT_FALSE(other.same_work(cp));
  other = cp;
  other.net_profiles = "";
  EXPECT_FALSE(other.same_work(cp));
  other = cp;
  other.shard.index = 3;
  EXPECT_FALSE(other.same_work(cp));
  EXPECT_TRUE([&] {
    io::Checkpoint resumed = cp;
    resumed.next = 431;
    resumed.sidecar_bytes = 9000;
    return resumed.same_work(cp);
  }());

  EXPECT_THROW(static_cast<void>(io::Checkpoint::parse("{}")),
               std::runtime_error);
  io::Checkpoint bad = cp;
  bad.next = 10;  // outside [begin, end]
  EXPECT_THROW(static_cast<void>(io::Checkpoint::parse(bad.to_json())),
               std::runtime_error);
}

TEST(Checkpoint, ParsesPrePatternAxisFilesAsUnfiltered) {
  // A checkpoint written before the pattern / net-profile axes existed
  // carries neither filter field; it must keep resuming as "no filter"
  // rather than failing or mismatching its own work.
  const std::string legacy =
      "{\"matrix\": \"full\", \"strategies\": \"\", \"shard_index\": 0, "
      "\"shard_count\": 1, \"total\": 720, \"begin\": 0, \"end\": 720, "
      "\"next\": 100, \"sidecar_bytes\": 12345}\n";
  const io::Checkpoint cp = io::Checkpoint::parse(legacy);
  EXPECT_EQ(cp.patterns, "");
  EXPECT_EQ(cp.net_profiles, "");
  EXPECT_EQ(cp.next, 100u);
  io::Checkpoint fresh;
  fresh.matrix = "full";
  fresh.total = 720;
  fresh.end = 720;
  EXPECT_TRUE(fresh.same_work(cp));
}

TEST(Checkpoint, AtomicWriteAndSidecarTornLineRecovery) {
  TempFile file("sidecar");
  io::atomic_write(file.path(), "one\ntwo\nthree\ntorn-no-newline");
  const auto lines = io::read_sidecar(file.path(), 3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[2], "three");
  // The torn fourth line is not a complete line, and asking for more
  // complete lines than exist must fail loudly.
  EXPECT_THROW(static_cast<void>(io::read_sidecar(file.path(), 4)),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(io::read_sidecar(file.path() + ".gone", 1)),
               std::runtime_error);
  EXPECT_TRUE(io::read_sidecar(file.path() + ".gone", 0).empty());
}

// --------------------------------------------------- documents and merge

TEST(MergeDocuments, ShardsReassembleByteIdenticalToSingleShot) {
  const ScenarioMatrix matrix = named_matrix("smoke");
  const std::string single =
      shard_document_text(matrix, "smoke", std::nullopt);
  for (const int m : {2, 3, 7}) {
    std::vector<io::ShardDocument> docs;
    for (int i = 0; i < m; ++i) {
      docs.push_back(parse_text(
          shard_document_text(matrix, "smoke", io::ShardSpec{i, m})));
    }
    std::ostringstream merged;
    io::merge_documents(merged, std::move(docs));
    EXPECT_EQ(merged.str(), single) << "shard count " << m;
  }
}

TEST(MergeDocuments, RejectsOverlapGapAndMismatch) {
  const ScenarioMatrix matrix = named_matrix("smoke");
  const auto doc = [&](int i, int m) {
    return parse_text(shard_document_text(matrix, "smoke",
                                          io::ShardSpec{i, m}));
  };
  std::ostringstream sink;
  // Missing shard 2/3.
  EXPECT_THROW(io::merge_documents(sink, {doc(0, 3), doc(1, 3)}),
               std::invalid_argument);
  // Shard 0 provided twice (overlap at index 0).
  EXPECT_THROW(
      io::merge_documents(sink, {doc(0, 3), doc(0, 3), doc(1, 3), doc(2, 3)}),
      std::invalid_argument);
  // Mixed partitions that tile exactly are fine.
  {
    std::ostringstream merged;
    io::merge_documents(merged, {doc(0, 2), doc(2, 4), doc(3, 4)});
    EXPECT_EQ(merged.str(),
              shard_document_text(matrix, "smoke", std::nullopt));
  }
  // Empty slices (shard count > matrix size) are harmless wherever they
  // sort relative to the real ones — including one whose begin lands
  // strictly inside a range another shard already covered.
  {
    std::ostringstream merged;
    io::merge_documents(merged, {doc(0, 2), doc(1, 2), doc(60000, 100000)});
    EXPECT_EQ(merged.str(),
              shard_document_text(matrix, "smoke", std::nullopt));
  }
  // Different matrix name.
  auto renamed = doc(0, 3);
  renamed.matrix = "other";
  EXPECT_THROW(io::merge_documents(sink, {renamed, doc(1, 3), doc(2, 3)}),
               std::invalid_argument);
  // Empty input.
  EXPECT_THROW(io::merge_documents(sink, {}), std::invalid_argument);
}

TEST(ParseDocument, RejectsMalformedDocuments) {
  EXPECT_THROW(static_cast<void>(parse_text("not json")),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(parse_text("{\n  \"matrix\": \"x\",\n")),
               std::runtime_error);
  // A shard header whose range disagrees with index/count/total.
  const std::string bad =
      "{\n  \"matrix\": \"x\",\n"
      "  \"shard\": {\"index\": 0, \"count\": 2, \"total\": 10, "
      "\"begin\": 0, \"end\": 9},\n"
      "  \"scenarios\": [\n  ],\n  \"summary\": {}\n}\n";
  EXPECT_THROW(static_cast<void>(parse_text(bad)), std::runtime_error);
}
