// Pins core::thresholds: the value table at the paper's boundary
// regimes, the input-validation throws, and — the load-bearing check —
// that routing every protocol comparison through the helpers left the
// pinned full-matrix sweep document byte-identical (tests/golden/
// full.sha256). A threshold off-by-one anywhere in consensus/ or
// bcast/ changes decision timing or outcomes and shows up here as a
// digest mismatch.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "valcon/core/thresholds.hpp"
#include "valcon/crypto/sha256.hpp"
#include "valcon/harness/sweep.hpp"
#include "valcon/harness/sweep_io.hpp"

namespace valcon {
namespace {

using core::brb_echo_quorum;
using core::byz_quorum;
using core::byz_resilient;
using core::plurality;
using core::quorum_n_minus_t;

// ------------------------------------------------------- value tables

TEST(Thresholds, ValueTableAtSmallestResilientRegime) {
  // n = 3t + 1: the paper's minimal Byzantine-resilient systems.
  EXPECT_EQ(quorum_n_minus_t(4, 1), 3);
  EXPECT_EQ(plurality(1), 2);
  EXPECT_EQ(byz_quorum(4, 1), 3);
  EXPECT_EQ(brb_echo_quorum(4, 1), 3);
  EXPECT_TRUE(byz_resilient(4, 1));

  EXPECT_EQ(quorum_n_minus_t(7, 2), 5);
  EXPECT_EQ(plurality(2), 3);
  EXPECT_EQ(byz_quorum(7, 2), 5);
  EXPECT_EQ(brb_echo_quorum(7, 2), 5);
  EXPECT_TRUE(byz_resilient(7, 2));

  EXPECT_EQ(quorum_n_minus_t(10, 3), 7);
  EXPECT_EQ(byz_quorum(10, 3), 7);
  EXPECT_EQ(brb_echo_quorum(10, 3), 7);
}

TEST(Thresholds, ValueTableJustOutsideResilience) {
  // n = 3t: the unsound regime the sweep harness deliberately runs.
  // The helpers still compute (the corpus replays depend on it); only
  // the regime predicate reports the deficit.
  EXPECT_EQ(quorum_n_minus_t(3, 1), 2);
  EXPECT_EQ(byz_quorum(3, 1), 3);
  EXPECT_EQ(brb_echo_quorum(3, 1), 3);
  EXPECT_FALSE(byz_resilient(3, 1));

  EXPECT_EQ(quorum_n_minus_t(6, 2), 4);
  EXPECT_EQ(byz_quorum(6, 2), 5);
  EXPECT_EQ(brb_echo_quorum(6, 2), 5);
  EXPECT_FALSE(byz_resilient(6, 2));

  // The corpus's n = 4, t = 2 cells sit even deeper in the unsound
  // regime and must also evaluate.
  EXPECT_EQ(quorum_n_minus_t(4, 2), 2);
  EXPECT_EQ(byz_quorum(4, 2), 5);
  EXPECT_FALSE(byz_resilient(4, 2));
}

TEST(Thresholds, ValueTableCrashFreeDegenerateCase) {
  // t = 0: every quorum collapses to "one vote" or "everyone".
  EXPECT_EQ(quorum_n_minus_t(1, 0), 1);
  EXPECT_EQ(quorum_n_minus_t(5, 0), 5);
  EXPECT_EQ(plurality(0), 1);
  EXPECT_EQ(byz_quorum(5, 0), 1);
  EXPECT_EQ(brb_echo_quorum(5, 0), 3);
  EXPECT_EQ(brb_echo_quorum(1, 0), 1);
  EXPECT_TRUE(byz_resilient(1, 0));
}

TEST(Thresholds, EchoQuorumIsCeilOfHalfNPlusTPlusOne) {
  for (int n = 1; n <= 12; ++n) {
    for (int t = 0; t <= n; ++t) {
      const int expected = (n + t + 1 + 1) / 2;  // ceil((n+t+1)/2)
      EXPECT_EQ(brb_echo_quorum(n, t), expected) << "n=" << n << " t=" << t;
    }
  }
}

// ------------------------------------------------------- validation

TEST(Thresholds, RejectsNonsenseSystems) {
  EXPECT_THROW((void)quorum_n_minus_t(0, 0), std::invalid_argument);
  EXPECT_THROW((void)quorum_n_minus_t(4, -1), std::invalid_argument);
  EXPECT_THROW((void)quorum_n_minus_t(4, 5), std::invalid_argument);
  EXPECT_THROW((void)plurality(-1), std::invalid_argument);
  EXPECT_THROW((void)byz_quorum(-3, 1), std::invalid_argument);
  EXPECT_THROW((void)byz_quorum(3, 4), std::invalid_argument);
  EXPECT_THROW((void)brb_echo_quorum(0, 0), std::invalid_argument);
  EXPECT_THROW((void)byz_resilient(4, 5), std::invalid_argument);
}

TEST(Thresholds, AcceptsFullByzantineBoundary) {
  // t = n is a describable (if hopeless) system; only t > n is nonsense.
  EXPECT_EQ(quorum_n_minus_t(3, 3), 0);
  EXPECT_EQ(byz_quorum(3, 3), 7);
  EXPECT_FALSE(byz_resilient(3, 3));
}

// -------------------------------------------- sweep-level golden pin

// Rebuilds the full-matrix sweep document in-process exactly the way
// valcon_sweep emits it (header, comma-separated outcome lines in
// index order, footer) and compares its SHA-256 against the committed
// golden. This is the acceptance gate for the thresholds refactor:
// same bytes means every quorum decision fired at the same instant
// with the same outcome as before the helpers existed.
TEST(Thresholds, FullMatrixSweepDocumentMatchesCommittedGolden) {
  const harness::ScenarioMatrix matrix = harness::named_matrix("full");
  const std::size_t total = matrix.size();

  std::ostringstream doc;
  harness::io::document_header(doc, "full", std::nullopt, total);
  harness::io::JsonSummary summary;
  const harness::SweepRunner runner(4);
  runner.run_range(matrix, 0, total, [&](harness::SweepOutcome&& o) {
    const std::string line = harness::io::outcome_line(o);
    summary.add(harness::io::parse_outcome_line(line));
    doc << line << (o.point.index + 1 < total ? ",\n" : "\n");
  });
  harness::io::document_footer(doc, summary);

  const std::string text = doc.str();
  const crypto::Sha256::Digest digest =
      crypto::Sha256::hash(text.data(), text.size());
  std::string hex;
  for (const std::uint8_t byte : digest) {
    static const char* kHex = "0123456789abcdef";
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xf]);
  }

  std::ifstream golden(std::string(VALCON_GOLDEN_DIR) + "/full.sha256");
  ASSERT_TRUE(golden.is_open()) << "missing tests/golden/full.sha256";
  std::string expected;
  golden >> expected;  // first token: the hex digest
  ASSERT_EQ(expected.size(), 64U);
  EXPECT_EQ(hex, expected)
      << "the full-matrix sweep document changed bytes; if that is"
         " intentional, refresh tests/golden/full.sha256";
}

}  // namespace
}  // namespace valcon
