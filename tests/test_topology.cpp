// Tests for the large-n scaling layer: the hybrid dense/sparse Network
// link tables (property-checked in lockstep, dense vs sparse, mirroring
// test_hot_path's reference-network approach), lazy link-table and
// key-registry allocation, the Topology axis (parsing, validation, wire
// gating, checkpoint identity), committee scenarios end to end under both
// cert modes (including announce forgery rejection at the crypto layer),
// and the committee matrix's job-count independence down to the emitted
// bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "valcon/crypto/signatures.hpp"
#include "valcon/harness/net_profile.hpp"
#include "valcon/harness/scenario.hpp"
#include "valcon/harness/sweep.hpp"
#include "valcon/harness/sweep_io.hpp"
#include "valcon/harness/topology.hpp"
#include "valcon/sim/network.hpp"

using namespace valcon;
using namespace valcon::harness;

namespace {

// ------------------------------------------------------ hybrid link tables

/// Drives a dense-backed and a sparse-backed Network through one identical
/// seeded script of holds, blocks and arrival queries. Both consume their
/// own Rng identically (same constructor seed, same query order), so any
/// behavioral difference between the backends shows up as a mismatched
/// arrival on some later query — the same lockstep shape
/// test_hot_path.cpp uses against its reference implementation.
void run_lockstep_script(int n, std::uint64_t seed) {
  sim::NetworkConfig cfg;
  cfg.gst = 5.0;
  cfg.delta = 1.0;
  sim::Network dense(cfg, n, seed, sim::Network::Storage::kDense);
  sim::Network sparse(cfg, n, seed, sim::Network::Storage::kSparse);
  ASSERT_TRUE(dense.dense_storage());
  ASSERT_FALSE(sparse.dense_storage());

  sim::Rng script(seed ^ 0xabcdef);
  Time now = 0.0;
  for (int step = 0; step < 2000; ++step) {
    const auto from = static_cast<ProcessId>(script.next_below(n));
    const auto to = static_cast<ProcessId>(script.next_below(n));
    switch (script.next_below(8)) {
      case 0: {  // install or overwrite a hold
        const Time until = script.uniform(0.0, 20.0);
        dense.hold(from, to, until);
        sparse.hold(from, to, until);
        break;
      }
      case 1:  // block (the test plays the adversary; no faulty check here)
        dense.block(from, to);
        sparse.block(from, to);
        break;
      default: {  // query — the common case, as on the real hot path
        now += script.uniform(0.0, 0.5);
        const std::optional<Time> a = dense.arrival_time(from, to, now);
        const std::optional<Time> b = sparse.arrival_time(from, to, now);
        ASSERT_EQ(a.has_value(), b.has_value())
            << "drop divergence at step " << step;
        if (a.has_value()) {
          ASSERT_EQ(*a, *b) << "arrival divergence at step " << step;
        }
        break;
      }
    }
  }
}

TEST(HybridNetwork, SparseMatchesDenseUnderSeededAdversaryScripts) {
  for (const int n : {3, 8, 17}) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      run_lockstep_script(n, seed);
    }
  }
}

TEST(HybridNetwork, AutoStorageSwitchesAtTheDocumentedThreshold) {
  sim::NetworkConfig cfg;
  const sim::Network at(cfg, sim::Network::kDenseThreshold, 1);
  const sim::Network above(cfg, sim::Network::kDenseThreshold + 1, 1);
  EXPECT_TRUE(at.dense_storage());
  EXPECT_FALSE(above.dense_storage());
}

TEST(HybridNetwork, LinkTablesAllocateLazily) {
  sim::NetworkConfig cfg;
  for (const auto storage :
       {sim::Network::Storage::kDense, sim::Network::Storage::kSparse}) {
    sim::Network net(cfg, 50, 3, storage);
    EXPECT_EQ(net.link_table_bytes(), 0u);
    // A clean run queries arrivals without ever touching the tables.
    for (int i = 0; i < 100; ++i) {
      static_cast<void>(net.arrival_time(i % 50, (i + 1) % 50, 0.1 * i));
    }
    EXPECT_EQ(net.link_table_bytes(), 0u);
    net.hold(0, 1, 4.0);
    EXPECT_GT(net.link_table_bytes(), 0u);
  }
}

TEST(HybridNetwork, SparseMemoryIsProportionalToActiveLinks) {
  sim::NetworkConfig cfg;
  sim::Network net(cfg, 100000, 1, sim::Network::Storage::kSparse);
  net.hold(0, 99999, 2.0);
  net.block(99999, 0);
  // Two active links on a 10^10-link id space: far below what even one
  // dense row would cost.
  EXPECT_LT(net.link_table_bytes(), 4096u);
}

TEST(HybridNetwork, MutationValidatesIdsInBothBackends) {
  sim::NetworkConfig cfg;
  for (const auto storage :
       {sim::Network::Storage::kDense, sim::Network::Storage::kSparse}) {
    sim::Network net(cfg, 4, 1, storage);
    EXPECT_THROW(net.hold(0, 4, 1.0), std::out_of_range);
    EXPECT_THROW(net.block(-1, 0), std::out_of_range);
  }
}

// ------------------------------------------------------- lazy key registry

TEST(LazyKeyRegistry, DerivesOnlyTouchedSecrets) {
  const crypto::KeyRegistry registry(1000, 667, 42);
  EXPECT_EQ(registry.key_derivations(), 0u);

  const crypto::Hash digest = announce_digest(7);
  const crypto::Signature s0 = registry.signer_for(0).sign(digest);
  const crypto::Signature s1 = registry.signer_for(1).sign(digest);
  EXPECT_EQ(registry.key_derivations(), 2u);

  // Verification of already-derived signers derives nothing new; a fresh
  // signer derives exactly one more slot.
  EXPECT_TRUE(registry.verify(s0));
  EXPECT_TRUE(registry.verify(s1));
  EXPECT_EQ(registry.key_derivations(), 2u);
  EXPECT_TRUE(registry.verify(registry.signer_for(999).sign(digest)));
  EXPECT_EQ(registry.key_derivations(), 3u);
}

TEST(LazyKeyRegistry, DerivationIsAPureFunctionOfSeedAndId) {
  const crypto::KeyRegistry a(50, 34, 9);
  const crypto::KeyRegistry b(50, 34, 9);
  const crypto::Hash digest = announce_digest(3);
  // Touch ids in different orders; signatures must still agree bit-for-bit
  // and cross-verify.
  const crypto::Signature from_a = a.signer_for(20).sign(digest);
  static_cast<void>(b.signer_for(49).sign(digest));
  const crypto::Signature from_b = b.signer_for(20).sign(digest);
  EXPECT_EQ(from_a, from_b);
  EXPECT_TRUE(b.verify(from_a));
}

// ----------------------------------------------------------- topology axis

TEST(TopologyAxis, ParsesNamedForms) {
  EXPECT_TRUE(named_topology("full-mesh").full_mesh());
  const Topology committee = named_topology("committee-10");
  EXPECT_EQ(committee.committee_k, 10);
  EXPECT_EQ(committee.name, "committee-10");
  EXPECT_EQ(Topology::committee_fault_tolerance(10), 3);

  EXPECT_THROW(static_cast<void>(named_topology("committee-0")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(named_topology("committee-")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(named_topology("ring")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(named_topology("")), std::invalid_argument);
}

TEST(TopologyAxis, ValidateRejectsCommitteesLargerThanTheSystem) {
  EXPECT_NO_THROW(named_topology("committee-7").validate(7));
  EXPECT_THROW(named_topology("committee-8").validate(7),
               std::invalid_argument);
  EXPECT_NO_THROW(named_topology("full-mesh").validate(1));
}

TEST(TopologyAxis, WireGatedLikeTheOtherAxes) {
  // Trivial axis (the default full mesh): no tag, no label suffix — the
  // pinned golden sweeps depend on this staying byte-silent.
  const ScenarioMatrix legacy = named_matrix("smoke");
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const SweepPoint p = legacy.point_at(i);
    EXPECT_TRUE(p.topology_tag.empty());
    EXPECT_EQ(p.label.find("topo="), std::string::npos);
  }

  // Non-trivial axis: every point carries its topology in tag and label,
  // and the outcome line grows a "topology" field.
  const ScenarioMatrix wide = named_matrix("smoke").topologies(
      {"full-mesh", "committee-4"});
  EXPECT_EQ(wide.size(), legacy.size() * 2);
  bool saw_committee = false;
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const SweepPoint p = wide.point_at(i);
    EXPECT_FALSE(p.topology_tag.empty());
    EXPECT_NE(p.label.find("topo=" + p.topology_tag), std::string::npos);
    if (p.topology_tag == "committee-4") saw_committee = true;
  }
  EXPECT_TRUE(saw_committee);
}

TEST(TopologyAxis, KeepTopologiesFiltersAndRejectsUnknownNames) {
  ScenarioMatrix matrix =
      named_matrix("smoke").topologies({"full-mesh", "committee-4"});
  const std::size_t both = matrix.size();
  matrix.keep_topologies({"committee-4"});
  EXPECT_EQ(matrix.size(), both / 2);
  EXPECT_THROW(matrix.keep_topologies({"committee-nope"}),
               std::invalid_argument);
  EXPECT_THROW(matrix.keep_topologies({"full-mesh"}), std::invalid_argument)
      << "filtering to an absent axis value must fail loudly";
}

TEST(TopologyAxis, CheckpointRoundTripsTopologiesAndSplitsWorkIdentity) {
  io::Checkpoint cp;
  cp.matrix = "committee";
  cp.topologies = "committee-4,committee-7";
  cp.total = 10;
  cp.end = 10;
  const io::Checkpoint back = io::Checkpoint::parse(cp.to_json());
  EXPECT_EQ(back.topologies, cp.topologies);
  EXPECT_TRUE(cp.same_work(back));

  io::Checkpoint other = cp;
  other.topologies = "committee-4";
  EXPECT_FALSE(cp.same_work(other));

  // Pre-topology checkpoint files parse as unfiltered.
  std::string legacy = cp.to_json();
  const auto field = legacy.find("\"topologies\"");
  const auto next_field = legacy.find("\"shard_index\"");
  ASSERT_NE(field, std::string::npos);
  ASSERT_LT(field, next_field);
  legacy.erase(field, next_field - field);
  EXPECT_EQ(io::Checkpoint::parse(legacy).topologies, "");
}

// ----------------------------------------------------- committee scenarios

SweepPoint committee_point(int n, int t, const std::string& topology,
                           core::CertMode mode, VcKind vc,
                           std::uint64_t seed) {
  return ScenarioMatrix()
      .vc_kinds({vc})
      .validities({ValidityKind::kStrong})
      .patterns({"unanimous"})
      .faults({FaultSpec{"silent", 0}})
      .sizes({{n, t}})
      .topologies({topology})
      .cert_modes({mode})
      .seeds({seed})
      .point_at(0);
}

TEST(CommitteeScenario, EveryProcessDecidesUnderBothCertModes) {
  for (const core::CertMode mode :
       {core::CertMode::kPerVote, core::CertMode::kAggregate}) {
    for (const VcKind vc :
         {VcKind::kAuthenticated, VcKind::kNonAuthenticated}) {
      const SweepOutcome o =
          run_point(committee_point(25, 8, "committee-7", mode, vc, 1));
      ASSERT_TRUE(o.error.empty()) << o.error;
      EXPECT_TRUE(o.result.agreement());
      // Strong validity with unanimous proposals: listeners included, all
      // 25 processes decide the proposed value.
      EXPECT_EQ(o.result.decisions.size(), 25u);
      ASSERT_TRUE(o.result.common_decision().has_value());
    }
  }
}

TEST(CommitteeScenario, MessageComplexityBeatsFullMeshAtScale) {
  const SweepOutcome mesh = run_point(committee_point(
      60, 19, "full-mesh", core::CertMode::kAggregate,
      VcKind::kAuthenticated, 1));
  const SweepOutcome committee = run_point(committee_point(
      60, 19, "committee-7", core::CertMode::kAggregate,
      VcKind::kAuthenticated, 1));
  ASSERT_TRUE(mesh.error.empty()) << mesh.error;
  ASSERT_TRUE(committee.error.empty()) << committee.error;
  EXPECT_EQ(committee.result.decisions.size(), 60u);
  EXPECT_LT(committee.result.messages_total * 5,
            mesh.result.messages_total)
      << "the committee overlay should cut traffic by far more than 5x "
         "at n=60";
}

TEST(CommitteeScenario, CommitteeTooLargeForSystemIsAValidationError) {
  const SweepOutcome o = run_point(committee_point(
      4, 1, "committee-7", core::CertMode::kPerVote, VcKind::kAuthenticated,
      1));
  EXPECT_FALSE(o.error.empty());
}

TEST(CommitteeScenario, AnnounceDigestBindsTheValue) {
  const auto keys = shared_key_registry(7, 5, 1);
  const crypto::Signature sig =
      keys->signer_for(0).sign(announce_digest(4));
  EXPECT_TRUE(keys->verify(sig));

  // A forged announce re-targeting the signature at another value dies at
  // verification: the digest listeners recompute no longer matches.
  crypto::Signature forged = sig;
  forged.digest = announce_digest(5);
  EXPECT_FALSE(keys->verify(forged));

  // And a signature from outside the committee registry (different seed →
  // different key universe) never verifies.
  const auto other = shared_key_registry(7, 5, 2);
  EXPECT_FALSE(keys->verify(other->signer_for(0).sign(announce_digest(4))));
}

// ----------------------------------------------- committee matrix identity

TEST(CommitteeMatrix, OutcomeBytesAreIdenticalAcrossJobCounts) {
  // One topology slice of the committee matrix (n up to 200, both cert
  // modes); CI byte-compares the full matrix across --jobs via the CLI.
  const ScenarioMatrix matrix =
      named_matrix("committee").keep_topologies({"committee-7"});
  ASSERT_GT(matrix.size(), 0u);
  const auto render = [&](int jobs) {
    std::string all;
    SweepRunner(jobs).run_range(matrix, 0, matrix.size(),
                                [&](SweepOutcome&& o) {
                                  all += io::outcome_line(o);
                                  all += '\n';
                                });
    return all;
  };
  const std::string jobs1 = render(1);
  EXPECT_EQ(jobs1, render(4));
  EXPECT_EQ(jobs1, render(8));
  EXPECT_NE(jobs1.find("\"topology\": \"committee-7\""), std::string::npos);
}

// ------------------------------------------------- sampled overlay profile

TEST(SampledOverlay, MembershipIsDeterministicAndSymmetric) {
  const NetworkProfile profile = named_network_profile("sampled-overlay");
  const sim::Network::DelayPolicy policy = profile.make_delay_policy(5.0);
  ASSERT_TRUE(static_cast<bool>(policy));

  int fast = 0, slow = 0;
  for (ProcessId a = 0; a < 40; ++a) {
    EXPECT_FALSE(policy(a, a, 1.0).has_value()) << "self-links stay fast";
    for (ProcessId b = a + 1; b < 40; ++b) {
      const std::optional<Time> fwd = policy(a, b, 1.0);
      const std::optional<Time> rev = policy(b, a, 9.0);
      EXPECT_EQ(fwd.has_value(), rev.has_value())
          << "overlay membership must be undirected";
      (fwd.has_value() ? slow : fast) += 1;
    }
  }
  // keep_permille=500: both classes are well represented at 780 pairs.
  EXPECT_GT(fast, 200);
  EXPECT_GT(slow, 200);
}

TEST(SampledOverlay, ValidateRejectsDegenerateKeepProbability) {
  NetworkProfile profile = named_network_profile("sampled-overlay");
  profile.overlay_keep_permille = 0;
  EXPECT_THROW(profile.validate(10), std::invalid_argument);
  profile.overlay_keep_permille = 1001;
  EXPECT_THROW(profile.validate(10), std::invalid_argument);
}

}  // namespace
