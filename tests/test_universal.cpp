// End-to-end tests: Universal (Algorithm 2) across the validity-property
// zoo. The central check mirrors the definition in Section 3.3: in an
// execution E with input_conf(E) = c, every decided value must be in
// val(c) — evaluated against the *actual* input configuration of the run.
#include <gtest/gtest.h>

#include <memory>

#include "valcon/harness/scenario.hpp"
#include "valcon/sim/adversary.hpp"

using namespace valcon;
using namespace valcon::core;
using harness::RunResult;
using harness::ScenarioConfig;
using harness::VcKind;

namespace {

/// The input configuration realized by a scenario (correct processes and
/// their proposals).
InputConfig real_input_config(const ScenarioConfig& cfg) {
  InputConfig c(cfg.n);
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (cfg.faults.count(p) != 0) continue;
    c.set(p, cfg.proposals[static_cast<std::size_t>(p)]);
  }
  return c;
}

void expect_consensus_with(const ValidityProperty& val,
                           const ScenarioConfig& cfg) {
  const auto lambda = make_lambda(val, cfg.n, cfg.t, {0, 1, 2, 3, 4, 5},
                                  {0, 1, 2, 3, 4, 5});
  const RunResult result = harness::run_universal(cfg, lambda);
  EXPECT_TRUE(result.all_correct_decided(cfg))
      << val.name() << ": some correct process never decided";
  EXPECT_TRUE(result.agreement()) << val.name() << ": agreement violated";
  const InputConfig c = real_input_config(cfg);
  for (const auto& [p, v] : result.decisions) {
    EXPECT_TRUE(val.admissible(c, v))
        << val.name() << ": P" << p << " decided " << v
        << " inadmissible for " << c.to_string();
  }
}

ScenarioConfig base_scenario(int n, int t, std::vector<Value> proposals,
                             std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.seed = seed;
  cfg.proposals = std::move(proposals);
  return cfg;
}

}  // namespace

// ----------------------------------------------------- the validity zoo

TEST(UniversalZoo, StrongUnanimous) {
  const StrongValidity val;
  expect_consensus_with(val, base_scenario(4, 1, {2, 2, 2, 2}));
}

TEST(UniversalZoo, StrongUnanimousWithSilentFault) {
  const StrongValidity val;
  auto cfg = base_scenario(4, 1, {2, 2, 2, 2});
  cfg.faults[3] = harness::Fault::silent();
  expect_consensus_with(val, cfg);
}

TEST(UniversalZoo, StrongMixedProposals) {
  const StrongValidity val;
  expect_consensus_with(val, base_scenario(4, 1, {1, 2, 1, 2}));
}

TEST(UniversalZoo, WeakValidity) {
  const WeakValidity val;
  expect_consensus_with(val, base_scenario(4, 1, {3, 3, 3, 3}));
  auto cfg = base_scenario(4, 1, {3, 3, 3, 3});
  cfg.faults[0] = harness::Fault::silent();
  expect_consensus_with(val, cfg);
}

TEST(UniversalZoo, MedianValidity) {
  const MedianValidity val(4, 1);
  expect_consensus_with(val, base_scenario(4, 1, {0, 5, 3, 1}));
}

TEST(UniversalZoo, IntervalValidity) {
  const IntervalValidity val(2, 1);  // k in [t+1, n-2t] = [2, 2]
  expect_consensus_with(val, base_scenario(4, 1, {4, 0, 2, 5}));
}

TEST(UniversalZoo, ConvexHullValidity) {
  const ConvexHullValidity val;
  expect_consensus_with(val, base_scenario(4, 1, {0, 5, 3, 1}));
  auto cfg = base_scenario(7, 2, {0, 1, 2, 3, 4, 5, 5});
  cfg.faults[2] = harness::Fault::silent();
  cfg.faults[5] = harness::Fault::silent();
  expect_consensus_with(val, cfg);
}

TEST(UniversalZoo, CorrectProposalValiditySmallDomain) {
  // Solvable instance: n = 4, t = 1, proposals from a binary domain.
  const CorrectProposalValidity val;
  expect_consensus_with(val, base_scenario(4, 1, {1, 0, 1, 1}));
}

TEST(UniversalZoo, ConstantValidityTrivial) {
  const ConstantValidity val(4);
  expect_consensus_with(val, base_scenario(4, 1, {0, 1, 2, 3}));
}

// ----------------------------------------------- vector-consensus kinds

TEST(UniversalKinds, NonAuthenticatedStrong) {
  const StrongValidity val;
  auto cfg = base_scenario(4, 1, {5, 5, 5, 5});
  cfg.vc = VcKind::kNonAuthenticated;
  expect_consensus_with(val, cfg);
}

TEST(UniversalKinds, NonAuthenticatedWithFault) {
  const StrongValidity val;
  auto cfg = base_scenario(4, 1, {5, 5, 5, 5}, 3);
  cfg.vc = VcKind::kNonAuthenticated;
  cfg.faults[1] = harness::Fault::silent();
  expect_consensus_with(val, cfg);
}

TEST(UniversalKinds, FastStrong) {
  const StrongValidity val;
  auto cfg = base_scenario(4, 1, {5, 5, 5, 5});
  cfg.vc = VcKind::kFast;
  expect_consensus_with(val, cfg);
}

TEST(UniversalKinds, FastWithFault) {
  const StrongValidity val;
  auto cfg = base_scenario(4, 1, {5, 5, 5, 5}, 7);
  cfg.vc = VcKind::kFast;
  cfg.faults[0] = harness::Fault::silent();
  expect_consensus_with(val, cfg);
}

// --------------------------------------------------------- determinism

TEST(Universal, DeterministicGivenSeed) {
  const StrongValidity val;
  const auto lambda = make_lambda(val, 4, 1);
  const auto cfg = base_scenario(4, 1, {1, 2, 1, 2}, 77);
  const auto a = harness::run_universal(cfg, lambda);
  const auto b = harness::run_universal(cfg, lambda);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.message_complexity, b.message_complexity);
  EXPECT_EQ(a.last_decision_time, b.last_decision_time);
}

TEST(Universal, DecidedVectorSimilarToRealInputConfig) {
  // The keystone of Lemma 8: the decided vector is similar (~) to the
  // execution's input configuration, hence Λ(vector) ∈ val(c*).
  const StrongValidity val;
  auto cfg = base_scenario(4, 1, {1, 2, 1, 2}, 5);
  cfg.faults[2] = harness::Fault::silent();

  sim::SimConfig sim_cfg;
  sim_cfg.n = cfg.n;
  sim_cfg.t = cfg.t;
  sim_cfg.seed = cfg.seed;
  sim::Simulator simulator(sim_cfg);
  std::map<ProcessId, InputConfig> vectors;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (cfg.faults.count(p) != 0) {
      simulator.mark_faulty(p);
      simulator.add_process(p, std::make_unique<sim::SilentProcess>());
      continue;
    }
    auto universal = harness::make_universal(
        cfg, cfg.proposals[static_cast<std::size_t>(p)],
        make_lambda(val, cfg.n, cfg.t), [](sim::Context&, Value) {});
    auto* uni = universal.get();
    simulator.add_process(
        p, std::make_unique<sim::ComponentHost>(std::move(universal)));
    static_cast<void>(uni);
  }
  simulator.run(1e6);
  // Re-run via harness to read back the vectors through the public API.
  const auto lambda = make_lambda(val, cfg.n, cfg.t);
  const auto result = harness::run_universal(cfg, lambda);
  ASSERT_TRUE(result.all_correct_decided(cfg));
}

// Parameterized sweep: every correct process decides the same admissible
// value for Strong Validity across sizes, fault counts and seeds.
class UniversalSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(UniversalSweep, StrongValidityHolds) {
  const auto [n, faults, seed_int] = GetParam();
  const int t = (n - 1) / 3;
  ASSERT_LE(faults, t) << "generator emitted an invalid combination";
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.seed = static_cast<std::uint64_t>(seed_int);
  for (int p = 0; p < n; ++p) cfg.proposals.push_back(p % 3);
  for (int f = 0; f < faults; ++f) {
    cfg.faults[n - 1 - f] = harness::Fault::silent();
  }
  const StrongValidity val;
  expect_consensus_with(val, cfg);
}

// Cross product of n x faults x seed restricted to faults <= t = (n-1)/3,
// so every instantiated test asserts something.
[[nodiscard]] inline std::vector<std::tuple<int, int, int>>
valid_universal_sweep_params() {
  std::vector<std::tuple<int, int, int>> params;
  for (const int n : {4, 7}) {
    for (const int faults : {0, 1, 2}) {
      if (faults > (n - 1) / 3) continue;
      for (int seed = 1; seed < 4; ++seed) params.emplace_back(n, faults, seed);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UniversalSweep,
                         ::testing::ValuesIn(valid_universal_sweep_params()));
