// Unit tests: the validity-property zoo (Section 3.3's examples and §2's
// related-work properties in our formalism).
#include <gtest/gtest.h>

#include "valcon/core/similarity.hpp"
#include "valcon/core/validity.hpp"

using namespace valcon;
using namespace valcon::core;

TEST(StrongValidity, UnanimousPinsDecision) {
  const StrongValidity val;
  const InputConfig unanimous = InputConfig::of(4, {{0, 3}, {1, 3}, {2, 3}});
  EXPECT_TRUE(val.admissible(unanimous, 3));
  EXPECT_FALSE(val.admissible(unanimous, 4));
}

TEST(StrongValidity, MixedProposalsAllowAnything) {
  const StrongValidity val;
  const InputConfig mixed = InputConfig::of(4, {{0, 3}, {1, 5}, {2, 3}});
  EXPECT_TRUE(val.admissible(mixed, 3));
  EXPECT_TRUE(val.admissible(mixed, 99));
}

TEST(WeakValidity, OnlyFullUnanimousConfigsConstrain) {
  const WeakValidity val;
  const InputConfig full_unanimous =
      InputConfig::of(3, {{0, 7}, {1, 7}, {2, 7}});
  EXPECT_TRUE(val.admissible(full_unanimous, 7));
  EXPECT_FALSE(val.admissible(full_unanimous, 8));
  // Same proposals but one process missing: everything admissible.
  const InputConfig partial = InputConfig::of(3, {{0, 7}, {1, 7}});
  EXPECT_TRUE(val.admissible(partial, 8));
}

TEST(WeakValidity, WeakerThanStrong) {
  // Every weak-validity constraint is also a strong-validity constraint.
  const WeakValidity weak;
  const StrongValidity strong;
  for (const auto& c :
       {InputConfig::of(3, {{0, 1}, {1, 1}, {2, 1}}),
        InputConfig::of(3, {{0, 1}, {1, 1}}),
        InputConfig::of(3, {{0, 1}, {1, 2}, {2, 1}})}) {
    for (Value v = 0; v <= 2; ++v) {
      if (strong.admissible(c, v)) {
        EXPECT_TRUE(weak.admissible(c, v))
            << c.to_string() << " v=" << v;
      }
    }
  }
}

TEST(CorrectProposalValidity, OnlyProposedValuesAdmissible) {
  const CorrectProposalValidity val;
  const InputConfig c = InputConfig::of(4, {{0, 3}, {1, 5}, {2, 3}});
  EXPECT_TRUE(val.admissible(c, 3));
  EXPECT_TRUE(val.admissible(c, 5));
  EXPECT_FALSE(val.admissible(c, 4));
}

TEST(IntervalValidity, BoundsAreOrderStatistics) {
  // k = 2, slack = 1 over proposals {1, 4, 9}: admissible = [q1, q3] = [1,9].
  const IntervalValidity val(2, 1);
  const InputConfig c = InputConfig::of(4, {{0, 9}, {1, 1}, {2, 4}});
  EXPECT_TRUE(val.admissible(c, 1));
  EXPECT_TRUE(val.admissible(c, 5));
  EXPECT_TRUE(val.admissible(c, 9));
  EXPECT_FALSE(val.admissible(c, 0));
  EXPECT_FALSE(val.admissible(c, 10));
}

TEST(IntervalValidity, ClampingAtTheEdges) {
  // k = 1, slack = 1: lower index clamps to 1.
  const IntervalValidity val(1, 1);
  const InputConfig c = InputConfig::of(4, {{0, 2}, {1, 5}, {2, 8}});
  EXPECT_TRUE(val.admissible(c, 2));
  EXPECT_TRUE(val.admissible(c, 5));  // q2 = 5 is the upper bound
  EXPECT_FALSE(val.admissible(c, 6));
}

TEST(MedianValidity, CentersOnMedian) {
  const MedianValidity val(4, 1);  // k = (4-1+1)/2 = 2, slack = 1
  const InputConfig c = InputConfig::of(4, {{0, 10}, {1, 20}, {2, 30}});
  // admissible = [q1, q3] = [10, 30].
  EXPECT_TRUE(val.admissible(c, 10));
  EXPECT_TRUE(val.admissible(c, 30));
  EXPECT_FALSE(val.admissible(c, 31));
}

TEST(ConvexHullValidity, HullOfCorrectProposals) {
  const ConvexHullValidity val;
  const InputConfig c = InputConfig::of(4, {{0, -5}, {1, 10}, {2, 0}});
  EXPECT_TRUE(val.admissible(c, -5));
  EXPECT_TRUE(val.admissible(c, 3));
  EXPECT_TRUE(val.admissible(c, 10));
  EXPECT_FALSE(val.admissible(c, -6));
  EXPECT_FALSE(val.admissible(c, 11));
}

TEST(ConstantValidity, ExclusivePinsSingleValue) {
  const ConstantValidity val(42);
  const InputConfig c = InputConfig::of(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(val.admissible(c, 42));
  EXPECT_FALSE(val.admissible(c, 41));
}

TEST(ConstantValidity, NonExclusiveAdmitsEverything) {
  const ConstantValidity val(42, /*exclusive=*/false);
  const InputConfig c = InputConfig::of(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(val.admissible(c, 0));
  EXPECT_TRUE(val.admissible(c, 42));
}

TEST(TableValidity, ExplicitMapping) {
  TableValidity::Table table;
  const InputConfig c1 = InputConfig::of(3, {{0, 0}, {1, 0}});
  table[c1] = {1};
  const TableValidity val(std::move(table));
  EXPECT_TRUE(val.admissible(c1, 1));
  EXPECT_FALSE(val.admissible(c1, 0));
  // Unmapped configurations default to "everything admissible".
  EXPECT_TRUE(val.admissible(InputConfig::of(3, {{0, 1}, {1, 1}}), 7));
}

TEST(AdmissibleSet, FiltersOutputDomain) {
  const StrongValidity val;
  const InputConfig unanimous = InputConfig::of(4, {{0, 2}, {1, 2}, {2, 2}});
  EXPECT_EQ(val.admissible_set(unanimous, {0, 1, 2, 3}),
            (std::vector<Value>{2}));
  const InputConfig mixed = InputConfig::of(4, {{0, 2}, {1, 1}, {2, 2}});
  EXPECT_EQ(val.admissible_set(mixed, {0, 1, 2}).size(), 3u);
}

TEST(ValidityProperty, ValNeverEmptyOnSolvableZoo) {
  // The definition requires val(c) != ∅ for every c. Check over a finite
  // output domain large enough to contain all constrained values.
  const std::vector<Value> domain = {0, 1, 2};
  const StrongValidity strong;
  const WeakValidity weak;
  const CorrectProposalValidity correct;
  const ConvexHullValidity hull;
  const MedianValidity median(4, 1);
  for (const ValidityProperty* val :
       {static_cast<const ValidityProperty*>(&strong),
        static_cast<const ValidityProperty*>(&weak),
        static_cast<const ValidityProperty*>(&correct),
        static_cast<const ValidityProperty*>(&hull),
        static_cast<const ValidityProperty*>(&median)}) {
    core::for_each_config(4, domain, 3, 4, [&](const InputConfig& c) {
      EXPECT_FALSE(val->admissible_set(c, domain).empty())
          << val->name() << " empty at " << c.to_string();
      return true;
    });
  }
}
