// Integration tests: all three vector-consensus implementations
// (Algorithms 1, 3, 6) — Agreement on the vector, Termination, size
// exactly n-t, and Vector Validity (decided entries of correct processes
// match their real proposals), under fault injection and across seeds.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "valcon/consensus/auth_vector_consensus.hpp"
#include "valcon/consensus/fast_vector_consensus.hpp"
#include "valcon/consensus/nonauth_vector_consensus.hpp"
#include "valcon/sim/adversary.hpp"
#include "valcon/sim/simulator.hpp"

using namespace valcon;
using namespace valcon::sim;
using namespace valcon::consensus;

namespace {

enum class Kind { kAuth, kNonAuth, kFast };

std::unique_ptr<VectorConsensus> make_vc(Kind kind, int n) {
  switch (kind) {
    case Kind::kAuth: return std::make_unique<AuthVectorConsensus>();
    case Kind::kNonAuth: return std::make_unique<NonAuthVectorConsensus>(n);
    case Kind::kFast: return std::make_unique<FastVectorConsensus>();
  }
  return nullptr;
}

struct VcRun {
  std::map<ProcessId, core::InputConfig> vectors;
  std::uint64_t message_complexity = 0;
};

VcRun run_vc(Kind kind, int n, int t, const std::vector<Value>& proposals,
             const std::vector<ProcessId>& silent, std::uint64_t seed) {
  SimConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.seed = seed;
  Simulator sim(cfg);
  VcRun out;
  for (ProcessId p = 0; p < n; ++p) {
    if (std::find(silent.begin(), silent.end(), p) != silent.end()) {
      sim.mark_faulty(p);
      sim.add_process(p, std::make_unique<SilentProcess>());
      continue;
    }
    auto vc = make_vc(kind, n);
    vc->set_input(proposals[static_cast<std::size_t>(p)]);
    vc->set_on_decide([&out, p](Context&, const core::InputConfig& vec) {
      out.vectors.emplace(p, vec);
    });
    sim.add_process(p, std::make_unique<ComponentHost>(std::move(vc)));
  }
  sim.run(1e7);
  out.message_complexity = sim.metrics().message_complexity();
  return out;
}

void expect_vector_consensus_properties(const VcRun& run, int n, int t,
                                        const std::vector<Value>& proposals,
                                        const std::vector<ProcessId>& silent) {
  // Termination: every correct process decided.
  ASSERT_EQ(run.vectors.size(), static_cast<std::size_t>(n) - silent.size());
  // Agreement: all decided vectors identical.
  const core::InputConfig& vec = run.vectors.begin()->second;
  for (const auto& [p, v] : run.vectors) EXPECT_EQ(v, vec);
  // Exactly n-t pairs.
  EXPECT_EQ(vec.count(), n - t);
  // Vector Validity: entries of correct processes match their proposals;
  // silent processes cannot appear (they never sent anything).
  for (const ProcessId p : vec.processes()) {
    EXPECT_EQ(std::find(silent.begin(), silent.end(), p), silent.end())
        << "silent process P" << p << " appears in the decided vector";
    EXPECT_EQ(*vec.at(p), proposals[static_cast<std::size_t>(p)]);
  }
}

}  // namespace

class VectorConsensusSuite
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  [[nodiscard]] Kind kind() const {
    return static_cast<Kind>(std::get<0>(GetParam()));
  }
  [[nodiscard]] std::uint64_t seed() const {
    return static_cast<std::uint64_t>(std::get<1>(GetParam()));
  }
};

TEST_P(VectorConsensusSuite, AllCorrectDistinctProposals) {
  const int n = 4;
  const int t = 1;
  const std::vector<Value> proposals = {10, 11, 12, 13};
  const auto run = run_vc(kind(), n, t, proposals, {}, seed());
  expect_vector_consensus_properties(run, n, t, proposals, {});
}

TEST_P(VectorConsensusSuite, OneSilentFault) {
  const int n = 4;
  const int t = 1;
  const std::vector<Value> proposals = {10, 11, 12, 13};
  const std::vector<ProcessId> silent = {2};
  const auto run = run_vc(kind(), n, t, proposals, silent, seed());
  expect_vector_consensus_properties(run, n, t, proposals, silent);
}

TEST_P(VectorConsensusSuite, SevenProcessesTwoSilent) {
  const int n = 7;
  const int t = 2;
  const std::vector<Value> proposals = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<ProcessId> silent = {0, 6};
  const auto run = run_vc(kind(), n, t, proposals, silent, seed());
  expect_vector_consensus_properties(run, n, t, proposals, silent);
}

namespace {

std::string kind_param_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static constexpr const char* kNames[] = {"Auth", "NonAuth", "Fast"};
  return std::string(kNames[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    AllKinds, VectorConsensusSuite,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Range(1, 4)),
    kind_param_name);

TEST(VectorConsensusComplexity, AuthIsQuadraticNonAuthIsNot) {
  // Shape check (E5/E6 preview): the non-authenticated implementation
  // sends far more messages than the authenticated one at equal n.
  const std::vector<Value> proposals = {1, 2, 3, 4, 5, 6, 7};
  const auto auth = run_vc(Kind::kAuth, 7, 2, proposals, {}, 1);
  const auto nonauth = run_vc(Kind::kNonAuth, 7, 2, proposals, {}, 1);
  EXPECT_GT(nonauth.message_complexity, 3 * auth.message_complexity);
}

TEST(VectorConsensusCrash, AuthToleratesCrashMidProtocol) {
  // A process that crashes mid-run is faulty; the rest must still decide.
  SimConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.seed = 9;
  Simulator sim(cfg);
  std::map<ProcessId, core::InputConfig> vectors;
  for (ProcessId p = 0; p < 4; ++p) {
    auto vc = std::make_unique<AuthVectorConsensus>();
    vc->set_input(p);
    vc->set_on_decide([&vectors, p](Context&, const core::InputConfig& vec) {
      vectors.emplace(p, vec);
    });
    std::unique_ptr<Process> host =
        std::make_unique<ComponentHost>(std::move(vc));
    if (p == 1) {
      sim.mark_faulty(1);
      host = std::make_unique<CrashShim>(std::move(host), /*crash=*/2.5);
    }
    sim.add_process(p, std::move(host));
  }
  sim.run(1e6);
  vectors.erase(1);
  ASSERT_EQ(vectors.size(), 3u);
  const auto& vec = vectors.begin()->second;
  for (const auto& [p, v] : vectors) EXPECT_EQ(v, vec);
  // P1's proposal may or may not appear (it signed it before crashing);
  // if it does, it must be the real one.
  if (vec.participates(1)) EXPECT_EQ(*vec.at(1), 1);
}
