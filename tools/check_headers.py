#!/usr/bin/env python3
"""check-headers: every public header must be self-contained.

A header that silently relies on whatever its includer happened to pull
in first compiles today and breaks the moment include order changes —
usually in the least related PR.  This check compiles each header under
src/ standalone (`$CXX -fsyntax-only`), so a header that forgets one of
its own includes fails here instead of in a downstream refactor.

Usage:
    tools/check_headers.py [--root DIR] [--cxx COMPILER] [--jobs N]

Exit status: 0 all headers self-contained, 1 failures, 2 usage error.

Dependency-free (stdlib only); uses the same compiler and -std the
build uses.  Runs as the ctest entry `headers_selfcontained`.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys

STD = "c++20"
HEADER_EXTENSIONS = (".hpp", ".h", ".hxx")


def find_headers(src_root: str):
    headers = []
    for root, dirs, names in os.walk(src_root):
        dirs.sort()
        for name in sorted(names):
            if name.endswith(HEADER_EXTENSIONS):
                headers.append(os.path.join(root, name))
    return headers


def check_one(cxx: str, src_root: str, header: str):
    cmd = [cxx, "-fsyntax-only", f"-std={STD}", "-I", src_root,
           "-x", "c++", header]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return header, proc.returncode, proc.stderr


def main(argv) -> int:
    parser = argparse.ArgumentParser(prog="check_headers.py")
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="repository root (default: .)")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                        help="compiler to use (default: $CXX or c++)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args(argv)

    src_root = os.path.join(args.root, "src")
    if not os.path.isdir(src_root):
        print(f"check-headers: no src/ under {args.root}", file=sys.stderr)
        return 2
    if shutil.which(args.cxx) is None:
        print(f"check-headers: compiler not found: {args.cxx}",
              file=sys.stderr)
        return 2

    headers = find_headers(src_root)
    if not headers:
        print(f"check-headers: no headers under {src_root}", file=sys.stderr)
        return 2

    failures = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        for header, rc, stderr in ex.map(
                lambda h: check_one(args.cxx, src_root, h), headers):
            if rc != 0:
                failures.append((header, stderr))

    for header, stderr in sorted(failures):
        print(f"NOT SELF-CONTAINED: {header}")
        sys.stdout.write(stderr)
    if failures:
        print(f"check-headers: {len(failures)} of {len(headers)} headers "
              "failed", file=sys.stderr)
        return 1
    print(f"check-headers: all {len(headers)} headers self-contained "
          f"({args.cxx}, -std={STD})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
