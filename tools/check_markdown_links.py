#!/usr/bin/env python3
"""Fails on broken intra-repo markdown links.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[label]: target`, skips external schemes
(http/https/mailto) and pure in-page anchors, and verifies that every
remaining target resolves to a file or directory relative to the linking
file (or to the repo root for absolute `/` paths). Anchors on resolved
targets (`file.md#section`) are stripped, not verified.

Run from anywhere inside the repo:  python3 tools/check_markdown_links.py
"""
import os
import re
import subprocess
import sys

# Target group stops at whitespace so an optional `"title"` part is ignored.
INLINE_LINK = re.compile(
    r"!?\[[^\]]*\]\(\s*([^()\s]+(?:\([^()]*\))?)(?:\s+\"[^\"]*\")?\s*\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def repo_root():
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def markdown_files(root):
    out = subprocess.run(["git", "ls-files", "*.md", "**/*.md"],
                         capture_output=True, text=True, check=True, cwd=root)
    return sorted(set(line for line in out.stdout.splitlines() if line))


def check_file(root, md):
    text = open(os.path.join(root, md), encoding="utf-8").read()
    # Fenced code blocks routinely contain `[i](...)`-shaped C++ — skip them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    broken = []
    for target in targets:
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if path.startswith("/"):
            resolved = os.path.join(root, path.lstrip("/"))
        else:
            resolved = os.path.join(root, os.path.dirname(md), path)
        if not os.path.exists(resolved):
            broken.append(target)
    return broken


def main():
    root = repo_root()
    failures = 0
    files = markdown_files(root)
    for md in files:
        for target in check_file(root, md):
            print(f"BROKEN  {md}: ({target})")
            failures += 1
    print(f"checked {len(files)} markdown files: "
          f"{failures} broken intra-repo link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
