#!/usr/bin/env python3
"""valcon-lint: repo-specific determinism linter for the valcon sources.

Every result this repo ships (the pinned golden sweep hashes, the shard and
resume byte-identity checks, the solvability classifications) assumes the
simulator and the sweep engine are bit-deterministic functions of
(configuration, seed).  The C++ type system does not enforce that, so this
linter bans the known ways determinism leaks out of a C++ codebase:

  wall-clock          std::chrono::system_clock, time(), gettimeofday,
                      localtime/gmtime, CLOCK_REALTIME.  Simulated time comes
                      from Context::now(); host timing must use steady_clock
                      and must never feed serialized output.
  raw-rand            std::rand/srand/random_device/drand48.  All randomness
                      flows through sim::Rng, seeded from the scenario.
  unordered-iteration Iterating a std::unordered_{map,set,multimap,multiset}.
                      Hash-order is libstdc++-version- and seed-dependent;
                      any iteration that feeds output, metrics or ordering is
                      a latent golden-hash break.  Membership tests and
                      point lookups are fine; iteration is not.
  pointer-key         A map/set keyed on a raw pointer type.  Pointer values
                      vary run to run (ASLR, allocator), so any iteration or
                      ordering derived from them is nondeterministic.
  build-stamp         __DATE__ / __TIME__ / __TIMESTAMP__ bake the build
                      instant into the binary.
  assert-validation   assert() as the only validation inside a parsing /
                      deserialization function.  Asserts vanish in NDEBUG
                      builds, so external input (checkpoint files, sweep
                      documents, message payloads) must be rejected with a
                      real error path instead.
  payload-type        A concrete sim::Payload subclass must declare its
                      metrics identity with VALCON_PAYLOAD_TYPE (wrapper
                      payloads that forward an inner payload's identity
                      carry an explicit suppression instead).
  bad-suppression     A `valcon-lint: allow(...)` comment without a written
                      reason.  Suppressions are part of the audit trail; a
                      bare waiver is itself a finding.

Suppression syntax (same line or the line directly above the finding):

    // valcon-lint: allow(<rule>[, <rule>...]) -- <reason>

The reason is mandatory.  `allow(*)` waives every rule on that line.

Usage:
    tools/valcon_lint.py [paths...]          lint (default: src)
    tools/valcon_lint.py --default-paths     lint the whole repo tree
                                             (src tools bench examples tests,
                                             minus the fixture corpora); this
                                             is the single source of truth the
                                             ctest entry and CI both use
    tools/valcon_lint.py --root DIR          resolve paths relative to DIR
    tools/valcon_lint.py --self-test [dir]   run the fixture corpus
                                             (default: tests/lint_corpus)
    tools/valcon_lint.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage/corpus error.

The linter is dependency-free (stdlib only) and lexical by design: it strips
comments and string literals, then pattern-matches the remaining code.  It
trades soundness for zero build-time cost; the fixture corpus under
tests/lint_corpus pins the behavior of every rule.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CPP_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx", ".hxx")

# The canonical lint tree for --default-paths: every C++ source the repo
# builds or ships.  The fixture corpora are pruned during the walk — they
# contain deliberate findings and are pinned by their own self-tests
# (valcon_lint.py --self-test, valcon_protomap.py self-test).
DEFAULT_LINT_DIRS = ("src", "tools", "bench", "examples", "tests")
EXCLUDED_DIR_NAMES = frozenset({"lint_corpus", "protomap_corpus"})

ALLOW_RE = re.compile(
    r"//\s*valcon-lint:\s*allow\(([^)]*)\)\s*(?:--\s*(\S.*))?$")
LINT_EXPECT_RE = re.compile(r"//\s*lint-expect:\s*([\w*,\s-]+?)\s*$")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string literals and char literals, preserving line
    structure so findings keep their line numbers.  Handles // and /* */
    comments, "..." and '...' literals with escapes.  (Raw strings are not
    used in this codebase and are not handled.)"""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            elif c == "\n":  # unterminated (macro line continuation, etc.)
                state = "code"
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


# --------------------------------------------------------------------- rules
#
# Each rule is a function (path, code_lines, raw_lines) -> [Finding].
# `code_lines` has comments and literals blanked; `raw_lines` is the original
# text (used only where the finding is about comments themselves).

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"(?<![\w.>])time\s*\(\s*(nullptr|NULL|0|&)"),
     "time()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime"),
    (re.compile(r"\bCLOCK_REALTIME\b"), "CLOCK_REALTIME"),
    (re.compile(r"\b(localtime|gmtime|mktime)\s*\("), "calendar time"),
]

RAW_RAND_PATTERNS = [
    (re.compile(r"\bstd::rand\b|(?<![\w.>:])s?rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![\w.>:])srand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b[de]rand48\b|\blrand48\b"), "rand48 family"),
]

BUILD_STAMP_RE = re.compile(r"__DATE__|__TIME__|__TIMESTAMP__")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;]*?>\s+(\w+)\s*(?:;|=|\{|,)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;:)]*:\s*([^)]*)\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?r?begin\s*\(")

POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*\s*[,>]")

FUNC_DEF_RE = re.compile(
    r"\b(?:[A-Za-z_]\w*::)*~?([A-Za-z_]\w*)\s*\([^;{}()]*\)?\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>&*\s]+)?\{")
PARSE_NAME_RE = re.compile(
    r"(?i)^(parse|deserialize|decode|unpack|load|read|from)(_|$|[A-Z])?")
ASSERT_RE = re.compile(r"(?<!static_)(?<!\w)assert\s*\(")

PAYLOAD_SUBCLASS_RE = re.compile(
    r"\b(?:struct|class)\s+([\w:]+)\s*(?:final\s*)?:"
    r"[^;{]*?\b(?:public\s+)?(?:[\w:]+::)?Payload\b")


def rule_simple_patterns(path, code_lines, _raw, patterns, rule, message):
    findings = []
    for idx, line in enumerate(code_lines):
        for pattern, what in patterns:
            if pattern.search(line):
                findings.append(Finding(path, idx + 1, rule,
                                        f"{what}: {message}"))
                break
    return findings


def rule_wall_clock(path, code_lines, raw_lines):
    return rule_simple_patterns(
        path, code_lines, raw_lines, WALL_CLOCK_PATTERNS, "wall-clock",
        "wall-clock time is nondeterministic; simulated time comes from "
        "Context::now(), host timing from steady_clock (and must never "
        "feed serialized output)")


def rule_raw_rand(path, code_lines, raw_lines):
    return rule_simple_patterns(
        path, code_lines, raw_lines, RAW_RAND_PATTERNS, "raw-rand",
        "unseeded/system randomness breaks (config, seed) determinism; "
        "draw from sim::Rng instead")


def rule_build_stamp(path, code_lines, _raw):
    findings = []
    for idx, line in enumerate(code_lines):
        if BUILD_STAMP_RE.search(line):
            findings.append(Finding(
                path, idx + 1, "build-stamp",
                "__DATE__/__TIME__ bake the build instant into the binary; "
                "outputs must depend only on inputs"))
    return findings


def rule_unordered_iteration(path, code_lines, _raw):
    """Flags iteration over variables declared with an unordered container
    type in the same file (range-for over the variable, or .begin() on it)
    and range-for directly over an unordered-typed expression."""
    unordered_vars = set()
    for line in code_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_vars.add(m.group(1))
    findings = []
    message = ("hash-order iteration is libstdc++-version- and seed-"
               "dependent; iterate a sorted copy or an ordered container")
    for idx, line in enumerate(code_lines):
        flagged = False
        for m in RANGE_FOR_RE.finditer(line):
            expr = m.group(1)
            if "unordered_" in expr or any(
                    re.search(rf"\b{re.escape(v)}\b", expr)
                    for v in unordered_vars):
                findings.append(Finding(path, idx + 1, "unordered-iteration",
                                        message))
                flagged = True
                break
        if flagged:
            continue
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group(1) in unordered_vars:
                findings.append(Finding(path, idx + 1, "unordered-iteration",
                                        message))
                break
    return findings


def rule_pointer_key(path, code_lines, _raw):
    findings = []
    for idx, line in enumerate(code_lines):
        if POINTER_KEY_RE.search(line):
            findings.append(Finding(
                path, idx + 1, "pointer-key",
                "pointer values vary run to run (ASLR, allocator); key maps "
                "and orderings on stable ids instead"))
    return findings


def rule_assert_validation(path, code_lines, _raw):
    """Flags assert() inside functions whose name marks them as consuming
    external input (parse/deserialize/decode/unpack/load/read/from_*).
    Asserts compile out under NDEBUG, so they cannot be the validation."""
    findings = []
    current_fn = None
    fn_depth = 0
    depth = 0
    for idx, line in enumerate(code_lines):
        m = FUNC_DEF_RE.search(line)
        if m is not None and m.group(1) not in (
                "if", "for", "while", "switch", "catch", "return"):
            current_fn = m.group(1)
            fn_depth = depth  # depth *before* this line's braces
        if current_fn is not None and PARSE_NAME_RE.match(current_fn) \
                and ASSERT_RE.search(line):
            findings.append(Finding(
                path, idx + 1, "assert-validation",
                f"assert() in '{current_fn}' vanishes under NDEBUG; "
                "external input needs a real error path (throw or "
                "std::nullopt)"))
        depth += line.count("{") - line.count("}")
        if current_fn is not None and depth <= fn_depth:
            current_fn = None
    return findings


def rule_payload_type(path, code_lines, _raw):
    """Every concrete Payload subclass must declare VALCON_PAYLOAD_TYPE in
    its body, so its metrics identity is interned and cached.  Wrapper
    payloads forwarding an inner identity suppress with a reason."""
    text = "\n".join(code_lines)
    findings = []
    for m in PAYLOAD_SUBCLASS_RE.finditer(text):
        brace = text.find("{", m.end() - 1)
        if brace < 0:
            continue
        depth = 0
        end = brace
        for i in range(brace, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        body = text[brace:end]
        if "VALCON_PAYLOAD_TYPE" not in body:
            line = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                path, line, "payload-type",
                f"'{m.group(1)}' subclasses Payload without "
                "VALCON_PAYLOAD_TYPE; metrics identity must be declared "
                "(wrappers forwarding an inner payload's identity add an "
                "explicit suppression)"))
    return findings


RULES = {
    "wall-clock": rule_wall_clock,
    "raw-rand": rule_raw_rand,
    "build-stamp": rule_build_stamp,
    "unordered-iteration": rule_unordered_iteration,
    "pointer-key": rule_pointer_key,
    "assert-validation": rule_assert_validation,
    "payload-type": rule_payload_type,
}


# --------------------------------------------------------- suppression logic


def parse_allows(raw_lines):
    """Returns ({line: set(rules)}, [Finding for bare allows]).  Line numbers
    are 1-based.  An allow with no reason is itself a finding."""
    allows = {}
    findings = []
    for idx, line in enumerate(raw_lines):
        m = ALLOW_RE.search(line)
        if m is None:
            if "valcon-lint:" in line and "allow" in line:
                findings.append(Finding(
                    "", idx + 1, "bad-suppression",
                    "malformed suppression; expected "
                    "`// valcon-lint: allow(<rule>) -- <reason>`"))
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = m.group(2)
        if not rules or reason is None or not reason.strip():
            findings.append(Finding(
                "", idx + 1, "bad-suppression",
                "suppression without a written reason; use "
                "`// valcon-lint: allow(<rule>) -- <reason>`"))
            continue
        unknown = {r for r in rules if r != "*" and r not in RULES}
        if unknown:
            findings.append(Finding(
                "", idx + 1, "bad-suppression",
                f"suppression names unknown rule(s): {', '.join(sorted(unknown))}"))
            continue
        allows[idx + 1] = rules
    return allows, findings


def lint_file(path: str) -> list[Finding]:
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(path, 0, "io-error", str(e))]
    raw_lines = text.split("\n")
    code_lines = strip_comments_and_strings(text).split("\n")
    allows, bad = parse_allows(raw_lines)
    findings = []
    for f in bad:
        f.path = path
        findings.append(f)
    for rule_fn in RULES.values():
        for f in rule_fn(path, code_lines, raw_lines):
            waived = allows.get(f.line, set()) | allows.get(f.line - 1, set())
            if f.rule in waived or "*" in waived:
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            # Only C++ sources carry the determinism rules.  Data files ride
            # along in linted trees — most prominently the committed
            # adversary-search corpus (tests/corpus/*.json), whose cells are
            # machine-generated wire format, not source — and are exempt
            # even when named explicitly.
            if path.endswith(CPP_EXTENSIONS):
                files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in EXCLUDED_DIR_NAMES)
                for name in sorted(names):
                    if name.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"valcon-lint: no such path: {path}", file=sys.stderr)
            sys.exit(2)
    return files


# ------------------------------------------------------------------ selftest


def self_test(corpus_dir: str) -> int:
    """Runs the corpus: files under good/ must produce zero findings; files
    under bad/ must produce exactly the findings named by their
    `// lint-expect: <rule>` markers (on the flagged line)."""
    good_dir = os.path.join(corpus_dir, "good")
    bad_dir = os.path.join(corpus_dir, "bad")
    if not os.path.isdir(good_dir) or not os.path.isdir(bad_dir):
        print(f"valcon-lint: corpus {corpus_dir} needs good/ and bad/",
              file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    covered_rules = set()
    for path in collect_files([good_dir]):
        checked += 1
        for f in lint_file(path):
            print(f"SELF-TEST FAIL (good file flagged): {f.format()}")
            failures += 1
    for path in collect_files([bad_dir]):
        checked += 1
        with open(path, encoding="utf-8") as fh:
            raw_lines = fh.read().split("\n")
        expected = set()
        for idx, line in enumerate(raw_lines):
            m = LINT_EXPECT_RE.search(line)
            if m is not None:
                for rule in m.group(1).split(","):
                    rule = rule.strip()
                    if rule not in RULES and rule != "bad-suppression":
                        print(f"SELF-TEST FAIL: {path}:{idx + 1} expects "
                              f"unknown rule '{rule}'")
                        failures += 1
                        continue
                    expected.add((idx + 1, rule))
        actual = {(f.line, f.rule) for f in lint_file(path)}
        for line_no, rule in sorted(expected - actual):
            print(f"SELF-TEST FAIL (missed): {path}:{line_no} "
                  f"expected [{rule}], not reported")
            failures += 1
        for line_no, rule in sorted(actual - expected):
            print(f"SELF-TEST FAIL (spurious): {path}:{line_no} "
                  f"reported [{rule}], not expected")
            failures += 1
        covered_rules.update(rule for _, rule in expected)
    uncovered = set(RULES) - covered_rules
    if uncovered:
        print("SELF-TEST FAIL: corpus has no bad-case coverage for: "
              + ", ".join(sorted(uncovered)))
        failures += 1
    if failures:
        print(f"self-test: {failures} failure(s) over {checked} files")
        return 1
    print(f"self-test: OK ({checked} corpus files, "
          f"{len(covered_rules)} rules covered)")
    return 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(prog="valcon_lint.py", add_help=True)
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--self-test", nargs="?", const="tests/lint_corpus",
                        default=None, metavar="CORPUS_DIR")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--default-paths", action="store_true",
                        help="lint the canonical repo tree: "
                             + " ".join(DEFAULT_LINT_DIRS))
    parser.add_argument("--root", default=".", metavar="DIR",
                        help="directory the default paths are resolved "
                             "against (default: .)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        print("bad-suppression")
        return 0
    if args.self_test is not None:
        return self_test(args.self_test)

    if args.default_paths:
        if args.paths:
            print("valcon-lint: --default-paths takes no positional paths",
                  file=sys.stderr)
            return 2
        paths = [os.path.join(args.root, d) for d in DEFAULT_LINT_DIRS
                 if os.path.isdir(os.path.join(args.root, d))]
        if not paths:
            print(f"valcon-lint: no lintable directories under {args.root}",
                  file=sys.stderr)
            return 2
    else:
        paths = args.paths or ["src"]
    findings = []
    files = collect_files(paths)
    for path in files:
        findings.extend(lint_file(path))
    for f in findings:
        print(f.format())
    if findings:
        print(f"valcon-lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"valcon-lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
