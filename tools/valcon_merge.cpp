// valcon_merge — recombines the JSON shards of a sharded sweep into one
// document.
//
//   valcon_merge [--out FILE] shard.json [shard.json ...]
//
// The shards must come from `valcon_sweep --shard I/M` runs of the same
// matrix. The tool verifies they are pairwise disjoint and jointly
// exhaustive (any mixed partition that tiles [0, total) is accepted),
// copies the per-scenario lines verbatim in index order, and re-derives
// the aggregate summary from those lines — so the merged document is
// byte-identical to a single-shot `valcon_sweep` run of the same matrix.
// Overlaps, gaps, matrix mismatches and malformed shards abort with
// exit 2.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "valcon/harness/sweep_io.hpp"

using valcon::harness::io::ShardDocument;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--out FILE] shard.json [shard.json ...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (shard_paths.empty()) return usage(argv[0]);

  std::vector<ShardDocument> docs;
  docs.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "error: cannot read " << path << "\n";
      return 2;
    }
    try {
      docs.push_back(valcon::harness::io::parse_document(in));
    } catch (const std::exception& e) {
      std::cerr << "error: " << path << ": " << e.what() << "\n";
      return 2;
    }
  }

  std::ostringstream merged;
  try {
    valcon::harness::io::merge_documents(merged, std::move(docs));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (out_path.empty()) {
    std::cout << merged.str();
    return std::cout ? 0 : 1;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << merged.str();
  out.flush();
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  return 0;
}
