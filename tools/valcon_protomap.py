#!/usr/bin/env python3
"""valcon_protomap -- semantic protocol-conformance analyzer (layer 4).

Walks the real C++ AST via libclang (driven by compile_commands.json; no
regex over source) and extracts the protocol map: every payload class
derived from valcon::sim::Payload, its wire type strings, its fields,
which classes construct/send it (make_payload sites) and which handle it
(dynamic_cast dispatch sites). The map is emitted as a deterministic,
byte-stable protocol_map.json and rendered to docs/protocol-map.md.

On top of the map it enforces conformance rules (see RULES below):
orphan payloads, black-hole payloads, duplicate type strings, and raw
quorum arithmetic in protocol code (consensus/ and bcast/ must spell
thresholds through core/thresholds.hpp helpers, never as `n - t` or
`2*t + 1`).

Suppression mirrors valcon_lint:

    // valcon-protomap: allow(<rule>) -- <reason>

on the offending line or the line directly above it (for payload-level
rules: the line of the class declaration or the line above).

Type-string extraction: a class's wire names come from its
VALCON_PAYLOAD_TYPE(...) macro invocation if present, else from the
string literals in a hand-written type_id() body (the BRB message class
interns three names there). A payload class with neither is a
forwarding wrapper (MuxMsg, FacedSelfMsg): it carries another payload's
identity, is exempt from orphan/black-hole/duplicate rules, and is
listed in the map's "wrappers" section.

Subcommands:
    extract    write the protocol map JSON (byte-stable across runs)
    check      extract + run conformance rules (+ optional --baseline
               diff against the committed docs/protocol_map.json)
    render     render/refresh-check docs/protocol-map.md from a map
               JSON (pure python: works without libclang)
    self-test  run extraction+rules over the fixture corpus under
               tests/protomap_corpus (each bad fixture must yield
               exactly its `// protomap-expect:` rules; every good
               fixture must be clean)
    list-rules print the rule table

Exit codes: 0 clean, 1 findings/diff/parse errors, 2 usage, 77 when
libclang is unavailable (extract/check/self-test only; ctest marks 77
as SKIP so local dev without libclang degrades gracefully).
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import re
import shlex
import sys

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_SKIP = 77

SCHEMA = "valcon-protocol-map-v1"
PAYLOAD_BASE = "valcon::sim::Payload"

# Directory segments (anywhere in the repo-relative path) in which raw
# t-arithmetic is banned: protocol code must use core/thresholds.hpp.
QUORUM_DIRS = {"consensus", "bcast"}

# Individual files outside those directories that carry quorum logic and
# get the same audit: the certificate layer counts votes against
# caller-supplied thresholds and must never derive one from t itself.
QUORUM_FILES = {"src/valcon/core/quorum.hpp", "src/valcon/core/quorum.cpp"}

RULES = {
    "orphan-payload":
        "payload class declared but never constructed via make_payload --"
        " dead wire format, or the sender was deleted without its message",
    "black-hole":
        "payload constructed and sent but no dynamic_cast dispatch site"
        " handles it -- every delivery is silently dropped",
    "duplicate-type":
        "the same wire type string is claimed by more than one payload"
        " class -- metrics and debugging conflate the two",
    "raw-quorum":
        "arithmetic on the fault bound `t` in protocol code (consensus/,"
        " bcast/, core/quorum) -- vote thresholds must go through the named"
        " helpers in core/thresholds.hpp",
    "bad-suppression":
        "malformed valcon-protomap suppression: unknown rule name or"
        " missing ` -- reason`",
}

ALLOW_RE = re.compile(
    r"//\s*valcon-protomap:\s*allow\(([a-z-]+)\)\s*--\s*\S")
ANY_ALLOW_RE = re.compile(r"//\s*valcon-protomap:\s*allow\b")
EXPECT_RE = re.compile(r"//\s*protomap-expect:\s*([a-z -]+)")
GOOD_RE = re.compile(r"//\s*protomap-good:\s*([a-z -]+)")

ARITH_OPS = {"+", "-", "*", "/", "%"}
T_NAMES = {"t", "t_"}


# --------------------------------------------------------------- libclang

def load_cindex():
    """Returns (clang.cindex module, None) or (None, reason)."""
    try:
        from clang import cindex  # type: ignore
    except ImportError as exc:
        return None, f"python clang bindings not importable ({exc})"
    override = os.environ.get("VALCON_LIBCLANG")
    if override:
        try:
            cindex.Config.set_library_file(override)
        except Exception as exc:  # noqa: BLE001 -- report and skip
            return None, f"VALCON_LIBCLANG={override} unusable ({exc})"
    try:
        cindex.Index.create()
    except Exception as exc:  # noqa: BLE001 -- report and skip
        return None, f"libclang shared library unavailable ({exc})"
    return cindex, None


# ----------------------------------------------------------- extraction

class PayloadInfo:
    """Everything the map records about one Payload-derived class."""

    def __init__(self, qname, file, fields):
        self.qname = qname
        self.file = file
        self.fields = fields
        self.types = []
        self.wrapper = False
        self.decl_line = 0
        self.senders = set()
        self.handlers = set()
        self.send_sites = []  # (file, line)
        self.handle_sites = []  # (file, line)


class Extraction:
    """Aggregated (deduped) extraction result across all parsed TUs."""

    def __init__(self):
        self.payloads = {}  # qname -> PayloadInfo
        self.raw_quorum_sites = {}  # (file, line, col) -> op
        self.seen_sites = set()
        self.files = set()  # repo-relative files visited


def relpath(path, root):
    return os.path.relpath(os.path.realpath(path),
                           os.path.realpath(root)).replace(os.sep, "/")


class TuScanner:
    """One compile_commands-driven libclang pass, merging into an
    Extraction. Only cursors located under `scan_root` are visited, so
    system headers are pruned at the translation-unit top level."""

    def __init__(self, ci, extraction, scan_root, source_root):
        self.ci = ci
        self.ex = extraction
        self.scan_root = os.path.realpath(scan_root)
        self.source_root = os.path.realpath(source_root)
        self.index = ci.Index.create()
        self._payload_cache = {}

    def in_scope(self, location):
        if location.file is None:
            return False
        real = os.path.realpath(location.file.name)
        return real.startswith(self.scan_root + os.sep) or \
            real == self.scan_root

    def parse(self, path, args):
        tu = self.index.parse(path, args=args)
        errors = [d for d in tu.diagnostics
                  if d.severity >= self.ci.Diagnostic.Error]
        if errors:
            lines = [f"{d.location.file}:{d.location.line}: {d.spelling}"
                     for d in errors[:10]]
            raise RuntimeError(
                f"parse errors in {path} (extraction needs a clean"
                " parse):\n  " + "\n  ".join(lines))
        self.scan(tu)

    # -- naming helpers

    def qname(self, cursor):
        ck = self.ci.CursorKind
        named = (ck.NAMESPACE, ck.STRUCT_DECL, ck.CLASS_DECL,
                 ck.CLASS_TEMPLATE, ck.UNION_DECL, ck.ENUM_DECL)
        parts = []
        cur = cursor
        while cur is not None and cur.kind != ck.TRANSLATION_UNIT:
            if cur.kind in named and cur.spelling:
                parts.append(cur.spelling)
            cur = cur.semantic_parent
        return "::".join(reversed(parts))

    def derives_from_payload(self, record):
        usr = record.get_usr()
        if usr in self._payload_cache:
            return self._payload_cache[usr]
        self._payload_cache[usr] = False  # cycle guard
        result = False
        ck = self.ci.CursorKind
        for child in record.get_children():
            if child.kind != ck.CXX_BASE_SPECIFIER:
                continue
            base = child.type.get_declaration()
            if base is None or not base.spelling:
                continue
            if self.qname(base) == PAYLOAD_BASE:
                result = True
                break
            base_def = base.get_definition() or base
            if self.derives_from_payload(base_def):
                result = True
                break
        self._payload_cache[usr] = result
        return result

    # -- per-class facts

    def type_literals(self, record):
        """Wire names: VALCON_PAYLOAD_TYPE macro literal, else string
        literals inside a hand-written type_id() body, else [] (the
        class is a forwarding wrapper)."""
        tokens = [t.spelling for t in record.get_tokens()]
        for i, tok in enumerate(tokens):
            if tok == "VALCON_PAYLOAD_TYPE":
                for j in range(i + 1, min(i + 5, len(tokens))):
                    if tokens[j].startswith('"'):
                        return [tokens[j][1:-1]]
        ck = self.ci.CursorKind
        for child in record.get_children():
            if child.kind == ck.CXX_METHOD and child.spelling == "type_id":
                lits = [t.spelling[1:-1] for t in child.get_tokens()
                        if t.spelling.startswith('"')]
                if lits:
                    return lits
        return []

    def register_payload(self, record):
        qn = self.qname(record)
        if qn in self.ex.payloads:
            return
        ck = self.ci.CursorKind
        fields = [c.spelling for c in record.get_children()
                  if c.kind == ck.FIELD_DECL]
        info = PayloadInfo(qn, relpath(record.location.file.name,
                                       self.source_root), fields)
        info.decl_line = record.extent.start.line
        info.types = self.type_literals(record)
        info.wrapper = not info.types
        self.ex.payloads[qn] = info

    # -- per-site facts

    def payload_of_make_payload(self, call):
        ref = call.referenced
        if ref is not None:
            try:
                if ref.get_num_template_arguments() > 0:
                    decl = ref.get_template_argument_type(
                        0).get_declaration()
                    if decl is not None and decl.spelling:
                        return self.qname(decl)
            except Exception:  # noqa: BLE001 -- fall through to tokens
                pass
        # Token fallback: `make_payload < Name >` with the innermost
        # identifier before `>` as the class name (unqualified; resolved
        # against the registered payloads by unique suffix).
        tokens = [t.spelling for t in call.get_tokens()]
        try:
            i = tokens.index("make_payload")
            j = tokens.index("<", i)
            k = tokens.index(">", j)
            name = "::".join(t for t in tokens[j + 1:k] if t != "::")
            return ("?", name)
        except ValueError:
            return None

    def binop_spelling(self, cursor):
        kids = list(cursor.get_children())
        if len(kids) != 2:
            return None
        left_end = kids[0].extent.end.offset
        right_start = kids[1].extent.start.offset
        for tok in cursor.get_tokens():
            off = tok.extent.start.offset
            if left_end <= off < right_start and tok.spelling in ARITH_OPS:
                return tok.spelling
        return None

    def subtree_references_t(self, cursor):
        ck = self.ci.CursorKind
        stack = [cursor]
        while stack:
            cur = stack.pop()
            if cur.kind in (ck.DECL_REF_EXPR, ck.MEMBER_REF_EXPR) and \
                    cur.spelling in T_NAMES:
                return True
            if cur.kind == ck.CALL_EXPR:
                ref = cur.referenced
                if ref is not None and ref.spelling in T_NAMES:
                    return True
            stack.extend(cur.get_children())
        return False

    def quorum_scoped(self, file_rel):
        if file_rel in QUORUM_FILES:
            return True
        parts = file_rel.split("/")
        return any(p in QUORUM_DIRS for p in parts[:-1])

    # -- the walk

    def scan(self, tu):
        ck = self.ci.CursorKind
        record_kinds = (ck.STRUCT_DECL, ck.CLASS_DECL)
        func_kinds = (ck.CXX_METHOD, ck.FUNCTION_DECL, ck.CONSTRUCTOR,
                      ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE)
        stack = [(child, "") for child in tu.cursor.get_children()
                 if self.in_scope(child.location)]
        while stack:
            cur, cls = stack.pop()
            kind = cur.kind
            loc = cur.location
            file_rel = relpath(loc.file.name, self.source_root) \
                if loc.file is not None else ""
            if file_rel:
                self.ex.files.add(file_rel)

            if kind in record_kinds and cur.is_definition() and cur.spelling:
                if self.derives_from_payload(cur):
                    self.register_payload(cur)
                cls = self.qname(cur)
            elif kind in func_kinds:
                parent = cur.semantic_parent
                if parent is not None and parent.kind in (
                        ck.STRUCT_DECL, ck.CLASS_DECL, ck.CLASS_TEMPLATE):
                    cls = self.qname(parent)
            elif kind == ck.CALL_EXPR:
                ref = cur.referenced
                if ref is not None and ref.spelling == "make_payload":
                    key = ("send", file_rel, loc.line, loc.column)
                    if key not in self.ex.seen_sites:
                        self.ex.seen_sites.add(key)
                        target = self.payload_of_make_payload(cur)
                        self.note_send(target, cls, file_rel, loc.line)
            elif kind == ck.CXX_DYNAMIC_CAST_EXPR:
                pointee = cur.type.get_pointee()
                decl = pointee.get_declaration()
                if decl is not None and decl.spelling:
                    key = ("handle", file_rel, loc.line, loc.column)
                    if key not in self.ex.seen_sites:
                        self.ex.seen_sites.add(key)
                        self.note_handle(self.qname(decl), cls, file_rel,
                                         loc.line)
            elif kind == ck.BINARY_OPERATOR and self.quorum_scoped(file_rel):
                op = self.binop_spelling(cur)
                if op is not None and self.subtree_references_t(cur):
                    self.ex.raw_quorum_sites.setdefault(
                        (file_rel, loc.line, loc.column), op)

            stack.extend((child, cls) for child in cur.get_children())

    def note_send(self, target, sender, file_rel, line):
        self.pending_sends = getattr(self, "pending_sends", [])
        self.pending_sends.append((target, sender or "<file-scope>",
                                   file_rel, line))

    def note_handle(self, qn, handler, file_rel, line):
        self.pending_handles = getattr(self, "pending_handles", [])
        self.pending_handles.append((qn, handler or "<file-scope>",
                                     file_rel, line))

    def resolve_sites(self):
        """Attach recorded sites to payloads; non-payload dynamic_casts
        (e.g. QuadProposal downcasts) are dropped here by name lookup."""
        for target, sender, file_rel, line in getattr(
                self, "pending_sends", []):
            qn = self.resolve_target(target, sender)
            if qn is None:
                continue
            info = self.ex.payloads[qn]
            info.senders.add(sender)
            info.send_sites.append((file_rel, line))
        for qn, handler, file_rel, line in getattr(
                self, "pending_handles", []):
            if qn not in self.ex.payloads:
                continue
            info = self.ex.payloads[qn]
            info.handlers.add(handler)
            info.handle_sites.append((file_rel, line))

    def resolve_target(self, target, sender):
        if target is None:
            return None
        if isinstance(target, str):
            return target if target in self.ex.payloads else None
        # ("?", unqualified-or-partial name): unique-suffix resolution,
        # preferring a payload nested in the sender's enclosing class.
        _, name = target
        suffix = "::" + name
        candidates = [qn for qn in self.ex.payloads
                      if qn == name or qn.endswith(suffix)]
        if len(candidates) > 1 and sender:
            scope = sender.split("::")
            scoped = [qn for qn in candidates
                      if qn.split("::")[:-1] == scope or
                      qn.startswith(sender.rsplit("::", 1)[0] + "::")]
            if len(scoped) == 1:
                return scoped[0]
        return candidates[0] if len(candidates) == 1 else None


# ------------------------------------------------------------ the rules

def line_allows(source_lines, line_no, rule):
    """True if `line_no` (1-based) or the line above carries a
    well-formed allow() for `rule`."""
    for candidate in (line_no, line_no - 1):
        if 1 <= candidate <= len(source_lines):
            m = ALLOW_RE.search(source_lines[candidate - 1])
            if m and m.group(1) == rule:
                return True
    return False


def scan_suppressions(path, rel, findings):
    """The bad-suppression rule: every valcon-protomap marker must be a
    well-formed allow(<known-rule>) -- reason."""
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return []
    for i, text in enumerate(lines, start=1):
        if not ANY_ALLOW_RE.search(text):
            continue
        m = ALLOW_RE.search(text)
        if m is None:
            findings.append(("bad-suppression", rel, i,
                             "malformed suppression (want `//"
                             " valcon-protomap: allow(rule) -- reason`)"))
        elif m.group(1) not in RULES:
            findings.append(("bad-suppression", rel, i,
                             f"unknown rule '{m.group(1)}'"))
    return lines


def evaluate(extraction, source_root, extra_files=()):
    """Runs the conformance rules over an Extraction; returns findings
    as (rule, file, line, message) sorted for deterministic output."""
    findings = []
    file_lines = {}

    def lines_of(rel):
        if rel not in file_lines:
            path = os.path.join(source_root, rel)
            file_lines[rel] = scan_suppressions(path, rel, findings)
        return file_lines[rel]

    for rel in sorted(set(extraction.files) | set(extra_files)):
        lines_of(rel)

    by_type = {}
    for qn in sorted(extraction.payloads):
        info = extraction.payloads[qn]
        for ts in info.types:
            by_type.setdefault(ts, []).append(info)
        if info.wrapper:
            continue
        lines = lines_of(info.file)
        if not info.send_sites:
            if not line_allows(lines, info.decl_line, "orphan-payload"):
                findings.append((
                    "orphan-payload", info.file, info.decl_line,
                    f"{info.qname} is never constructed via make_payload"))
        elif not info.handle_sites:
            if not line_allows(lines, info.decl_line, "black-hole"):
                findings.append((
                    "black-hole", info.file, info.decl_line,
                    f"{info.qname} is sent but no dispatch site handles"
                    " it"))

    for ts in sorted(by_type):
        infos = by_type[ts]
        if len(infos) < 2:
            continue
        if any(line_allows(lines_of(i.file), i.decl_line, "duplicate-type")
               for i in infos):
            continue
        owners = ", ".join(sorted(i.qname for i in infos))
        first = min(infos, key=lambda i: (i.file, i.decl_line))
        findings.append((
            "duplicate-type", first.file, first.decl_line,
            f'wire type "{ts}" claimed by {owners}'))

    for (rel, line, _col) in sorted(extraction.raw_quorum_sites):
        op = extraction.raw_quorum_sites[(rel, line, _col)]
        if line_allows(lines_of(rel), line, "raw-quorum"):
            continue
        findings.append((
            "raw-quorum", rel, line,
            f"arithmetic `{op}` on the fault bound t in protocol code;"
            " use core/thresholds.hpp"))

    return sorted(set(findings))


# ----------------------------------------------------------- map output

def build_map(extraction):
    payloads = []
    wrappers = []
    for qn in sorted(extraction.payloads):
        info = extraction.payloads[qn]
        entry = {
            "class": qn,
            "file": info.file,
            "fields": info.fields,
            "senders": sorted(info.senders),
            "handlers": sorted(info.handlers),
        }
        if info.wrapper:
            wrappers.append(entry)
        else:
            entry = {"class": qn, "file": info.file,
                     "types": sorted(info.types),
                     "fields": info.fields,
                     "senders": sorted(info.senders),
                     "handlers": sorted(info.handlers)}
            payloads.append(entry)
    return {"schema": SCHEMA, "payloads": payloads, "wrappers": wrappers}


def dump_map(protocol_map):
    return json.dumps(protocol_map, indent=2) + "\n"


def short(qname):
    return qname[len("valcon::"):] if qname.startswith("valcon::") else qname


def render_markdown(protocol_map):
    out = []
    out.append("# Protocol map")
    out.append("")
    out.append("<!-- Generated by `tools/valcon_protomap.py render` from"
               " docs/protocol_map.json; do not edit by hand. -->")
    out.append("")
    out.append("Extracted from the AST by `tools/valcon_protomap.py` (see"
               " docs/static-analysis.md, layer 4): every payload class,"
               " its wire type strings and fields, the classes that"
               " construct/send it and the classes that dispatch on it.")
    out.append("")
    out.append("## Payloads")
    out.append("")
    out.append("| Type | Class | Fields | Sent by | Handled by |")
    out.append("|---|---|---|---|---|")
    rows = []
    for entry in protocol_map["payloads"]:
        for ts in entry["types"]:
            rows.append((ts, entry))
    for ts, entry in sorted(rows, key=lambda r: r[0]):
        rows_senders = ", ".join(short(s) for s in entry["senders"]) or "—"
        rows_handlers = ", ".join(short(h) for h in entry["handlers"]) or "—"
        fields = ", ".join(entry["fields"]) or "—"
        out.append(f"| `{ts}` | `{short(entry['class'])}` | {fields} |"
                   f" {rows_senders} | {rows_handlers} |")
    out.append("")
    out.append("## Forwarding wrappers")
    out.append("")
    out.append("Wrappers forward the inner payload's identity (no wire"
               " type string of their own) and are exempt from the"
               " orphan/black-hole/duplicate rules.")
    out.append("")
    out.append("| Class | Fields | Sent by | Handled by |")
    out.append("|---|---|---|---|")
    for entry in protocol_map["wrappers"]:
        fields = ", ".join(entry["fields"]) or "—"
        senders = ", ".join(short(s) for s in entry["senders"]) or "—"
        handlers = ", ".join(short(h) for h in entry["handlers"]) or "—"
        out.append(f"| `{short(entry['class'])}` | {fields} | {senders} |"
                   f" {handlers} |")
    out.append("")
    n_types = sum(len(e["types"]) for e in protocol_map["payloads"])
    out.append(f"{len(protocol_map['payloads'])} payload classes,"
               f" {n_types} wire types,"
               f" {len(protocol_map['wrappers'])} wrappers.")
    return "\n".join(out) + "\n"


# ------------------------------------------------------------- commands

def print_findings(findings):
    for rule, rel, line, message in findings:
        print(f"{rel}:{line}: [{rule}] {message}")
    print(f"valcon_protomap: {len(findings)} finding(s)")


def extract_tree(ci, compile_commands, source_root):
    with open(compile_commands, encoding="utf-8") as fh:
        entries = json.load(fh)
    scan_root = os.path.join(source_root, "src", "valcon")
    scanner = TuScanner(ci, Extraction(), scan_root, source_root)
    seen = set()
    parsed = 0
    for entry in sorted(entries, key=lambda e: e["file"]):
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.join(entry["directory"], path)
        path = os.path.realpath(path)
        if path in seen:
            continue
        seen.add(path)
        if not path.startswith(os.path.realpath(scan_root) + os.sep):
            continue
        scanner.parse(path, tu_args(entry))
        parsed += 1
    if parsed == 0:
        raise RuntimeError(
            f"no src/valcon TUs in {compile_commands}; configure with"
            " cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is ON)")
    scanner.resolve_sites()
    return scanner.ex


def tu_args(entry):
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    directory = entry["directory"]
    args = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg.startswith(("-I", "-D", "-U")) and len(arg) > 2:
            if arg.startswith("-I") and not os.path.isabs(arg[2:]):
                arg = "-I" + os.path.join(directory, arg[2:])
            args.append(arg)
        elif arg in ("-I", "-isystem", "-include", "-D", "-U"):
            value = argv[i + 1] if i + 1 < len(argv) else ""
            i += 1
            if arg in ("-I", "-isystem", "-include") and \
                    not os.path.isabs(value):
                value = os.path.join(directory, value)
            args.extend([arg, value])
        elif arg.startswith("-std="):
            args.append(arg)
        i += 1
    return args


def cmd_extract(args):
    ci, reason = load_cindex()
    if ci is None:
        print(f"valcon_protomap: SKIP: {reason}", file=sys.stderr)
        return EXIT_SKIP
    extraction = extract_tree(ci, args.compile_commands, args.source_root)
    text = dump_map(build_map(extraction))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"valcon_protomap: wrote {args.out}"
              f" ({len(extraction.payloads)} payload classes)")
    else:
        sys.stdout.write(text)
    return EXIT_CLEAN


def cmd_check(args):
    ci, reason = load_cindex()
    if ci is None:
        print(f"valcon_protomap: SKIP: {reason}", file=sys.stderr)
        return EXIT_SKIP
    extraction = extract_tree(ci, args.compile_commands, args.source_root)
    findings = evaluate(extraction, args.source_root)
    status = EXIT_CLEAN
    if findings:
        print_findings(findings)
        status = EXIT_FINDINGS
    fresh = dump_map(build_map(extraction))
    if args.map_out:
        with open(args.map_out, "w", encoding="utf-8") as fh:
            fh.write(fresh)
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                committed = fh.read()
        except OSError:
            committed = ""
        if committed != fresh:
            diff = difflib.unified_diff(
                committed.splitlines(keepends=True),
                fresh.splitlines(keepends=True),
                fromfile=args.baseline, tofile="fresh extraction")
            sys.stdout.writelines(diff)
            print(f"valcon_protomap: {args.baseline} is stale; refresh"
                  " with:\n  python3 tools/valcon_protomap.py extract"
                  f" --compile-commands {args.compile_commands}"
                  f" --out {args.baseline}\n  python3"
                  " tools/valcon_protomap.py render --map"
                  f" {args.baseline} --out docs/protocol-map.md")
            status = EXIT_FINDINGS
    if status == EXIT_CLEAN:
        n_types = sum(len(p.types) for p in extraction.payloads.values())
        print(f"valcon_protomap: clean ({len(extraction.payloads)}"
              f" payload classes, {n_types} wire types)")
    return status


def cmd_render(args):
    with open(args.map, encoding="utf-8") as fh:
        protocol_map = json.load(fh)
    if protocol_map.get("schema") != SCHEMA:
        print(f"error: {args.map} is not a {SCHEMA} document",
              file=sys.stderr)
        return EXIT_FINDINGS
    text = render_markdown(protocol_map)
    if args.check:
        try:
            with open(args.check, encoding="utf-8") as fh:
                on_disk = fh.read()
        except OSError:
            on_disk = ""
        if on_disk != text:
            diff = difflib.unified_diff(
                on_disk.splitlines(keepends=True),
                text.splitlines(keepends=True),
                fromfile=args.check, tofile="fresh render")
            sys.stdout.writelines(diff)
            print(f"valcon_protomap: {args.check} is stale; refresh with:"
                  "\n  python3 tools/valcon_protomap.py render --map"
                  f" {args.map} --out {args.check}")
            return EXIT_FINDINGS
        print(f"valcon_protomap: {args.check} is fresh")
        return EXIT_CLEAN
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"valcon_protomap: wrote {args.out}")
    else:
        sys.stdout.write(text)
    return EXIT_CLEAN


def cmd_self_test(args):
    ci, reason = load_cindex()
    if ci is None:
        print(f"valcon_protomap: SKIP: {reason}", file=sys.stderr)
        return EXIT_SKIP
    corpus = os.path.realpath(args.corpus)
    support = os.path.join(corpus, "support")
    fixtures = []
    for sub in ("bad", "good"):
        for dirpath, _dirs, files in os.walk(os.path.join(corpus, sub)):
            for name in sorted(files):
                if name.endswith(".cpp"):
                    fixtures.append((sub, os.path.join(dirpath, name)))
    if not fixtures:
        print(f"error: no fixtures under {corpus}", file=sys.stderr)
        return EXIT_USAGE

    failures = 0
    covered_bad = set()
    covered_good = set()
    for sub, path in sorted(fixtures):
        rel = relpath(path, corpus)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        expected = set()
        for m in EXPECT_RE.finditer(text):
            expected.update(m.group(1).split())
        for m in GOOD_RE.finditer(text):
            covered_good.update(m.group(1).split())
        unknown = (expected - RULES.keys()) | (covered_good - RULES.keys())
        if unknown:
            print(f"FAIL {rel}: unknown rule(s) in markers:"
                  f" {sorted(unknown)}")
            failures += 1
            continue

        scanner = TuScanner(ci, Extraction(), corpus, corpus)
        try:
            scanner.parse(path, ["-std=c++20", f"-I{support}"])
        except RuntimeError as exc:
            print(f"FAIL {rel}: {exc}")
            failures += 1
            continue
        scanner.resolve_sites()
        found = {f[0] for f in evaluate(scanner.ex, corpus,
                                        extra_files=[rel])}
        if sub == "bad":
            if found != expected:
                print(f"FAIL {rel}: expected {sorted(expected)},"
                      f" found {sorted(found)}")
                failures += 1
            else:
                covered_bad.update(expected)
        else:
            if found:
                print(f"FAIL {rel}: good fixture has findings:"
                      f" {sorted(found)}")
                failures += 1

    missing_bad = RULES.keys() - covered_bad
    missing_good = RULES.keys() - covered_good
    if missing_bad:
        print(f"FAIL corpus: no bad fixture covers {sorted(missing_bad)}")
        failures += 1
    if missing_good:
        print(f"FAIL corpus: no good fixture covers"
              f" {sorted(missing_good)}")
        failures += 1
    if failures:
        print(f"valcon_protomap self-test: {failures} failure(s)")
        return EXIT_FINDINGS
    print(f"valcon_protomap self-test: OK"
          f" ({len(fixtures)} fixtures, {len(RULES)} rules)")
    return EXIT_CLEAN


def cmd_list_rules(_args):
    for rule in sorted(RULES):
        print(f"{rule}: {RULES[rule]}")
    return EXIT_CLEAN


def main(argv):
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(prog="valcon_protomap.py")
    sub = parser.add_subparsers(dest="command")

    p_extract = sub.add_parser("extract", help="write the protocol map")
    p_extract.add_argument("--compile-commands", required=True)
    p_extract.add_argument("--source-root", default=default_root)
    p_extract.add_argument("--out")

    p_check = sub.add_parser("check", help="extract + conformance rules")
    p_check.add_argument("--compile-commands", required=True)
    p_check.add_argument("--source-root", default=default_root)
    p_check.add_argument("--baseline")
    p_check.add_argument("--map-out")

    p_render = sub.add_parser("render", help="render protocol-map.md")
    p_render.add_argument("--map", required=True)
    p_render.add_argument("--out")
    p_render.add_argument("--check")

    p_self = sub.add_parser("self-test", help="run the fixture corpus")
    p_self.add_argument("corpus")

    sub.add_parser("list-rules", help="print the rule table")

    args = parser.parse_args(argv)
    handlers = {
        "extract": cmd_extract,
        "check": cmd_check,
        "render": cmd_render,
        "self-test": cmd_self_test,
        "list-rules": cmd_list_rules,
    }
    if args.command not in handlers:
        parser.print_help(sys.stderr)
        return EXIT_USAGE
    try:
        return handlers[args.command](args)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
