// valcon_search — seeded adversary search: mutates over adversary
// strategy, proposal pattern, network profile and the ScenarioConfig
// parameters, scores candidates by how close they came to a violation
// (the near-miss fields on RunResult), and shrinks every violation to a
// minimal replayable (config, seed) cell.
//
//   valcon_search [--search-seed N] [--budget N] [--population N]
//                 [--jobs N] [--sizes n/t,n/t,...] [--strategies a,b,...]
//                 [--vcs auth,nonauth,fast] [--validities a,b,...]
//                 [--patterns a,b,...] [--net-profiles a,b,...]
//                 [--cert-modes per-vote,aggregate]
//                 [--topologies full-mesh,committee-<k>,...] [--gsts x,y,...]
//                 [--deltas x,y,...] [--domains d,...]
//                 [--seed-tries N] [--no-shrink] [--out FILE]
//                 [--emit-dir DIR] [--quiet]
//
// The default space is the SOUND regime (n > 3t), where any violation is
// a bug — that is what the CI smoke run asserts (exit 0, empty
// counterexample list). Counterexamples for the regression corpus come
// from explicitly unsound sizes, e.g. --sizes 4/2.
//
// The report (stdout or --out) is a deterministic function of the options:
// no wall-clock, no host state, and SweepRunner evaluation is input-ordered
// — so the bytes are identical whatever --jobs is. --emit-dir writes each
// shrunk counterexample as a replayable "valcon-counterexample-v1" JSON
// cell (the format tests/corpus/ commits and test_corpus_replay replays).
//
// Exit codes: 0 = clean search (no violations), 1 = violations found,
// 2 = usage / bad axis value.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "valcon/harness/search.hpp"
#include "valcon/harness/sweep_io.hpp"

using namespace valcon;
using namespace valcon::harness;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--search-seed N] [--budget N] [--population N] [--jobs N]"
         " [--sizes n/t,...] [--strategies a,b,...]"
         " [--vcs auth,nonauth,fast] [--validities a,b,...]"
         " [--patterns a,b,...] [--net-profiles a,b,...]"
         " [--cert-modes per-vote,aggregate]"
         " [--topologies full-mesh,committee-<k>,...] [--gsts x,...]"
         " [--deltas x,...] [--domains d,...] [--seed-tries N]"
         " [--no-shrink] [--out FILE] [--emit-dir DIR] [--quiet]\n";
  return 2;
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::pair<int, int>> parse_size(const std::string& s) {
  const auto slash = s.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size()) {
    return std::nullopt;
  }
  const auto n = io::parse_int(s.substr(0, slash), 1);
  const auto t = io::parse_int(s.substr(slash + 1), 0);
  if (!n.has_value() || !t.has_value() || *t >= *n) return std::nullopt;
  return std::make_pair(*n, *t);
}

}  // namespace

int main(int argc, char** argv) {
  SearchOptions options;
  std::string out_path;
  std::string emit_dir;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* { return argv[++i]; };
    if (arg == "--search-seed" && i + 1 < argc) {
      const auto parsed = io::parse_int(value(), 0);
      if (!parsed.has_value()) return usage(argv[0]);
      options.search_seed = static_cast<std::uint64_t>(*parsed);
    } else if (arg == "--budget" && i + 1 < argc) {
      const auto parsed = io::parse_int(value(), 1);
      if (!parsed.has_value()) return usage(argv[0]);
      options.budget = *parsed;
    } else if (arg == "--population" && i + 1 < argc) {
      const auto parsed = io::parse_int(value(), 1);
      if (!parsed.has_value()) return usage(argv[0]);
      options.population = *parsed;
    } else if (arg == "--jobs" && i + 1 < argc) {
      const auto parsed = io::parse_int(value(), 1);
      if (!parsed.has_value()) return usage(argv[0]);
      options.jobs = *parsed;
    } else if (arg == "--seed-tries" && i + 1 < argc) {
      const auto parsed = io::parse_int(value(), 0);
      if (!parsed.has_value()) return usage(argv[0]);
      options.seed_tries = *parsed;
    } else if (arg == "--sizes" && i + 1 < argc) {
      options.space.sizes.clear();
      for (const std::string& item : io::split_csv(value())) {
        const auto size = parse_size(item);
        if (!size.has_value()) {
          std::cerr << "error: --sizes wants n/t with 0 <= t < n, got '"
                    << item << "'\n";
          return 2;
        }
        options.space.sizes.push_back(*size);
      }
    } else if (arg == "--strategies" && i + 1 < argc) {
      options.space.strategies = io::split_csv(value());
    } else if (arg == "--vcs" && i + 1 < argc) {
      options.space.vcs.clear();
      for (const std::string& item : io::split_csv(value())) {
        const auto vc = vc_from_token(item);
        if (!vc.has_value()) {
          std::cerr << "error: --vcs wants auth|nonauth|fast, got '" << item
                    << "'\n";
          return 2;
        }
        options.space.vcs.push_back(*vc);
      }
    } else if (arg == "--validities" && i + 1 < argc) {
      options.space.validities.clear();
      for (const std::string& item : io::split_csv(value())) {
        const auto kind = validity_from_token(item);
        if (!kind.has_value()) {
          std::cerr << "error: --validities wants strong|weak|"
                       "correct-proposal|median|convex-hull, got '"
                    << item << "'\n";
          return 2;
        }
        options.space.validities.push_back(*kind);
      }
    } else if (arg == "--patterns" && i + 1 < argc) {
      options.space.patterns = io::split_csv(value());
    } else if (arg == "--net-profiles" && i + 1 < argc) {
      options.space.net_profiles = io::split_csv(value());
    } else if (arg == "--cert-modes" && i + 1 < argc) {
      options.space.cert_modes.clear();
      for (const std::string& item : io::split_csv(value())) {
        const auto mode = core::cert_mode_from_token(item);
        if (!mode.has_value()) {
          std::cerr << "error: --cert-modes wants per-vote|aggregate, got '"
                    << item << "'\n";
          return 2;
        }
        options.space.cert_modes.push_back(*mode);
      }
    } else if (arg == "--topologies" && i + 1 < argc) {
      options.space.topologies.clear();
      for (const std::string& item : io::split_csv(value())) {
        try {
          static_cast<void>(named_topology(item));
        } catch (const std::exception& e) {
          std::cerr << "error: --topologies: " << e.what() << "\n";
          return 2;
        }
        options.space.topologies.push_back(item);
      }
    } else if (arg == "--gsts" && i + 1 < argc) {
      options.space.gsts.clear();
      for (const std::string& item : io::split_csv(value())) {
        const auto v = parse_double(item);
        if (!v.has_value() || *v < 0) {
          std::cerr << "error: --gsts wants numbers >= 0, got '" << item
                    << "'\n";
          return 2;
        }
        options.space.gsts.push_back(*v);
      }
    } else if (arg == "--deltas" && i + 1 < argc) {
      options.space.deltas.clear();
      for (const std::string& item : io::split_csv(value())) {
        const auto v = parse_double(item);
        if (!v.has_value() || *v <= 0) {
          std::cerr << "error: --deltas wants numbers > 0, got '" << item
                    << "'\n";
          return 2;
        }
        options.space.deltas.push_back(*v);
      }
    } else if (arg == "--domains" && i + 1 < argc) {
      options.space.domains.clear();
      for (const std::string& item : io::split_csv(value())) {
        const auto v = io::parse_int(item, 2);
        if (!v.has_value()) {
          std::cerr << "error: --domains wants integers >= 2, got '" << item
                    << "'\n";
          return 2;
        }
        options.space.domains.push_back(*v);
      }
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = value();
    } else if (arg == "--emit-dir" && i + 1 < argc) {
      emit_dir = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  SearchReport report;
  try {
    report = run_search(options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const std::string json = report_json(report);
  if (out_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << json;
    if (!out) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 2;
    }
  }

  if (!emit_dir.empty() && !report.counterexamples.empty()) {
    try {
      std::filesystem::create_directories(emit_dir);
      for (const Counterexample& cx : report.counterexamples) {
        io::atomic_write(emit_dir + "/" + cell_filename(cx), cell_json(cx));
      }
    } catch (const std::exception& e) {
      std::cerr << "error: emitting cells: " << e.what() << "\n";
      return 2;
    }
  }

  if (!quiet) {
    std::cerr << "evaluated " << report.evaluated << "/" << report.budget
              << " candidates, " << report.counterexamples.size()
              << " counterexample(s), " << report.errors << " error(s)\n";
    for (const Counterexample& cx : report.counterexamples) {
      std::cerr << "  " << verdict_token(cx.verdict) << ": "
                << cx.candidate.key() << "\n";
    }
  }
  return report.counterexamples.empty() ? 0 : 1;
}
